// Reproduces Fig. 16: the breakdown of time spent on the node --
// initiator vs target, CPU vs I/O on each, and the target's I/O split --
// plus §6's Insight 3 (most on-node time is on the target; software
// dominates the initiator because PIO leaves it a single PCIe
// transaction).

#include <cstdio>

#include "core/models.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main() {
  bbench::header("bench_fig16_on_node -- time spent on node",
                 "Fig. 16 (§6, Insight 3)");

  const auto table = core::ComponentTable::from_config(
      scenario::presets::thunderx2_cx4());
  const auto on = core::LatencyModel(table).fig16_on_node();

  std::printf("%s\n", render_stacked_bar("On-node", on.split).c_str());
  std::printf("%s\n", render_stacked_bar("Initiator", on.initiator).c_str());
  std::printf("%s\n", render_stacked_bar("Target", on.target).c_str());
  std::printf("%s\n", render_stacked_bar("Target I/O", on.target_io).c_str());

  auto pct = [](const std::vector<BarSegment>& segs, std::size_t i) {
    double total = 0;
    for (const auto& s : segs) total += s.value;
    return segs[i].value / total * 100.0;
  };

  bbench::Validator v;
  v.within("Initiator share", pct(on.split, 0), 33.80, 0.01);
  v.within("Target share", pct(on.split, 1), 66.20, 0.01);
  v.within("Initiator CPU share", pct(on.initiator, 0), 59.50, 0.01);
  v.within("Initiator I/O share", pct(on.initiator, 1), 40.50, 0.01);
  v.within("Target CPU share", pct(on.target, 0), 43.07, 0.01);
  v.within("Target I/O share", pct(on.target, 1), 56.93, 0.01);
  v.within("Target I/O: RC-to-MEM share", pct(on.target_io, 0), 63.67, 0.01);
  v.within("Target I/O: PCIe share", pct(on.target_io, 1), 36.33, 0.01);
  v.is_true("Insight 3: majority of on-node time on target",
            pct(on.split, 1) > 50);
  v.is_true("Insight 3: software majority on initiator",
            pct(on.initiator, 0) > 50);
  return v.finish();
}
