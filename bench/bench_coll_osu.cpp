// OSU-style collective latency: simulated bb::coll schedules vs the
// bb::model alpha-beta forecast, across the 8B..4KiB size sweep on 4 and
// 8 ranks (allreduce and bcast), plus barrier/allgather reference rows
// and a what-if section running the same collective on modified
// machines. The model rows must land within +-10% of the simulation;
// the binary exits non-zero otherwise.
//
// `--smoke` shrinks the sweep for CI (fewer iterations, endpoints of the
// size range) while keeping the validation band active.

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "benchlib/osu_coll.hpp"
#include "exec/sweep.hpp"
#include "model/alpha_beta.hpp"
#include "scenario/cluster.hpp"
#include "util.hpp"

namespace {

using bb::bench::CollResult;
using bb::bench::OsuColl;
using bb::bench::OsuCollConfig;

double simulate(const bb::scenario::SystemConfig& cfg, int ranks,
                OsuColl::Kind kind, std::uint32_t bytes,
                std::uint64_t iterations) {
  bb::scenario::Cluster cl(cfg, ranks);
  bb::coll::World world(cl);
  OsuCollConfig c;
  c.bytes = bytes;
  c.iterations = iterations;
  c.warmup = iterations / 4 + 2;
  OsuColl bench(world, kind, c);
  return bench.run().mean_ns();
}

const char* kind_name(OsuColl::Kind k) {
  switch (k) {
    case OsuColl::Kind::kBarrier: return "barrier";
    case OsuColl::Kind::kBcast: return "bcast";
    case OsuColl::Kind::kAllgather: return "allgather";
    case OsuColl::Kind::kAllreduce: return "allreduce";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bbench::header("bench_coll_osu: collective latency, model vs simulated",
                 "collectives built on the paper's §5-§6 MPI stack");

  const bb::scenario::SystemConfig cfg = bb::scenario::presets::deterministic();
  const std::uint64_t iters = smoke ? 8 : 40;
  const std::vector<std::uint32_t> sizes =
      smoke ? std::vector<std::uint32_t>{8, 512, 4096}
            : std::vector<std::uint32_t>{8, 64, 256, 512, 1024, 2048, 4096};
  const std::vector<int> rank_counts = {4, 8};

  bbench::Validator v;
  bb::model::CollModel model(cfg);
  const auto opts = bbench::exec_options(argc, argv);

  // Main band: kind x ranks x size, expanded in the print order below
  // (size fastest), one simulation per job.
  const std::vector<OsuColl::Kind> kinds = {OsuColl::Kind::kAllreduce,
                                            OsuColl::Kind::kBcast};
  const auto band = bb::exec::run_sweep(
      bb::exec::sweep(bb::exec::grid(kinds, rank_counts, sizes)),
      [&](const std::tuple<OsuColl::Kind, int, std::uint32_t>& pt,
          bb::exec::Job&) {
        return simulate(cfg, std::get<1>(pt), std::get<0>(pt),
                        std::get<2>(pt), iters);
      },
      opts);
  bbench::note_exec("collective band", band);

  std::size_t cell = 0;
  for (OsuColl::Kind kind : kinds) {
    for (int ranks : rank_counts) {
      std::printf("%s, %d ranks (deterministic testbed)\n", kind_name(kind),
                  ranks);
      std::printf("  %10s %8s %14s %14s %8s\n", "bytes", "algo", "sim ns",
                  "model ns", "err %");
      for (std::uint32_t bytes : sizes) {
        const double sim = band.values[cell++];
        double mdl = 0.0;
        bb::coll::Algo algo = bb::coll::Algo::kAuto;
        if (kind == OsuColl::Kind::kAllreduce) {
          mdl = model.allreduce_ns(ranks, bytes);
          algo = bb::coll::resolve_allreduce(cfg.coll, ranks, bytes);
        } else {
          mdl = model.bcast_ns(ranks, bytes);
          algo = bb::coll::resolve_bcast(cfg.coll, ranks, bytes);
        }
        const double err = (mdl - sim) / sim * 100.0;
        std::printf("  %10u %8s %14.1f %14.1f %+7.1f%%\n", bytes,
                    bb::coll::algo_name(algo), sim, mdl, err);
        char what[96];
        std::snprintf(what, sizeof(what), "%s %dB x%d model band",
                      kind_name(kind), bytes, ranks);
        v.within(what, mdl, sim, 0.10);
      }
      std::printf("\n");
    }
  }

  // Reference rows (not part of the acceptance band): barrier and
  // allgather on 8 ranks.
  {
    std::printf("reference rows, 8 ranks\n");
    std::printf("  %-22s %14s %14s %+8s\n", "collective", "sim ns", "model ns",
                "err %");
    const auto refs = bb::exec::run_sweep(
        bb::exec::sweep<int>({0, 1}),
        [&](int which, bb::exec::Job&) {
          return which == 0
                     ? simulate(cfg, 8, OsuColl::Kind::kBarrier, 8, iters)
                     : simulate(cfg, 8, OsuColl::Kind::kAllgather, 256, iters);
        },
        opts);
    bbench::note_exec("reference rows", refs);
    const double bsim = refs.values[0];
    const double bmdl = model.barrier_ns(8);
    std::printf("  %-22s %14.1f %14.1f %+7.1f%%\n", "barrier/dissemination",
                bsim, bmdl, (bmdl - bsim) / bsim * 100.0);
    const double gsim = refs.values[1];
    const double gmdl = model.allgather_ns(8, 256);
    std::printf("  %-22s %14.1f %14.1f %+7.1f%%\n", "allgather/bruck 256B",
                gsim, gmdl, (gmdl - gsim) / gsim * 100.0);
    std::printf("\n");
  }

  // What-if: the same collective on modified machines -- the model and
  // the simulator must move together because both read the SystemConfig.
  {
    std::printf("what-if: allreduce 1KiB x8, machine variations\n");
    std::printf("  %-18s %14s %14s %8s\n", "machine", "sim ns", "model ns",
                "err %");
    struct WhatIf {
      const char* name;
      bb::scenario::SystemConfig cfg;
    };
    const std::vector<WhatIf> machines = {
        {"baseline", cfg},
        {"integrated-nic",
         cfg.with(bb::scenario::overlays::integrated_nic(0.5))},
        {"genz-switch", cfg.with(bb::scenario::overlays::genz_switch(30.0))},
    };
    const auto wi = bb::exec::run_sweep(
        bb::exec::sweep<std::size_t>({0, 1, 2}),
        [&](std::size_t mi, bb::exec::Job&) {
          return simulate(machines[mi].cfg, 8, OsuColl::Kind::kAllreduce, 1024,
                          iters);
        },
        opts);
    bbench::note_exec("what-if machines", wi);
    for (std::size_t mi = 0; mi < machines.size(); ++mi) {
      const WhatIf& m = machines[mi];
      const double sim = wi.values[mi];
      const double mdl = bb::model::CollModel(m.cfg).allreduce_ns(8, 1024);
      std::printf("  %-18s %14.1f %14.1f %+7.1f%%\n", m.name, sim, mdl,
                  (mdl - sim) / sim * 100.0);
      char what[96];
      std::snprintf(what, sizeof(what), "what-if %s allreduce", m.name);
      v.within(what, mdl, sim, 0.10);
    }
  }

  return v.finish();
}
