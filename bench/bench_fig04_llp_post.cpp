// Reproduces Fig. 4: the percentage breakdown of time in an LLP_post
// (MD setup / barrier for MD / barrier for DBC / PIO copy / other).

#include <cstdio>

#include "common/table.hpp"
#include "core/component_table.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main() {
  bbench::header("bench_fig04_llp_post -- breakdown of an LLP_post",
                 "Fig. 4 (§4.1)");

  // Measure the substeps with the profiler, as §4.1 does.
  auto cfg = scenario::presets::thunderx2_cx4();
  cfg.endpoint.profile_level = 2;
  scenario::Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn([](scenario::Testbed::Node& n,
                    llp::Endpoint& e) -> sim::Task<void> {
    for (int i = 0; i < 500; ++i) {
      while (co_await e.put_short(8) != llp::Status::kOk) {
        co_await n.worker.progress();
      }
      if (i % 8 == 0) co_await n.worker.progress();
    }
    while (e.outstanding() > 0) co_await n.worker.progress();
  }(tb.node(0), ep));
  tb.sim().run();

  auto& prof = tb.node(0).profiler;
  const std::vector<BarSegment> measured = {
      {"MD setup", prof.mean_ns("MD setup")},
      {"Barrier for MD", prof.mean_ns("Barrier for MD")},
      {"Barrier for DBC", prof.mean_ns("Barrier for DBC")},
      {"PIO copy", prof.mean_ns("PIO copy")},
      {"Other", prof.mean_ns("Other")},
  };
  std::printf("%s\n", render_stacked_bar("measured (simulator, profiled)",
                                         measured)
                          .c_str());

  const auto paper = core::ComponentTable::paper();
  const std::vector<BarSegment> published = {
      {"MD setup", paper.md_setup},
      {"Barrier for MD", paper.barrier_md},
      {"Barrier for DBC", paper.barrier_dbc},
      {"PIO copy", paper.pio_copy},
      {"Other", paper.llp_post_misc},
  };
  std::printf("%s\n", render_stacked_bar("paper (Fig. 4)", published).c_str());

  // Validate the percentage shares against the figure.
  double total = 0;
  for (const auto& s : measured) total += s.value;
  auto share = [&](int i) { return measured[static_cast<std::size_t>(i)].value / total * 100.0; };

  bbench::Validator v;
  v.within("MD setup %", share(0), 15.84, 0.06);
  v.within("Barrier for MD %", share(1), 9.88, 0.06);
  v.within("Barrier for DBC %", share(2), 12.01, 0.06);
  v.within("PIO copy %", share(3), 53.79, 0.06);
  v.within("Other %", share(4), 8.49, 0.08);
  v.is_true("PIO copy dominates (>50%)", share(3) > 50.0);
  return v.finish();
}
