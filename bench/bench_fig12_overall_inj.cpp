// Reproduces Fig. 12 and the §6 injection validation: the overall
// injection overhead (Post / Post_prog / Misc) with Eq. 2's 264.97 ns
// within 1% of the observed inverse message rate (263.91 ns), measured
// with the OSU-style message-rate test (sync removed).

#include <cstdio>

#include "benchlib/osu.hpp"
#include "core/models.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main() {
  bbench::header("bench_fig12_overall_inj -- overall injection overhead",
                 "Fig. 12 + §6 validation (264.97 vs 263.91, within 1%)");

  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  bench::OsuMessageRate bench(tb, {.windows = 400, .warmup_windows = 40});
  const bench::InjectionResult res = bench.run();

  const auto table = core::ComponentTable::from_config(tb.config());
  const core::InjectionModel model(table);

  std::printf("%s\n",
              render_stacked_bar("model (Eq. 2 constituents)",
                                 model.fig12_breakdown())
                  .c_str());
  std::printf("modelled overall injection (Eq. 2): %.2f ns (paper: 264.97)\n",
              model.overall_injection_ns());
  std::printf("observed 1/message-rate:            %.2f ns (paper: 263.91)\n",
              res.cpu_per_msg_ns);
  std::printf("message rate: %.2f M msg/s; busy posts: %llu / %llu msgs\n\n",
              res.message_rate() / 1e6,
              static_cast<unsigned long long>(res.busy_posts),
              static_cast<unsigned long long>(res.messages));

  auto segs = model.fig12_breakdown();
  double total = 0;
  for (const auto& s : segs) total += s.value;

  bbench::Validator v;
  v.within("model within ~1% of observed", model.overall_injection_ns(),
           res.cpu_per_msg_ns, 0.015);
  v.within("Post share", segs[2].value / total * 100.0, 76.23, 0.01);
  v.within("Post_prog share", segs[1].value / total * 100.0, 22.58, 0.01);
  v.within("Misc share", segs[0].value / total * 100.0, 1.20, 0.05);
  v.is_true("Insight 1: Post dominates (>70%)", segs[2].value / total > 0.7);
  return v.finish();
}
