// Ablation: the put_bw poll policy (§4.2). The model requires polling at
// least every p = gen_completion / LLP_post posts (~7.4 on the paper's
// testbed) to hide completion latency; this sweep shows the observed
// injection overhead across poll periods, including the synchronous
// p = 1 cliff the paper warns about.

#include <cstdio>

#include "benchlib/put_bw.hpp"
#include "core/models.hpp"
#include "exec/sweep.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

namespace {

double run(std::uint32_t poll_every, std::uint32_t txq_depth) {
  auto cfg = scenario::presets::thunderx2_cx4();
  cfg.endpoint.txq_depth = txq_depth;
  scenario::Testbed tb(cfg);
  bench::PutBwBenchmark b(tb, {.messages = 6000,
                               .warmup = 600,
                               .poll_every = poll_every});
  return b.run().nic_deltas.summarize().mean;
}

}  // namespace

int main(int argc, char** argv) {
  bbench::header("bench_ablation_poll_batch -- poll-period sweep",
                 "§4.2's poll-period analysis (p >= gen_completion/LLP_post)");

  const auto model = core::InjectionModel(core::ComponentTable::from_config(
      scenario::presets::thunderx2_cx4()));
  std::printf("gen_completion = %.2f ns; minimum p = %.2f\n\n",
              model.gen_completion_ns(), model.min_poll_period());

  // Grid: the pipelined poll periods plus the (poll=1, depth=1)
  // synchronous degenerate case as the last point.
  struct Cfg {
    std::uint32_t poll_every;
    std::uint32_t txq_depth;
  };
  const auto sweep = exec::sweep<Cfg>({{2u, 128u},
                                       {4u, 128u},
                                       {8u, 128u},
                                       {16u, 128u},
                                       {32u, 128u},
                                       {64u, 128u},
                                       {1u, 1u}});
  const auto res = exec::run_sweep(
      sweep,
      [](const Cfg& c, exec::Job&) { return run(c.poll_every, c.txq_depth); },
      bbench::exec_options(argc, argv));
  bbench::note_exec("poll-period sweep", res);

  std::printf("%-12s %20s\n", "poll every", "observed inj (ns)");
  double p16 = 0;
  for (std::size_t i = 0; i + 1 < sweep.points.size(); ++i) {
    const std::uint32_t p = sweep.points[i].poll_every;
    std::printf("%-12u %20.2f\n", p, res.values[i]);
    if (p == 16) p16 = res.values[i];
  }

  // The synchronous case: TxQ depth 1 means every post waits for the
  // previous completion -- the p = 1 degenerate case of §4.2.
  const double sync_inj = res.values.back();
  std::printf("%-12s %20.2f  (TxQ depth 1: synchronous posts)\n", "sync",
              sync_inj);

  bbench::Validator v;
  v.is_true("pipelined polling keeps overhead near CPU_time",
            p16 < 300.0);
  v.is_true("synchronous posts pay gen_completion",
            sync_inj > model.gen_completion_ns());
  v.is_true("sync/pipelined gap is several-fold", sync_inj > 3.0 * p16);
  return v.finish();
}
