// Reproduces Fig. 7 and the §4.2 validation: the distribution of the
// observed injection overhead (NIC inter-arrival deltas from the PCIe
// trace), with the paper's summary statistics, plus the Eq.-1 model
// comparison (modelled 295.73 ns within 5% of the observed mean).

#include <cstdio>

#include "benchlib/put_bw.hpp"
#include "core/models.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main() {
  bbench::header(
      "bench_fig07_inj_dist -- distribution of observed injection overhead",
      "Fig. 7 + §4.2 validation (model 295.73 vs observed 282.33)");

  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  bench::PutBwBenchmark bench(tb, {.messages = 30000, .warmup = 3000});
  const bench::InjectionResult res = bench.run();
  const Summary s = res.nic_deltas.summarize();

  Histogram h(0.0, 500.0, 50);
  h.add_all(res.nic_deltas);
  std::printf("%s\n", h.render().c_str());
  std::printf("          %-10s %-10s\n", "paper", "simulated");
  std::printf("Mean:     %-10.2f %-10.2f\n", 282.33, s.mean);
  std::printf("Median:   %-10.2f %-10.2f\n", 266.30, s.median);
  std::printf("Min:      %-10.2f %-10.2f\n", 201.30, s.min);
  std::printf("Max:      %-10.2f %-10.2f\n", 34951.70, s.max);
  std::printf("Std. dev: %-10.2f %-10.2f\n\n", 58.49, s.stddev);

  const auto model = core::InjectionModel(
      core::ComponentTable::from_config(tb.config()));
  std::printf("modelled injection overhead (Eq. 1): %.2f ns\n",
              model.llp_injection_ns());
  std::printf("observed injection overhead (trace): %.2f ns\n",
              s.mean);
  std::printf("busy posts: %llu over %llu messages\n",
              static_cast<unsigned long long>(res.busy_posts),
              static_cast<unsigned long long>(res.messages));

  bbench::Validator v;
  v.within("model within 5% of observed (paper's validation)",
           model.llp_injection_ns(), s.mean, 0.05);
  v.within("observed mean near paper's 282.33", s.mean, 282.33, 0.03);
  v.within("observed median near paper's 266.30", s.median, 266.30, 0.05);
  v.is_true("positively skewed (median < mean)", s.median < s.mean);
  v.is_true("heavy tail (max >> p99)", s.max > s.p99 * 1.5);
  v.within("std dev near paper's 58.49", s.stddev, 58.49, 0.6);
  v.is_true("min above 150 ns", s.min > 150.0);
  return v.finish();
}
