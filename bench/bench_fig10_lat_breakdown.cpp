// Reproduces Fig. 10 and the §4.3 validation: the latency of a small
// message with the LLP -- modelled 1135.8 ns within 5% of the
// (measurement-update-adjusted) observed am_lat latency -- and the
// percentage breakdown across LLP_post / TX PCIe / Wire / Switch /
// RX PCIe / RC-to-MEM(8B).

#include <cstdio>

#include "benchlib/am_lat.hpp"
#include "core/models.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main() {
  bbench::header("bench_fig10_lat_breakdown -- latency with the LLP",
                 "Fig. 10 + §4.3 validation (model 1135.8 vs observed 1190.25)");

  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  bench::AmLatBenchmark bench(tb, {.iterations = 4000, .warmup = 400});
  const bench::LatencyResult res = bench.run();

  const auto table = core::ComponentTable::from_config(tb.config());
  const core::LatencyModel model(table);

  std::printf("%s\n",
              render_stacked_bar("model constituents (LLP latency)",
                                 model.fig10_breakdown())
                  .c_str());
  std::printf("raw observed am_lat:        %.2f ns\n",
              res.half_rtt_raw.summarize().mean);
  std::printf("adjusted (minus update/2):  %.2f ns (paper: 1190.25)\n",
              res.adjusted_mean_ns);
  std::printf("modelled LLP latency:       %.2f ns (paper: 1135.8)\n\n",
              model.llp_latency_ns());

  auto segs = model.fig10_breakdown();
  double total = 0;
  for (const auto& s : segs) total += s.value;
  auto share = [&](std::size_t i) { return segs[i].value / total * 100.0; };

  bbench::Validator v;
  v.within("model within 5% of observed", model.llp_latency_ns(),
           res.adjusted_mean_ns, 0.05);
  v.within("modelled latency = 1135.8", model.llp_latency_ns(), 1135.8, 0.001);
  v.within("LLP_post share", share(0), 16.33, 0.01);
  v.within("TX PCIe share", share(1), 12.80, 0.01);
  v.within("Wire share", share(2), 25.58, 0.01);
  v.within("Switch share", share(3), 10.05, 0.01);
  v.within("RX PCIe share", share(4), 12.80, 0.01);
  v.within("RC-to-MEM(8B) share", share(5), 22.43, 0.01);
  return v.finish();
}
