// Rank-count sweep: runs each collective's two algorithm families side
// by side from 2 to 16 ranks (non-powers-of-two included) and prints
// simulated next to modeled latency, so the algorithm-selection
// thresholds in CollTuning can be read straight off the crossovers.
//
// Validation is intentionally loose here: the hard model band lives in
// bench_coll_osu. This sweep asserts only structural facts -- both
// algorithms complete everywhere, and the model ranks the algorithms in
// the same order as the simulator at the sweep endpoints.

#include <cstdio>
#include <cstring>
#include <vector>

#include "benchlib/osu_coll.hpp"
#include "exec/sweep.hpp"
#include "model/alpha_beta.hpp"
#include "scenario/cluster.hpp"
#include "util.hpp"

namespace {

using bb::bench::OsuColl;
using bb::bench::OsuCollConfig;
using bb::coll::Algo;

double simulate(const bb::scenario::SystemConfig& cfg, int ranks,
                OsuColl::Kind kind, std::uint32_t bytes, Algo algo,
                std::uint64_t iterations) {
  bb::scenario::Cluster cl(cfg, ranks);
  bb::coll::World world(cl);
  OsuCollConfig c;
  c.bytes = bytes;
  c.iterations = iterations;
  c.warmup = iterations / 4 + 1;
  c.algo = algo;
  OsuColl bench(world, kind, c);
  return bench.run().mean_ns();
}

struct Pair {
  const char* title;
  OsuColl::Kind kind;
  std::uint32_t bytes;
  Algo a;
  Algo b;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bbench::header("bench_sweep_ranks: algorithm families across rank counts",
                 "selection thresholds in the spirit of MPICH/UCX tuning");

  const bb::scenario::SystemConfig cfg = bb::scenario::presets::deterministic();
  bb::model::CollModel model(cfg);
  const std::uint64_t iters = smoke ? 6 : 24;
  const std::vector<int> ranks =
      smoke ? std::vector<int>{2, 5, 8} : std::vector<int>{2, 3, 4, 5, 6, 8, 11, 13, 16};

  const std::vector<Pair> pairs = {
      {"barrier 8B", OsuColl::Kind::kBarrier, 8, Algo::kDissemination,
       Algo::kRingToken},
      {"bcast 4KiB", OsuColl::Kind::kBcast, 4096, Algo::kBinomialTree,
       Algo::kChain},
      {"allgather 64B", OsuColl::Kind::kAllgather, 64, Algo::kBruck,
       Algo::kRingAllgather},
      {"allreduce 2KiB", OsuColl::Kind::kAllreduce, 2048,
       Algo::kRecursiveDoubling, Algo::kRingAllreduce},
  };

  bbench::Validator v;

  // One job per (collective pair, rank count): both algorithms of a pair
  // run in the same job so the per-row sim costs stay balanced.
  struct Cell {
    double sim_a;
    double sim_b;
  };
  const auto grid = bb::exec::sweep(
      bb::exec::grid(std::vector<std::size_t>{0, 1, 2, 3}, ranks));
  const auto res = bb::exec::run_sweep(
      grid,
      [&](const std::tuple<std::size_t, int>& pt, bb::exec::Job&) {
        const Pair& p = pairs[std::get<0>(pt)];
        const int n = std::get<1>(pt);
        return Cell{simulate(cfg, n, p.kind, p.bytes, p.a, iters),
                    simulate(cfg, n, p.kind, p.bytes, p.b, iters)};
      },
      bbench::exec_options(argc, argv));
  bbench::note_exec("rank sweep", res);

  for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
    const Pair& p = pairs[pi];
    std::printf("%s\n", p.title);
    std::printf("  %5s | %14s %14s | %14s %14s\n", "ranks",
                bb::coll::algo_name(p.a), "(model)", bb::coll::algo_name(p.b),
                "(model)");
    double first_sim_a = 0, first_sim_b = 0, last_sim_a = 0, last_sim_b = 0;
    double first_mdl_a = 0, first_mdl_b = 0, last_mdl_a = 0, last_mdl_b = 0;
    for (std::size_t ri = 0; ri < ranks.size(); ++ri) {
      const int n = ranks[ri];
      const Cell& cell = res.values[pi * ranks.size() + ri];
      const double sa = cell.sim_a;
      const double sb = cell.sim_b;
      double ma = 0, mb = 0;
      switch (p.kind) {
        case OsuColl::Kind::kBarrier:
          ma = model.barrier_ns(n, p.a);
          mb = model.barrier_ns(n, p.b);
          break;
        case OsuColl::Kind::kBcast:
          ma = model.bcast_ns(n, p.bytes, p.a);
          mb = model.bcast_ns(n, p.bytes, p.b);
          break;
        case OsuColl::Kind::kAllgather:
          ma = model.allgather_ns(n, p.bytes, p.a);
          mb = model.allgather_ns(n, p.bytes, p.b);
          break;
        case OsuColl::Kind::kAllreduce:
          ma = model.allreduce_ns(n, p.bytes, p.a);
          mb = model.allreduce_ns(n, p.bytes, p.b);
          break;
      }
      std::printf("  %5d | %14.1f %14.1f | %14.1f %14.1f\n", n, sa, ma, sb,
                  mb);
      v.is_true("simulated latency positive", sa > 0 && sb > 0);
      if (n == ranks.front()) {
        first_sim_a = sa;
        first_sim_b = sb;
        first_mdl_a = ma;
        first_mdl_b = mb;
      }
      if (n == ranks.back()) {
        last_sim_a = sa;
        last_sim_b = sb;
        last_mdl_a = ma;
        last_mdl_b = mb;
      }
    }
    // The model must agree with the simulator about which algorithm wins
    // at the endpoints of the sweep (that agreement is what makes the
    // CollTuning thresholds trustworthy).
    char what[96];
    std::snprintf(what, sizeof(what), "%s: model orders algos like sim (n=%d)",
                  p.title, ranks.front());
    v.is_true(what,
              (first_sim_a <= first_sim_b) == (first_mdl_a <= first_mdl_b));
    std::snprintf(what, sizeof(what), "%s: model orders algos like sim (n=%d)",
                  p.title, ranks.back());
    v.is_true(what, (last_sim_a <= last_sim_b) == (last_mdl_a <= last_mdl_b));
    std::printf("\n");
  }

  return v.finish();
}
