// Reproduces Table 1: "Measured times of various components."
//
// Three columns are reported for every row: the paper's published value,
// the value our calibrated configuration implies, and the value actually
// *measured* inside the simulation using the paper's own methodology --
// UCS-style profiler wraps for software components (§3-§5) and analyzer-
// trace arithmetic for I/O and network components (§4.3).

#include <cstdio>

#include "benchlib/am_lat.hpp"
#include "core/analysis.hpp"
#include "core/component_table.hpp"
#include "scenario/mpi_stack.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

namespace {

using namespace bb;
using scenario::MpiStack;
using scenario::Testbed;
using namespace bb::literals;

constexpr int kSamples = 400;
constexpr int kIters = 200;
constexpr TimePs kPeriod = 10_us;

/// Measured LLP_post substeps + total + LLP_prog + busy post, via the
/// profiler around the relevant code paths (§4.1).
struct LlpMeasurement {
  double md_setup, barrier_md, barrier_dbc, pio_copy, misc, total, prog, busy;
};

LlpMeasurement measure_llp() {
  LlpMeasurement out{};
  // Substeps (one-at-a-time rule: a dedicated run).
  {
    auto cfg = scenario::presets::thunderx2_cx4();
    cfg.endpoint.profile_level = 2;
    Testbed tb(cfg);
    auto& ep = tb.add_endpoint(0);
    tb.sim().spawn([](Testbed::Node& n, llp::Endpoint& e) -> sim::Task<void> {
      for (int i = 0; i < kSamples; ++i) {
        while (co_await e.put_short(8) != llp::Status::kOk) {
          co_await n.worker.progress();
        }
        if (i % 8 == 0) co_await n.worker.progress();
      }
      while (e.outstanding() > 0) co_await n.worker.progress();
    }(tb.node(0), ep));
    tb.sim().run();
    auto& prof = tb.node(0).profiler;
    out.md_setup = prof.mean_ns("MD setup");
    out.barrier_md = prof.mean_ns("Barrier for MD");
    out.barrier_dbc = prof.mean_ns("Barrier for DBC");
    out.pio_copy = prof.mean_ns("PIO copy");
    out.misc = prof.mean_ns("Other");
  }

  // LLP_post total + busy posts (profile level 1).
  {
    auto cfg = scenario::presets::thunderx2_cx4();
    cfg.endpoint.profile_level = 1;
    cfg.endpoint.txq_depth = 16;  // force steady-state busy posts
    Testbed tb(cfg);
    auto& ep = tb.add_endpoint(0);
    tb.sim().spawn([](Testbed::Node& n, llp::Endpoint& e) -> sim::Task<void> {
      for (int i = 0; i < kSamples; ++i) {
        while (co_await e.put_short(8) != llp::Status::kOk) {
          co_await n.worker.progress(1);
        }
      }
      while (e.outstanding() > 0) co_await n.worker.progress();
    }(tb.node(0), ep));
    tb.sim().run();
    out.total = tb.node(0).profiler.mean_ns("LLP_post");
    out.busy = tb.node(0).profiler.mean_ns("Busy post");
  }

  // LLP_prog (per-CQE dequeue wrap).
  {
    auto cfg = scenario::presets::thunderx2_cx4();
    Testbed tb(cfg);
    auto& ep = tb.add_endpoint(0);
    tb.node(0).worker.set_wrap("LLP_prog");
    tb.sim().spawn([](Testbed::Node& n, llp::Endpoint& e) -> sim::Task<void> {
      for (int i = 0; i < kSamples; ++i) {
        while (co_await e.put_short(8) != llp::Status::kOk) {
          co_await n.worker.progress(1);
        }
        if (i % 4 == 0) co_await n.worker.progress(2);
      }
      while (e.outstanding() > 0) co_await n.worker.progress();
    }(tb.node(0), ep));
    tb.sim().run();
    out.prog = tb.node(0).profiler.mean_ns("LLP_prog");
  }
  return out;
}

/// Trace-methodology measurements on an am_lat run (§4.3).
struct IoMeasurement {
  double pcie, network, wire, switch_lat, rc_to_mem_8b;
};

IoMeasurement measure_io() {
  IoMeasurement out{};
  auto run = [](int switches) {
    auto cfg = scenario::presets::thunderx2_cx4();
    cfg.net.num_switches = switches;
    Testbed tb(cfg);
    bench::AmLatBenchmark am(tb, {.iterations = 400,
                                  .warmup = 50,
                                  .bytes = 8,
                                  .speed_factor = 1.0,
                                  .capture_trace = true});
    auto res = am.run();
    struct R {
      double lat, pcie, network, rc;
    } r;
    r.lat = res.adjusted_mean_ns;
    r.pcie = core::measured_pcie(am.trace()).summarize().mean;
    r.network = core::measured_network(am.trace()).summarize().mean;
    const auto table = core::ComponentTable::from_config(tb.config());
    // The pong->ping delta also contains the benchmark's measurement
    // update (it sits between receiving the pong and posting the next
    // ping), so it is deducted alongside LLP_post (§4.3's Fig. 9 path).
    r.rc = core::measured_rc_to_mem(
               am.trace(), r.pcie,
               table.llp_post() + table.measurement_update, table.llp_prog)
               .summarize()
               .mean;
    return r;
  };
  const auto with_switch = run(1);
  const auto direct = run(0);
  out.pcie = with_switch.pcie;
  out.network = with_switch.network;
  // §4.3: Switch = difference of the two latency measurements; Wire is
  // the direct-connection network time.
  out.switch_lat = core::measured_switch(with_switch.lat, direct.lat);
  out.wire = with_switch.network - out.switch_lat;
  out.rc_to_mem_8b = with_switch.rc;
  return out;
}

/// HLP measurements via subtraction between layers (§5).
struct HlpMeasurement {
  double mpich_isend, ucp_isend;
  double mpich_wait, ucp_wait, mpich_cb, ucp_cb, mpich_after;
};

HlpMeasurement measure_hlp() {
  HlpMeasurement out{};
  // A "successful wait" scenario generator: sender fires a message, the
  // receiver idles past its arrival, then waits. One wrap per run.
  auto run_rx = [&](const std::string& mpi_wrap, const std::string& ucp_wrap,
                    const std::string& uct_wrap, const std::string& region) {
    Testbed tb(scenario::presets::thunderx2_cx4());
    MpiStack tx(tb, 0);
    MpiStack rx(tb, 1);
    tb.node(1).nic.post_receives(kIters + 2);
    if (!mpi_wrap.empty()) rx.mpi().set_wrap(mpi_wrap);
    if (!ucp_wrap.empty()) rx.ucp().set_wrap(ucp_wrap);
    if (!uct_wrap.empty()) tb.node(1).worker.set_wrap(uct_wrap);

    // Absolute-time schedule so the two loops cannot drift: in cycle i the
    // sender fires at i*10us, the message lands ~1.5us later, and the
    // receiver enters MPI_Wait at i*10us + 5us -- always a successful
    // first-pass wait.
    auto until = [](Testbed& t, TimePs target) -> sim::Task<void> {
      if (target > t.sim().now()) co_await t.sim().delay(target - t.sim().now());
    };
    tb.sim().spawn([](Testbed& t, MpiStack& st, auto sync) -> sim::Task<void> {
      for (int i = 0; i < kIters; ++i) {
        co_await sync(t, kPeriod * i);
        (void)co_await st.mpi().isend(8);
        // Keep the sender's CQ drained so the TxQ never saturates.
        co_await st.ucp().progress();
        co_await st.node().core.flush();
      }
    }(tb, tx, until));
    tb.sim().spawn([](Testbed& t, MpiStack& st, auto sync) -> sim::Task<void> {
      for (int i = 0; i < kIters; ++i) {
        hlp::Request* r = st.mpi().irecv(8).value();
        co_await st.node().core.flush();
        co_await sync(t, kPeriod * i + 5_us);
        co_await st.mpi().wait(r);
      }
    }(tb, rx, until));
    tb.sim().run();
    return tb.node(1).profiler.mean_ns(region);
  };

  const double wait_total = run_rx("MPI_Wait", "", "", "MPI_Wait");
  const double ucp_prog =
      run_rx("", "ucp_worker_progress", "", "ucp_worker_progress");
  const double uct_prog =
      run_rx("", "", "uct_worker_progress", "uct_worker_progress");
  out.mpich_cb = run_rx("MPICH callback", "", "", "MPICH callback");
  out.ucp_cb = run_rx("", "UCP callback", "", "UCP callback");
  out.mpich_after =
      run_rx("MPICH after progress", "", "", "MPICH after progress");
  // §5: layer time = upper total - lower total + upper's callback.
  out.mpich_wait = wait_total - ucp_prog + out.mpich_cb;
  out.ucp_wait = ucp_prog - uct_prog + out.ucp_cb;

  // Isend split (dedicated runs, sender side).
  auto run_tx = [&](const std::string& wrap, const std::string& region) {
    Testbed tb(scenario::presets::thunderx2_cx4());
    MpiStack tx(tb, 0);
    tb.node(1).nic.post_receives(kIters + 8);
    tx.mpi().set_wrap(wrap);
    tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
      std::vector<hlp::Request*> reqs;
      for (int i = 0; i < kIters; ++i) {
        reqs.push_back((co_await st.mpi().isend(8)).value());
        if (i % 32 == 31) {
          co_await st.mpi().waitall(reqs);
          reqs.clear();
          // Drain CQEs so no isend in the measured stream hits a busy
          // post (which would contaminate the MPI_Isend mean).
          co_await st.ucp().progress();
        }
      }
      co_await st.mpi().waitall(reqs);
    }(tx));
    tb.sim().run();
    return tb.node(0).profiler.mean_ns(region);
  };
  const double isend_total = run_tx("MPI_Isend", "MPI_Isend");
  const double ucp_send = run_tx("ucp_tag_send_nb", "ucp_tag_send_nb");

  // uct share of the send path: measured in the LLP run (LLP_post).
  Testbed tb(scenario::presets::deterministic());
  const double llp_post =
      core::ComponentTable::from_config(tb.config()).llp_post();
  out.mpich_isend = isend_total - ucp_send;
  out.ucp_isend = ucp_send - llp_post;
  return out;
}

}  // namespace

int main() {
  bbench::header("bench_table1 -- measured times of various components",
                 "Table 1 (plus the §4.3/§5 measurement methodology)");

  const auto paper = bb::core::ComponentTable::paper();
  const auto config = bb::core::ComponentTable::from_config(
      bb::scenario::presets::thunderx2_cx4());

  std::printf("Measuring LLP components (profiler wraps)...\n");
  const LlpMeasurement llp = measure_llp();
  std::printf("Measuring I/O + network components (analyzer traces)...\n");
  const IoMeasurement io = measure_io();
  std::printf("Measuring HLP components (layer subtraction)...\n\n");
  const HlpMeasurement hlp = measure_hlp();

  auto measured = config;
  measured.md_setup = llp.md_setup;
  measured.barrier_md = llp.barrier_md;
  measured.barrier_dbc = llp.barrier_dbc;
  measured.pio_copy = llp.pio_copy;
  measured.llp_post_misc = llp.misc;
  measured.llp_prog = llp.prog;
  measured.busy_post = llp.busy;
  measured.pcie = io.pcie;
  measured.wire = io.wire;
  measured.switch_lat = io.switch_lat;
  measured.rc_to_mem_8b = io.rc_to_mem_8b;
  measured.mpich_isend = hlp.mpich_isend;
  measured.ucp_isend = hlp.ucp_isend;
  measured.mpich_rx_cb = hlp.mpich_cb;
  measured.ucp_rx_cb = hlp.ucp_cb;
  measured.mpich_after_progress = hlp.mpich_after;
  measured.mpich_wait_total = hlp.mpich_wait;
  measured.ucp_wait_total = hlp.ucp_wait;

  std::printf("%s\n", paper.render(&measured, "paper", "measured").c_str());
  std::printf("(profiled LLP_post total, dedicated run: %.2f ns)\n\n",
              llp.total);

  bbench::Validator v;
  v.within("MD setup", llp.md_setup, paper.md_setup, 0.05);
  v.within("Barrier for MD", llp.barrier_md, paper.barrier_md, 0.05);
  v.within("Barrier for DBC", llp.barrier_dbc, paper.barrier_dbc, 0.05);
  v.within("PIO copy", llp.pio_copy, paper.pio_copy, 0.05);
  v.within("LLP_post misc", llp.misc, paper.llp_post_misc, 0.06);
  v.within("LLP_post total", llp.total, paper.llp_post(), 0.05);
  v.within("LLP_prog", llp.prog, paper.llp_prog, 0.05);
  v.within("Busy post", llp.busy, paper.busy_post, 0.12);
  v.within("PCIe", io.pcie, paper.pcie, 0.03);
  v.within("Switch", io.switch_lat, paper.switch_lat, 0.06);
  // Wire carries the methodology's NIC-processing contamination.
  v.within("Wire (methodology)", io.wire, paper.wire, 0.15);
  v.within("RC-to-MEM(8B)", io.rc_to_mem_8b, paper.rc_to_mem_8b, 0.15);
  v.within("MPI_Isend in MPICH", hlp.mpich_isend, paper.mpich_isend, 0.12);
  // 2.19 ns is below the run-to-run noise of a subtracted mean; check
  // absolutely.
  v.is_true("MPI_Isend in UCP (within 2.5 ns)",
            std::abs(hlp.ucp_isend - paper.ucp_isend) < 2.5);
  v.within("MPICH rx callback", hlp.mpich_cb, paper.mpich_rx_cb, 0.06);
  v.within("UCP rx callback", hlp.ucp_cb, paper.ucp_rx_cb, 0.05);
  v.within("MPICH after progress", hlp.mpich_after,
           paper.mpich_after_progress, 0.06);
  v.within("MPI_Wait in MPICH", hlp.mpich_wait, paper.mpich_wait_total, 0.06);
  v.within("MPI_Wait in UCP", hlp.ucp_wait, paper.ucp_wait_total, 0.06);
  return v.finish();
}
