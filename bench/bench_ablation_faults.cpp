// Ablation: fault injection & recovery (docs/FAULTS.md). Sweeps a BER-style
// fault rate across the PCIe links of both nodes and reports its cost on
// the paper's two primary microbenchmarks: am_lat latency (§4.3) and the
// put_bw message-rate loop (§4.2). Three properties are validated:
//
//  1. rate -> 0 reproduces the error-free numbers bit-for-bit (event
//     count, final simulated time, analyzer-trace checksum);
//  2. conservation: every injected fault is matched by a recovery action,
//     replay buffers drain to empty, and each link delivers exactly the
//     TLPs it accepted (no silent loss, no duplicates, no hangs);
//  3. the terminal path: a TLP that can never pass its link is forwarded
//     poisoned and retired with a completion-with-error at the endpoint.
//
// A second sweep repeats the exercise one layer up: wire-level packet
// loss on the interconnect fabric, recovered by the NIC's RC transport
// (PSN/ACK/NAK/retry-timer go-back-N, docs/TRANSPORT.md) instead of the
// PCIe data-link replay. The same three properties hold there: loss -> 0
// bit-identity, packet conservation (sent + duplicated == delivered +
// dropped + corrupted, all send queues drained), and bounded recovery.
//
// `--smoke` shrinks every iteration count for CI; `--jobs N` shards the
// sweeps without changing any printed number.

#include <cstdint>
#include <cstdio>
#include <tuple>

#include "benchlib/am_lat.hpp"
#include "benchlib/put_bw.hpp"
#include "exec/sweep.hpp"
#include "fault/fault.hpp"
#include "pcie/trace.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

namespace {

// FNV-1a over the analyzer trace (the determinism-golden mix).
std::uint64_t trace_checksum(const pcie::Trace& tr) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& r : tr.records()) {
    mix(static_cast<std::uint64_t>(r.t.ps()));
    mix(static_cast<std::uint64_t>(r.dir));
    mix(static_cast<std::uint64_t>(r.is_dllp));
    mix(static_cast<std::uint64_t>(r.tlp_type));
    mix(static_cast<std::uint64_t>(r.dllp_type));
    mix(r.bytes);
    mix(r.tag);
    mix(r.msg_id);
    for (char c : r.kind) {
      mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
  }
  return h;
}

// The sweep perturbs every modelled fault class, not just TLP corruption:
// drops exercise the replay timer, Ack losses the duplicate filter, and
// UpdateFC losses the credit re-emission path.
fault::FaultConfig storm(double ber) {
  fault::FaultConfig f;
  f.tlp_corrupt_prob = ber;
  f.tlp_drop_prob = ber / 2.0;
  f.ack_drop_prob = ber / 2.0;
  f.updatefc_drop_prob = ber / 2.0;
  return f;
}

// Iteration counts, shrunk by --smoke so CI can afford the binary.
struct Scale {
  std::uint64_t am_iters = 300;
  std::uint64_t am_warmup = 30;
  std::uint64_t put_msgs = 2000;
  std::uint64_t put_warmup = 200;
};
Scale g_scale;  // set once in main before any sweep is launched

struct SweepRow {
  double ber = 0.0;
  double lat_ns = 0.0;
  double rate_mps = 0.0;
  fault::FaultStats fs;
  bool conserved = true;
};

// Conservation at quiescence: replay buffers empty and exactly-once,
// in-order delivery on both links.
bool conserved(scenario::Testbed& tb) {
  bool ok = true;
  for (int n = 0; n < 2; ++n) {
    ok = ok && tb.node(n).link.replay_buffer_depth() == 0;
    ok = ok && tb.node(n).link.tlps_delivered() == tb.node(n).link.tlps_accepted();
  }
  return ok;
}

SweepRow run_at(double ber) {
  SweepRow row;
  row.ber = ber;
  const scenario::SystemConfig cfg =
      scenario::presets::thunderx2_cx4().with(scenario::overlays::faults(storm(ber)));
  {
    scenario::Testbed tb(cfg);
    bench::AmLatBenchmark b(tb, {.iterations = g_scale.am_iters,
                                 .warmup = g_scale.am_warmup,
                                 .capture_trace = false});
    row.lat_ns = b.run().adjusted_mean_ns;
    row.fs.merge(tb.fault_stats());
    row.conserved = conserved(tb);
  }
  {
    scenario::Testbed tb(cfg);
    bench::PutBwBenchmark b(tb, {.messages = g_scale.put_msgs,
                                 .warmup = g_scale.put_warmup,
                                 .capture_trace = false});
    row.rate_mps = b.run().message_rate() / 1e6;
    row.fs.merge(tb.fault_stats());
    row.conserved = row.conserved && conserved(tb);
  }
  return row;
}

// -- wire-loss sweep (RC transport layer) ----------------------------------

struct WireRow {
  double loss = 0.0;
  double lat_ns = 0.0;
  double rate_mps = 0.0;
  net::TransportStats ts;
  bool conserved = true;
};

// Conservation at quiescence, one layer above `conserved()`: every packet
// put on the wire is accounted for by exactly one fate, and no NIC holds
// an unacknowledged message (all send queues drained).
bool wire_conserved(scenario::Testbed& tb) {
  const net::TransportStats s = tb.net_stats();
  bool ok = s.packets_sent + s.packets_duplicated ==
            s.packets_delivered + s.packets_dropped + s.packets_corrupted;
  for (int n = 0; n < 2; ++n) {
    ok = ok && tb.node(n).nic.tx_unacked() == 0;
  }
  return ok;
}

WireRow wire_run_at(double loss) {
  WireRow row;
  row.loss = loss;
  const scenario::SystemConfig cfg = scenario::presets::thunderx2_cx4().with(
      scenario::overlays::wire_loss(loss));
  {
    scenario::Testbed tb(cfg);
    bench::AmLatBenchmark b(tb, {.iterations = g_scale.am_iters,
                                 .warmup = g_scale.am_warmup,
                                 .capture_trace = false});
    row.lat_ns = b.run().adjusted_mean_ns;
    row.ts.merge(tb.net_stats());
    row.conserved = wire_conserved(tb);
  }
  {
    scenario::Testbed tb(cfg);
    bench::PutBwBenchmark b(tb, {.messages = g_scale.put_msgs,
                                 .warmup = g_scale.put_warmup,
                                 .capture_trace = false});
    row.rate_mps = b.run().message_rate() / 1e6;
    row.ts.merge(tb.net_stats());
    row.conserved = row.conserved && wire_conserved(tb);
  }
  return row;
}

std::tuple<std::uint64_t, std::int64_t, std::uint64_t> fingerprint(
    const scenario::SystemConfig& cfg) {
  scenario::Testbed tb(cfg);
  bench::AmLatBenchmark b(
      tb, {.iterations = 200, .warmup = 20, .capture_trace = true});
  (void)b.run();
  return {tb.sim().events_processed(), tb.sim().now().ps(),
          trace_checksum(tb.analyzer().trace())};
}

}  // namespace

int main(int argc, char** argv) {
  bbench::header("bench_ablation_faults -- fault-rate sweep & recovery audit",
                 "fault/recovery extension (docs/FAULTS.md; beyond the paper)");
  bbench::Validator v;
  const auto opts = bbench::exec_options(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_scale = Scale{.am_iters = 60, .am_warmup = 10, .put_msgs = 400,
                      .put_warmup = 40};
    }
  }

  // -- 1. rate -> 0 is bit-identical to the error-free baseline ----------
  const auto fp = exec::run_sweep(
      exec::sweep<bool>({false, true}),
      [](bool zero_rate, exec::Job&) {
        auto cfg = scenario::presets::thunderx2_cx4();
        return fingerprint(zero_rate ? cfg.with(scenario::overlays::faults(0.0))
                                     : cfg);
      },
      opts);
  bbench::note_exec("fingerprint pair", fp);
  const auto& base = fp.values[0];
  const auto& zero = fp.values[1];
  std::printf("rate->0 fingerprint: events %llu / %llu, trace %016llx / %016llx\n\n",
              static_cast<unsigned long long>(std::get<0>(base)),
              static_cast<unsigned long long>(std::get<0>(zero)),
              static_cast<unsigned long long>(std::get<2>(base)),
              static_cast<unsigned long long>(std::get<2>(zero)));
  v.is_true("fault-rate->0 reproduces the error-free run bit-for-bit",
            base == zero);

  // -- 2. BER sweep: latency + message rate vs fault rate ----------------
  std::printf("%-10s %12s %12s %10s %9s %9s %9s %9s\n", "ber", "am_lat ns",
              "put_bw M/s", "injected", "replays", "fc-reem", "dup-drop",
              "poisoned");
  const auto rows = exec::run_sweep(
      exec::sweep<double>({0.0, 1e-4, 1e-3, 1e-2}),
      [](double ber, exec::Job&) { return run_at(ber); }, opts);
  bbench::note_exec("ber sweep", rows);
  SweepRow at0, at_max;
  for (const SweepRow& r : rows.values) {
    const double ber = r.ber;
    std::printf("%-10.0e %12.2f %12.2f %10llu %9llu %9llu %9llu %9llu\n",
                r.ber, r.lat_ns, r.rate_mps,
                static_cast<unsigned long long>(r.fs.injected()),
                static_cast<unsigned long long>(r.fs.replays),
                static_cast<unsigned long long>(r.fs.fc_reemissions),
                static_cast<unsigned long long>(r.fs.duplicates_dropped),
                static_cast<unsigned long long>(r.fs.poisoned_tlps));
    if (ber == 0.0) at0 = r;
    if (ber == 1e-2) at_max = r;

    char tag[32];
    std::snprintf(tag, sizeof(tag), "ber %.0e", ber);
    v.is_true(std::string(tag) + ": replay buffers drained, links delivered "
                                 "exactly what they accepted",
              r.conserved);
    if (ber == 0.0) {
      v.is_true("ber 0: nothing injected", r.fs.injected() == 0);
    } else {
      // At --smoke scale the low rates may legitimately inject nothing;
      // whatever was injected must have been recovered.
      v.is_true(std::string(tag) + ": every injected fault recovered",
                r.fs.injected() == 0 || r.fs.recovered() > 0);
      // Lost UpdateFCs are each re-emitted exactly once (cumulative
      // counters make the re-emission idempotent, never compounding).
      v.is_true(std::string(tag) + ": every lost UpdateFC re-emitted",
                r.fs.fc_reemissions == r.fs.updatefc_dropped);
    }
  }
  v.is_true("ber 1e-2: the storm actually injected faults",
            at_max.fs.injected() > 0);
  v.is_true("faults cost latency (am_lat at ber 1e-2 slower than error-free)",
            at_max.lat_ns > at0.lat_ns);

  // -- 3. terminal path: exhausted replay budget -> error CQE ------------
  {
    fault::FaultConfig f;
    f.max_replays = 1;
    f.scheduled.push_back(
        {fault::OneShot::Kind::kKillTlp, fault::LinkDir::kDownstream, 1});
    scenario::Testbed tb(scenario::presets::thunderx2_cx4().with(f));
    llp::Endpoint& ep = tb.add_endpoint(0);
    auto driver = [](scenario::Testbed& t,
                     llp::Endpoint& e) -> sim::Task<void> {
      (void)co_await e.am_short(8);
      while (e.tx_errors() == 0 && t.sim().now().to_ns() < 1e6) {
        (void)co_await t.node(0).worker.progress();
      }
    };
    tb.sim().spawn(driver(tb, ep), "error-cqe-driver");
    tb.sim().run();
    std::printf("\n%s\n", tb.fault_report().c_str());
    const fault::FaultStats fs = tb.fault_stats();
    v.is_true("killed TLP forwarded poisoned and retired as an error CQE",
              ep.tx_errors() == 1 && fs.poisoned_tlps == 1 &&
                  fs.error_cqes == 1 && fs.poisoned_delivered == 0);
    v.is_true("no op left hanging after the error", ep.outstanding() == 0);
  }

  // -- 4. wire-loss sweep: the RC transport over a lossy fabric ----------
  std::printf("\n%-10s %12s %12s %9s %9s %9s %9s %9s\n", "wire-loss",
              "am_lat ns", "put_bw M/s", "dropped", "retrans", "naks",
              "timer", "qp-err");
  const auto wrows = exec::run_sweep(
      exec::sweep<double>({0.0, 1e-4, 1e-3, 1e-2}),
      [](double loss, exec::Job&) { return wire_run_at(loss); }, opts);
  bbench::note_exec("wire-loss sweep", wrows);
  WireRow w0, w_max;
  for (const WireRow& r : wrows.values) {
    std::printf("%-10.0e %12.2f %12.2f %9llu %9llu %9llu %9llu %9llu\n",
                r.loss, r.lat_ns, r.rate_mps,
                static_cast<unsigned long long>(r.ts.packets_dropped),
                static_cast<unsigned long long>(r.ts.retransmits),
                static_cast<unsigned long long>(r.ts.naks_sent),
                static_cast<unsigned long long>(r.ts.retry_timer_firings),
                static_cast<unsigned long long>(r.ts.qp_errors));
    if (r.loss == 0.0) w0 = r;
    if (r.loss == 1e-2) w_max = r;

    char tag[32];
    std::snprintf(tag, sizeof(tag), "wire-loss %.0e", r.loss);
    v.is_true(std::string(tag) + ": packet conservation (sent + dup == "
                                 "delivered + dropped + corrupted) and all "
                                 "send queues drained",
              r.conserved);
    v.is_true(std::string(tag) + ": retry budget never exhausted",
              r.ts.qp_errors == 0);
    if (r.loss == 0.0) {
      v.is_true("wire-loss 0: nothing dropped, nothing retransmitted",
                r.ts.packets_dropped == 0 && r.ts.retransmits == 0);
    }
  }
  v.is_true("wire loss actually bites at 1e-2 (drops and retransmissions)",
            w_max.ts.packets_dropped > 0 && w_max.ts.retransmits > 0);
  v.is_true("wire loss costs latency (am_lat at 1e-2 slower than lossless)",
            w_max.lat_ns > w0.lat_ns);

  // Wire-loss -> 0 bit-identity: the RC bookkeeping (PSNs, unacked
  // queues, coalesced-ACK state) must be pure state -- zero extra events.
  const auto wfp = exec::run_sweep(
      exec::sweep<bool>({false, true}),
      [](bool zero_rate, exec::Job&) {
        auto cfg = scenario::presets::thunderx2_cx4();
        return fingerprint(
            zero_rate ? cfg.with(scenario::overlays::wire_loss(0.0)) : cfg);
      },
      opts);
  bbench::note_exec("wire fingerprint pair", wfp);
  v.is_true("wire-loss->0 reproduces the error-free run bit-for-bit",
            wfp.values[0] == wfp.values[1]);

  return v.finish();
}
