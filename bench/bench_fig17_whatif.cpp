// Reproduces Fig. 17 (a-d): the simulated-optimization what-if analysis.
//
// Beyond printing the paper's four panels from the analytical engine,
// this bench *executes* three of §7's optimizations as real configuration
// changes in the simulator (fast device memory, integrated NIC, Gen-Z
// switch) and compares the predicted speedups against the speedups
// actually observed -- the paper's note that a simulator would "result in
// exactly the same linear speedups" is checked rather than assumed.

#include <cstdio>

#include "benchlib/osu.hpp"
#include "benchlib/put_bw.hpp"
#include "core/whatif.hpp"
#include "exec/sweep.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

namespace {

double observed_injection_ns(const scenario::SystemConfig& cfg) {
  // Fig. 17a's base is the *overall* injection overhead (Eq. 2), so the
  // simulated counterpart is the OSU message-rate loop, not put_bw.
  scenario::Testbed tb(cfg);
  bench::OsuMessageRate b(tb, {.windows = 250, .warmup_windows = 25});
  return b.run().cpu_per_msg_ns;
}

double observed_latency_ns(const scenario::SystemConfig& cfg) {
  scenario::Testbed tb(cfg);
  bench::OsuLatency b(tb, {.iterations = 1500, .warmup = 150});
  return b.run().adjusted_mean_ns;
}

}  // namespace

int main(int argc, char** argv) {
  bbench::header("bench_fig17_whatif -- simulated optimizations",
                 "Fig. 17 a-d + the §7 spot checks");

  const auto table = core::ComponentTable::from_config(
      scenario::presets::thunderx2_cx4());
  const core::WhatIf w(table);

  std::printf("%s\n", w.injection_cpu().render().c_str());
  std::printf("%s\n", w.latency_cpu().render().c_str());
  std::printf("%s\n", w.latency_io().render().c_str());
  std::printf("%s\n", w.latency_network().render().c_str());

  std::printf("§7 spot checks (analytical):\n");
  std::printf("  PIO -> 15 ns:       injection +%.2f%%, latency +%.2f%%\n",
              w.pio_injection_speedup() * 100, w.pio_latency_speedup() * 100);
  std::printf("  HLP -20%%:           injection +%.2f%%\n",
              w.hlp_injection_speedup(0.2) * 100);
  std::printf("  LLP -20%%:           injection +%.2f%%\n",
              w.llp_injection_speedup(0.2) * 100);
  std::printf("  I/O -50%% (SoC NIC): latency  +%.2f%%\n",
              w.integrated_nic_latency_speedup(0.5) * 100);
  std::printf("  Switch -> 30 ns:    latency  +%.2f%%\n\n",
              w.switch_latency_speedup(30.0) * 100);

  // --- Execute three optimizations in the simulator --------------------
  std::printf("running baseline + 3 optimized configurations...\n");
  // Five independent simulations; 0/2 measure injection, the rest latency.
  const auto res = exec::run_sweep(
      exec::sweep<int>({0, 1, 2, 3, 4}),
      [](int which, exec::Job&) {
        switch (which) {
          case 0:
            return observed_injection_ns(scenario::presets::thunderx2_cx4());
          case 1:
            return observed_latency_ns(scenario::presets::thunderx2_cx4());
          case 2:
            return observed_injection_ns(
                scenario::presets::fast_device_memory(15.0));
          case 3:
            return observed_latency_ns(scenario::presets::integrated_nic(0.5));
          default:
            return observed_latency_ns(scenario::presets::genz_switch(30.0));
        }
      },
      bbench::exec_options(argc, argv));
  bbench::note_exec("what-if configurations", res);
  const double base_inj = res.values[0];
  const double base_lat = res.values[1];
  const double pio_inj = res.values[2];
  const double soc_lat = res.values[3];
  const double genz_lat = res.values[4];

  const double sim_pio_inj = (base_inj - pio_inj) / base_inj;
  const double sim_soc_lat = (base_lat - soc_lat) / base_lat;
  const double sim_genz_lat = (base_lat - genz_lat) / base_lat;

  std::printf("\n%-28s %12s %12s\n", "optimization", "predicted", "simulated");
  std::printf("%-28s %11.2f%% %11.2f%%\n", "PIO->15ns (injection)",
              w.pio_injection_speedup() * 100, sim_pio_inj * 100);
  std::printf("%-28s %11.2f%% %11.2f%%\n", "I/O -50% (latency)",
              w.integrated_nic_latency_speedup(0.5) * 100, sim_soc_lat * 100);
  std::printf("%-28s %11.2f%% %11.2f%%\n", "switch->30ns (latency)",
              w.switch_latency_speedup(30.0) * 100, sim_genz_lat * 100);

  bbench::Validator v;
  v.within("PIO spot check (29.9% injection)",
           w.pio_injection_speedup() * 100, 29.9, 0.02);
  v.is_true("PIO injection speedup > 25% (paper)",
            w.pio_injection_speedup() > 0.25);
  v.is_true("PIO latency speedup > 5% (paper)", w.pio_latency_speedup() > 0.05);
  v.within("HLP -20% => 6.44%", w.hlp_injection_speedup(0.2) * 100, 6.44, 0.01);
  v.within("LLP -20% => 13.33%", w.llp_injection_speedup(0.2) * 100, 13.33,
           0.01);
  v.is_true("I/O -50% => >15% latency (paper)",
            w.integrated_nic_latency_speedup(0.5) > 0.15);
  v.within("switch->30ns ~ 5.5% latency", w.switch_latency_speedup(30.0) * 100,
           5.45, 0.05);
  // Simulated-vs-predicted agreement (within 2.5 percentage points; the
  // simulator carries real-loop effects the linear model does not).
  v.is_true("sim PIO injection within 2.5pp of prediction",
            std::abs(sim_pio_inj - w.pio_injection_speedup()) < 0.025);
  v.is_true("sim integrated-NIC latency within 2.5pp of prediction",
            std::abs(sim_soc_lat - w.integrated_nic_latency_speedup(0.5)) <
                0.025);
  v.is_true("sim Gen-Z switch latency within 2.5pp of prediction",
            std::abs(sim_genz_lat - w.switch_latency_speedup(30.0)) < 0.025);
  return v.finish();
}
