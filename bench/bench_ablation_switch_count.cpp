// Ablation: switch-count sweep. Each store-and-forward switch adds its
// latency to the network component (§4.3 measures one switch at 108 ns
// by differencing); this bench verifies latency is affine in hop count
// with slope = the configured switch latency.

#include <cstdio>

#include "benchlib/am_lat.hpp"
#include "exec/sweep.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main(int argc, char** argv) {
  bbench::header("bench_ablation_switch_count -- switch-count sweep",
                 "§4.3's switch-differencing methodology, generalized");

  const auto res = exec::run_sweep(
      exec::sweep<int>({0, 1, 2, 3}),
      [](int s, exec::Job&) {
        auto cfg = scenario::presets::thunderx2_cx4();
        cfg.net.num_switches = s;
        scenario::Testbed tb(cfg);
        bench::AmLatBenchmark b(tb, {.iterations = 1200, .warmup = 120});
        return b.run().adjusted_mean_ns;
      },
      bbench::exec_options(argc, argv));
  bbench::note_exec("switch-count sweep", res);

  std::printf("%-10s %18s\n", "switches", "latency (ns)");
  const std::vector<double>& lat = res.values;
  for (int s = 0; s <= 3; ++s) {
    std::printf("%-10d %18.2f\n", s, lat[s]);
  }

  std::printf("\nper-switch deltas: %.2f, %.2f, %.2f ns (config: 108)\n",
              lat[1] - lat[0], lat[2] - lat[1], lat[3] - lat[2]);

  bbench::Validator v;
  v.within("0->1 switch delta = 108 ns", lat[1] - lat[0], 108.0, 0.05);
  v.within("1->2 switch delta = 108 ns", lat[2] - lat[1], 108.0, 0.05);
  v.within("2->3 switch delta = 108 ns", lat[3] - lat[2], 108.0, 0.05);
  return v.finish();
}
