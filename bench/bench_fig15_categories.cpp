// Reproduces Fig. 15: the high-level breakdown of the end-to-end latency
// into CPU / I/O / Network, with per-category splits, plus §6's
// Insight 2 (no category dominates; 72.4% of the time is on-node).

#include <cstdio>

#include "core/models.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main() {
  bbench::header("bench_fig15_categories -- CPU / I/O / Network breakdown",
                 "Fig. 15 (§6, Insight 2)");

  const auto table = core::ComponentTable::from_config(
      scenario::presets::thunderx2_cx4());
  const auto cats = core::LatencyModel(table).fig15_categories();

  std::printf("%s\n", render_stacked_bar("End-to-end latency", cats.top).c_str());
  std::printf("%s\n", render_stacked_bar("CPU", cats.cpu).c_str());
  std::printf("%s\n", render_stacked_bar("I/O", cats.io).c_str());
  std::printf("%s\n", render_stacked_bar("Network", cats.network).c_str());

  auto pct = [](const std::vector<BarSegment>& segs, std::size_t i) {
    double total = 0;
    for (const auto& s : segs) total += s.value;
    return segs[i].value / total * 100.0;
  };

  bbench::Validator v;
  v.within("CPU share", pct(cats.top, 0), 35.20, 0.01);
  v.within("I/O share", pct(cats.top, 1), 37.20, 0.01);
  v.within("Network share", pct(cats.top, 2), 27.60, 0.01);
  v.within("CPU: LLP share", pct(cats.cpu, 0), 48.55, 0.01);
  v.within("CPU: HLP share", pct(cats.cpu, 1), 51.45, 0.01);
  v.within("I/O: PCIe share", pct(cats.io, 0), 53.30, 0.01);
  v.within("I/O: RC-to-MEM share", pct(cats.io, 1), 46.70, 0.01);
  v.within("Network: Wire share", pct(cats.network, 0), 71.79, 0.01);
  v.within("Network: Switch share", pct(cats.network, 1), 28.21, 0.01);
  v.within("Insight 2: on-node share = 72.4%",
           pct(cats.top, 0) + pct(cats.top, 1), 72.40, 0.01);
  v.is_true("no category dominates (<50% each)",
            pct(cats.top, 0) < 50 && pct(cats.top, 1) < 50 &&
                pct(cats.top, 2) < 50);
  return v.finish();
}
