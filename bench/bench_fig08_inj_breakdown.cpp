// Reproduces Fig. 8: the percentage breakdown of the injection overhead
// with the LLP (LLP_post / LLP_prog / Misc), model and simulation side
// by side.

#include <cstdio>

#include "benchlib/put_bw.hpp"
#include "core/models.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main() {
  bbench::header("bench_fig08_inj_breakdown -- injection overhead with LLP",
                 "Fig. 8 (§4.2)");

  const auto table = core::ComponentTable::from_config(
      scenario::presets::thunderx2_cx4());
  const core::InjectionModel model(table);
  std::printf("%s\n",
              render_stacked_bar("model (Eq. 1 constituents)",
                                 model.fig8_breakdown())
                  .c_str());

  // The simulated counterpart: attribute the observed per-message time.
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  bench::PutBwBenchmark bench(tb, {.messages = 10000, .warmup = 1000});
  const auto res = bench.run();
  std::printf("observed per-message overhead: %.2f ns (model %.2f ns)\n\n",
              res.nic_deltas.summarize().mean, model.llp_injection_ns());

  auto segs = model.fig8_breakdown();
  double total = 0;
  for (const auto& s : segs) total += s.value;

  bbench::Validator v;
  v.within("LLP_post share", segs[0].value / total * 100.0, 61.18, 0.01);
  v.within("LLP_prog share", segs[1].value / total * 100.0, 21.49, 0.01);
  v.within("Misc share", segs[2].value / total * 100.0, 17.33, 0.01);
  v.is_true("LLP_post dominates injection (>60%)",
            segs[0].value / total > 0.6);
  return v.finish();
}
