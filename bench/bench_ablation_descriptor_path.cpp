// Ablation: PIO + inlining vs the classic DoorBell + DMA descriptor path
// (§2). The paper explains that PIO with inlining eliminates both DMA
// reads -- two PCIe round trips -- for small messages; this bench
// quantifies the gap on the simulated testbed.

#include <cstdio>

#include "benchlib/am_lat.hpp"
#include "exec/sweep.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

namespace {

struct PathResult {
  double latency_ns;
  std::uint64_t dma_reads;
};

PathResult run(bool pio, bool inline_payload) {
  auto cfg = scenario::presets::thunderx2_cx4();
  cfg.endpoint.use_pio = pio;
  cfg.endpoint.inline_payload = inline_payload;
  scenario::Testbed tb(cfg);
  bench::AmLatBenchmark b(tb, {.iterations = 1500, .warmup = 150});
  PathResult r;
  r.latency_ns = b.run().adjusted_mean_ns;
  r.dma_reads = tb.node(0).nic.dma_reads_issued();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bbench::header("bench_ablation_descriptor_path -- PIO+inline vs DoorBell+DMA",
                 "§2's descriptor-path discussion (design ablation)");

  struct Path {
    bool pio;
    bool inline_payload;
  };
  const auto res = exec::run_sweep(
      exec::sweep<Path>({{true, true}, {false, true}, {false, false}}),
      [](const Path& p, exec::Job&) { return run(p.pio, p.inline_payload); },
      bbench::exec_options(argc, argv));
  bbench::note_exec("descriptor-path ablation", res);

  const PathResult pio = res.values[0];
  const PathResult db_inline = res.values[1];
  const PathResult db_dma = res.values[2];

  std::printf("%-28s %14s %12s\n", "path", "latency (ns)", "DMA reads");
  std::printf("%-28s %14.2f %12llu\n", "PIO + inline", pio.latency_ns,
              static_cast<unsigned long long>(pio.dma_reads));
  std::printf("%-28s %14.2f %12llu\n", "DoorBell + inline MD",
              db_inline.latency_ns,
              static_cast<unsigned long long>(db_inline.dma_reads));
  std::printf("%-28s %14.2f %12llu\n", "DoorBell + MD + payload fetch",
              db_dma.latency_ns,
              static_cast<unsigned long long>(db_dma.dma_reads));

  const double one_rt = db_inline.latency_ns - pio.latency_ns;
  const double two_rt = db_dma.latency_ns - pio.latency_ns;
  std::printf("\nDMA-read penalty: +%.0f ns (one fetch), +%.0f ns (two)\n",
              one_rt, two_rt);

  bbench::Validator v;
  v.is_true("PIO path issues no DMA reads", pio.dma_reads == 0);
  v.is_true("DoorBell+inline issues ~1 DMA read per message",
            db_inline.dma_reads > 0);
  v.is_true("inline elides the payload fetch",
            db_dma.dma_reads > db_inline.dma_reads);
  v.is_true("each DMA read costs a PCIe round trip (>250 ns)",
            one_rt > 250.0 && two_rt > one_rt + 250.0);
  v.is_true("PIO is the fastest path", pio.latency_ns < db_inline.latency_ns);
  return v.finish();
}
