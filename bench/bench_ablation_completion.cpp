// Ablation: unsignalled-completion moderation (§6, [14]). Sweeps the
// signalling period c and reports the resulting per-message overhead of
// the MPI message-rate loop: at c = 1 every message pays an LLP_prog; at
// UCX's c = 64 the progress cost amortizes to under a nanosecond.

#include <cstdio>

#include "benchlib/osu.hpp"
#include "exec/sweep.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

namespace {
struct Point {
  double per_msg_ns;
  double cqe_per_msg;
};
}  // namespace

int main(int argc, char** argv) {
  bbench::header(
      "bench_ablation_completion -- unsignalled-completion period sweep",
      "§6's unsignalled-completions discussion (design ablation)");

  const auto sweep =
      exec::sweep<std::uint32_t>({1u, 2u, 4u, 8u, 16u, 32u, 64u});
  const auto res = exec::run_sweep(
      sweep,
      [](std::uint32_t c, exec::Job&) {
        scenario::Testbed tb(scenario::presets::thunderx2_cx4());
        bench::OsuMessageRate b(tb, {.windows = 150,
                                     .warmup_windows = 15,
                                     .signal_period = c});
        const auto r = b.run();
        return Point{r.cpu_per_msg_ns,
                     static_cast<double>(tb.node(0).nic.cqes_written()) /
                         static_cast<double>(tb.node(0).nic.messages_injected())};
      },
      bbench::exec_options(argc, argv));
  bbench::note_exec("completion-period sweep", res);

  std::printf("%-10s %18s %14s\n", "period c", "per-msg ns", "CQEs/msg");
  double at1 = 0, at64 = 0;
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const std::uint32_t c = sweep.points[i];
    std::printf("%-10u %18.2f %14.4f\n", c, res.values[i].per_msg_ns,
                res.values[i].cqe_per_msg);
    if (c == 1) at1 = res.values[i].per_msg_ns;
    if (c == 64) at64 = res.values[i].per_msg_ns;
  }

  std::printf("\nmoderation saves %.2f ns/msg (c=1 -> c=64)\n", at1 - at64);

  bbench::Validator v;
  v.is_true("per-message overhead decreases with moderation", at64 < at1);
  // One LLP_prog (61.63) re-appears per message at c=1 (minus the ~1 ns
  // amortized share at c=64).
  v.within("saving ~ one LLP_prog per message", at1 - at64, 61.63, 0.30);
  return v.finish();
}
