// Reproduces Fig. 13 and the §6 latency validation: the end-to-end
// latency breakdown (9 components, in nanoseconds) with the modelled
// 1387.02 ns within 4% of the observed OSU point-to-point latency
// (1336 ns).

#include <cstdio>

#include "benchlib/osu.hpp"
#include "core/models.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main() {
  bbench::header("bench_fig13_e2e_latency -- end-to-end latency breakdown",
                 "Fig. 13 + §6 validation (1387.02 vs 1336, within 4%)");

  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  bench::OsuLatency bench(tb, {.iterations = 4000, .warmup = 400});
  const bench::LatencyResult res = bench.run();

  const auto table = core::ComponentTable::from_config(tb.config());
  const core::LatencyModel model(table);
  const auto segs = model.fig13_breakdown();

  // The figure is a bar chart in nanoseconds; print both ns and shares.
  std::printf("%-16s %10s %8s\n", "component", "ns", "share");
  double total = 0;
  for (const auto& s : segs) total += s.value;
  for (const auto& s : segs) {
    std::printf("%-16s %10.2f %7.2f%%\n", s.label.c_str(), s.value,
                s.value / total * 100.0);
  }
  std::printf("%-16s %10.2f\n\n", "TOTAL (model)", total);
  std::printf("observed OSU latency (adjusted): %.2f ns (paper: 1336)\n\n",
              res.adjusted_mean_ns);

  auto share = [&](std::size_t i) { return segs[i].value / total * 100.0; };

  bbench::Validator v;
  v.within("model within 4% of observed", model.e2e_latency_ns(),
           res.adjusted_mean_ns, 0.04);
  v.within("modelled e2e latency = 1387.02", total, 1387.02, 0.001);
  v.within("HLP_post share", share(0), 1.91, 0.02);
  v.within("LLP_post share", share(1), 12.65, 0.01);
  v.within("TX PCIe share", share(2), 9.91, 0.01);
  v.within("Wire share", share(3), 19.81, 0.01);
  v.within("Switch share", share(4), 7.79, 0.01);
  v.within("RX PCIe share", share(5), 9.91, 0.01);
  v.within("RC-to-MEM share", share(6), 17.37, 0.01);
  v.within("LLP_prog share", share(7), 4.44, 0.01);
  v.within("HLP_rx_prog share", share(8), 16.20, 0.01);
  return v.finish();
}
