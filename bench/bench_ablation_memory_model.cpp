// Ablation: the weak-memory-model tax. §4.1 notes both store barriers in
// the post sequence exist only for aarch64's weak memory model; this
// bench runs the same machine with TSO (x86-like) ordering and
// quantifies the barriers' share of LLP_post, injection, and latency.

#include <cstdio>

#include "benchlib/am_lat.hpp"
#include "benchlib/put_bw.hpp"
#include "core/models.hpp"
#include "exec/sweep.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main(int argc, char** argv) {
  bbench::header("bench_ablation_memory_model -- weak ordering vs TSO",
                 "§4.1's barrier discussion (design ablation)");

  const auto arm = core::ComponentTable::from_config(
      scenario::presets::thunderx2_cx4());
  const auto tso = core::ComponentTable::from_config(
      scenario::presets::tso_cpu());

  std::printf("%-22s %12s %12s\n", "", "aarch64", "TSO");
  std::printf("%-22s %12.2f %12.2f\n", "LLP_post (ns)", arm.llp_post(),
              tso.llp_post());
  std::printf("%-22s %12.2f %12.2f\n", "Eq.1 injection (ns)",
              core::InjectionModel(arm).llp_injection_ns(),
              core::InjectionModel(tso).llp_injection_ns());
  std::printf("%-22s %12.2f %12.2f\n", "e2e latency (ns)",
              core::LatencyModel(arm).e2e_latency_ns(),
              core::LatencyModel(tso).e2e_latency_ns());

  // Execute both machines, one job each.
  const auto res = exec::run_sweep(
      exec::sweep<bool>({false, true}),
      [](bool use_tso, exec::Job&) {
        scenario::Testbed tb(use_tso ? scenario::presets::tso_cpu()
                                     : scenario::presets::thunderx2_cx4());
        bench::PutBwBenchmark b(tb, {.messages = 6000, .warmup = 600});
        return b.run().nic_deltas.summarize().mean;
      },
      bbench::exec_options(argc, argv));
  bbench::note_exec("memory-model pair", res);
  const double inj_arm = res.values[0];
  const double inj_tso = res.values[1];

  std::printf("%-22s %12.2f %12.2f   (simulated put_bw)\n",
              "observed injection", inj_arm, inj_tso);
  const double tax = arm.llp_post() - tso.llp_post();
  std::printf("\nmemory-model tax: %.2f ns per post (%.1f%% of LLP_post)\n",
              tax, tax / arm.llp_post() * 100.0);

  bbench::Validator v;
  v.within("tax = MD barrier + 75% of DBC step", tax,
           17.33 + 21.07 * 0.75, 0.001);
  v.is_true("TSO injects faster", inj_tso < inj_arm - 15.0);
  v.is_true("tax is substantial (>15% of LLP_post)",
            tax / arm.llp_post() > 0.15);
  return v.finish();
}
