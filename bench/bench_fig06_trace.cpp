// Reproduces Fig. 6: a snippet of the PCIe trace of downstream
// transactions during UCX's RDMA-write injection-rate benchmark
// (put_bw), filtered for downstream traffic -- 64-byte MWr TLPs, one per
// PIO post, whose timestamp deltas are the observed injection overhead.

#include <cstdio>

#include "benchlib/put_bw.hpp"
#include "core/analysis.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main() {
  bbench::header("bench_fig06_trace -- downstream PCIe trace of put_bw",
                 "Fig. 6 (§4.2)");

  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  bench::PutBwBenchmark bench(tb, {.messages = 3000, .warmup = 300});
  (void)bench.run();

  // Filter for downstream data transactions, as the figure does.
  pcie::Trace filtered;
  const auto downs = tb.analyzer().trace().downstream_writes(64);
  std::printf("downstream MWr transactions captured: %zu\n\n", downs.size());

  std::printf("      time (ns)  dir   pkt       bytes  kind       delta (ns)\n");
  for (std::size_t i = 1000; i < 1016 && i < downs.size(); ++i) {
    std::printf("%15.2f  %-4s  %-8s  %5u  %-9s  %10.2f\n",
                downs[i].t.to_ns(), "down", "MWr", downs[i].bytes,
                downs[i].kind.c_str(),
                (downs[i].t - downs[i - 1].t).to_ns());
  }

  bbench::Validator v;
  v.is_true("one downstream 64B MWr per post",
            downs.size() >= 3000, std::to_string(downs.size()) + " records");
  bool all_64 = true;
  for (const auto& r : downs) all_64 = all_64 && r.bytes == 64;
  v.is_true("every post is a 64-byte PIO chunk", all_64);
  const auto deltas = core::observed_injection(tb.analyzer().trace(), 300);
  v.within("mean delta near observed injection overhead",
           deltas.summarize().mean, 282.33, 0.05);
  return v.finish();
}
