// Extension bench: message-size sweep.
//
// The paper's introduction argues the breakdown matters for *small*
// messages: "the latency of sending a large message is driven by the
// time spent in the network components... the time spent in the
// software stack during the propagation of a small message is a
// considerable portion of the overall latency". This sweep runs am_lat
// across sizes and attributes each observed latency to CPU vs
// everything else, showing the crossover as payload serialization and
// memory-commit costs grow while the CPU share stays flat.

#include <cstdio>
#include <vector>

#include "benchlib/am_lat.hpp"
#include "core/component_table.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

namespace {

struct Point {
  std::uint32_t bytes;
  double latency_ns;
  double cpu_share;
};

Point run(std::uint32_t bytes) {
  auto cfg = scenario::presets::thunderx2_cx4();
  // Keep inlining for everything that fits a few PIO chunks; beyond the
  // inline limit the payload is fetched by DMA (the realistic path).
  scenario::Testbed tb(cfg);
  bench::AmLatBenchmark b(tb, {.iterations = 800,
                               .warmup = 80,
                               .bytes = bytes,
                               .capture_trace = false});
  Point p;
  p.bytes = bytes;
  p.latency_ns = b.run().adjusted_mean_ns;
  const auto t = core::ComponentTable::from_config(tb.config());
  // CPU share: post + poll work (independent of size up to chunking).
  const std::uint32_t chunks =
      bytes <= cfg.endpoint.max_inline_bytes
          ? (cfg.endpoint.md_overhead_bytes + bytes + 63) / 64
          : 1;
  const double cpu = t.llp_post() + (chunks - 1) * t.pio_copy + t.llp_prog;
  p.cpu_share = cpu / p.latency_ns;
  return p;
}

}  // namespace

int main() {
  bbench::header("bench_sweep_msgsize -- latency vs payload size",
                 "extension of §1's small- vs large-message argument");

  std::printf("%-10s %16s %12s\n", "bytes", "latency (ns)", "CPU share");
  std::vector<Point> pts;
  for (std::uint32_t b : {8u, 32u, 64u, 128u, 512u, 1024u, 4096u}) {
    pts.push_back(run(b));
    std::printf("%-10u %16.2f %11.1f%%\n", pts.back().bytes,
                pts.back().latency_ns, pts.back().cpu_share * 100.0);
  }

  bbench::Validator v;
  v.is_true("latency grows with size",
            pts.back().latency_ns > pts.front().latency_ns);
  v.is_true("CPU share shrinks with size",
            pts.back().cpu_share < pts.front().cpu_share);
  v.is_true("CPU is a considerable share for 8 B (>20%)",
            pts.front().cpu_share > 0.20);
  v.is_true("CPU share minor at 4 KiB (<15%)", pts.back().cpu_share < 0.15);
  return v.finish();
}
