// Extension bench: message-size sweep.
//
// The paper's introduction argues the breakdown matters for *small*
// messages: "the latency of sending a large message is driven by the
// time spent in the network components... the time spent in the
// software stack during the propagation of a small message is a
// considerable portion of the overall latency". This sweep runs am_lat
// across sizes and attributes each observed latency to CPU vs
// everything else, showing the crossover as payload serialization and
// memory-commit costs grow while the CPU share stays flat.

#include <cstdio>
#include <vector>

#include "benchlib/am_lat.hpp"
#include "core/component_table.hpp"
#include "exec/sweep.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

namespace {

struct Point {
  std::uint32_t bytes;
  double latency_ns;
  double cpu_share;
};

Point run(std::uint32_t bytes) {
  auto cfg = scenario::presets::thunderx2_cx4();
  // Keep inlining for everything that fits a few PIO chunks; beyond the
  // inline limit the payload is fetched by DMA (the realistic path).
  scenario::Testbed tb(cfg);
  bench::AmLatBenchmark b(tb, {.iterations = 800,
                               .warmup = 80,
                               .bytes = bytes,
                               .capture_trace = false});
  Point p;
  p.bytes = bytes;
  p.latency_ns = b.run().adjusted_mean_ns;
  const auto t = core::ComponentTable::from_config(tb.config());
  // CPU share: post + poll work (independent of size up to chunking).
  const std::uint32_t chunks =
      bytes <= cfg.endpoint.max_inline_bytes
          ? (cfg.endpoint.md_overhead_bytes + bytes + 63) / 64
          : 1;
  const double cpu = t.llp_post() + (chunks - 1) * t.pio_copy + t.llp_prog;
  p.cpu_share = cpu / p.latency_ns;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bbench::header("bench_sweep_msgsize -- latency vs payload size",
                 "extension of §1's small- vs large-message argument");

  // One job per payload size; collected in grid order, so the table is
  // identical at any --jobs value.
  const auto sweep = exec::sweep<std::uint32_t>(
      {8u, 32u, 64u, 128u, 512u, 1024u, 4096u});
  const auto res = exec::run_sweep(
      sweep, [](std::uint32_t bytes, exec::Job&) { return run(bytes); },
      bbench::exec_options(argc, argv));
  bbench::note_exec("msgsize sweep", res);

  std::printf("%-10s %16s %12s\n", "bytes", "latency (ns)", "CPU share");
  const std::vector<Point>& pts = res.values;
  for (const Point& p : pts) {
    std::printf("%-10u %16.2f %11.1f%%\n", p.bytes, p.latency_ns,
                p.cpu_share * 100.0);
  }

  bbench::Validator v;
  v.is_true("latency grows with size",
            pts.back().latency_ns > pts.front().latency_ns);
  v.is_true("CPU share shrinks with size",
            pts.back().cpu_share < pts.front().cpu_share);
  v.is_true("CPU is a considerable share for 8 B (>20%)",
            pts.front().cpu_share > 0.20);
  v.is_true("CPU share minor at 4 KiB (<15%)", pts.back().cpu_share < 0.15);
  return v.finish();
}
