// Google-benchmark microbenchmarks of the simulator substrate itself:
// event throughput of the DES core, coroutine switch cost, end-to-end
// messages simulated per second. These guard against performance
// regressions that would make the reproduction benches impractically
// slow.
//
// This binary also installs counting global `operator new`/`delete`
// hooks. The *Steady variants report `allocs_per_item`, which must stay
// at 0.000: the engine's contract is zero heap allocations per event in
// steady state (pooled nodes, recycled coroutine frames, cached queue
// buffers). `scripts/check_perf.sh` fails the build if it drifts.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "benchlib/am_lat.hpp"
#include "benchlib/osu_coll.hpp"
#include "benchlib/put_bw.hpp"
#include "exec/exec.hpp"
#include "scenario/cluster.hpp"
#include "scenario/testbed.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace bb;
using namespace bb::literals;

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.call_at(TimePs(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

void BM_CoroutineDelayLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    sim.spawn([](sim::Simulator& s, int iters) -> sim::Task<void> {
      for (int i = 0; i < iters; ++i) {
        co_await s.delay(1_ns);
      }
    }(sim, n));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineDelayLoop)->Arg(10000);

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel<int> a(sim), b(sim);
    const int n = static_cast<int>(state.range(0));
    sim.spawn([](sim::Channel<int>& rx, sim::Channel<int>& tx,
                 int iters) -> sim::Task<void> {
      for (int i = 0; i < iters; ++i) {
        tx.send(i);
        (void)co_await rx.receive();
      }
    }(a, b, n));
    sim.spawn([](sim::Channel<int>& rx, sim::Channel<int>& tx,
                 int iters) -> sim::Task<void> {
      for (int i = 0; i < iters; ++i) {
        const int v = co_await rx.receive();
        tx.send(v);
      }
    }(b, a, n));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_ChannelPingPong)->Arg(10000);

// Steady-state variants: one warm simulator, allocation counting. These
// isolate the dispatch hot path from first-use pool/queue growth; their
// `allocs_per_item` counter is the zero-allocation regression guard.

void BM_EventDispatchSteady(benchmark::State& state) {
  sim::Simulator sim;
  const int n = static_cast<int>(state.range(0));
  int sink = 0;
  const auto wave = [&] {
    for (int i = 0; i < n; ++i) {
      sim.call_at(sim.now() + TimePs(i + 1), [&sink] { ++sink; });
    }
    sim.run();
  };
  wave();  // warm: grow node pool, run queue, ready ring once
  const std::uint64_t before = g_heap_allocs.load();
  for (auto _ : state) {
    wave();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["allocs_per_item"] =
      static_cast<double>(g_heap_allocs.load() - before) /
      static_cast<double>(state.iterations() * n);
}
BENCHMARK(BM_EventDispatchSteady)->Arg(1000);

void BM_ChannelPingPongSteady(benchmark::State& state) {
  sim::Simulator sim;
  sim::Channel<int> a(sim), b(sim);
  const int n = static_cast<int>(state.range(0));
  auto pinger = [](sim::Channel<int>& rx, sim::Channel<int>& tx,
                   int iters) -> sim::Task<void> {
    for (int i = 0; i < iters; ++i) {
      tx.send(i);
      (void)co_await rx.receive();
    }
  };
  auto ponger = [](sim::Channel<int>& rx, sim::Channel<int>& tx,
                   int iters) -> sim::Task<void> {
    for (int i = 0; i < iters; ++i) {
      const int v = co_await rx.receive();
      tx.send(v);
    }
  };
  // Warm: channels, ring, and frame pool all reach steady capacity.
  sim.spawn(pinger(a, b, 64));
  sim.spawn(ponger(b, a, 64));
  sim.run();
  std::uint64_t measured_allocs = 0;
  for (auto _ : state) {
    state.PauseTiming();  // spawn bookkeeping is not the hot path
    sim.spawn(pinger(a, b, n));
    sim.spawn(ponger(b, a, n));
    const std::uint64_t before = g_heap_allocs.load();
    state.ResumeTiming();
    sim.run();
    measured_allocs += g_heap_allocs.load() - before;
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
  state.counters["allocs_per_item"] =
      static_cast<double>(measured_allocs) /
      static_cast<double>(state.iterations() * n * 2);
}
BENCHMARK(BM_ChannelPingPongSteady)->Arg(10000);

void BM_PutBwSimulationThroughput(benchmark::State& state) {
  for (auto _ : state) {
    scenario::Testbed tb(scenario::presets::thunderx2_cx4());
    bench::PutBwBenchmark bench(
        tb, {.messages = static_cast<std::uint64_t>(state.range(0)),
             .warmup = 100,
             .capture_trace = false});
    const auto res = bench.run();
    benchmark::DoNotOptimize(res.cpu_per_msg_ns);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("simulated messages");
}
BENCHMARK(BM_PutBwSimulationThroughput)->Arg(2000);

// Collective throughput: an 8-rank allreduce drives 8 MPI stacks, 56
// peer endpoints, and the coroutine schedules in bb::coll -- the densest
// event mix the repo produces. Items = simulated collective operations.
void BM_CollAllreduceThroughput(benchmark::State& state) {
  const auto iters = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    scenario::Cluster cl(scenario::presets::deterministic(), 8);
    coll::World world(cl);
    bench::OsuColl bench(world, bench::OsuColl::Kind::kAllreduce,
                         {.iterations = iters, .warmup = 2, .bytes = 256});
    const auto res = bench.run();
    benchmark::DoNotOptimize(res.iterations);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(iters));
  state.SetLabel("simulated allreduces");
}
BENCHMARK(BM_CollAllreduceThroughput)->Arg(20);

// bb::exec scaling: one fixed batch of 8 small am_lat simulations,
// sharded over 1, 2, and 4 pool threads. Items = jobs completed, so
// items/sec at Arg(4) over Arg(1) is the parallel-sweep speedup;
// check_perf.sh turns that ratio into a scaling-efficiency gate on
// machines with enough cores. Results stay bit-identical across the
// thread counts (asserted here too -- a perf bench that silently
// diverged would be worse than a slow one).
void BM_ExecParallelSweep(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  constexpr std::size_t kJobs = 8;
  double reference = 0.0;
  for (auto _ : state) {
    const auto res = exec::run(
        kJobs, /*seed=*/42,
        [](exec::Job& job) {
          scenario::Testbed tb(scenario::presets::deterministic());
          bench::AmLatBenchmark b(
              tb, {.iterations = 60, .warmup = 6, .capture_trace = false});
          job.note_events(tb.sim().events_processed());
          return b.run().adjusted_mean_ns;
        },
        {.jobs = jobs});
    if (reference == 0.0) reference = res.values[0];
    if (res.values[0] != reference || res.values[7] != reference) {
      state.SkipWithError("parallel sweep diverged from serial result");
      return;
    }
    benchmark::DoNotOptimize(res.values);
  }
  state.SetItemsProcessed(state.iterations() * kJobs);
  state.SetLabel("simulation jobs");
}
// UseRealTime: the pool's work happens on worker threads, so the default
// main-thread CPU clock would not see it.
BENCHMARK(BM_ExecParallelSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
