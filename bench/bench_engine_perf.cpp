// Google-benchmark microbenchmarks of the simulator substrate itself:
// event throughput of the DES core, coroutine switch cost, end-to-end
// messages simulated per second. These guard against performance
// regressions that would make the reproduction benches impractically
// slow.

#include <benchmark/benchmark.h>

#include "benchlib/put_bw.hpp"
#include "scenario/testbed.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace bb;
using namespace bb::literals;

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.call_at(TimePs(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

void BM_CoroutineDelayLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    sim.spawn([](sim::Simulator& s, int iters) -> sim::Task<void> {
      for (int i = 0; i < iters; ++i) {
        co_await s.delay(1_ns);
      }
    }(sim, n));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineDelayLoop)->Arg(10000);

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel<int> a(sim), b(sim);
    const int n = static_cast<int>(state.range(0));
    sim.spawn([](sim::Channel<int>& rx, sim::Channel<int>& tx,
                 int iters) -> sim::Task<void> {
      for (int i = 0; i < iters; ++i) {
        tx.send(i);
        (void)co_await rx.receive();
      }
    }(a, b, n));
    sim.spawn([](sim::Channel<int>& rx, sim::Channel<int>& tx,
                 int iters) -> sim::Task<void> {
      for (int i = 0; i < iters; ++i) {
        const int v = co_await rx.receive();
        tx.send(v);
      }
    }(b, a, n));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_ChannelPingPong)->Arg(10000);

void BM_PutBwSimulationThroughput(benchmark::State& state) {
  for (auto _ : state) {
    scenario::Testbed tb(scenario::presets::thunderx2_cx4());
    bench::PutBwBenchmark bench(
        tb, {.messages = static_cast<std::uint64_t>(state.range(0)),
             .warmup = 100,
             .capture_trace = false});
    const auto res = bench.run();
    benchmark::DoNotOptimize(res.cpu_per_msg_ns);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("simulated messages");
}
BENCHMARK(BM_PutBwSimulationThroughput)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
