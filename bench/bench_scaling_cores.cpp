// Extension bench: multi-core injection scaling.
//
// The paper's introduction motivates the small-message regime with
// fine-grained communication: at the limit of strong scaling every core
// communicates independently. This bench runs 1..8 cores, each driving
// its own QP with the put_bw loop through the *shared* PCIe link and
// NIC, and reports aggregate injection rate. On the paper's testbed the
// per-core CPU_time (~282 ns) dwarfs the link serialization (~11 ns per
// 64 B write) and the Root Complex pipelines posted writes, so scaling
// is near-linear at these core counts -- the condition under which the
// single-core breakdown stays representative per-core.

#include <cstdio>
#include <vector>

#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;
using scenario::Testbed;

namespace {

constexpr std::uint64_t kMessagesPerCore = 4000;

sim::Task<void> core_loop(Testbed::WorkerCore& wc, llp::Endpoint& ep) {
  cpu::Core& core = wc.core;
  core.set_speed_factor(0.8025);  // same hot-loop calibration as put_bw
  std::uint64_t sent = 0;
  while (sent < kMessagesPerCore) {
    const llp::Status st = co_await ep.put_short(8);
    if (st == llp::Status::kNoResource) {
      co_await wc.worker.progress(1);
      continue;
    }
    ++sent;
    core.consume(core.costs().timer_read);
    core.consume(core.costs().loop_exp_noise);
    if (sent % 16 == 0) co_await wc.worker.progress(1);
  }
  while (ep.outstanding() > 0) {
    co_await wc.worker.progress();
  }
}

double aggregate_rate_mmsgs(int cores) {
  Testbed tb(scenario::presets::thunderx2_cx4());
  tb.analyzer().set_enabled(false);
  std::vector<llp::Endpoint*> eps;
  for (int c = 0; c < cores; ++c) {
    auto& wc = tb.add_core(0);
    auto& ep = tb.add_endpoint(wc, 0);
    tb.sim().spawn(core_loop(wc, ep), "core-loop");
    eps.push_back(&ep);
  }
  tb.sim().run();
  const double total_msgs =
      static_cast<double>(kMessagesPerCore) * static_cast<double>(cores);
  return total_msgs / tb.sim().now().to_ns() * 1e3;  // M msgs/s
}

}  // namespace

int main() {
  bbench::header("bench_scaling_cores -- multi-core injection scaling",
                 "extension of §1's fine-grained-communication motivation");

  std::printf("%-8s %16s %12s\n", "cores", "Mmsg/s", "efficiency");
  std::vector<double> rates;
  for (int c : {1, 2, 4, 8}) {
    rates.push_back(aggregate_rate_mmsgs(c));
    std::printf("%-8d %16.2f %11.1f%%\n", c, rates.back(),
                rates.back() / (rates[0] * c) * 100.0);
  }

  bbench::Validator v;
  v.within("single core matches put_bw (1/282 ns)", rates[0], 1e3 / 282.33,
           0.04);
  v.is_true("2 cores scale >90%", rates[1] > rates[0] * 2 * 0.90);
  v.is_true("4 cores scale >85%", rates[2] > rates[0] * 4 * 0.85);
  v.is_true("8 cores scale >75%", rates[3] > rates[0] * 8 * 0.75);
  v.is_true("scaling is monotonic",
            rates[1] > rates[0] && rates[2] > rates[1] && rates[3] > rates[2]);
  return v.finish();
}
