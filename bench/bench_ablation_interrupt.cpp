// Ablation: polling vs interrupt-driven completion (§2).
//
// "The user could also request to be notified with an interrupt
// regarding the completion. However, the polling approach is
// latency-oriented since there is no context switch to the kernel in
// the critical path." This bench quantifies that: a UCT-level ping-pong
// where the receiver either spins on the CQ (the paper's configuration)
// or sleeps until the completion's DMA write fires the interrupt and
// pays the kernel wake-up cost -- while burning no CPU while idle.

#include <cstdio>

#include "exec/sweep.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;
using namespace bb::literals;
using scenario::Testbed;

namespace {

constexpr int kIters = 800;

struct Result {
  double latency_ns;       // one-way
  double rx_cpu_per_iter;  // receiver CPU time per iteration
};

sim::Task<void> initiator(Testbed& tb, llp::Endpoint& ep, bool interrupts,
                          double* latency) {
  auto& node = tb.node(0);
  const double t0 = node.core.virtual_now().to_ns();
  for (int i = 0; i < kIters; ++i) {
    while (co_await ep.am_short(8) != llp::Status::kOk) {
      co_await node.worker.progress();
    }
    const std::uint64_t seen = node.worker.rx_completions();
    while (node.worker.rx_completions() == seen) {
      if (interrupts && node.host.rx_cq().depth() == 0) {
        co_await node.cq_interrupt.wait();
        node.core.consume(node.core.costs().interrupt_wakeup);
      }
      co_await node.worker.progress();
    }
  }
  *latency = (node.core.virtual_now().to_ns() - t0) / (2.0 * kIters);
}

sim::Task<void> responder(Testbed& tb, llp::Endpoint& ep, bool interrupts) {
  auto& node = tb.node(1);
  for (int i = 0; i < kIters; ++i) {
    const std::uint64_t seen = node.worker.rx_completions();
    while (node.worker.rx_completions() == seen) {
      if (interrupts && node.host.rx_cq().depth() == 0) {
        // Sleep until a DMA write lands, then pay the kernel wake-up.
        co_await node.cq_interrupt.wait();
        node.core.consume(node.core.costs().interrupt_wakeup);
      }
      co_await node.worker.progress();
    }
    while (co_await ep.am_short(8) != llp::Status::kOk) {
      co_await node.worker.progress();
    }
  }
}

Result run(bool interrupts) {
  Testbed tb(scenario::presets::deterministic());
  tb.analyzer().set_enabled(false);
  auto& ep0 = tb.add_endpoint(0);
  auto& ep1 = tb.add_endpoint(1);
  tb.node(0).nic.post_receives(kIters + 2);
  tb.node(1).nic.post_receives(kIters + 2);
  Result r{};
  tb.sim().spawn(initiator(tb, ep0, interrupts, &r.latency_ns));
  tb.sim().spawn(responder(tb, ep1, interrupts));
  tb.sim().run();
  r.rx_cpu_per_iter =
      tb.node(1).core.busy_time().to_ns() / static_cast<double>(kIters);
  return r;
}

/// Sparse traffic: one inbound message every 50 us. This is where
/// interrupts pay off -- the poller burns the whole gap spinning.
double sparse_rx_cpu_per_msg(bool interrupts) {
  constexpr int kMsgs = 40;
  Testbed tb(scenario::presets::deterministic());
  tb.analyzer().set_enabled(false);
  auto& ep = tb.add_endpoint(0);
  tb.node(1).nic.post_receives(kMsgs + 2);

  tb.sim().spawn([](Testbed& t, llp::Endpoint& e) -> sim::Task<void> {
    for (int i = 0; i < kMsgs; ++i) {
      co_await t.sim().delay(50_us);
      while (co_await e.am_short(8) != llp::Status::kOk) {
        co_await t.node(0).worker.progress();
      }
      co_await t.node(0).core.flush();
    }
  }(tb, ep));

  tb.sim().spawn([](Testbed& t, bool intr) -> sim::Task<void> {
    auto& node = t.node(1);
    for (int i = 0; i < kMsgs; ++i) {
      const std::uint64_t seen = node.worker.rx_completions();
      while (node.worker.rx_completions() == seen) {
        if (intr && node.host.rx_cq().depth() == 0) {
          co_await node.cq_interrupt.wait();
          node.core.consume(node.core.costs().interrupt_wakeup);
        }
        co_await node.worker.progress();
      }
    }
  }(tb, interrupts));

  tb.sim().run();
  return tb.node(1).core.busy_time().to_ns() / static_cast<double>(kMsgs);
}

}  // namespace

int main(int argc, char** argv) {
  bbench::header("bench_ablation_interrupt -- polling vs interrupts",
                 "§2's polling-vs-interrupt trade-off (design ablation)");

  // Four independent simulations: {tight, sparse} x {polling, interrupt}.
  struct Cell {
    bool sparse;
    bool interrupts;
  };
  const auto res = exec::run_sweep(
      exec::sweep<Cell>(
          {{false, false}, {false, true}, {true, false}, {true, true}}),
      [](const Cell& c, exec::Job&) {
        if (c.sparse) return Result{0.0, sparse_rx_cpu_per_msg(c.interrupts)};
        return run(c.interrupts);
      },
      bbench::exec_options(argc, argv));
  bbench::note_exec("interrupt ablation", res);

  const Result poll = res.values[0];
  const Result intr = res.values[1];

  std::printf("tight ping-pong (latency-critical):\n");
  std::printf("%-12s %16s %22s\n", "mode", "latency (ns)",
              "RX CPU per iter (ns)");
  std::printf("%-12s %16.2f %22.2f\n", "polling", poll.latency_ns,
              poll.rx_cpu_per_iter);
  std::printf("%-12s %16.2f %22.2f\n", "interrupt", intr.latency_ns,
              intr.rx_cpu_per_iter);
  std::printf("=> +%.0f ns per direction; no CPU saving either -- in a\n"
              "   tight loop the wake-up costs as much as the spin, which\n"
              "   is why the latency-oriented configuration polls (§2).\n\n",
              intr.latency_ns - poll.latency_ns);

  const double sparse_poll = res.values[2].rx_cpu_per_iter;
  const double sparse_intr = res.values[3].rx_cpu_per_iter;
  std::printf("sparse traffic (one message per 50 us):\n");
  std::printf("%-12s %22s\n", "mode", "RX CPU per msg (ns)");
  std::printf("%-12s %22.2f\n", "polling", sparse_poll);
  std::printf("%-12s %22.2f\n", "interrupt", sparse_intr);
  std::printf("=> interrupts reclaim %.1f us of CPU per message\n",
              (sparse_poll - sparse_intr) / 1e3);

  bbench::Validator v;
  v.is_true("polling is latency-oriented (faster)",
            poll.latency_ns < intr.latency_ns);
  v.is_true("interrupt pays ~a context switch per direction",
            intr.latency_ns - poll.latency_ns > 1500.0);
  v.is_true("tight loop: interrupts save no CPU",
            intr.rx_cpu_per_iter >= poll.rx_cpu_per_iter * 0.8);
  v.is_true("sparse traffic: interrupts reclaim most of the spin",
            sparse_intr < sparse_poll / 4.0);
  return v.finish();
}
