// Reproduces Fig. 11: the breakdown of time in the HLP between MPICH and
// UCP, for MPI_Isend initiation and for a successful receive-side
// MPI_Wait.

#include <cstdio>

#include "core/models.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main() {
  bbench::header("bench_fig11_hlp -- MPICH vs UCP time in the HLP",
                 "Fig. 11 (§5)");

  const auto table = core::ComponentTable::from_config(
      scenario::presets::thunderx2_cx4());
  const core::LatencyModel model(table);
  const auto split = model.fig11_split();

  std::printf("%s\n",
              render_stacked_bar("MPI_Isend (HLP share)", split.isend).c_str());
  std::printf("%s\n",
              render_stacked_bar("RX MPI_Wait (successful)", split.rx_wait)
                  .c_str());

  auto pct = [](const std::vector<BarSegment>& segs, std::size_t i) {
    double total = 0;
    for (const auto& s : segs) total += s.value;
    return segs[i].value / total * 100.0;
  };

  bbench::Validator v;
  v.within("Isend UCP share", pct(split.isend, 0), 8.24, 0.01);
  v.within("Isend MPICH share", pct(split.isend, 1), 91.76, 0.01);
  v.within("Wait UCP share", pct(split.rx_wait, 0), 33.91, 0.01);
  v.within("Wait MPICH share", pct(split.rx_wait, 1), 66.09, 0.01);
  v.within("successful MPI_Wait total (443.8 ns)",
           split.rx_wait[0].value + split.rx_wait[1].value, 443.8, 0.001);
  return v.finish();
}
