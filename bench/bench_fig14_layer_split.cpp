// Reproduces Fig. 14: the HLP/LLP split during initiation, TX progress,
// and RX progress, plus §6's Insight 4 (RX progress is 4.78x TX
// progress, HLP dominating both).

#include <cstdio>

#include "core/models.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;

int main() {
  bbench::header("bench_fig14_layer_split -- HLP vs LLP by phase",
                 "Fig. 14 (§6, Insight 4)");

  const auto table = core::ComponentTable::from_config(
      scenario::presets::thunderx2_cx4());
  const auto split = core::LatencyModel(table).fig14_split();

  std::printf("%s\n",
              render_stacked_bar("Initiation", split.initiation).c_str());
  std::printf("%s\n",
              render_stacked_bar("TX Progress", split.tx_progress).c_str());
  std::printf("%s\n",
              render_stacked_bar("RX Progress", split.rx_progress).c_str());

  auto pct = [](const std::vector<BarSegment>& segs, std::size_t i) {
    double total = 0;
    for (const auto& s : segs) total += s.value;
    return segs[i].value / total * 100.0;
  };
  auto total = [](const std::vector<BarSegment>& segs) {
    double t = 0;
    for (const auto& s : segs) t += s.value;
    return t;
  };

  bbench::Validator v;
  v.within("Initiation LLP share", pct(split.initiation, 0), 86.85, 0.01);
  v.within("Initiation HLP share", pct(split.initiation, 1), 13.15, 0.01);
  v.within("TX progress LLP share", pct(split.tx_progress, 0), 1.61, 0.02);
  v.within("TX progress HLP share", pct(split.tx_progress, 1), 98.39, 0.01);
  v.within("RX progress LLP share", pct(split.rx_progress, 0), 21.53, 0.01);
  v.within("RX progress HLP share", pct(split.rx_progress, 1), 78.47, 0.01);
  v.within("Insight 4: RX progress = 4.78x TX progress",
           total(split.rx_progress) / total(split.tx_progress), 4.78, 0.01);
  v.is_true("HLP dominates both progress phases",
            pct(split.tx_progress, 1) > 50 && pct(split.rx_progress, 1) > 50);
  return v.finish();
}
