// Extension bench: eager vs rendezvous protocol crossover.
//
// UCX switches from the eager path to rendezvous above a threshold; this
// sweep shows why. Small messages: eager wins outright (no control round
// trip). Large messages: the rendezvous advertisement costs one extra
// network round trip but sends the payload exactly once, one-sided --
// on real hardware it also spares the receive-side bounce-buffer copy
// that the eager path's per-byte cost models here.

#include <cstdio>
#include <vector>

#include "exec/sweep.hpp"
#include "scenario/mpi_stack.hpp"
#include "scenario/testbed.hpp"
#include "util.hpp"

using namespace bb;
using scenario::MpiStack;
using scenario::Testbed;

namespace {

constexpr int kIters = 300;

/// One-way latency of `bytes` MPI messages under the given threshold.
double one_way_ns(std::uint32_t bytes, std::uint32_t rndv_threshold) {
  Testbed tb(scenario::presets::thunderx2_cx4());
  tb.analyzer().set_enabled(false);
  // Build the UCP workers with an explicit threshold.
  llp::EndpointConfig ec = tb.config().endpoint;
  ec.signal.period = 64;
  auto& ep_a = tb.add_endpoint(0, ec);
  auto& ep_b = tb.add_endpoint(1, ec);
  hlp::UcpWorker ucp_a(tb.node(0).worker, ep_a, {rndv_threshold});
  hlp::UcpWorker ucp_b(tb.node(1).worker, ep_b, {rndv_threshold});
  hlp::MpiComm mpi_a(ucp_a);
  hlp::MpiComm mpi_b(ucp_b);
  tb.node(0).nic.post_receives(4 * kIters + 16);
  tb.node(1).nic.post_receives(4 * kIters + 16);

  double out = 0;
  tb.sim().spawn([](hlp::MpiComm& mpi, cpu::Core& core, std::uint32_t n,
                    double& res) -> sim::Task<void> {
    const double t0 = core.virtual_now().to_ns();
    for (int i = 0; i < kIters; ++i) {
      hlp::Request* rr = mpi.irecv(n).value();
      hlp::Request* s = (co_await mpi.isend(n)).value();
      co_await mpi.wait(s);
      co_await mpi.wait(rr);
    }
    res = (core.virtual_now().to_ns() - t0) / (2.0 * kIters);
  }(mpi_a, tb.node(0).core, bytes, out));
  tb.sim().spawn([](hlp::MpiComm& mpi, std::uint32_t n) -> sim::Task<void> {
    for (int i = 0; i < kIters; ++i) {
      hlp::Request* rr = mpi.irecv(n).value();
      co_await mpi.wait(rr);
      hlp::Request* s = (co_await mpi.isend(n)).value();
      co_await mpi.wait(s);
    }
  }(mpi_b, bytes));
  tb.sim().run();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bbench::header("bench_sweep_protocol -- eager vs rendezvous crossover",
                 "extension: the protocol switch UCX makes above a threshold");

  // Grid: sizes x {eager, rndv}, size-major so row i*2 is eager and
  // i*2+1 is rendezvous for sizes[i].
  const std::vector<std::uint32_t> sizes = {64, 256, 1024, 4096, 16384};
  const auto res = exec::run_sweep(
      exec::sweep(exec::grid(sizes, std::vector<std::uint32_t>{UINT32_MAX, 1})),
      [](const auto& pt, exec::Job&) {
        return one_way_ns(std::get<0>(pt), std::get<1>(pt));
      },
      bbench::exec_options(argc, argv));
  bbench::note_exec("protocol sweep", res);

  std::printf("%-10s %14s %14s\n", "bytes", "eager (ns)", "rndv (ns)");
  std::vector<double> eager, rndv;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    eager.push_back(res.values[i * 2]);
    rndv.push_back(res.values[i * 2 + 1]);
    std::printf("%-10u %14.2f %14.2f\n", sizes[i], eager.back(), rndv.back());
  }

  bbench::Validator v;
  v.is_true("eager wins for small messages", eager[0] < rndv[0]);
  v.is_true("rendezvous penalty ~ a control round trip at 64B",
            rndv[0] - eager[0] > 500.0 && rndv[0] - eager[0] < 3000.0);
  v.is_true("gap narrows as payload grows (relative)",
            (rndv.back() - eager.back()) / eager.back() <
                (rndv[0] - eager[0]) / eager[0]);
  return v.finish();
}
