#pragma once
// Shared helpers for the paper-reproduction bench binaries.
//
// Every binary prints the rows/series its table or figure reports, in
// three flavours where applicable: the paper's published value, the value
// our analytical model computes from the calibrated configuration, and
// the value observed/measured in the simulator. It exits non-zero if any
// declared reproduction band fails, so `for b in build/bench/*; do $b;
// done` doubles as a validation sweep.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/exec.hpp"

namespace bbench {

/// Parses the shared `--jobs N` / `--jobs=N` flag every bench binary
/// accepts (default: hardware concurrency, overridable via BB_JOBS).
/// The thread count never changes the printed tables -- bb::exec sweeps
/// are bit-identical at any value -- only the wall-clock. A one-line
/// execution summary goes to stderr so stdout stays table-clean.
inline bb::exec::Options exec_options(int argc, char** argv) {
  bb::exec::Options o;
  o.jobs = bb::exec::default_jobs();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      o.jobs = std::atoi(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      o.jobs = std::atoi(argv[i] + 7);
    }
  }
  if (o.jobs <= 0) o.jobs = bb::exec::default_jobs();
  return o;
}

/// Stderr note of how a sweep executed (kept off stdout on purpose).
template <typename R>
inline void note_exec(const char* what, const bb::exec::Results<R>& r) {
  std::fprintf(stderr, "[exec] %s: %s\n", what, r.summary().c_str());
}

class Validator {
 public:
  /// Declares a check: |actual - expected| / |expected| <= tol_frac.
  void within(const std::string& what, double actual, double expected,
              double tol_frac) {
    const double err = std::abs(actual - expected) / std::abs(expected);
    add(what, err <= tol_frac,
        "actual " + fmt(actual) + " vs expected " + fmt(expected) + " (" +
            fmt(err * 100.0) + "% err, tol " + fmt(tol_frac * 100.0) + "%)");
  }

  void is_true(const std::string& what, bool ok,
               const std::string& detail = "") {
    add(what, ok, detail);
  }

  /// Prints the check summary; returns the process exit code.
  int finish() const {
    std::printf("\n-- validation --------------------------------------\n");
    int failures = 0;
    for (const auto& c : checks_) {
      std::printf("  [%s] %s%s%s\n", c.ok ? "PASS" : "FAIL", c.what.c_str(),
                  c.detail.empty() ? "" : ": ", c.detail.c_str());
      failures += c.ok ? 0 : 1;
    }
    std::printf("%d/%zu checks passed\n", static_cast<int>(checks_.size()) - failures,
                checks_.size());
    return failures == 0 ? 0 : 1;
  }

 private:
  struct Check {
    std::string what;
    bool ok;
    std::string detail;
  };
  static std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
  }
  void add(std::string what, bool ok, std::string detail) {
    checks_.push_back(Check{std::move(what), ok, std::move(detail)});
  }
  std::vector<Check> checks_;
};

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("====================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("====================================================\n\n");
}

}  // namespace bbench
