#!/usr/bin/env bash
# Engine performance gate.
#
# Builds the Release tree, runs the simulator microbenchmarks with
# --benchmark_format=json (emitted as BENCH_engine.json at the repo root
# for the perf trajectory), and fails if any benchmark's best-of-N
# items/sec drops more than 20% below the committed baseline
# (scripts/perf_baseline.json), or if a *Steady benchmark reports a
# non-zero steady-state allocation rate.
#
# On machines with >= 4 cores the BM_ExecParallelSweep rows additionally
# gate bb::exec's scaling efficiency: 4 pool threads must reach at least
# MIN_SCALING_4T x the 1-thread throughput. On smaller machines the
# ratio is reported but informational (there is nothing to scale onto).
#
# Best-of-N (not mean) is compared on purpose: shared CI boxes run with
# wildly varying load, and the max over repetitions is the least noisy
# estimate of what the code can do.
#
# Usage:
#   scripts/check_perf.sh                  # gate against the baseline
#   scripts/check_perf.sh --update-baseline  # rewrite the baseline instead
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE=0
if [[ "${1:-}" == "--update-baseline" ]]; then
  UPDATE=1
fi

BUILD_DIR="${BB_PERF_BUILD_DIR:-build-perf}"
# Heavily loaded CI boxes need several repetitions for a stable best-of.
REPS="${BB_PERF_REPS:-5}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_engine_perf >/dev/null

"$BUILD_DIR/bench/bench_engine_perf" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  --benchmark_repetitions="$REPS" \
  >BENCH_engine.json

UPDATE="$UPDATE" python3 - <<'EOF'
import json
import os
import sys

MAX_REGRESSION = 0.20      # fail below 80% of baseline items/sec
MAX_ALLOC_RATE = 0.001     # steady-state allocations per simulated item
MIN_SCALING_4T = 2.4       # min 4-thread speedup over 1 thread (>=4 cores)

with open("BENCH_engine.json") as f:
    report = json.load(f)

best = {}      # benchmark name -> best items_per_second over repetitions
allocs = {}    # benchmark name -> max allocs_per_item over repetitions
for b in report["benchmarks"]:
    if b.get("run_type") != "iteration":
        continue  # skip mean/median/stddev aggregate rows
    name = b["run_name"]
    ips = b.get("items_per_second")
    if ips is not None:
        best[name] = max(best.get(name, 0.0), ips)
    rate = b.get("allocs_per_item")
    if rate is not None:
        allocs[name] = max(allocs.get(name, 0.0), rate)

failed = False
for name, rate in sorted(allocs.items()):
    ok = rate <= MAX_ALLOC_RATE
    print(f"{name}: {rate:.6f} allocs/item "
          f"({'ok' if ok else f'LIMIT {MAX_ALLOC_RATE}'})")
    if not ok:
        failed = True

def scaling_check():
    """bb::exec scaling efficiency from the BM_ExecParallelSweep rows."""
    one = best.get("BM_ExecParallelSweep/1/real_time")
    four = best.get("BM_ExecParallelSweep/4/real_time")
    if not one or not four:
        print("exec scaling: BM_ExecParallelSweep rows missing")
        return False  # the rows themselves are covered by the baseline gate
    ratio = four / one
    cores = os.cpu_count() or 1
    enforced = cores >= 4
    ok = (not enforced) or ratio >= MIN_SCALING_4T
    print(f"exec scaling: {ratio:.2f}x at 4 threads over 1 "
          f"({cores} cores; "
          f"{'ok' if ok else f'MIN {MIN_SCALING_4T}'}"
          f"{'' if enforced else ', informational'})")
    return not ok

if scaling_check():
    failed = True

if os.environ.get("UPDATE") == "1":
    with open("scripts/perf_baseline.json", "w") as f:
        json.dump({"items_per_second": best}, f, indent=2, sort_keys=True)
        f.write("\n")
    print("baseline updated: scripts/perf_baseline.json")
    sys.exit(1 if failed else 0)

with open("scripts/perf_baseline.json") as f:
    baseline = json.load(f)["items_per_second"]

for name, base in sorted(baseline.items()):
    now = best.get(name)
    if now is None:
        print(f"{name}: MISSING from benchmark run")
        failed = True
        continue
    ratio = now / base
    ok = ratio >= 1.0 - MAX_REGRESSION
    print(f"{name}: {now:.3e} vs baseline {base:.3e} items/s "
          f"({ratio:.2f}x, {'ok' if ok else 'REGRESSION'})")
    if not ok:
        failed = True

sys.exit(1 if failed else 0)
EOF
