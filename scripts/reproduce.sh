#!/usr/bin/env bash
# Full reproduction pipeline: build, test, regenerate every table/figure.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
#
# JOBS controls the bb::exec pool each bench shards its simulations over
# (default: all hardware threads). The printed tables are bit-identical
# at every value -- only the wall-clock changes.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 1)}"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
status=0
bench_start=$(date +%s)
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "================================================================" \
    | tee -a bench_output.txt
  extra=(--jobs "$JOBS")
  # google-benchmark binaries reject non-benchmark flags.
  [ "$(basename "$b")" = bench_engine_perf ] && extra=()
  if ! "$b" "${extra[@]}" 2>&1 | tee -a bench_output.txt; then
    echo "!! $(basename "$b") FAILED its reproduction bands" \
      | tee -a bench_output.txt
    status=1
  fi
done
echo "bench suite wall-clock: $(($(date +%s) - bench_start))s at JOBS=$JOBS" \
  | tee -a bench_output.txt
exit "$status"
