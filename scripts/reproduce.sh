#!/usr/bin/env bash
# Full reproduction pipeline: build, test, regenerate every table/figure.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
status=0
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "================================================================" \
    | tee -a bench_output.txt
  if ! "$b" 2>&1 | tee -a bench_output.txt; then
    echo "!! $(basename "$b") FAILED its reproduction bands" \
      | tee -a bench_output.txt
    status=1
  fi
done
exit "$status"
