# Empty compiler generated dependencies file for ring_pipeline.
# This may be replaced when dependencies are built.
