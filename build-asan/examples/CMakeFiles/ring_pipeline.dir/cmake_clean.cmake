file(REMOVE_RECURSE
  "CMakeFiles/ring_pipeline.dir/ring_pipeline.cpp.o"
  "CMakeFiles/ring_pipeline.dir/ring_pipeline.cpp.o.d"
  "ring_pipeline"
  "ring_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
