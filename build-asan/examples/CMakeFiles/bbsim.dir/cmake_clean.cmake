file(REMOVE_RECURSE
  "CMakeFiles/bbsim.dir/bbsim.cpp.o"
  "CMakeFiles/bbsim.dir/bbsim.cpp.o.d"
  "bbsim"
  "bbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
