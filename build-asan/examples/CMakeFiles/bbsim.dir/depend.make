# Empty dependencies file for bbsim.
# This may be replaced when dependencies are built.
