# Empty dependencies file for stencil_halo.
# This may be replaced when dependencies are built.
