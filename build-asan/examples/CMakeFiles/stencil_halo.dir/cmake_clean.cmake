file(REMOVE_RECURSE
  "CMakeFiles/stencil_halo.dir/stencil_halo.cpp.o"
  "CMakeFiles/stencil_halo.dir/stencil_halo.cpp.o.d"
  "stencil_halo"
  "stencil_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
