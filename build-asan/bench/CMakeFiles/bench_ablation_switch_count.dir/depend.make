# Empty dependencies file for bench_ablation_switch_count.
# This may be replaced when dependencies are built.
