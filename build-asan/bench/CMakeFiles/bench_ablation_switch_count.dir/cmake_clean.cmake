file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_switch_count.dir/bench_ablation_switch_count.cpp.o"
  "CMakeFiles/bench_ablation_switch_count.dir/bench_ablation_switch_count.cpp.o.d"
  "bench_ablation_switch_count"
  "bench_ablation_switch_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_switch_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
