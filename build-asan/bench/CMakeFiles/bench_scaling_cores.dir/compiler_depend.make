# Empty compiler generated dependencies file for bench_scaling_cores.
# This may be replaced when dependencies are built.
