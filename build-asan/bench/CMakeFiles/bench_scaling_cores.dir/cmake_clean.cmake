file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_cores.dir/bench_scaling_cores.cpp.o"
  "CMakeFiles/bench_scaling_cores.dir/bench_scaling_cores.cpp.o.d"
  "bench_scaling_cores"
  "bench_scaling_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
