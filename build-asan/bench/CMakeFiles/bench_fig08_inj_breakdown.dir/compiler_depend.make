# Empty compiler generated dependencies file for bench_fig08_inj_breakdown.
# This may be replaced when dependencies are built.
