# Empty compiler generated dependencies file for bench_ablation_interrupt.
# This may be replaced when dependencies are built.
