file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interrupt.dir/bench_ablation_interrupt.cpp.o"
  "CMakeFiles/bench_ablation_interrupt.dir/bench_ablation_interrupt.cpp.o.d"
  "bench_ablation_interrupt"
  "bench_ablation_interrupt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interrupt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
