file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_whatif.dir/bench_fig17_whatif.cpp.o"
  "CMakeFiles/bench_fig17_whatif.dir/bench_fig17_whatif.cpp.o.d"
  "bench_fig17_whatif"
  "bench_fig17_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
