# Empty compiler generated dependencies file for bench_fig17_whatif.
# This may be replaced when dependencies are built.
