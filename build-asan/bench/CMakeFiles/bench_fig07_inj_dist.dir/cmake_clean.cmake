file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_inj_dist.dir/bench_fig07_inj_dist.cpp.o"
  "CMakeFiles/bench_fig07_inj_dist.dir/bench_fig07_inj_dist.cpp.o.d"
  "bench_fig07_inj_dist"
  "bench_fig07_inj_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_inj_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
