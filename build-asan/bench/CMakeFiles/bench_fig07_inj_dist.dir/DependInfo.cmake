
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig07_inj_dist.cpp" "bench/CMakeFiles/bench_fig07_inj_dist.dir/bench_fig07_inj_dist.cpp.o" "gcc" "bench/CMakeFiles/bench_fig07_inj_dist.dir/bench_fig07_inj_dist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/benchlib/CMakeFiles/bb_benchlib.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/bb_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/scenario/CMakeFiles/bb_scenario.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hlp/CMakeFiles/bb_hlp.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/llp/CMakeFiles/bb_llp.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/nic/CMakeFiles/bb_nic.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/bb_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/prof/CMakeFiles/bb_prof.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cpu/CMakeFiles/bb_cpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/pcie/CMakeFiles/bb_pcie.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/bb_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/bb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
