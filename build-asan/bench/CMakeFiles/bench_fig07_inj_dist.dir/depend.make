# Empty dependencies file for bench_fig07_inj_dist.
# This may be replaced when dependencies are built.
