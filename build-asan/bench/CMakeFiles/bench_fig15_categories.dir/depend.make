# Empty dependencies file for bench_fig15_categories.
# This may be replaced when dependencies are built.
