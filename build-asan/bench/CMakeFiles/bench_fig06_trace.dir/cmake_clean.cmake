file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_trace.dir/bench_fig06_trace.cpp.o"
  "CMakeFiles/bench_fig06_trace.dir/bench_fig06_trace.cpp.o.d"
  "bench_fig06_trace"
  "bench_fig06_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
