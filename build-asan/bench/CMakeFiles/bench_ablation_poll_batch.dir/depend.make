# Empty dependencies file for bench_ablation_poll_batch.
# This may be replaced when dependencies are built.
