file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_poll_batch.dir/bench_ablation_poll_batch.cpp.o"
  "CMakeFiles/bench_ablation_poll_batch.dir/bench_ablation_poll_batch.cpp.o.d"
  "bench_ablation_poll_batch"
  "bench_ablation_poll_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_poll_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
