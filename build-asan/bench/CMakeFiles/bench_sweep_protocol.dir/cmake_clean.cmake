file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_protocol.dir/bench_sweep_protocol.cpp.o"
  "CMakeFiles/bench_sweep_protocol.dir/bench_sweep_protocol.cpp.o.d"
  "bench_sweep_protocol"
  "bench_sweep_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
