# Empty dependencies file for bench_sweep_protocol.
# This may be replaced when dependencies are built.
