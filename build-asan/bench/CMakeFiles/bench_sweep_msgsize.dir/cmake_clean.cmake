file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_msgsize.dir/bench_sweep_msgsize.cpp.o"
  "CMakeFiles/bench_sweep_msgsize.dir/bench_sweep_msgsize.cpp.o.d"
  "bench_sweep_msgsize"
  "bench_sweep_msgsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_msgsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
