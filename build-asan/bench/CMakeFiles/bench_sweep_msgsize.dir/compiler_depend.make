# Empty compiler generated dependencies file for bench_sweep_msgsize.
# This may be replaced when dependencies are built.
