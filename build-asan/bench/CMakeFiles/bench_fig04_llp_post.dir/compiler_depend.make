# Empty compiler generated dependencies file for bench_fig04_llp_post.
# This may be replaced when dependencies are built.
