file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_llp_post.dir/bench_fig04_llp_post.cpp.o"
  "CMakeFiles/bench_fig04_llp_post.dir/bench_fig04_llp_post.cpp.o.d"
  "bench_fig04_llp_post"
  "bench_fig04_llp_post.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_llp_post.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
