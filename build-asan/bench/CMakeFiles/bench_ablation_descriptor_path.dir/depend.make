# Empty dependencies file for bench_ablation_descriptor_path.
# This may be replaced when dependencies are built.
