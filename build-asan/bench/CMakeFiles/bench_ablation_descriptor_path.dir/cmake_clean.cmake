file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_descriptor_path.dir/bench_ablation_descriptor_path.cpp.o"
  "CMakeFiles/bench_ablation_descriptor_path.dir/bench_ablation_descriptor_path.cpp.o.d"
  "bench_ablation_descriptor_path"
  "bench_ablation_descriptor_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_descriptor_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
