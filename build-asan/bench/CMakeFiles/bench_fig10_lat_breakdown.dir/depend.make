# Empty dependencies file for bench_fig10_lat_breakdown.
# This may be replaced when dependencies are built.
