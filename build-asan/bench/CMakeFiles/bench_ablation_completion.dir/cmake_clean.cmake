file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_completion.dir/bench_ablation_completion.cpp.o"
  "CMakeFiles/bench_ablation_completion.dir/bench_ablation_completion.cpp.o.d"
  "bench_ablation_completion"
  "bench_ablation_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
