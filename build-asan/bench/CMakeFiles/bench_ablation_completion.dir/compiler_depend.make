# Empty compiler generated dependencies file for bench_ablation_completion.
# This may be replaced when dependencies are built.
