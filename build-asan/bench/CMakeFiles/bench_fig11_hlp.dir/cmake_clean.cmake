file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_hlp.dir/bench_fig11_hlp.cpp.o"
  "CMakeFiles/bench_fig11_hlp.dir/bench_fig11_hlp.cpp.o.d"
  "bench_fig11_hlp"
  "bench_fig11_hlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_hlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
