file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_overall_inj.dir/bench_fig12_overall_inj.cpp.o"
  "CMakeFiles/bench_fig12_overall_inj.dir/bench_fig12_overall_inj.cpp.o.d"
  "bench_fig12_overall_inj"
  "bench_fig12_overall_inj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_overall_inj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
