# Empty compiler generated dependencies file for bench_fig12_overall_inj.
# This may be replaced when dependencies are built.
