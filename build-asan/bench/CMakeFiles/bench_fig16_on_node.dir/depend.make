# Empty dependencies file for bench_fig16_on_node.
# This may be replaced when dependencies are built.
