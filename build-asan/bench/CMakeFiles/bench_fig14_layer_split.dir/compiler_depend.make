# Empty compiler generated dependencies file for bench_fig14_layer_split.
# This may be replaced when dependencies are built.
