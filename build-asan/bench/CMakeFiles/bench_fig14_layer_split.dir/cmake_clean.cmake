file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_layer_split.dir/bench_fig14_layer_split.cpp.o"
  "CMakeFiles/bench_fig14_layer_split.dir/bench_fig14_layer_split.cpp.o.d"
  "bench_fig14_layer_split"
  "bench_fig14_layer_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_layer_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
