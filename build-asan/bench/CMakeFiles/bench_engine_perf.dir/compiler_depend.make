# Empty compiler generated dependencies file for bench_engine_perf.
# This may be replaced when dependencies are built.
