file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_perf.dir/bench_engine_perf.cpp.o"
  "CMakeFiles/bench_engine_perf.dir/bench_engine_perf.cpp.o.d"
  "bench_engine_perf"
  "bench_engine_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
