
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/channel_test.cpp" "tests/sim/CMakeFiles/test_sim.dir/channel_test.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/channel_test.cpp.o.d"
  "/root/repo/tests/sim/signal_test.cpp" "tests/sim/CMakeFiles/test_sim.dir/signal_test.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/signal_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/sim/CMakeFiles/test_sim.dir/simulator_test.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/simulator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/bb_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/bb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
