# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build-asan/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/sim/test_sim[1]_include.cmake")
include("/root/repo/build-asan/tests/sim/test_sim_engine[1]_include.cmake")
