# CMake generated Testfile for 
# Source directory: /root/repo/tests/property
# Build directory: /root/repo/build-asan/tests/property
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/property/test_property[1]_include.cmake")
