# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("cpu")
subdirs("prof")
subdirs("pcie")
subdirs("net")
subdirs("nic")
subdirs("llp")
subdirs("hlp")
subdirs("core")
subdirs("benchlib")
subdirs("property")
subdirs("scenario")
subdirs("integration")
