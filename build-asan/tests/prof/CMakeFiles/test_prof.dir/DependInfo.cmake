
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/prof/profiler_test.cpp" "tests/prof/CMakeFiles/test_prof.dir/profiler_test.cpp.o" "gcc" "tests/prof/CMakeFiles/test_prof.dir/profiler_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/prof/CMakeFiles/bb_prof.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cpu/CMakeFiles/bb_cpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/bb_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/bb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
