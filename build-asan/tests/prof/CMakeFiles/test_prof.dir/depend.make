# Empty dependencies file for test_prof.
# This may be replaced when dependencies are built.
