file(REMOVE_RECURSE
  "CMakeFiles/test_prof.dir/profiler_test.cpp.o"
  "CMakeFiles/test_prof.dir/profiler_test.cpp.o.d"
  "test_prof"
  "test_prof.pdb"
  "test_prof[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
