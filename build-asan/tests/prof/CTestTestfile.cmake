# CMake generated Testfile for 
# Source directory: /root/repo/tests/prof
# Build directory: /root/repo/build-asan/tests/prof
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/prof/test_prof[1]_include.cmake")
