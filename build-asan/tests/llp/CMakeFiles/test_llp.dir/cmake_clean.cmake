file(REMOVE_RECURSE
  "CMakeFiles/test_llp.dir/endpoint_test.cpp.o"
  "CMakeFiles/test_llp.dir/endpoint_test.cpp.o.d"
  "CMakeFiles/test_llp.dir/worker_test.cpp.o"
  "CMakeFiles/test_llp.dir/worker_test.cpp.o.d"
  "test_llp"
  "test_llp.pdb"
  "test_llp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_llp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
