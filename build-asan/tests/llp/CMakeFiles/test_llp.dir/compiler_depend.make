# Empty compiler generated dependencies file for test_llp.
# This may be replaced when dependencies are built.
