# CMake generated Testfile for 
# Source directory: /root/repo/tests/llp
# Build directory: /root/repo/build-asan/tests/llp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/llp/test_llp[1]_include.cmake")
