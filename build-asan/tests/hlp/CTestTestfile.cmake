# CMake generated Testfile for 
# Source directory: /root/repo/tests/hlp
# Build directory: /root/repo/build-asan/tests/hlp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/hlp/test_hlp[1]_include.cmake")
