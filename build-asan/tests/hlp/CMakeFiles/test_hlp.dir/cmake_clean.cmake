file(REMOVE_RECURSE
  "CMakeFiles/test_hlp.dir/mpi_test.cpp.o"
  "CMakeFiles/test_hlp.dir/mpi_test.cpp.o.d"
  "CMakeFiles/test_hlp.dir/rndv_test.cpp.o"
  "CMakeFiles/test_hlp.dir/rndv_test.cpp.o.d"
  "CMakeFiles/test_hlp.dir/ucp_test.cpp.o"
  "CMakeFiles/test_hlp.dir/ucp_test.cpp.o.d"
  "CMakeFiles/test_hlp.dir/wrap_test.cpp.o"
  "CMakeFiles/test_hlp.dir/wrap_test.cpp.o.d"
  "test_hlp"
  "test_hlp.pdb"
  "test_hlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
