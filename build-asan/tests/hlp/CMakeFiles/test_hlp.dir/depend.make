# Empty dependencies file for test_hlp.
# This may be replaced when dependencies are built.
