
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pcie/credit_test.cpp" "tests/pcie/CMakeFiles/test_pcie.dir/credit_test.cpp.o" "gcc" "tests/pcie/CMakeFiles/test_pcie.dir/credit_test.cpp.o.d"
  "/root/repo/tests/pcie/link_test.cpp" "tests/pcie/CMakeFiles/test_pcie.dir/link_test.cpp.o" "gcc" "tests/pcie/CMakeFiles/test_pcie.dir/link_test.cpp.o.d"
  "/root/repo/tests/pcie/root_complex_test.cpp" "tests/pcie/CMakeFiles/test_pcie.dir/root_complex_test.cpp.o" "gcc" "tests/pcie/CMakeFiles/test_pcie.dir/root_complex_test.cpp.o.d"
  "/root/repo/tests/pcie/trace_test.cpp" "tests/pcie/CMakeFiles/test_pcie.dir/trace_test.cpp.o" "gcc" "tests/pcie/CMakeFiles/test_pcie.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/pcie/CMakeFiles/bb_pcie.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/bb_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/bb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
