# CMake generated Testfile for 
# Source directory: /root/repo/tests/pcie
# Build directory: /root/repo/build-asan/tests/pcie
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/pcie/test_pcie[1]_include.cmake")
