file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/analysis_test.cpp.o"
  "CMakeFiles/test_core.dir/analysis_test.cpp.o.d"
  "CMakeFiles/test_core.dir/breakdown_render_test.cpp.o"
  "CMakeFiles/test_core.dir/breakdown_render_test.cpp.o.d"
  "CMakeFiles/test_core.dir/component_table_test.cpp.o"
  "CMakeFiles/test_core.dir/component_table_test.cpp.o.d"
  "CMakeFiles/test_core.dir/models_test.cpp.o"
  "CMakeFiles/test_core.dir/models_test.cpp.o.d"
  "CMakeFiles/test_core.dir/whatif_test.cpp.o"
  "CMakeFiles/test_core.dir/whatif_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
