file(REMOVE_RECURSE
  "CMakeFiles/test_cpu.dir/core_test.cpp.o"
  "CMakeFiles/test_cpu.dir/core_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cost_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cost_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/memory_test.cpp.o"
  "CMakeFiles/test_cpu.dir/memory_test.cpp.o.d"
  "test_cpu"
  "test_cpu.pdb"
  "test_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
