# CMake generated Testfile for 
# Source directory: /root/repo/tests/cpu
# Build directory: /root/repo/build-asan/tests/cpu
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/cpu/test_cpu[1]_include.cmake")
