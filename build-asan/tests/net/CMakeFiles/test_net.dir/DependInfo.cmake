
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/fabric_test.cpp" "tests/net/CMakeFiles/test_net.dir/fabric_test.cpp.o" "gcc" "tests/net/CMakeFiles/test_net.dir/fabric_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/net/CMakeFiles/bb_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/pcie/CMakeFiles/bb_pcie.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/bb_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/bb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
