# CMake generated Testfile for 
# Source directory: /root/repo/tests/nic
# Build directory: /root/repo/build-asan/tests/nic
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/nic/test_nic[1]_include.cmake")
