file(REMOVE_RECURSE
  "CMakeFiles/test_nic.dir/nic_test.cpp.o"
  "CMakeFiles/test_nic.dir/nic_test.cpp.o.d"
  "CMakeFiles/test_nic.dir/queues_test.cpp.o"
  "CMakeFiles/test_nic.dir/queues_test.cpp.o.d"
  "test_nic"
  "test_nic.pdb"
  "test_nic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
