# CMake generated Testfile for 
# Source directory: /root/repo/tests/common
# Build directory: /root/repo/build-asan/tests/common
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/common/test_common[1]_include.cmake")
