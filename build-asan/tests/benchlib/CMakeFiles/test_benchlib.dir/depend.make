# Empty dependencies file for test_benchlib.
# This may be replaced when dependencies are built.
