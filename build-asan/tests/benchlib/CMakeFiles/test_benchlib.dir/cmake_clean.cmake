file(REMOVE_RECURSE
  "CMakeFiles/test_benchlib.dir/am_lat_test.cpp.o"
  "CMakeFiles/test_benchlib.dir/am_lat_test.cpp.o.d"
  "CMakeFiles/test_benchlib.dir/osu_test.cpp.o"
  "CMakeFiles/test_benchlib.dir/osu_test.cpp.o.d"
  "CMakeFiles/test_benchlib.dir/put_bw_test.cpp.o"
  "CMakeFiles/test_benchlib.dir/put_bw_test.cpp.o.d"
  "test_benchlib"
  "test_benchlib.pdb"
  "test_benchlib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
