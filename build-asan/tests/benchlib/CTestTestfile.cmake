# CMake generated Testfile for 
# Source directory: /root/repo/tests/benchlib
# Build directory: /root/repo/build-asan/tests/benchlib
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/benchlib/test_benchlib[1]_include.cmake")
