# CMake generated Testfile for 
# Source directory: /root/repo/tests/scenario
# Build directory: /root/repo/build-asan/tests/scenario
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/scenario/test_scenario[1]_include.cmake")
