file(REMOVE_RECURSE
  "CMakeFiles/bb_nic.dir/nic.cpp.o"
  "CMakeFiles/bb_nic.dir/nic.cpp.o.d"
  "CMakeFiles/bb_nic.dir/queues.cpp.o"
  "CMakeFiles/bb_nic.dir/queues.cpp.o.d"
  "libbb_nic.a"
  "libbb_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
