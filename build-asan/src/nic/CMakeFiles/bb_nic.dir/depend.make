# Empty dependencies file for bb_nic.
# This may be replaced when dependencies are built.
