file(REMOVE_RECURSE
  "libbb_nic.a"
)
