file(REMOVE_RECURSE
  "libbb_net.a"
)
