file(REMOVE_RECURSE
  "CMakeFiles/bb_net.dir/fabric.cpp.o"
  "CMakeFiles/bb_net.dir/fabric.cpp.o.d"
  "libbb_net.a"
  "libbb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
