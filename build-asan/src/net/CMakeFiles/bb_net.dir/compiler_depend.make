# Empty compiler generated dependencies file for bb_net.
# This may be replaced when dependencies are built.
