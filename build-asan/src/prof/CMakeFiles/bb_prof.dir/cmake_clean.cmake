file(REMOVE_RECURSE
  "CMakeFiles/bb_prof.dir/profiler.cpp.o"
  "CMakeFiles/bb_prof.dir/profiler.cpp.o.d"
  "libbb_prof.a"
  "libbb_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
