# Empty compiler generated dependencies file for bb_prof.
# This may be replaced when dependencies are built.
