file(REMOVE_RECURSE
  "libbb_prof.a"
)
