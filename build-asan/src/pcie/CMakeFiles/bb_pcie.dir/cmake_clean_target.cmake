file(REMOVE_RECURSE
  "libbb_pcie.a"
)
