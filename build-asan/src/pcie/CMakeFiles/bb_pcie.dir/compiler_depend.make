# Empty compiler generated dependencies file for bb_pcie.
# This may be replaced when dependencies are built.
