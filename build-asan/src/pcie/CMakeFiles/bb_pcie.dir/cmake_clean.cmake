file(REMOVE_RECURSE
  "CMakeFiles/bb_pcie.dir/credit.cpp.o"
  "CMakeFiles/bb_pcie.dir/credit.cpp.o.d"
  "CMakeFiles/bb_pcie.dir/link.cpp.o"
  "CMakeFiles/bb_pcie.dir/link.cpp.o.d"
  "CMakeFiles/bb_pcie.dir/root_complex.cpp.o"
  "CMakeFiles/bb_pcie.dir/root_complex.cpp.o.d"
  "CMakeFiles/bb_pcie.dir/tlp.cpp.o"
  "CMakeFiles/bb_pcie.dir/tlp.cpp.o.d"
  "CMakeFiles/bb_pcie.dir/trace.cpp.o"
  "CMakeFiles/bb_pcie.dir/trace.cpp.o.d"
  "libbb_pcie.a"
  "libbb_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
