
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcie/credit.cpp" "src/pcie/CMakeFiles/bb_pcie.dir/credit.cpp.o" "gcc" "src/pcie/CMakeFiles/bb_pcie.dir/credit.cpp.o.d"
  "/root/repo/src/pcie/link.cpp" "src/pcie/CMakeFiles/bb_pcie.dir/link.cpp.o" "gcc" "src/pcie/CMakeFiles/bb_pcie.dir/link.cpp.o.d"
  "/root/repo/src/pcie/root_complex.cpp" "src/pcie/CMakeFiles/bb_pcie.dir/root_complex.cpp.o" "gcc" "src/pcie/CMakeFiles/bb_pcie.dir/root_complex.cpp.o.d"
  "/root/repo/src/pcie/tlp.cpp" "src/pcie/CMakeFiles/bb_pcie.dir/tlp.cpp.o" "gcc" "src/pcie/CMakeFiles/bb_pcie.dir/tlp.cpp.o.d"
  "/root/repo/src/pcie/trace.cpp" "src/pcie/CMakeFiles/bb_pcie.dir/trace.cpp.o" "gcc" "src/pcie/CMakeFiles/bb_pcie.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/bb_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/bb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
