# Empty dependencies file for bb_cpu.
# This may be replaced when dependencies are built.
