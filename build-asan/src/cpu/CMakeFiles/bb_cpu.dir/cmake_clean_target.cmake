file(REMOVE_RECURSE
  "libbb_cpu.a"
)
