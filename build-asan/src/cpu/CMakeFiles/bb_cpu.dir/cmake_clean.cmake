file(REMOVE_RECURSE
  "CMakeFiles/bb_cpu.dir/core.cpp.o"
  "CMakeFiles/bb_cpu.dir/core.cpp.o.d"
  "CMakeFiles/bb_cpu.dir/memory.cpp.o"
  "CMakeFiles/bb_cpu.dir/memory.cpp.o.d"
  "libbb_cpu.a"
  "libbb_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
