file(REMOVE_RECURSE
  "CMakeFiles/bb_hlp.dir/mpi.cpp.o"
  "CMakeFiles/bb_hlp.dir/mpi.cpp.o.d"
  "CMakeFiles/bb_hlp.dir/ucp.cpp.o"
  "CMakeFiles/bb_hlp.dir/ucp.cpp.o.d"
  "libbb_hlp.a"
  "libbb_hlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_hlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
