file(REMOVE_RECURSE
  "libbb_hlp.a"
)
