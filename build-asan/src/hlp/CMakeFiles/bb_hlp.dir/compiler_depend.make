# Empty compiler generated dependencies file for bb_hlp.
# This may be replaced when dependencies are built.
