# Empty compiler generated dependencies file for bb_llp.
# This may be replaced when dependencies are built.
