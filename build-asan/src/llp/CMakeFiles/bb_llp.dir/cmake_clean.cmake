file(REMOVE_RECURSE
  "CMakeFiles/bb_llp.dir/endpoint.cpp.o"
  "CMakeFiles/bb_llp.dir/endpoint.cpp.o.d"
  "CMakeFiles/bb_llp.dir/worker.cpp.o"
  "CMakeFiles/bb_llp.dir/worker.cpp.o.d"
  "libbb_llp.a"
  "libbb_llp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_llp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
