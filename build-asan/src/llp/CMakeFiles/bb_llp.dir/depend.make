# Empty dependencies file for bb_llp.
# This may be replaced when dependencies are built.
