file(REMOVE_RECURSE
  "libbb_llp.a"
)
