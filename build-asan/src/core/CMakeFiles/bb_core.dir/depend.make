# Empty dependencies file for bb_core.
# This may be replaced when dependencies are built.
