file(REMOVE_RECURSE
  "libbb_core.a"
)
