file(REMOVE_RECURSE
  "CMakeFiles/bb_core.dir/analysis.cpp.o"
  "CMakeFiles/bb_core.dir/analysis.cpp.o.d"
  "CMakeFiles/bb_core.dir/component_table.cpp.o"
  "CMakeFiles/bb_core.dir/component_table.cpp.o.d"
  "CMakeFiles/bb_core.dir/models.cpp.o"
  "CMakeFiles/bb_core.dir/models.cpp.o.d"
  "CMakeFiles/bb_core.dir/whatif.cpp.o"
  "CMakeFiles/bb_core.dir/whatif.cpp.o.d"
  "libbb_core.a"
  "libbb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
