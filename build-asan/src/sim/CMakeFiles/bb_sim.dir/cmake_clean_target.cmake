file(REMOVE_RECURSE
  "libbb_sim.a"
)
