# Empty dependencies file for bb_sim.
# This may be replaced when dependencies are built.
