file(REMOVE_RECURSE
  "CMakeFiles/bb_sim.dir/pool.cpp.o"
  "CMakeFiles/bb_sim.dir/pool.cpp.o.d"
  "CMakeFiles/bb_sim.dir/simulator.cpp.o"
  "CMakeFiles/bb_sim.dir/simulator.cpp.o.d"
  "libbb_sim.a"
  "libbb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
