file(REMOVE_RECURSE
  "libbb_benchlib.a"
)
