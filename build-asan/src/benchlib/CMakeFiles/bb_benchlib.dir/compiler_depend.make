# Empty compiler generated dependencies file for bb_benchlib.
# This may be replaced when dependencies are built.
