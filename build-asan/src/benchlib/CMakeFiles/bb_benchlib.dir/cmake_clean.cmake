file(REMOVE_RECURSE
  "CMakeFiles/bb_benchlib.dir/am_lat.cpp.o"
  "CMakeFiles/bb_benchlib.dir/am_lat.cpp.o.d"
  "CMakeFiles/bb_benchlib.dir/osu.cpp.o"
  "CMakeFiles/bb_benchlib.dir/osu.cpp.o.d"
  "CMakeFiles/bb_benchlib.dir/put_bw.cpp.o"
  "CMakeFiles/bb_benchlib.dir/put_bw.cpp.o.d"
  "libbb_benchlib.a"
  "libbb_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
