# Empty dependencies file for bb_common.
# This may be replaced when dependencies are built.
