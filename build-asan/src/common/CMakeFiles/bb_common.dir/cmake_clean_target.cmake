file(REMOVE_RECURSE
  "libbb_common.a"
)
