file(REMOVE_RECURSE
  "CMakeFiles/bb_common.dir/rng.cpp.o"
  "CMakeFiles/bb_common.dir/rng.cpp.o.d"
  "CMakeFiles/bb_common.dir/stats.cpp.o"
  "CMakeFiles/bb_common.dir/stats.cpp.o.d"
  "CMakeFiles/bb_common.dir/table.cpp.o"
  "CMakeFiles/bb_common.dir/table.cpp.o.d"
  "CMakeFiles/bb_common.dir/units.cpp.o"
  "CMakeFiles/bb_common.dir/units.cpp.o.d"
  "libbb_common.a"
  "libbb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
