file(REMOVE_RECURSE
  "CMakeFiles/bb_scenario.dir/cluster.cpp.o"
  "CMakeFiles/bb_scenario.dir/cluster.cpp.o.d"
  "CMakeFiles/bb_scenario.dir/config.cpp.o"
  "CMakeFiles/bb_scenario.dir/config.cpp.o.d"
  "CMakeFiles/bb_scenario.dir/testbed.cpp.o"
  "CMakeFiles/bb_scenario.dir/testbed.cpp.o.d"
  "libbb_scenario.a"
  "libbb_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
