file(REMOVE_RECURSE
  "libbb_scenario.a"
)
