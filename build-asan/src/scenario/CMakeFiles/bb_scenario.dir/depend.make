# Empty dependencies file for bb_scenario.
# This may be replaced when dependencies are built.
