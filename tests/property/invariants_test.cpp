// Conservation and ordering invariants of the simulated hardware, checked
// under randomized traffic patterns. These hold for *every* run, not just
// calibrated ones -- a wrong simulator can still produce plausible means.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "scenario/testbed.hpp"

namespace bb {
namespace {

using scenario::Testbed;

struct TrafficResult {
  Testbed tb;
  std::uint64_t data_msgs = 0;  // 8-byte data messages
  std::uint64_t posted = 0;     // including the flush no-op, if any
  explicit TrafficResult(scenario::SystemConfig cfg) : tb(std::move(cfg)) {}
};

/// Random mixed traffic: puts and sends with random progress interleaving.
std::unique_ptr<TrafficResult> run_traffic(std::uint64_t seed,
                                           std::uint32_t signal_period) {
  auto cfg = scenario::presets::thunderx2_cx4();
  cfg.seed = seed;
  cfg.endpoint.signal.period = signal_period;
  // Depth must cover the moderation period or the queue deadlocks (the
  // endpoint asserts on such configs).
  cfg.endpoint.txq_depth = 128;
  auto res = std::make_unique<TrafficResult>(cfg);
  Testbed& tb = res->tb;
  tb.node(1).nic.post_receives(4096);

  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn([](Testbed& t, llp::Endpoint& e, std::uint64_t sd,
                    TrafficResult* out) -> sim::Task<void> {
    Rng rng(sd);
    std::uint64_t sent = 0;
    while (sent < 600) {
      const bool am = rng.bernoulli(0.5);
      const llp::Status st = am ? co_await e.am_short(8)
                                : co_await e.put_short(8);
      if (st == llp::Status::kOk) {
        ++sent;
      }
      if (st == llp::Status::kNoResource || rng.bernoulli(0.2)) {
        co_await t.node(0).worker.progress(1 + rng.uniform_u64(4));
      }
    }
    // Retire the unsignalled tail with a flush, then drain.
    while (co_await e.flush() == llp::Status::kNoResource) {
      co_await t.node(0).worker.progress();
    }
    while (e.outstanding() > 0) {
      co_await t.node(0).worker.progress();
    }
    out->data_msgs = sent;
    out->posted = e.posted();
  }(tb, ep, seed * 7919, res.get()));
  tb.sim().run();
  return res;
}

class Invariants
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

TEST_P(Invariants, EveryInjectedMessageIsAcked) {
  auto r = run_traffic(std::get<0>(GetParam()), std::get<1>(GetParam()));
  EXPECT_EQ(r->tb.node(0).nic.messages_injected(), r->posted);
  EXPECT_EQ(r->tb.node(0).nic.acks_received(), r->posted);
}

TEST_P(Invariants, PayloadBytesConserved) {
  auto r = run_traffic(std::get<0>(GetParam()), std::get<1>(GetParam()));
  // Every data message carries 8 bytes; the flush no-op carries none.
  EXPECT_EQ(r->tb.node(1).host.payload_bytes_delivered(), r->data_msgs * 8);
  EXPECT_EQ(r->tb.node(1).host.payload_writes(), r->posted);
}

TEST_P(Invariants, CompletionsMatchSignalPolicy) {
  auto r = run_traffic(std::get<0>(GetParam()), std::get<1>(GetParam()));
  const std::uint32_t period = std::get<1>(GetParam());
  // Every op is eventually retired; CQE count is floor(posted/period)
  // plus at most one forced flush CQE.
  EXPECT_EQ(r->tb.node(0).worker.tx_ops_retired(), r->posted);
  const auto cqes = r->tb.node(0).nic.cqes_written();
  EXPECT_GE(cqes, r->posted / period);
  EXPECT_LE(cqes, r->posted / period + 1);
}

TEST_P(Invariants, TracesAreTimeOrderedAndComplete) {
  auto r = run_traffic(std::get<0>(GetParam()), std::get<1>(GetParam()));
  const auto& recs = r->tb.analyzer().trace().records();
  // One downstream post per message, unique msg ids, per-direction
  // monotonic timestamps.
  std::map<pcie::Direction, TimePs> last;
  std::set<std::uint64_t> ids;
  std::uint64_t posts = 0;  // incl. the flush no-op (a 64 B PIO chunk)
  for (const auto& rec : recs) {
    auto it = last.find(rec.dir);
    if (it != last.end()) {
      EXPECT_GE(rec.t, it->second);
    }
    last[rec.dir] = rec.t;
    if (!rec.is_dllp && rec.dir == pcie::Direction::kDownstream &&
        rec.tlp_type == pcie::TlpType::kMemWrite && rec.bytes >= 64) {
      ++posts;
      EXPECT_TRUE(ids.insert(rec.msg_id).second)
          << "duplicate msg_id " << rec.msg_id;
    }
  }
  EXPECT_EQ(posts, r->posted);
}

TEST_P(Invariants, CreditsReturnAtQuiescence) {
  auto r = run_traffic(std::get<0>(GetParam()), std::get<1>(GetParam()));
  // After the run drains, every consumed credit has been replenished.
  const auto& credits = r->tb.node(0).rc.credits();
  EXPECT_EQ(credits.outstanding_headers(pcie::CreditClass::kPosted), 0);
  EXPECT_EQ(credits.outstanding_headers(pcie::CreditClass::kNonPosted), 0);
}

INSTANTIATE_TEST_SUITE_P(
    RandomTraffic, Invariants,
    ::testing::Combine(::testing::Values(11u, 22u, 33u, 44u),
                       ::testing::Values(1u, 4u, 64u)));

TEST(InvariantsEdge, RdmaWritesLeaveNoRxCompletions) {
  Testbed tb(scenario::presets::deterministic());
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn([](Testbed& t, llp::Endpoint& e) -> sim::Task<void> {
    for (int i = 0; i < 32; ++i) {
      while (co_await e.put_short(8) != llp::Status::kOk) {
        co_await t.node(0).worker.progress();
      }
    }
    while (e.outstanding() > 0) co_await t.node(0).worker.progress();
  }(tb, ep));
  tb.sim().run();
  EXPECT_EQ(tb.node(1).host.rx_cq().depth(), 0u);
  EXPECT_EQ(tb.node(1).host.payload_bytes_delivered(), 32u * 8u);
}

TEST(InvariantsEdge, MultiCoreMsgIdsNeverCollide) {
  Testbed tb(scenario::presets::deterministic());
  auto& wc1 = tb.add_core(0);
  auto& wc2 = tb.add_core(0);
  auto& ep1 = tb.add_endpoint(wc1, 0);
  auto& ep2 = tb.add_endpoint(wc2, 0);
  auto loop = [](Testbed::WorkerCore& wc, llp::Endpoint& e) -> sim::Task<void> {
    for (int i = 0; i < 64; ++i) {
      while (co_await e.put_short(8) != llp::Status::kOk) {
        co_await wc.worker.progress();
      }
    }
    while (e.outstanding() > 0) co_await wc.worker.progress();
  };
  tb.sim().spawn(loop(wc1, ep1));
  tb.sim().spawn(loop(wc2, ep2));
  tb.sim().run();  // the NIC asserts on duplicate in-flight msg ids
  EXPECT_EQ(tb.node(0).nic.messages_injected(), 128u);
}

}  // namespace
}  // namespace bb
