// Property: the what-if engine's predictions equal re-evaluating the
// analytical model on the correspondingly modified configuration --
// i.e., predicted and "executed" optimizations agree exactly at the
// model level, for every component and every reduction.

#include <gtest/gtest.h>

#include "core/whatif.hpp"
#include "scenario/config.hpp"

namespace bb::core {
namespace {

class WhatIfSweep : public ::testing::TestWithParam<double> {};

TEST_P(WhatIfSweep, PioPredictionMatchesModifiedConfig) {
  const double reduction = GetParam();
  const auto base_cfg = scenario::presets::thunderx2_cx4();
  const auto base = ComponentTable::from_config(base_cfg);
  const WhatIf w(base);

  auto fast = base_cfg;
  fast.cpu.pio_copy_64b.mean_ns *= (1.0 - reduction);
  const double base_lat = LatencyModel(base).e2e_latency_ns();
  const double new_lat =
      LatencyModel(ComponentTable::from_config(fast)).e2e_latency_ns();

  EXPECT_NEAR((base_lat - new_lat) / base_lat,
              WhatIf::speedup(base.pio_copy, reduction, base_lat), 1e-12);
}

TEST_P(WhatIfSweep, SwitchPredictionMatchesModifiedConfig) {
  const double reduction = GetParam();
  const auto base_cfg = scenario::presets::thunderx2_cx4();
  const auto base = ComponentTable::from_config(base_cfg);

  auto fast = base_cfg;
  fast.net.switch_latency_ns *= (1.0 - reduction);
  const double base_lat = LatencyModel(base).e2e_latency_ns();
  const double new_lat =
      LatencyModel(ComponentTable::from_config(fast)).e2e_latency_ns();

  EXPECT_NEAR((base_lat - new_lat) / base_lat,
              WhatIf::speedup(base.switch_lat, reduction, base_lat), 1e-12);
}

TEST_P(WhatIfSweep, IntegratedNicPresetMatchesPrediction) {
  const double reduction = GetParam();
  const auto base = ComponentTable::from_config(
      scenario::presets::thunderx2_cx4());
  const WhatIf w(base);

  const auto soc = ComponentTable::from_config(
      scenario::presets::integrated_nic(reduction));
  const double base_lat = LatencyModel(base).e2e_latency_ns();
  const double new_lat = LatencyModel(soc).e2e_latency_ns();

  // The preset scales PCIe and RC-to-MEM; prediction uses the aggregate
  // I/O component. Small deviation allowed: the preset scales the link
  // base (which also carries the Ack-path asymmetry of measured PCIe).
  EXPECT_NEAR((base_lat - new_lat) / base_lat,
              w.integrated_nic_latency_speedup(reduction), 0.005);
}

INSTANTIATE_TEST_SUITE_P(ReductionGrid, WhatIfSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(WhatIfPanels, EveryCurveCellIsConsistent) {
  const auto t = ComponentTable::from_config(
      scenario::presets::thunderx2_cx4());
  const WhatIf w(t);
  for (const auto& panel : {w.injection_cpu(), w.latency_cpu(),
                            w.latency_io(), w.latency_network()}) {
    for (const auto& curve : panel.curves) {
      ASSERT_EQ(curve.reductions.size(), curve.speedups.size());
      for (std::size_t i = 0; i < curve.speedups.size(); ++i) {
        EXPECT_NEAR(curve.speedups[i],
                    curve.reductions[i] * curve.component_ns /
                        panel.base_total_ns,
                    1e-12);
        EXPECT_GE(curve.speedups[i], 0.0);
        EXPECT_LT(curve.speedups[i], 1.0);
      }
    }
  }
}

TEST(WhatIfPanels, InjectionComponentsNestCorrectly) {
  // HLP = HLP_post + HLP_tx_prog and LLP = LLP_post + LLP_tx_prog: the
  // aggregate curves must equal the sum of their parts at every point.
  const auto t = ComponentTable::from_config(
      scenario::presets::thunderx2_cx4());
  const WhatIf w(t);
  const auto p = w.injection_cpu();
  auto curve = [&](const std::string& name) -> const WhatIfCurve& {
    for (const auto& c : p.curves) {
      if (c.component == name) return c;
    }
    throw std::runtime_error("missing curve " + name);
  };
  for (std::size_t i = 0; i < WhatIf::standard_grid().size(); ++i) {
    EXPECT_NEAR(curve("HLP").speedups[i],
                curve("HLP_post").speedups[i] +
                    curve("HLP_tx_prog").speedups[i],
                1e-12);
    EXPECT_NEAR(curve("LLP").speedups[i],
                curve("LLP_post").speedups[i] +
                    curve("LLP_tx_prog").speedups[i],
                1e-12);
  }
}

}  // namespace
}  // namespace bb::core
