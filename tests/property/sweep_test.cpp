// Parameterized sweeps: the models must track the simulator across
// message sizes and topologies, not just the paper's 8-byte / one-switch
// point.

#include <gtest/gtest.h>

#include "benchlib/am_lat.hpp"
#include "core/models.hpp"
#include "scenario/testbed.hpp"

namespace bb {
namespace {

// --- Message-size sweep ----------------------------------------------------

class SizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SizeSweep, LatencyModelTracksInlineSizes) {
  const std::uint32_t bytes = GetParam();
  auto cfg = scenario::presets::deterministic();
  scenario::Testbed tb(cfg);
  bench::AmLatBenchmark bench(tb, {.iterations = 100,
                                   .warmup = 10,
                                   .bytes = bytes,
                                   .speed_factor = 1.0,
                                   .capture_trace = false});
  const double observed = bench.run().adjusted_mean_ns;

  // Extend the §4.3 model to x bytes: extra PIO chunks on the post side,
  // RC-to-MEM(x) on the target side.
  auto table = core::ComponentTable::from_config(cfg);
  const std::uint32_t chunks =
      (cfg.endpoint.md_overhead_bytes + bytes + 63) / 64;
  const double model =
      core::LatencyModel(table).llp_latency_ns() +
      (chunks - 1) * table.pio_copy +
      (cfg.rc.rc_to_mem(bytes).to_ns() - table.rc_to_mem_8b);

  // The simulator adds NIC processing + serialization the model omits;
  // the gap stays small and positive across the inline range.
  EXPECT_GT(observed, model) << bytes << " bytes";
  EXPECT_LT(observed - model, 140.0) << bytes << " bytes";
}

INSTANTIATE_TEST_SUITE_P(InlineSizes, SizeSweep,
                         ::testing::Values(8u, 16u, 32u, 64u, 96u, 128u,
                                           160u));

// --- Switch-count sweep ------------------------------------------------------

class SwitchSweep : public ::testing::TestWithParam<int> {};

TEST_P(SwitchSweep, LatencyAffineInHops) {
  const int hops = GetParam();
  auto cfg = scenario::presets::deterministic();
  cfg.net.num_switches = hops;
  scenario::Testbed tb(cfg);
  bench::AmLatBenchmark bench(tb, {.iterations = 100,
                                   .warmup = 10,
                                   .speed_factor = 1.0,
                                   .capture_trace = false});
  const double observed = bench.run().adjusted_mean_ns;

  auto base_cfg = scenario::presets::deterministic();
  base_cfg.net.num_switches = 0;
  scenario::Testbed tb0(base_cfg);
  bench::AmLatBenchmark bench0(tb0, {.iterations = 100,
                                     .warmup = 10,
                                     .speed_factor = 1.0,
                                     .capture_trace = false});
  const double direct = bench0.run().adjusted_mean_ns;

  EXPECT_NEAR(observed - direct, hops * 108.0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Hops, SwitchSweep, ::testing::Values(0, 1, 2, 4));

// --- Moderation-period sweep -------------------------------------------------

class PeriodSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PeriodSweep, CqeCountMatchesPolicyExactly) {
  const std::uint32_t period = GetParam();
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.signal.period = period;
  scenario::Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  const std::uint32_t msgs = period * 5;  // aligned: no flush needed
  tb.sim().spawn([](scenario::Testbed& t, llp::Endpoint& e,
                    std::uint32_t n) -> sim::Task<void> {
    for (std::uint32_t i = 0; i < n; ++i) {
      while (co_await e.put_short(8) != llp::Status::kOk) {
        co_await t.node(0).worker.progress();
      }
    }
    while (e.outstanding() > 0) co_await t.node(0).worker.progress();
  }(tb, ep, msgs));
  tb.sim().run();
  EXPECT_EQ(tb.node(0).nic.cqes_written(), 5u);
  EXPECT_EQ(tb.node(0).worker.tx_ops_retired(), msgs);
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodSweep,
                         ::testing::Values(1u, 2u, 8u, 16u, 64u, 128u));

}  // namespace
}  // namespace bb
