// Property tests: the analytical models must track the simulator across
// the configuration space, not just at the paper's calibration point.
// Each case draws a random (but deterministic-per-seed) machine, runs
// the real benchmark loop, and checks the model's prediction.

#include <gtest/gtest.h>

#include "benchlib/am_lat.hpp"
#include "benchlib/osu.hpp"
#include "benchlib/put_bw.hpp"
#include "common/rng.hpp"
#include "core/models.hpp"
#include "scenario/testbed.hpp"

namespace bb {
namespace {

/// A random machine: every major component time scaled independently,
/// jitter stripped so runs are exactly repeatable.
scenario::SystemConfig random_config(std::uint64_t seed) {
  Rng rng(seed);
  auto cfg = scenario::presets::deterministic();
  auto scale = [&](double lo, double hi) { return rng.uniform(lo, hi); };

  cfg.cpu.md_setup.mean_ns *= scale(0.5, 2.0);
  cfg.cpu.barrier_store_md.mean_ns *= scale(0.5, 2.0);
  cfg.cpu.barrier_store_dbc.mean_ns *= scale(0.5, 2.0);
  cfg.cpu.pio_copy_64b.mean_ns *= scale(0.3, 2.0);
  cfg.cpu.llp_post_misc.mean_ns *= scale(0.5, 2.0);
  cfg.cpu.llp_prog.mean_ns *= scale(0.5, 2.0);
  cfg.cpu.mpich_isend.mean_ns *= scale(0.5, 2.0);
  cfg.cpu.mpich_rx_callback.mean_ns *= scale(0.5, 2.0);
  cfg.cpu.ucp_rx_callback.mean_ns *= scale(0.5, 2.0);
  cfg.cpu.hlp_tx_prog.mean_ns *= scale(0.5, 2.0);

  cfg.net.wire_latency_ns = scale(100.0, 500.0);
  cfg.net.switch_latency_ns = scale(30.0, 200.0);
  cfg.net.num_switches = static_cast<int>(rng.uniform_u64(3));
  cfg.link.base_latency_ns = scale(60.0, 250.0);
  cfg.rc.rc_to_mem_base_ns = scale(100.0, 400.0);
  return cfg;
}

class ModelVsSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelVsSim, LlpLatencyModelTracksAmLat) {
  const auto cfg = random_config(GetParam());
  scenario::Testbed tb(cfg);
  bench::AmLatBenchmark bench(tb, {.iterations = 150,
                                   .warmup = 20,
                                   .speed_factor = 1.0,
                                   .capture_trace = false});
  const double observed = bench.run().adjusted_mean_ns;
  const double model = core::LatencyModel(
                           core::ComponentTable::from_config(cfg))
                           .llp_latency_ns();
  // The simulator adds what the model omits (NIC processing, discovery
  // slack, serialization): a small positive, bounded offset.
  EXPECT_GT(observed, model);
  EXPECT_LT(observed - model, 120.0)
      << "seed " << GetParam() << " model " << model << " observed "
      << observed;
}

TEST_P(ModelVsSim, Eq2TracksMessageRate) {
  const auto cfg = random_config(GetParam());
  scenario::Testbed tb(cfg);
  bench::OsuMessageRate bench(tb, {.windows = 60,
                                   .warmup_windows = 10,
                                   .speed_factor = 1.0});
  const double observed = bench.run().cpu_per_msg_ns;
  auto table = core::ComponentTable::from_config(cfg);
  table.misc_overall_inj = 0.0;  // busy posts are emergent, not configured
  const double model = core::InjectionModel(table).overall_injection_ns();
  EXPECT_NEAR(observed, model, model * 0.05)
      << "seed " << GetParam();
}

TEST_P(ModelVsSim, Eq1TracksPutBw) {
  const auto cfg = random_config(GetParam());
  scenario::Testbed tb(cfg);
  bench::PutBwBenchmark bench(tb, {.messages = 3000,
                                   .warmup = 500,
                                   .speed_factor = 1.0});
  const double observed = bench.run().nic_deltas.summarize().mean;
  const double model = core::InjectionModel(
                           core::ComponentTable::from_config(cfg))
                           .llp_injection_ns();
  // Eq. 1 over-counts slightly (its Misc assumes a busy post on every
  // iteration); the observation lands between the no-busy floor and the
  // model.
  const double floor = model - cfg.cpu.busy_post.mean_ns;
  EXPECT_GE(observed, floor * 0.995) << "seed " << GetParam();
  EXPECT_LE(observed, model * 1.01) << "seed " << GetParam();
}

TEST_P(ModelVsSim, E2eLatencyModelTracksOsu) {
  const auto cfg = random_config(GetParam());
  scenario::Testbed tb(cfg);
  bench::OsuLatency bench(tb, {.iterations = 120,
                               .warmup = 20,
                               .speed_factor = 1.0});
  const double observed = bench.run().adjusted_mean_ns;
  const double model = core::LatencyModel(
                           core::ComponentTable::from_config(cfg))
                           .e2e_latency_ns();
  // Un-modelled hardware effects add; wait-entry overlap subtracts.
  EXPECT_NEAR(observed, model, model * 0.08) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomMachines, ModelVsSim,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace bb
