#include "model/alpha_beta.hpp"

#include <gtest/gtest.h>

#include <random>

#include "benchlib/osu_coll.hpp"
#include "scenario/cluster.hpp"

namespace bb::model {
namespace {

double simulate(const scenario::SystemConfig& cfg, int ranks,
                bench::OsuColl::Kind kind, std::uint32_t bytes) {
  scenario::Cluster cl(cfg, ranks);
  coll::World world(cl);
  bench::OsuCollConfig c;
  c.bytes = bytes;
  c.iterations = 6;
  c.warmup = 2;
  bench::OsuColl b(world, kind, c);
  return b.run().mean_ns();
}

TEST(CollModel, MonotoneInSizeAndRanks) {
  const scenario::SystemConfig cfg = scenario::presets::deterministic();
  CollModel m(cfg);
  EXPECT_LT(m.allreduce_ns(4, 8), m.allreduce_ns(4, 4096));
  EXPECT_LT(m.allreduce_ns(2, 64), m.allreduce_ns(16, 64));
  EXPECT_LT(m.bcast_ns(4, 8), m.bcast_ns(4, 4096));
  EXPECT_LT(m.barrier_ns(2), m.barrier_ns(16));
  EXPECT_LT(m.allgather_ns(4, 8), m.allgather_ns(4, 1024));
}

TEST(CollModel, WhatIfOverlaysMoveTheModel) {
  const scenario::SystemConfig base = scenario::presets::deterministic();
  const scenario::SystemConfig fast =
      base.with(scenario::overlays::integrated_nic(0.5),
                scenario::overlays::genz_switch(30.0));
  CollModel mb(base), mf(fast);
  // Cheaper I/O and switching must shrink every collective's forecast.
  EXPECT_LT(mf.allreduce_ns(8, 1024), mb.allreduce_ns(8, 1024));
  EXPECT_LT(mf.bcast_ns(8, 4096), mb.bcast_ns(8, 4096));
  EXPECT_LT(mf.barrier_ns(8), mb.barrier_ns(8));
}

// Property: across randomized rank counts and sizes the analytical model
// tracks the simulator within a stated band. The band is wider than the
// +-10% the calibrated 4/8-rank OSU sweep guarantees (bench_coll_osu)
// because arbitrary rank counts include fold/unfold and uneven-chunk
// schedules the model only approximates: +-15%.
TEST(CollModel, TracksSimulatorAcrossRandomizedShapes) {
  const scenario::SystemConfig cfg = scenario::presets::deterministic();
  CollModel model(cfg);
  std::mt19937 rng(20260807u);  // fixed seed: deterministic test
  std::uniform_int_distribution<int> rank_dist(2, 16);
  std::uniform_int_distribution<std::uint32_t> elem_dist(1, 512);  // *8B

  const std::array<bench::OsuColl::Kind, 3> kinds = {
      bench::OsuColl::Kind::kBcast, bench::OsuColl::Kind::kAllgather,
      bench::OsuColl::Kind::kAllreduce};
  for (int trial = 0; trial < 9; ++trial) {
    const int ranks = rank_dist(rng);
    const std::uint32_t bytes = 8 * elem_dist(rng);
    const bench::OsuColl::Kind kind = kinds[trial % kinds.size()];
    const double sim = simulate(cfg, ranks, kind, bytes);
    double mdl = 0.0;
    switch (kind) {
      case bench::OsuColl::Kind::kBcast:
        mdl = model.bcast_ns(ranks, bytes);
        break;
      case bench::OsuColl::Kind::kAllgather:
        mdl = model.allgather_ns(ranks, bytes);
        break;
      default:
        mdl = model.allreduce_ns(ranks, bytes);
        break;
    }
    EXPECT_NEAR(mdl / sim, 1.0, 0.15)
        << "kind=" << static_cast<int>(kind) << " ranks=" << ranks
        << " bytes=" << bytes << " sim=" << sim << " model=" << mdl;
  }
}

}  // namespace
}  // namespace bb::model
