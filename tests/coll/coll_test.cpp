#include "coll/coll.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "scenario/cluster.hpp"

namespace bb::coll {
namespace {

// Correctness across 2-16 ranks, power-of-two and not, for both
// algorithms of every primitive. Payload values are small integers so
// floating-point reduction order cannot perturb the expected sums.

std::unique_ptr<scenario::Cluster> make_cluster(int n) {
  return std::make_unique<scenario::Cluster>(scenario::presets::deterministic(),
                                             n);
}

const int kRankCounts[] = {2, 3, 4, 5, 7, 8, 13, 16};

TEST(CollBarrier, BothAlgorithmsComplete) {
  for (int n : {2, 3, 5, 8}) {
    for (Algo a : {Algo::kDissemination, Algo::kRingToken}) {
      auto cl = make_cluster(n);
      World world(*cl);
      int done = 0;
      for (int r = 0; r < n; ++r) {
        cl->sim().spawn([](Communicator& c, Algo algo,
                           int& d) -> sim::Task<void> {
          co_await barrier(c, algo);
          ++d;
        }(world.comm(r), a, done));
      }
      cl->sim().run();
      EXPECT_EQ(done, n) << "n=" << n << " algo=" << algo_name(a);
    }
  }
}

TEST(CollBarrier, NoRankLeavesBeforeLastArrives) {
  // Rank 1 arrives late (a long compute delay); nobody may exit the
  // barrier before rank 1 entered it.
  const int n = 4;
  auto cl = make_cluster(n);
  World world(*cl);
  const double kDelayNs = 500000.0;
  std::vector<double> exit_ns(static_cast<std::size_t>(n), 0.0);
  double enter1_ns = 0.0;
  for (int r = 0; r < n; ++r) {
    cl->sim().spawn([](scenario::Cluster& c, Communicator& comm, int rank,
                       double delay, double& enter1,
                       std::vector<double>& exits) -> sim::Task<void> {
      if (rank == 1) {
        co_await c.sim().delay(TimePs::from_ns(delay));
        enter1 = c.sim().now().to_ns();
      }
      co_await barrier(comm);
      exits[static_cast<std::size_t>(rank)] = c.sim().now().to_ns();
    }(*cl, world.comm(r), r, kDelayNs, enter1_ns, exit_ns));
  }
  cl->sim().run();
  EXPECT_GE(enter1_ns, kDelayNs);
  for (int r = 0; r < n; ++r) {
    EXPECT_GT(exit_ns[static_cast<std::size_t>(r)], enter1_ns)
        << "rank " << r << " left before the last rank arrived";
  }
}

void check_bcast(int n, std::uint32_t bytes, Algo a, int root) {
  auto cl = make_cluster(n);
  World world(*cl);
  const std::uint32_t elems = bytes / 8;
  std::vector<std::vector<double>> got(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    cl->sim().spawn([](Communicator& c, int rt, std::uint32_t b,
                       std::uint32_t e, Algo algo,
                       std::vector<double>& out) -> sim::Task<void> {
      std::vector<double> v;
      if (c.rank() == rt) {
        v.resize(e);
        for (std::uint32_t i = 0; i < e; ++i) {
          v[i] = static_cast<double>(i + 7);
        }
      }
      co_await bcast(c, rt, b, v, algo);
      out = std::move(v);
    }(world.comm(r), root, bytes, elems, a, got[static_cast<std::size_t>(r)]));
  }
  cl->sim().run();
  for (int r = 0; r < n; ++r) {
    const auto& v = got[static_cast<std::size_t>(r)];
    ASSERT_EQ(v.size(), elems) << "n=" << n << " rank=" << r
                               << " algo=" << algo_name(a);
    for (std::uint32_t i = 0; i < elems; ++i) {
      EXPECT_EQ(v[i], static_cast<double>(i + 7))
          << "n=" << n << " rank=" << r << " elem=" << i;
    }
  }
}

TEST(CollBcast, BinomialAllRankCounts) {
  for (int n : kRankCounts) check_bcast(n, 64, Algo::kBinomialTree, 0);
}

TEST(CollBcast, ChainAllRankCounts) {
  // 4 KiB payload: four pipeline segments at the default 1 KiB segment.
  for (int n : kRankCounts) check_bcast(n, 4096, Algo::kChain, 0);
}

TEST(CollBcast, NonZeroRoot) {
  check_bcast(5, 64, Algo::kBinomialTree, 3);
  check_bcast(5, 4096, Algo::kChain, 2);
}

void check_allgather(int n, std::uint32_t bytes_per_rank, Algo a) {
  auto cl = make_cluster(n);
  World world(*cl);
  const std::uint32_t elems = bytes_per_rank / 8;
  std::vector<std::vector<std::vector<double>>> got(
      static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    cl->sim().spawn(
        [](Communicator& c, std::uint32_t b, std::uint32_t e, Algo algo,
           std::vector<std::vector<double>>& out) -> sim::Task<void> {
          std::vector<double> mine(e);
          for (std::uint32_t i = 0; i < e; ++i) {
            mine[i] = static_cast<double>(c.rank() * 100 + static_cast<int>(i));
          }
          co_await allgather(c, b, mine, out, algo);
        }(world.comm(r), bytes_per_rank, elems, a,
          got[static_cast<std::size_t>(r)]));
  }
  cl->sim().run();
  for (int r = 0; r < n; ++r) {
    const auto& out = got[static_cast<std::size_t>(r)];
    ASSERT_EQ(out.size(), static_cast<std::size_t>(n))
        << "n=" << n << " rank=" << r << " algo=" << algo_name(a);
    for (int s = 0; s < n; ++s) {
      const auto& block = out[static_cast<std::size_t>(s)];
      ASSERT_EQ(block.size(), elems) << "n=" << n << " rank=" << r
                                     << " block=" << s;
      for (std::uint32_t i = 0; i < elems; ++i) {
        EXPECT_EQ(block[i], static_cast<double>(s * 100 + static_cast<int>(i)))
            << "n=" << n << " rank=" << r << " block=" << s;
      }
    }
  }
}

TEST(CollAllgather, BruckAllRankCounts) {
  for (int n : kRankCounts) check_allgather(n, 32, Algo::kBruck);
}

TEST(CollAllgather, RingAllRankCounts) {
  for (int n : kRankCounts) check_allgather(n, 1024, Algo::kRingAllgather);
}

void check_allreduce(int n, std::uint32_t bytes, Algo a, ReduceOp op) {
  auto cl = make_cluster(n);
  World world(*cl);
  const std::uint32_t elems = bytes / 8;
  std::vector<std::vector<double>> got(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    cl->sim().spawn([](Communicator& c, std::uint32_t b, std::uint32_t e,
                       Algo algo, ReduceOp o,
                       std::vector<double>& out) -> sim::Task<void> {
      std::vector<double> v(e);
      for (std::uint32_t i = 0; i < e; ++i) {
        v[i] = static_cast<double>((c.rank() + 1) * (static_cast<int>(i) + 1));
      }
      co_await allreduce(c, b, v, o, algo);
      out = std::move(v);
    }(world.comm(r), bytes, elems, a, op, got[static_cast<std::size_t>(r)]));
  }
  cl->sim().run();
  for (int r = 0; r < n; ++r) {
    const auto& v = got[static_cast<std::size_t>(r)];
    ASSERT_EQ(v.size(), elems) << "n=" << n << " rank=" << r
                               << " algo=" << algo_name(a);
    for (std::uint32_t i = 0; i < elems; ++i) {
      const double expect =
          op == ReduceOp::kSum
              ? static_cast<double>(n * (n + 1) / 2 * (static_cast<int>(i) + 1))
              : static_cast<double>(n * (static_cast<int>(i) + 1));
      EXPECT_EQ(v[i], expect) << "n=" << n << " rank=" << r << " elem=" << i
                              << " algo=" << algo_name(a);
    }
  }
}

TEST(CollAllreduce, RecursiveDoublingAllRankCounts) {
  for (int n : kRankCounts) check_allreduce(n, 64, Algo::kRecursiveDoubling,
                                            ReduceOp::kSum);
}

TEST(CollAllreduce, RingAllRankCounts) {
  for (int n : kRankCounts) check_allreduce(n, 2048, Algo::kRingAllreduce,
                                            ReduceOp::kSum);
}

TEST(CollAllreduce, RingFewerElementsThanRanks) {
  // 3 elements over 8 ranks: five chunks are empty and ride the 8-byte
  // minimum slot; results must still be exact.
  check_allreduce(8, 24, Algo::kRingAllreduce, ReduceOp::kSum);
}

TEST(CollAllreduce, MaxOperator) {
  check_allreduce(5, 64, Algo::kRecursiveDoubling, ReduceOp::kMax);
  check_allreduce(5, 64, Algo::kRingAllreduce, ReduceOp::kMax);
}

TEST(CollAllreduce, RendezvousSizedVectors) {
  // 2 KiB vectors exchanged whole by recursive doubling cross the 1 KiB
  // rendezvous threshold: RTS/CTS/put/FIN across multiple peers.
  check_allreduce(4, 2048, Algo::kRecursiveDoubling, ReduceOp::kSum);
  check_allreduce(3, 2048, Algo::kRecursiveDoubling, ReduceOp::kSum);
}

TEST(CollSelection, ThresholdsFollowTuning) {
  CollTuning t;
  EXPECT_EQ(resolve_allreduce(t, 8, t.allreduce_ring_min_bytes - 8),
            Algo::kRecursiveDoubling);
  EXPECT_EQ(resolve_allreduce(t, 8, t.allreduce_ring_min_bytes),
            Algo::kRingAllreduce);
  EXPECT_EQ(resolve_bcast(t, 8, t.bcast_chain_min_bytes - 8),
            Algo::kBinomialTree);
  EXPECT_EQ(resolve_bcast(t, 8, t.bcast_chain_min_bytes), Algo::kChain);
  EXPECT_EQ(resolve_allgather(t, 8, t.allgather_ring_min_bytes - 8),
            Algo::kBruck);
  EXPECT_EQ(resolve_allgather(t, 8, t.allgather_ring_min_bytes),
            Algo::kRingAllgather);
  EXPECT_EQ(resolve_barrier(t, 8), Algo::kDissemination);
  CollTuning ring;
  ring.barrier_ring_max_ranks = 8;
  EXPECT_EQ(resolve_barrier(ring, 8), Algo::kRingToken);
  EXPECT_EQ(resolve_barrier(ring, 9), Algo::kDissemination);
}

TEST(CollSelection, OverlayRetunesThresholds) {
  CollTuning t;
  t.allreduce_ring_min_bytes = 1u << 20;
  const scenario::SystemConfig cfg =
      scenario::presets::deterministic().with(scenario::overlays::coll_tuning(t));
  EXPECT_EQ(cfg.coll.allreduce_ring_min_bytes, 1u << 20);
  EXPECT_EQ(resolve_allreduce(cfg.coll, 8, 4096), Algo::kRecursiveDoubling);
}

}  // namespace
}  // namespace bb::coll
