// Collectives over a lossy fabric (docs/TRANSPORT.md): the NIC's RC
// transport recovers drops underneath the schedule, so reductions stay
// exact; the CollTuning wait watchdog converts what would be a hang into
// a diagnosable kTimedOut.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coll/coll.hpp"
#include "scenario/cluster.hpp"

namespace bb::coll {
namespace {

std::unique_ptr<scenario::Cluster> make_lossy_cluster(int n, double loss) {
  return std::make_unique<scenario::Cluster>(
      scenario::presets::deterministic().with(
          scenario::overlays::wire_loss(loss)),
      n);
}

void check_allreduce_lossy(int n, std::uint32_t bytes, Algo a, double loss,
                           bool expect_drops) {
  auto cl = make_lossy_cluster(n, loss);
  World world(*cl);
  const std::uint32_t elems = bytes / 8;
  std::vector<std::vector<double>> got(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    cl->sim().spawn([](Communicator& c, std::uint32_t b, std::uint32_t e,
                       Algo algo, std::vector<double>& out) -> sim::Task<void> {
      std::vector<double> v(e);
      for (std::uint32_t i = 0; i < e; ++i) {
        v[i] = static_cast<double>((c.rank() + 1) * (static_cast<int>(i) + 1));
      }
      co_await allreduce(c, b, v, ReduceOp::kSum, algo);
      out = std::move(v);
    }(world.comm(r), bytes, elems, a, got[static_cast<std::size_t>(r)]));
  }
  cl->sim().run();

  // Reductions stay exact: the transport hid every loss.
  for (int r = 0; r < n; ++r) {
    const auto& v = got[static_cast<std::size_t>(r)];
    ASSERT_EQ(v.size(), elems) << "rank " << r << " algo=" << algo_name(a);
    for (std::uint32_t i = 0; i < elems; ++i) {
      const double expect =
          static_cast<double>(n * (n + 1) / 2 * (static_cast<int>(i) + 1));
      EXPECT_EQ(v[i], expect)
          << "rank " << r << " elem " << i << " algo=" << algo_name(a);
    }
  }
  const net::TransportStats s = cl->net_stats();
  EXPECT_EQ(s.packets_sent + s.packets_duplicated,
            s.packets_delivered + s.packets_dropped + s.packets_corrupted);
  EXPECT_EQ(s.qp_errors, 0u);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(cl->node(i).nic.tx_unacked(), 0u) << "node " << i;
  }
  if (expect_drops) {
    EXPECT_GT(s.packets_dropped, 0u);
    EXPECT_GE(s.retransmits, s.packets_dropped);
  }
}

TEST(CollFault, AllreduceExactUnderMildWireLoss) {
  // The acceptance rate of the issue: loss 1e-3, both algorithms, no
  // hangs, exact results.
  check_allreduce_lossy(8, 256, Algo::kRecursiveDoubling, 1e-3,
                        /*expect_drops=*/false);
  check_allreduce_lossy(8, 2048, Algo::kRingAllreduce, 1e-3,
                        /*expect_drops=*/false);
}

TEST(CollFault, AllreduceExactUnderHeavyWireLoss) {
  // 1% loss guarantees the recovery machinery actually ran (seeded, so
  // the drop count is deterministic and nonzero).
  check_allreduce_lossy(8, 2048, Algo::kRingAllreduce, 1e-2,
                        /*expect_drops=*/true);
}

TEST(CollFault, WaitWatchdogTurnsAHangIntoTimedOut) {
  // Rank 0 waits on a receive no one will ever send. Without the
  // watchdog this spins forever; with it the wait aborts with a
  // diagnosable status and the simulation drains.
  coll::CollTuning t;
  t.wait_timeout_us = 50.0;  // short watchdog to keep the test cheap
  auto cl = std::make_unique<scenario::Cluster>(
      scenario::presets::deterministic().with(
          scenario::overlays::coll_tuning(t)),
      2);
  World world(*cl);
  common::Status st = common::Status::kOk;
  cl->sim().spawn([](Communicator& c, common::Status& out) -> sim::Task<void> {
    hlp::Request* r = c.irecv(1, 8);
    out = co_await c.wait(r);
  }(world.comm(0), st));
  cl->sim().run();
  EXPECT_EQ(st, common::Status::kTimedOut);
}

TEST(CollFault, WaitallWatchdogAlsoFires) {
  coll::CollTuning t;
  t.wait_timeout_us = 50.0;
  auto cl = std::make_unique<scenario::Cluster>(
      scenario::presets::deterministic().with(
          scenario::overlays::coll_tuning(t)),
      2);
  World world(*cl);
  common::Status st = common::Status::kOk;
  cl->sim().spawn([](Communicator& c, common::Status& out) -> sim::Task<void> {
    std::vector<hlp::Request*> reqs = {c.irecv(1, 8), c.irecv(1, 8)};
    out = co_await c.waitall(reqs);
  }(world.comm(0), st));
  cl->sim().run();
  EXPECT_EQ(st, common::Status::kTimedOut);
}

}  // namespace
}  // namespace bb::coll
