#include "benchlib/osu.hpp"

#include <gtest/gtest.h>

#include "core/models.hpp"
#include "scenario/testbed.hpp"

namespace bb::bench {
namespace {

TEST(OsuMessageRate, WithinOnePercentOfEq2) {
  // §6's validation: Eq. 2 (264.97 ns) within ~1% of the observed inverse
  // message rate.
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  OsuMessageRate bench(tb, {.windows = 150, .warmup_windows = 20});
  const InjectionResult res = bench.run();

  const auto model = core::InjectionModel(
      core::ComponentTable::from_config(tb.config()));
  EXPECT_LE(std::abs(model.overall_injection_ns() - res.cpu_per_msg_ns) /
                res.cpu_per_msg_ns,
            0.015)
      << "model " << model.overall_injection_ns() << " observed "
      << res.cpu_per_msg_ns;
  EXPECT_NEAR(res.cpu_per_msg_ns, 263.91, 263.91 * 0.02);
}

TEST(OsuMessageRate, MessageRateDerived) {
  scenario::Testbed tb(scenario::presets::deterministic());
  OsuMessageRate bench(tb, {.windows = 50, .warmup_windows = 5,
                            .speed_factor = 1.0});
  const InjectionResult res = bench.run();
  EXPECT_NEAR(res.message_rate(), 1e9 / res.cpu_per_msg_ns, 1.0);
  // ~3.7-3.8 million messages per second on the paper's testbed.
  EXPECT_GT(res.message_rate(), 3.4e6);
  EXPECT_LT(res.message_rate(), 4.2e6);
}

TEST(OsuMessageRate, UnsignaledCompletionsAmortizeLlpProgress) {
  // With c = 64, the NIC writes ~1 CQE per window of 64.
  scenario::Testbed tb(scenario::presets::deterministic());
  OsuMessageRate bench(tb, {.windows = 40, .warmup_windows = 4,
                            .speed_factor = 1.0});
  (void)bench.run();
  const auto cqes = tb.node(0).nic.cqes_written();
  const auto msgs = tb.node(0).nic.messages_injected();
  EXPECT_NEAR(static_cast<double>(msgs) / static_cast<double>(cqes), 64.0,
              1.0);
}

TEST(OsuMessageRate, SignaledEveryOpIsSlower) {
  // Ablation direction: per-message CQEs reintroduce LLP_prog per op.
  scenario::Testbed tb1(scenario::presets::deterministic());
  OsuMessageRate moderated(tb1, {.windows = 40, .warmup_windows = 4,
                                 .signal_period = 64, .speed_factor = 1.0});
  scenario::Testbed tb2(scenario::presets::deterministic());
  OsuMessageRate signaled(tb2, {.windows = 40, .warmup_windows = 4,
                                .signal_period = 1, .speed_factor = 1.0});
  const double fast = moderated.run().cpu_per_msg_ns;
  const double slow = signaled.run().cpu_per_msg_ns;
  EXPECT_GT(slow, fast + 30.0);  // ~ one LLP_prog per op re-appears
}

TEST(OsuMessageRate, TraceCaptureYieldsNicDeltas) {
  scenario::Testbed tb(scenario::presets::deterministic());
  OsuMessageRate bench(tb, {.windows = 30, .warmup_windows = 5,
                            .speed_factor = 1.0, .capture_trace = true});
  const InjectionResult res = bench.run();
  ASSERT_GT(res.nic_deltas.size(), 100u);
  // NIC inter-arrival tracks the CPU per-message time in steady state.
  EXPECT_NEAR(res.nic_deltas.summarize().mean, res.cpu_per_msg_ns,
              res.cpu_per_msg_ns * 0.06);
}

TEST(OsuLatency, SpeedFactorScalesCpuShareOnly) {
  scenario::Testbed tb1(scenario::presets::deterministic());
  OsuLatency slow(tb1, {.iterations = 150, .warmup = 20, .speed_factor = 1.0});
  scenario::Testbed tb2(scenario::presets::deterministic());
  OsuLatency fast(tb2, {.iterations = 150, .warmup = 20, .speed_factor = 0.8});
  const double l_slow = slow.run().adjusted_mean_ns;
  const double l_fast = fast.run().adjusted_mean_ns;
  // Only the CPU share (~520 ns of the one-way path) scales.
  EXPECT_LT(l_fast, l_slow);
  EXPECT_GT(l_fast, l_slow - 520.0 * 0.25);
}

TEST(OsuLatency, WithinFourPercentOfE2eModel) {
  // §6's validation: modelled 1387.02 vs observed 1336 (within 4%).
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  OsuLatency bench(tb, {.iterations = 1500, .warmup = 150});
  const LatencyResult res = bench.run();
  const auto model =
      core::LatencyModel(core::ComponentTable::from_config(tb.config()));
  EXPECT_LE(std::abs(model.e2e_latency_ns() - res.adjusted_mean_ns) /
                res.adjusted_mean_ns,
            0.04)
      << "model " << model.e2e_latency_ns() << " observed "
      << res.adjusted_mean_ns;
}

TEST(OsuLatency, ReceiverWaitEntryOverlapsFlight) {
  // The blocking-wait entry cost is spent while the message is in flight;
  // removing the overlap (by making the fixed wait cost tiny) must NOT
  // speed up the observed latency by the full 208 ns.
  auto base_cfg = scenario::presets::deterministic();
  scenario::Testbed tb1(base_cfg);
  OsuLatency b1(tb1, {.iterations = 300, .warmup = 30, .speed_factor = 1.0});
  const double with_entry = b1.run().adjusted_mean_ns;

  auto thin = scenario::presets::deterministic();
  thin.cpu.mpich_wait_fixed.mean_ns = 1.0;
  scenario::Testbed tb2(thin);
  OsuLatency b2(tb2, {.iterations = 300, .warmup = 30, .speed_factor = 1.0});
  const double without_entry = b2.run().adjusted_mean_ns;

  EXPECT_LT(with_entry - without_entry, 208.41 * 0.75);
}

}  // namespace
}  // namespace bb::bench
