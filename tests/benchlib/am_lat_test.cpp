#include "benchlib/am_lat.hpp"

#include <gtest/gtest.h>

#include "core/models.hpp"
#include "scenario/testbed.hpp"

namespace bb::bench {
namespace {

TEST(AmLat, AdjustedLatencyWithinFivePercentOfModel) {
  // The §4.3 validation: the modelled 1135.8 ns within 5% of the
  // measurement-update-adjusted observed latency.
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  AmLatBenchmark bench(tb, {.iterations = 2000, .warmup = 200});
  const LatencyResult res = bench.run();

  const auto model =
      core::LatencyModel(core::ComponentTable::from_config(tb.config()));
  EXPECT_LE(std::abs(model.llp_latency_ns() - res.adjusted_mean_ns) /
                res.adjusted_mean_ns,
            0.05)
      << "model " << model.llp_latency_ns() << " observed "
      << res.adjusted_mean_ns;
}

TEST(AmLat, RawExceedsAdjustedByHalfUpdate) {
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  AmLatBenchmark bench(tb, {.iterations = 500, .warmup = 100});
  const LatencyResult res = bench.run();
  EXPECT_NEAR(res.half_rtt_raw.summarize().mean - res.adjusted_mean_ns,
              49.69 / 2.0, 1e-6);
}

TEST(AmLat, ObservedAboveModelDueToUnmodeledNicProcessing) {
  // The analytical model omits NIC processing; the simulated observation
  // must sit above it (same direction of error a real testbed shows for
  // un-modelled terms).
  scenario::Testbed tb(scenario::presets::deterministic());
  AmLatBenchmark bench(tb, {.iterations = 200, .warmup = 50});
  const LatencyResult res = bench.run();
  const auto model =
      core::LatencyModel(core::ComponentTable::from_config(tb.config()));
  EXPECT_GT(res.adjusted_mean_ns, model.llp_latency_ns());
}

TEST(AmLat, SwitchDifferencingRecovers108ns) {
  // §4.3's switch methodology: latency with one switch minus latency with
  // a direct connection.
  auto with_switch = scenario::presets::deterministic();
  auto direct = scenario::presets::deterministic();
  direct.net.num_switches = 0;

  scenario::Testbed tb1(with_switch);
  AmLatBenchmark b1(tb1, {.iterations = 200, .warmup = 20});
  scenario::Testbed tb2(direct);
  AmLatBenchmark b2(tb2, {.iterations = 200, .warmup = 20});
  const double delta =
      b1.run().adjusted_mean_ns - b2.run().adjusted_mean_ns;
  EXPECT_NEAR(delta, 108.0, 1.0);
}

TEST(AmLat, TraceContainsPingsAndCompletions) {
  scenario::Testbed tb(scenario::presets::deterministic());
  AmLatBenchmark bench(tb, {.iterations = 20, .warmup = 2});
  (void)bench.run();
  const auto& trace = bench.trace();
  EXPECT_GT(trace.downstream_writes(64).size(), 20u);   // pings
  EXPECT_GT(trace.upstream_writes(64).size(), 20u);     // send CQEs
  // Pong payloads: upstream 8 B writes.
  const auto pongs = trace.filter([](const pcie::TraceRecord& r) {
    return !r.is_dllp && r.dir == pcie::Direction::kUpstream && r.bytes == 8;
  });
  EXPECT_GT(pongs.size(), 20u);
}

}  // namespace
}  // namespace bb::bench
