#include "benchlib/put_bw.hpp"

#include <gtest/gtest.h>

#include "core/models.hpp"
#include "scenario/testbed.hpp"

namespace bb::bench {
namespace {

TEST(PutBw, ObservedInjectionWithinFivePercentOfModel) {
  // The §4.2 validation: Eq. 1's 295.73 ns must sit within 5% of the
  // analyzer-observed overhead.
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  PutBwBenchmark bench(tb, {.messages = 8000, .warmup = 1000});
  const InjectionResult res = bench.run();

  const auto model = core::InjectionModel(
      core::ComponentTable::from_config(tb.config()));
  const double observed = res.nic_deltas.summarize().mean;
  EXPECT_LE(std::abs(model.llp_injection_ns() - observed) / observed, 0.05)
      << "model " << model.llp_injection_ns() << " observed " << observed;
  // And near the paper's observed 282.33 ns.
  EXPECT_NEAR(observed, 282.33, 282.33 * 0.03);
}

TEST(PutBw, SteadyStateHasBusyPosts) {
  // §4.2: the finite TxQ depth forces busy posts once it fills.
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  PutBwBenchmark bench(tb, {.messages = 4000, .warmup = 500});
  const InjectionResult res = bench.run();
  EXPECT_GT(res.busy_posts, res.messages / 2);
}

TEST(PutBw, DistributionShapeMatchesFig7) {
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  PutBwBenchmark bench(tb, {.messages = 12000, .warmup = 1000});
  const InjectionResult res = bench.run();
  const Summary s = res.nic_deltas.summarize();
  // Fig. 7: positively skewed (median < mean), sd ~ 58, a heavy tail
  // whose max is far beyond p99.
  EXPECT_LT(s.median, s.mean);
  EXPECT_NEAR(s.stddev, 58.49, 35.0);
  EXPECT_GT(s.max, s.p99 * 1.5);
  EXPECT_GT(s.min, 150.0);
}

TEST(PutBw, DeterministicConfigMatchesArithmetic) {
  // With jitter stripped, the steady-state loop is exactly:
  // busy + LLP_prog + LLP_post + measurement update (§4.2), with every
  // 16th iteration draining one extra CQE.
  auto cfg = scenario::presets::deterministic();
  scenario::Testbed tb(cfg);
  PutBwBenchmark bench(tb, {.messages = 4000, .warmup = 1000, .speed_factor = 1.0});
  const InjectionResult res = bench.run();
  const double observed = res.nic_deltas.summarize().mean;
  // Between the no-busy floor (286.74) and the full model (295.73).
  EXPECT_GT(observed, 280.0);
  EXPECT_LT(observed, 300.0);
}

TEST(PutBw, CpuTimeTracksNicDeltas) {
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  PutBwBenchmark bench(tb, {.messages = 6000, .warmup = 600});
  const InjectionResult res = bench.run();
  // §4.2: Inj_overhead equals CPU_time when messages flow continuously.
  EXPECT_NEAR(res.cpu_per_msg_ns, res.nic_deltas.summarize().mean,
              res.cpu_per_msg_ns * 0.02);
}

TEST(PutBw, TraceCaptureOptional) {
  scenario::Testbed tb(scenario::presets::deterministic());
  PutBwBenchmark bench(tb, {.messages = 500, .warmup = 50,
                            .speed_factor = 1.0, .capture_trace = false});
  const InjectionResult res = bench.run();
  EXPECT_EQ(res.nic_deltas.size(), 0u);
  EXPECT_GT(res.cpu_per_msg_ns, 0.0);
}

}  // namespace
}  // namespace bb::bench
