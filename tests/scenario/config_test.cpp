#include "scenario/config.hpp"

#include <gtest/gtest.h>

namespace bb::scenario {
namespace {

TEST(Presets, DefaultIsPaperTestbed) {
  const SystemConfig c = presets::thunderx2_cx4();
  EXPECT_EQ(c.name, "thunderx2-cx4");
  EXPECT_NEAR(c.cpu.llp_post_mean_ns(), 175.42, 1e-9);
  EXPECT_NEAR(c.net.wire_latency_ns, 274.81, 1e-9);
  EXPECT_EQ(c.net.num_switches, 1);
  EXPECT_TRUE(c.endpoint.use_pio);
  EXPECT_TRUE(c.endpoint.inline_payload);
}

TEST(Presets, IntegratedNicScalesIoOnly) {
  const SystemConfig base = presets::thunderx2_cx4();
  const SystemConfig soc = presets::integrated_nic(0.5);
  EXPECT_NEAR(soc.link.base_latency_ns, base.link.base_latency_ns * 0.5, 1e-9);
  EXPECT_NEAR(soc.rc.rc_to_mem_base_ns, base.rc.rc_to_mem_base_ns * 0.5, 1e-9);
  // CPU and network untouched.
  EXPECT_EQ(soc.cpu.pio_copy_64b.mean_ns, base.cpu.pio_copy_64b.mean_ns);
  EXPECT_EQ(soc.net.wire_latency_ns, base.net.wire_latency_ns);
}

TEST(Presets, FastDeviceMemoryHitsPioOnly) {
  const SystemConfig fast = presets::fast_device_memory(15.0);
  EXPECT_NEAR(fast.cpu.pio_copy_64b.mean_ns, 15.0, 1e-9);
  EXPECT_NEAR(fast.cpu.md_setup.mean_ns, 27.78, 1e-9);
}

TEST(Presets, GenZSwitch) {
  EXPECT_NEAR(presets::genz_switch(30.0).net.switch_latency_ns, 30.0, 1e-9);
  EXPECT_NEAR(presets::genz_switch().net.wire_latency_ns, 274.81, 1e-9);
}

TEST(Presets, Pam4WireTradesLatencyForBandwidth) {
  const SystemConfig base = presets::thunderx2_cx4();
  const SystemConfig pam4 = presets::pam4_fec_wire(300.0);
  EXPECT_NEAR(pam4.net.wire_latency_ns, base.net.wire_latency_ns + 300.0,
              1e-9);
  EXPECT_LT(pam4.net.serialize_ns_per_byte, base.net.serialize_ns_per_byte);
}

TEST(Presets, TofuDLikeRemovesMostIo) {
  const SystemConfig tofu = presets::tofu_d_like();
  const SystemConfig base = presets::thunderx2_cx4();
  // ~80% I/O reduction: 2xPCIe + RC-to-MEM shrink by ~413 ns of 516.
  const double base_io = 2 * base.link.tlp_latency(64).to_ns() +
                         base.rc.rc_to_mem(8).to_ns();
  const double tofu_io = 2 * tofu.link.tlp_latency(64).to_ns() +
                         tofu.rc.rc_to_mem(8).to_ns();
  EXPECT_NEAR(base_io - tofu_io, 0.8 * base_io, base_io * 0.02);
}

TEST(Presets, DoorbellDmaPath) {
  const SystemConfig db = presets::doorbell_dma_path();
  EXPECT_FALSE(db.endpoint.use_pio);
  EXPECT_FALSE(db.endpoint.inline_payload);
}

TEST(Presets, UnsignaledCompletions) {
  EXPECT_EQ(presets::unsignaled_completions().endpoint.signal.period, 64u);
  EXPECT_EQ(presets::unsignaled_completions(16).endpoint.signal.period, 16u);
}

TEST(Presets, TsoCpuDropsWeakMemoryBarriers) {
  const SystemConfig tso = presets::tso_cpu();
  EXPECT_EQ(tso.cpu.barrier_store_md.mean_ns, 0.0);
  EXPECT_LT(tso.cpu.barrier_store_dbc.mean_ns, 21.07);
  // LLP_post shrinks by the memory-model tax (~33 ns of 175).
  EXPECT_NEAR(tso.cpu.llp_post_mean_ns(), 175.42 - 17.33 - 21.07 * 0.75,
              1e-6);
}

TEST(Presets, DeterministicStripsAllJitter) {
  const SystemConfig det = presets::deterministic();
  EXPECT_EQ(det.cpu.pio_copy_64b.cv, 0.0);
  EXPECT_EQ(det.cpu.timer_read.cv, 0.0);
  EXPECT_EQ(det.cpu.loop_hiccup.tail_prob, 0.0);
  EXPECT_EQ(det.cpu.loop_exp_noise.tail_prob, 0.0);
}

}  // namespace
}  // namespace bb::scenario
