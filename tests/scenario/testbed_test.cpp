#include "scenario/testbed.hpp"

#include <gtest/gtest.h>

#include "scenario/mpi_stack.hpp"

namespace bb::scenario {
namespace {

TEST(Testbed, WiresTwoNodesAndAnalyzer) {
  Testbed tb(presets::deterministic());
  EXPECT_EQ(tb.node(0).nic.node_id(), 0);
  EXPECT_EQ(tb.node(1).nic.node_id(), 1);
  EXPECT_TRUE(tb.analyzer().enabled());
  EXPECT_EQ(tb.analyzer().trace().size(), 0u);
}

TEST(Testbed, SeedPropagatesToSimulator) {
  auto cfg = presets::deterministic();
  cfg.seed = 99;
  Testbed a(cfg), b(cfg);
  EXPECT_EQ(a.sim().rng().next_u64(), b.sim().rng().next_u64());
}

TEST(Testbed, EndpointUsesConfigTemplate) {
  auto cfg = presets::deterministic();
  cfg.endpoint.txq_depth = 7;
  Testbed tb(cfg);
  EXPECT_EQ(tb.add_endpoint(0).config().txq_depth, 7u);
  llp::EndpointConfig override_cfg = cfg.endpoint;
  override_cfg.txq_depth = 3;
  EXPECT_EQ(tb.add_endpoint(0, override_cfg).config().txq_depth, 3u);
}

TEST(Testbed, AddCoreCreatesIndependentWorkers) {
  Testbed tb(presets::deterministic());
  auto& wc1 = tb.add_core(0);
  auto& wc2 = tb.add_core(0);
  EXPECT_NE(&wc1.core, &wc2.core);
  EXPECT_NE(&wc1.worker, &wc2.worker);
  // Endpoints created on extra cores get distinct QPs automatically.
  auto& e1 = tb.add_endpoint(wc1, 0);
  auto& e2 = tb.add_endpoint(wc2, 0);
  EXPECT_NE(e1.config().qp, e2.config().qp);
}

TEST(Testbed, ProfilerWiredIntoWorker) {
  Testbed tb(presets::deterministic());
  EXPECT_EQ(tb.node(0).worker.profiler(), &tb.node(0).profiler);
}

TEST(MpiStack, BundlesFullStack) {
  Testbed tb(presets::deterministic());
  MpiStack s(tb, 0);
  EXPECT_EQ(&s.ucp().endpoint(), &s.endpoint());
  EXPECT_EQ(&s.mpi().ucp(), &s.ucp());
  // UCX default signalling: one CQE per 64 ops.
  EXPECT_EQ(s.endpoint().config().signal.period, 64u);
  MpiStack s2(tb, 1, 8);
  EXPECT_EQ(s2.endpoint().config().signal.period, 8u);
}

TEST(Testbed, RdmaWriteSmokeAcrossAllPresets) {
  // Every preset must produce a working machine end to end.
  for (auto cfg :
       {presets::thunderx2_cx4(), presets::integrated_nic(0.5),
        presets::fast_device_memory(), presets::genz_switch(),
        presets::pam4_fec_wire(), presets::tofu_d_like(),
        presets::doorbell_dma_path(), presets::unsignaled_completions(),
        presets::deterministic()}) {
    Testbed tb(cfg);
    auto& ep = tb.add_endpoint(0);
    tb.sim().spawn([](Testbed& t, llp::Endpoint& e) -> sim::Task<void> {
      for (int i = 0; i < 8; ++i) {
        while (co_await e.put_short(8) != llp::Status::kOk) {
          co_await t.node(0).worker.progress();
        }
      }
      // Moderated presets leave an unsignalled tail; flush retires it.
      while (co_await e.flush() == llp::Status::kNoResource) {
        co_await t.node(0).worker.progress();
      }
      while (e.outstanding() > 0) co_await t.node(0).worker.progress();
    }(tb, ep));
    tb.sim().run();
    EXPECT_EQ(tb.node(1).host.payload_bytes_delivered(), 64u)
        << "preset " << cfg.name;
  }
}

}  // namespace
}  // namespace bb::scenario
