#include "scenario/cluster.hpp"

#include <gtest/gtest.h>

#include "scenario/mpi_stack.hpp"

namespace bb::scenario {
namespace {

TEST(Cluster, ConstructsNNodes) {
  Cluster cl(presets::deterministic(), 4);
  EXPECT_EQ(cl.node_count(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cl.node(i).nic.node_id(), i);
  }
}

TEST(Cluster, RoutesToExplicitPeer) {
  Cluster cl(presets::deterministic(), 3);
  auto& ep02 = cl.add_endpoint(0, 2);
  cl.sim().spawn([](Cluster& c, llp::Endpoint& e) -> sim::Task<void> {
    while (co_await e.put_short(8) != llp::Status::kOk) {
      co_await c.node(0).worker.progress();
    }
    while (e.outstanding() > 0) co_await c.node(0).worker.progress();
  }(cl, ep02));
  cl.sim().run();
  EXPECT_EQ(cl.node(2).host.payload_bytes_delivered(), 8u);
  EXPECT_EQ(cl.node(1).host.payload_bytes_delivered(), 0u);
}

TEST(Cluster, EndpointsGetUniqueQps) {
  Cluster cl(presets::deterministic(), 3);
  auto& a = cl.add_endpoint(0, 1);
  auto& b = cl.add_endpoint(0, 2);
  EXPECT_NE(a.config().qp, b.config().qp);
  EXPECT_EQ(a.config().peer_node, 1);
  EXPECT_EQ(b.config().peer_node, 2);
}

TEST(Cluster, RingExchangeCompletes) {
  // Each rank sends one message to its right neighbour and receives one
  // from its left -- the minimal multi-rank pattern.
  constexpr int kNodes = 4;
  Cluster cl(presets::deterministic(), kNodes);
  std::vector<llp::Endpoint*> eps;
  for (int r = 0; r < kNodes; ++r) {
    cl.node(r).nic.post_receives(4);
    eps.push_back(&cl.add_endpoint(r, (r + 1) % kNodes));
  }
  for (int r = 0; r < kNodes; ++r) {
    cl.sim().spawn([](Cluster& c, int rank, llp::Endpoint& e) -> sim::Task<void> {
      while (co_await e.am_short(8) != llp::Status::kOk) {
        co_await c.node(rank).worker.progress();
      }
      // Wait for our own send completion and the neighbour's message.
      while (e.outstanding() > 0 ||
             c.node(rank).worker.rx_completions() == 0) {
        co_await c.node(rank).worker.progress();
      }
    }(cl, r, *eps[static_cast<std::size_t>(r)]));
  }
  cl.sim().run();
  for (int r = 0; r < kNodes; ++r) {
    EXPECT_EQ(cl.node(r).worker.rx_completions(), 1u) << "rank " << r;
    EXPECT_EQ(cl.node(r).host.payload_bytes_delivered(), 8u) << "rank " << r;
  }
}

TEST(Cluster, PairwiseLatencyMatchesTestbed) {
  // A 2-node cluster must behave exactly like the Testbed.
  Cluster cl(presets::deterministic(), 2);
  auto& ep = cl.add_endpoint(0, 1);
  cl.node(1).nic.post_receives(1);
  double done = 0;
  cl.sim().spawn([](Cluster& c, llp::Endpoint& e, double& out) -> sim::Task<void> {
    (void)co_await e.am_short(8);
    while (c.node(1).host.rx_cq().depth() == 0) {
      co_await c.sim().delay(TimePs::from_ns(10));
    }
    out = c.sim().now().to_ns();
  }(cl, ep, done));
  cl.sim().run();
  const auto& C = cl.config();
  const double expected = C.cpu.llp_post_mean_ns() +
                          C.link.tlp_latency(64).to_ns() + C.nic.tx_proc_ns +
                          C.net.network_latency().to_ns() + C.nic.rx_proc_ns +
                          C.link.tlp_latency(8).to_ns() +
                          C.rc.rc_to_mem(8).to_ns();
  EXPECT_NEAR(done, expected, 12.0);  // polling granularity
}

TEST(Cluster, MpiRingExchange) {
  // Full MPI stacks on a 3-node ring: each rank isends to its right
  // neighbour and blocks on an irecv from its left.
  constexpr int kNodes = 3;
  Cluster cl(presets::deterministic(), kNodes);
  std::vector<std::unique_ptr<MpiStack>> stacks;
  for (int r = 0; r < kNodes; ++r) {
    cl.node(r).nic.post_receives(8);
    auto& ep = cl.add_endpoint(r, (r + 1) % kNodes);
    stacks.push_back(std::make_unique<MpiStack>(cl.node(r), ep));
  }
  int done = 0;
  for (int r = 0; r < kNodes; ++r) {
    cl.sim().spawn([](MpiStack& st, int& d) -> sim::Task<void> {
      hlp::Request* rr = st.mpi().irecv(8).value();
      (void)co_await st.mpi().isend(8);
      co_await st.mpi().wait(rr);
      ++d;
    }(*stacks[static_cast<std::size_t>(r)], done));
  }
  cl.sim().run();
  EXPECT_EQ(done, kNodes);
  for (int r = 0; r < kNodes; ++r) {
    EXPECT_EQ(cl.node(r).host.payload_bytes_delivered(), 8u) << "rank " << r;
  }
}

TEST(Cluster, AnalyzerTapsNodeZeroOnly) {
  Cluster cl(presets::deterministic(), 3);
  auto& ep12 = cl.add_endpoint(1, 2);
  cl.sim().spawn([](Cluster& c, llp::Endpoint& e) -> sim::Task<void> {
    while (co_await e.put_short(8) != llp::Status::kOk) {
      co_await c.node(1).worker.progress();
    }
    while (e.outstanding() > 0) co_await c.node(1).worker.progress();
  }(cl, ep12));
  cl.sim().run();
  // Traffic between nodes 1 and 2 never crosses node 0's link.
  EXPECT_EQ(cl.analyzer().trace().size(), 0u);
  EXPECT_EQ(cl.analyzer_node(), 0);
}

TEST(Cluster, AnalyzerPlaceableOnAnyNode) {
  // Same traffic as above, but the analyzer rides node 1's link, where
  // the sender's descriptor MMIO must show up.
  Cluster cl(presets::deterministic(), 3, /*analyzer_node=*/1);
  EXPECT_EQ(cl.analyzer_node(), 1);
  auto& ep12 = cl.add_endpoint(1, 2);
  cl.sim().spawn([](Cluster& c, llp::Endpoint& e) -> sim::Task<void> {
    while (co_await e.put_short(8) != llp::Status::kOk) {
      co_await c.node(1).worker.progress();
    }
    while (e.outstanding() > 0) co_await c.node(1).worker.progress();
  }(cl, ep12));
  cl.sim().run();
  EXPECT_GT(cl.analyzer().trace().size(), 0u);
}

TEST(Cluster, AnalyzerOnBystanderNodeSeesNothing) {
  // Analyzer on node 2, traffic strictly between 0 and 1.
  Cluster cl(presets::deterministic(), 3, /*analyzer_node=*/2);
  auto& ep01 = cl.add_endpoint(0, 1);
  cl.sim().spawn([](Cluster& c, llp::Endpoint& e) -> sim::Task<void> {
    while (co_await e.put_short(8) != llp::Status::kOk) {
      co_await c.node(0).worker.progress();
    }
    while (e.outstanding() > 0) co_await c.node(0).worker.progress();
  }(cl, ep01));
  cl.sim().run();
  EXPECT_EQ(cl.analyzer().trace().size(), 0u);
}

}  // namespace
}  // namespace bb::scenario
