#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bb::net {
namespace {

using namespace bb::literals;

NetPacket data8(std::uint64_t id, int src, std::uint64_t psn = 1) {
  pcie::WireMd md;
  md.msg_id = id;
  md.payload_bytes = 8;
  return NetPacket::data(md, src, 1 - src, psn);
}

TEST(NetParams, NetworkLatencyIsWirePlusSwitches) {
  NetParams p;
  // Table 1: Wire 274.81 + one Switch 108 = 382.81.
  EXPECT_NEAR(p.network_latency().to_ns(), 382.81, 1e-9);
  p.num_switches = 0;
  EXPECT_NEAR(p.network_latency().to_ns(), 274.81, 1e-9);
  p.num_switches = 3;
  EXPECT_NEAR(p.network_latency().to_ns(), 274.81 + 3 * 108.0, 1e-9);
}

TEST(Fabric, DeliversAfterNetworkLatency) {
  sim::Simulator sim;
  NetParams p;
  Fabric f(sim, p);
  double arrival = -1;
  f.attach(0, [](const NetPacket&) {});
  f.attach(1, [&](const NetPacket& pkt) {
    EXPECT_EQ(pkt.msg_id, 5u);
    arrival = sim.now().to_ns();
  });
  f.send(data8(5, 0));
  sim.run();
  EXPECT_NEAR(arrival, p.network_latency().to_ns(), 1e-6);
}

TEST(Fabric, AckTravelsReverse) {
  sim::Simulator sim;
  Fabric f(sim, NetParams{});
  bool got_ack = false;
  f.attach(0, [&](const NetPacket& pkt) {
    EXPECT_EQ(pkt.kind, NetPacket::Kind::kAck);
    EXPECT_EQ(pkt.psn, 9u);
    got_ack = true;
  });
  f.attach(1, [](const NetPacket&) {});
  f.send(NetPacket::ctrl(NetPacket::Kind::kAck, /*qp=*/0, /*psn=*/9, 1, 0));
  sim.run();
  EXPECT_TRUE(got_ack);
}

TEST(Fabric, InOrderDeliveryPerSender) {
  sim::Simulator sim;
  Fabric f(sim, NetParams{});
  std::vector<std::uint64_t> ids;
  f.attach(0, [](const NetPacket&) {});
  f.attach(1, [&](const NetPacket& pkt) { ids.push_back(pkt.msg_id); });
  for (std::uint64_t i = 0; i < 5; ++i) f.send(data8(i, 0));
  sim.run();
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Fabric, SerializationSpacesBackToBackPackets) {
  sim::Simulator sim;
  NetParams p;
  Fabric f(sim, p);
  std::vector<double> arrivals;
  f.attach(0, [](const NetPacket&) {});
  f.attach(1, [&](const NetPacket&) { arrivals.push_back(sim.now().to_ns()); });
  f.send(data8(1, 0));
  f.send(data8(2, 0));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[1] - arrivals[0], p.serialize(8).to_ns(), 1e-6);
}

TEST(Fabric, DirectionsDoNotInterfere) {
  sim::Simulator sim;
  NetParams p;
  Fabric f(sim, p);
  double at0 = -1, at1 = -1;
  f.attach(0, [&](const NetPacket&) { at0 = sim.now().to_ns(); });
  f.attach(1, [&](const NetPacket&) { at1 = sim.now().to_ns(); });
  f.send(data8(1, 0));
  f.send(data8(2, 1));
  sim.run();
  // Both directions see pure latency; no shared serialization.
  EXPECT_NEAR(at0, p.network_latency().to_ns(), 1e-6);
  EXPECT_NEAR(at1, p.network_latency().to_ns(), 1e-6);
}

TEST(Fabric, IncastOffConcurrentSendersLandTogether) {
  sim::Simulator sim;
  NetParams p;  // model_incast defaults to false
  Fabric f(sim, p, 3);
  std::vector<double> arrivals;
  f.attach(0, [](const NetPacket&) {});
  f.attach(2, [](const NetPacket&) {});
  f.attach(1, [&](const NetPacket&) { arrivals.push_back(sim.now().to_ns()); });
  pcie::WireMd md;
  md.payload_bytes = 4096;
  f.send(NetPacket::data(md, 0, 1, 1));
  f.send(NetPacket::data(md, 2, 1, 1));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // The receiver port is an infinite sink: both flows land at pure
  // latency, which is what keeps the two-node goldens bit-identical.
  EXPECT_NEAR(arrivals[0], p.network_latency().to_ns(), 1e-6);
  EXPECT_NEAR(arrivals[1], p.network_latency().to_ns(), 1e-6);
}

TEST(Fabric, IncastOnSerializesConvergingFlows) {
  sim::Simulator sim;
  NetParams p;
  p.model_incast = true;
  Fabric f(sim, p, 3);
  std::vector<double> arrivals;
  f.attach(0, [](const NetPacket&) {});
  f.attach(2, [](const NetPacket&) {});
  f.attach(1, [&](const NetPacket&) { arrivals.push_back(sim.now().to_ns()); });
  pcie::WireMd md;
  md.payload_bytes = 4096;
  f.send(NetPacket::data(md, 0, 1, 1));
  f.send(NetPacket::data(md, 2, 1, 1));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Distinct senders, common destination: the second flow queues behind
  // the first for the receiver port's serialization time.
  EXPECT_NEAR(arrivals[0], p.network_latency().to_ns(), 1e-6);
  EXPECT_NEAR(arrivals[1] - arrivals[0], p.serialize(4096).to_ns(), 1e-6);
}

TEST(Fabric, IncastOnLeavesDisjointDestinationsAlone) {
  sim::Simulator sim;
  NetParams p;
  p.model_incast = true;
  Fabric f(sim, p, 4);
  double at1 = -1, at3 = -1;
  f.attach(0, [](const NetPacket&) {});
  f.attach(2, [](const NetPacket&) {});
  f.attach(1, [&](const NetPacket&) { at1 = sim.now().to_ns(); });
  f.attach(3, [&](const NetPacket&) { at3 = sim.now().to_ns(); });
  pcie::WireMd md;
  md.payload_bytes = 4096;
  f.send(NetPacket::data(md, 0, 1, 1));
  f.send(NetPacket::data(md, 2, 3, 1));
  sim.run();
  // No shared receiver, no interference even with incast modeling on.
  EXPECT_NEAR(at1, p.network_latency().to_ns(), 1e-6);
  EXPECT_NEAR(at3, p.network_latency().to_ns(), 1e-6);
}

// --- wire faults (docs/TRANSPORT.md) ---------------------------------------

TEST(FabricFaults, ScheduledDropNeverArrivesAndIsCounted) {
  sim::Simulator sim;
  fault::WireFaultConfig w;
  w.scheduled.push_back({fault::WireOneShot::Kind::kDropData, 0, 2});
  fault::WireInjector inj(w, 7);
  Fabric f(sim, NetParams{}, 2, &inj);
  std::vector<std::uint64_t> psns;
  f.attach(0, [](const NetPacket&) {});
  f.attach(1, [&](const NetPacket& pkt) { psns.push_back(pkt.psn); });
  for (std::uint64_t psn = 1; psn <= 3; ++psn) f.send(data8(psn, 0, psn));
  sim.run();
  EXPECT_EQ(psns, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(f.stats().packets_sent, 3u);
  EXPECT_EQ(f.stats().packets_dropped, 1u);
  EXPECT_EQ(f.stats().packets_delivered, 2u);
}

TEST(FabricFaults, CorruptOccupiesWireButIsDiscardedSilently) {
  sim::Simulator sim;
  fault::WireFaultConfig w;
  w.corrupt_prob = 1.0;
  fault::WireInjector inj(w, 7);
  Fabric f(sim, NetParams{}, 2, &inj);
  int delivered = 0;
  f.attach(0, [](const NetPacket&) {});
  f.attach(1, [&](const NetPacket&) { ++delivered; });
  f.send(data8(1, 0, 1));
  sim.run();
  // The packet travelled (an arrival event ran) but the receiver's ICRC
  // check discarded it without notifying anyone.
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(f.stats().packets_corrupted, 1u);
  EXPECT_EQ(f.stats().packets_delivered, 0u);
}

TEST(FabricFaults, DuplicateDeliversTwiceConservationHolds) {
  sim::Simulator sim;
  fault::WireFaultConfig w;
  w.scheduled.push_back({fault::WireOneShot::Kind::kDuplicateData, 0, 1});
  fault::WireInjector inj(w, 7);
  Fabric f(sim, NetParams{}, 2, &inj);
  int delivered = 0;
  f.attach(0, [](const NetPacket&) {});
  f.attach(1, [&](const NetPacket&) { ++delivered; });
  f.send(data8(1, 0, 1));
  sim.run();
  EXPECT_EQ(delivered, 2);
  const TransportStats& s = f.stats();
  EXPECT_EQ(s.packets_duplicated, 1u);
  EXPECT_EQ(s.packets_sent + s.packets_duplicated,
            s.packets_delivered + s.packets_dropped + s.packets_corrupted);
}

TEST(FabricFaults, ReorderLetsSuccessorOvertake) {
  sim::Simulator sim;
  fault::WireFaultConfig w;
  w.reorder_delay_ns = 500.0;
  w.scheduled.push_back({fault::WireOneShot::Kind::kReorderData, 0, 1});
  fault::WireInjector inj(w, 7);
  Fabric f(sim, NetParams{}, 2, &inj);
  std::vector<std::uint64_t> psns;
  f.attach(0, [](const NetPacket&) {});
  f.attach(1, [&](const NetPacket& pkt) { psns.push_back(pkt.psn); });
  f.send(data8(1, 0, 1));
  f.send(data8(2, 0, 2));
  sim.run();
  // PSN 1 was delayed past the in-order gate; PSN 2 overtakes it.
  EXPECT_EQ(psns, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(f.stats().packets_reordered, 1u);
}

TEST(FabricFaults, DisabledInjectorPointerIsFreeOfSideEffects) {
  // An attached-but-disabled injector must leave timing identical to no
  // injector at all (the loss-rate->0 bit-identity contract).
  auto arrivals_with = [](fault::WireInjector* inj) {
    sim::Simulator sim;
    Fabric f(sim, NetParams{}, 2, inj);
    std::vector<double> at;
    f.attach(0, [](const NetPacket&) {});
    f.attach(1, [&](const NetPacket&) { at.push_back(sim.now().to_ns()); });
    for (std::uint64_t psn = 1; psn <= 4; ++psn) f.send(data8(psn, 0, psn));
    sim.run();
    return at;
  };
  fault::WireInjector disabled(fault::WireFaultConfig{}, 7);
  EXPECT_FALSE(disabled.enabled());
  EXPECT_EQ(arrivals_with(nullptr), arrivals_with(&disabled));
}

TEST(FabricFaults, LossPatternIsAPureFunctionOfSeed) {
  auto delivered_psns = [](std::uint64_t seed) {
    sim::Simulator sim;
    fault::WireFaultConfig w;
    w.drop_prob = 0.3;
    fault::WireInjector inj(w, seed);
    Fabric f(sim, NetParams{}, 2, &inj);
    std::vector<std::uint64_t> psns;
    f.attach(0, [](const NetPacket&) {});
    f.attach(1, [&](const NetPacket& pkt) { psns.push_back(pkt.psn); });
    for (std::uint64_t psn = 1; psn <= 64; ++psn) f.send(data8(psn, 0, psn));
    sim.run();
    return psns;
  };
  EXPECT_EQ(delivered_psns(11), delivered_psns(11));
  EXPECT_NE(delivered_psns(11), delivered_psns(12));
}

}  // namespace
}  // namespace bb::net
