#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace bb {
namespace {

using namespace bb::literals;

TEST(Samples, SummaryOfKnownValues) {
  Samples s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add_ns(v);
  const Summary sum = s.summarize();
  EXPECT_EQ(sum.count, 8u);
  EXPECT_DOUBLE_EQ(sum.mean, 5.0);
  EXPECT_DOUBLE_EQ(sum.min, 2.0);
  EXPECT_DOUBLE_EQ(sum.max, 9.0);
  EXPECT_NEAR(sum.stddev, 2.138, 1e-3);  // sample sd
  EXPECT_NEAR(sum.median, 4.5, 1e-9);
}

TEST(Samples, EmptySummaryIsZero) {
  Samples s;
  const Summary sum = s.summarize();
  EXPECT_EQ(sum.count, 0u);
  EXPECT_EQ(sum.mean, 0.0);
}

TEST(Samples, AddTimePsConvertsToNs) {
  Samples s;
  s.add(282.33_ns);
  EXPECT_DOUBLE_EQ(s.values_ns()[0], 282.33);
}

TEST(Samples, QuantileInterpolates) {
  Samples s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.add_ns(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 25.0);
}

TEST(RunningStats, MatchesBatchStats) {
  Rng r(3);
  Samples s;
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double v = r.normal(100, 15);
    s.add_ns(v);
    rs.add(v);
  }
  const Summary sum = s.summarize();
  EXPECT_NEAR(rs.mean(), sum.mean, 1e-9);
  EXPECT_NEAR(rs.stddev(), sum.stddev, 1e-6);
  EXPECT_DOUBLE_EQ(rs.min(), sum.min);
  EXPECT_DOUBLE_EQ(rs.max(), sum.max);
  EXPECT_EQ(rs.count(), sum.count);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 100.0, 10);
  h.add_ns(5.0);    // bin 0
  h.add_ns(95.0);   // bin 9
  h.add_ns(-50.0);  // clamped to bin 0
  h.add_ns(500.0);  // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 20.0);
}

TEST(Histogram, DensityIntegratesToOne) {
  Rng r(31);
  Histogram h(0.0, 600.0, 60);
  for (int i = 0; i < 20000; ++i) h.add_ns(r.normal(282, 58));
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    integral += h.density(b) * (h.bin_hi(b) - h.bin_lo(b));
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 10.0, 2);
  h.add_ns(1.0);
  h.add_ns(6.0);
  h.add_ns(7.0);
  const std::string out = h.render(20);
  EXPECT_NE(out.find("| 1"), std::string::npos);
  EXPECT_NE(out.find("| 2"), std::string::npos);
}

}  // namespace
}  // namespace bb
