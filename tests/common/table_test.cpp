#include "common/table.hpp"

#include <gtest/gtest.h>

namespace bb {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Component", "Time (ns)"});
  t.add_row({"LLP_post", "175.42"});
  t.add_row({"LLP_prog", "61.63"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Component"), std::string::npos);
  EXPECT_NE(out.find("| LLP_post"), std::string::npos);
  EXPECT_NE(out.find("175.42"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_rule();  // rules are not emitted in CSV
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, NumAndPctFormatting) {
  EXPECT_EQ(TextTable::num(282.334, 2), "282.33");
  EXPECT_EQ(TextTable::pct(0.5379, 2), "53.79%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(StackedBar, PercentagesSumTo100) {
  // The Fig. 4 composition.
  const std::string out = render_stacked_bar(
      "LLP_post breakdown",
      {{"MD setup", 27.78},
       {"Barrier MD", 17.33},
       {"Barrier DBC", 21.07},
       {"PIO copy", 94.25},
       {"Other", 14.99}});
  EXPECT_NE(out.find("LLP_post breakdown"), std::string::npos);
  EXPECT_NE(out.find("53.7"), std::string::npos);  // PIO ~53.73%
  EXPECT_NE(out.find("TOTAL"), std::string::npos);
  EXPECT_NE(out.find("100.00%"), std::string::npos);
}

TEST(StackedBar, EmptyDataHandled) {
  const std::string out = render_stacked_bar("x", {});
  EXPECT_NE(out.find("no data"), std::string::npos);
}

}  // namespace
}  // namespace bb
