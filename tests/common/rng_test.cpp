#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bb {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng a(7);
  Rng child = a.fork();
  // The child stream must not replay the parent stream.
  Rng a2(7);
  (void)a2.next_u64();  // parent consumed one value to fork
  EXPECT_NE(child.next_u64(), a2.next_u64());
}

TEST(Rng, Uniform01InRange) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng r(9);
  int counts[7] = {};
  for (int i = 0; i < 70000; ++i) counts[r.uniform_u64(7)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0, ss = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    ss += v * v;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMatchesRequestedMoments) {
  Rng r(13);
  // Fig. 7 shape parameters: mean 282, sd 58.
  double sum = 0, ss = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double v = r.lognormal_by_moments(282.0, 58.0);
    ASSERT_GT(v, 0.0);
    sum += v;
    ss += v * v;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(ss / n - mean * mean);
  EXPECT_NEAR(mean, 282.0, 1.5);
  EXPECT_NEAR(sd, 58.0, 1.5);
}

TEST(Rng, LognormalMedianBelowMean) {
  // Positively skewed: median < mean, as the paper observes (266 < 282).
  Rng r(17);
  std::vector<double> v;
  for (int i = 0; i < 50001; ++i) v.push_back(r.lognormal_by_moments(282, 58));
  std::sort(v.begin(), v.end());
  EXPECT_LT(v[v.size() / 2], 282.0);
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, BernoulliProbability) {
  Rng r(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits, 30000, 600);
}

}  // namespace
}  // namespace bb
