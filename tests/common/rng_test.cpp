#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace bb {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng a(7);
  Rng child = a.fork();
  // The child stream must not replay the parent stream.
  Rng a2(7);
  (void)a2.next_u64();  // parent consumed one value to fork
  EXPECT_NE(child.next_u64(), a2.next_u64());
}

TEST(Rng, Uniform01InRange) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng r(9);
  int counts[7] = {};
  for (int i = 0; i < 70000; ++i) counts[r.uniform_u64(7)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0, ss = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    ss += v * v;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMatchesRequestedMoments) {
  Rng r(13);
  // Fig. 7 shape parameters: mean 282, sd 58.
  double sum = 0, ss = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double v = r.lognormal_by_moments(282.0, 58.0);
    ASSERT_GT(v, 0.0);
    sum += v;
    ss += v * v;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(ss / n - mean * mean);
  EXPECT_NEAR(mean, 282.0, 1.5);
  EXPECT_NEAR(sd, 58.0, 1.5);
}

TEST(Rng, LognormalMedianBelowMean) {
  // Positively skewed: median < mean, as the paper observes (266 < 282).
  Rng r(17);
  std::vector<double> v;
  for (int i = 0; i < 50001; ++i) v.push_back(r.lognormal_by_moments(282, 58));
  std::sort(v.begin(), v.end());
  EXPECT_LT(v[v.size() / 2], 282.0);
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, BernoulliProbability) {
  Rng r(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits, 30000, 600);
}

TEST(Rng, DeriveSeedIsPure) {
  // No hidden state: the same (parent, label) always yields the same
  // child, regardless of how often or from where it is computed.
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  static_assert(derive_seed(42, 7) == derive_seed(42, 7));
  const std::uint64_t a = derive_seed(1, 2);
  Rng burn(1);
  for (int i = 0; i < 100; ++i) (void)burn.next_u64();
  EXPECT_EQ(derive_seed(1, 2), a);
}

TEST(Rng, DeriveSeedHasNoCollisionsOverDenseGrids) {
  // The exact shape bb::exec produces: small sequential labels under
  // many parent seeds (sweep seeds are themselves often sequential).
  std::set<std::uint64_t> seen;
  for (std::uint64_t parent = 0; parent < 512; ++parent) {
    for (std::uint64_t label = 0; label < 512; ++label) {
      seen.insert(derive_seed(parent, label));
    }
  }
  EXPECT_EQ(seen.size(), 512u * 512u);
}

TEST(Rng, DeriveSeedDecorrelatesNeighbours) {
  // Adjacent labels must not produce correlated streams: compare the
  // first draws of sibling children bit-wise.
  int close = 0;
  for (std::uint64_t label = 0; label < 256; ++label) {
    Rng a(derive_seed(99, label));
    Rng b(derive_seed(99, label + 1));
    const int distance = __builtin_popcountll(a.next_u64() ^ b.next_u64());
    // 64 fair coin flips; < 16 matching bits is a 6-sigma outlier.
    if (distance < 16 || distance > 48) ++close;
  }
  EXPECT_LE(close, 2);
}

TEST(Rng, PureForkMatchesDeriveSeedAndLeavesParentUntouched) {
  const Rng parent(7);
  Rng child = parent.fork(3);
  Rng expect(derive_seed(7, 3));
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(child.next_u64(), expect.next_u64());
  }
  // const fork => parent stream position is untouched by construction;
  // verify the parent still replays from the start.
  Rng replay(7);
  Rng parent2 = parent;
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(parent2.next_u64(), replay.next_u64());
  }
}

TEST(Rng, StatefulForkStillConsumesParentState) {
  // The legacy contract (golden-compatible): fork() advances the parent.
  Rng a(7), b(7);
  (void)a.fork();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedAccessorReturnsConstructionSeed) {
  Rng r(0xDEADBEEFull);
  (void)r.next_u64();
  EXPECT_EQ(r.seed(), 0xDEADBEEFull);
}

}  // namespace
}  // namespace bb
