#include "common/units.hpp"

#include <gtest/gtest.h>

namespace bb {
namespace {

using namespace bb::literals;

TEST(TimePs, DefaultIsZero) {
  TimePs t;
  EXPECT_EQ(t.ps(), 0);
  EXPECT_EQ(t, TimePs::zero());
}

TEST(TimePs, LiteralsProduceExpectedPicoseconds) {
  EXPECT_EQ((1_ns).ps(), 1000);
  EXPECT_EQ((1_us).ps(), 1'000'000);
  EXPECT_EQ((1_ms).ps(), 1'000'000'000);
  EXPECT_EQ((137_ps).ps(), 137);
  EXPECT_EQ((1.5_ns).ps(), 1500);
  EXPECT_EQ((0.25_us).ps(), 250'000);
}

TEST(TimePs, FromNsRoundsToNearestPicosecond) {
  EXPECT_EQ(TimePs::from_ns(282.33).ps(), 282'330);
  EXPECT_EQ(TimePs::from_ns(0.0004).ps(), 0);
  EXPECT_EQ(TimePs::from_ns(0.0006).ps(), 1);
  EXPECT_EQ(TimePs::from_ns(-1.5).ps(), -1500);
}

TEST(TimePs, RoundTripNs) {
  const TimePs t = TimePs::from_ns(175.42);
  EXPECT_DOUBLE_EQ(t.to_ns(), 175.42);
}

TEST(TimePs, Arithmetic) {
  EXPECT_EQ(3_ns + 4_ns, 7_ns);
  EXPECT_EQ(10_ns - 4_ns, 6_ns);
  EXPECT_EQ((3_ns) * 4, 12_ns);
  EXPECT_EQ((12_ns) / 4, 3_ns);
  TimePs t = 5_ns;
  t += 2_ns;
  t -= 1_ns;
  EXPECT_EQ(t, 6_ns);
}

TEST(TimePs, ScaledAppliesRealFactorWithRounding) {
  EXPECT_EQ((100_ns).scaled(0.5), 50_ns);
  EXPECT_EQ((100_ns).scaled(0.1), 10_ns);
  // 94.25 ns * 0.16 = 15.08 ns (the paper's PIO what-if).
  EXPECT_EQ(TimePs::from_ns(94.25).scaled(0.16), TimePs::from_ns(15.08));
}

TEST(TimePs, Ordering) {
  EXPECT_LT(1_ns, 2_ns);
  EXPECT_GT(1_us, 999_ns);
  EXPECT_LE(1_ns, 1_ns);
  EXPECT_LT(TimePs::zero(), TimePs::max());
}

TEST(TimePs, StrPicksHumanUnits) {
  EXPECT_EQ((282.33_ns).str(), "282.33 ns");
  EXPECT_EQ((15_us).str(), "15.00 us");
  EXPECT_EQ(TimePs::from_ns(2.5e6).str(), "2.500 ms");
}

}  // namespace
}  // namespace bb
