#include "cpu/cost.hpp"
#include "cpu/cost_model.hpp"

#include <gtest/gtest.h>

namespace bb::cpu {
namespace {

TEST(CostSpec, FixedIsDeterministic) {
  Rng rng(1);
  const auto spec = CostSpec::fixed(94.25);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(spec.sample(rng).to_ns(), 94.25, 1e-9);
  }
}

TEST(CostSpec, JitteredMatchesMoments) {
  Rng rng(2);
  const auto spec = CostSpec::jittered(100.0, 0.15);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += spec.sample(rng).to_ns();
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(CostSpec, SamplesAreAlwaysPositive) {
  Rng rng(3);
  const auto spec = CostSpec::jittered(10.0, 0.5);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GT(spec.sample(rng).to_ns(), 0.0);
  }
}

TEST(CostSpec, TailProducesRareLargeSamples) {
  Rng rng(4);
  CostSpec spec{100.0, 0.0, 0.01, 5000.0};
  int big = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (spec.sample(rng).to_ns() > 1000.0) ++big;
  }
  // ~1% hiccup probability, most hiccups exceed 900 ns extra.
  EXPECT_GT(big, 500);
  EXPECT_LT(big, 1500);
}

TEST(CostSpec, ScaledAdjustsMeanOnly) {
  const auto spec = CostSpec::jittered(94.25, 0.18);
  const auto fast = spec.scaled(0.16);
  EXPECT_NEAR(fast.mean_ns, 15.08, 1e-9);
  EXPECT_DOUBLE_EQ(fast.cv, 0.18);
}

TEST(CpuCostModel, Table1LlpPostTotal) {
  CpuCostModel m;
  // 27.78 + 17.33 + 21.07 + 94.25 + 14.99 = 175.42 (Table 1).
  EXPECT_NEAR(m.llp_post_mean_ns(), 175.42, 1e-9);
}

TEST(CpuCostModel, Table1DerivedHlpQuantities) {
  CpuCostModel m;
  // MPI_Isend HLP total: 24.37 + 2.19 = 26.56.
  EXPECT_NEAR(m.mpich_isend.mean_ns + m.ucp_isend.mean_ns, 26.56, 1e-9);
  // HLP_rx_prog: 47.99 + 139.78 + 36.89 = 224.66 (§6).
  EXPECT_NEAR(m.mpich_rx_callback.mean_ns + m.ucp_rx_callback.mean_ns +
                  m.mpich_after_progress.mean_ns,
              224.66, 1e-9);
  // Successful MPI_Wait in MPICH: 208.41 + 47.99 + 36.89 = 293.29.
  EXPECT_NEAR(m.mpich_wait_fixed.mean_ns + m.mpich_rx_callback.mean_ns +
                  m.mpich_after_progress.mean_ns,
              293.29, 1e-9);
  // Successful MPI_Wait in UCP: 10.73 + 139.78 = 150.51.
  EXPECT_NEAR(m.ucp_progress_iter.mean_ns + m.ucp_rx_callback.mean_ns, 150.51,
              1e-9);
}

TEST(CpuCostModel, StripJitterZeroesEverything) {
  CpuCostModel m;
  m.strip_jitter();
  Rng rng(5);
  EXPECT_NEAR(m.pio_copy_64b.sample(rng).to_ns(), 94.25, 1e-9);
  EXPECT_NEAR(m.timer_read.sample(rng).to_ns(), 49.69, 1e-9);
  EXPECT_NEAR(m.loop_hiccup.sample(rng).to_ns(), 0.0, 1e-9);
}

}  // namespace
}  // namespace bb::cpu
