#include "cpu/memory.hpp"

#include <gtest/gtest.h>

namespace bb::cpu {
namespace {

TEST(Memory, NamesAreHuman) {
  EXPECT_EQ(to_string(MemoryType::kNormal), "Normal");
  EXPECT_EQ(to_string(MemoryType::kDeviceGRE), "Device-GRE");
  EXPECT_EQ(to_string(MemoryType::kDeviceNGnRE), "Device-nGnRE");
}

TEST(Memory, DeviceWritesFarSlowerThanNormal) {
  // §7: "the current difference between 64-byte writes to Normal and
  // Device memory is more than 90%".
  CpuCostModel m;
  const double normal = write_cost_64b(m, MemoryType::kNormal).mean_ns;
  const double device = write_cost_64b(m, MemoryType::kDeviceGRE).mean_ns;
  EXPECT_LT(normal, 1.0);  // "less than a nanosecond"
  EXPECT_GT((device - normal) / device, 0.90);
}

TEST(Memory, NGnREPaysGatheringPenalty) {
  CpuCostModel m;
  const double gre = write_cost_64b(m, MemoryType::kDeviceGRE).mean_ns;
  const double ngnre = write_cost_64b(m, MemoryType::kDeviceNGnRE).mean_ns;
  EXPECT_NEAR(ngnre, gre * kNGnREPenalty, 1e-9);
}

}  // namespace
}  // namespace bb::cpu
