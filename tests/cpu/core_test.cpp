#include "cpu/core.hpp"

#include <gtest/gtest.h>

namespace bb::cpu {
namespace {

using namespace bb::literals;

CpuCostModel deterministic_model() {
  CpuCostModel m;
  m.strip_jitter();
  return m;
}

TEST(Core, ConsumeAccruesPendingNotSimTime) {
  sim::Simulator sim;
  Core core(sim, deterministic_model());
  core.consume(100_ns);
  EXPECT_EQ(sim.now(), TimePs::zero());
  EXPECT_EQ(core.virtual_now(), 100_ns);
}

TEST(Core, FlushMaterializesPendingTime) {
  sim::Simulator sim;
  Core core(sim, deterministic_model());
  double after = -1;
  sim.spawn([](sim::Simulator& s, Core& c, double& out) -> sim::Task<void> {
    c.consume(175.42_ns);
    co_await c.flush();
    out = s.now().to_ns();
  }(sim, core, after));
  sim.run();
  EXPECT_NEAR(after, 175.42, 1e-9);
}

TEST(Core, VirtualNowStableAcrossFlush) {
  sim::Simulator sim;
  Core core(sim, deterministic_model());
  std::vector<double> vals;
  sim.spawn([](Core& c, std::vector<double>& out) -> sim::Task<void> {
    c.consume(50_ns);
    out.push_back(c.virtual_now().to_ns());
    co_await c.flush();
    out.push_back(c.virtual_now().to_ns());
  }(core, vals));
  sim.run();
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_DOUBLE_EQ(vals[0], vals[1]);
}

TEST(Core, ConsumeSpecSamplesModel) {
  sim::Simulator sim;
  Core core(sim, deterministic_model());
  const TimePs d = core.consume(core.costs().pio_copy_64b);
  EXPECT_NEAR(d.to_ns(), 94.25, 1e-9);
  EXPECT_NEAR(core.virtual_now().to_ns(), 94.25, 1e-9);
}

TEST(Core, SpeedFactorScalesSampledCosts) {
  sim::Simulator sim;
  Core core(sim, deterministic_model());
  core.set_speed_factor(0.5);
  const TimePs d = core.consume(core.costs().pio_copy_64b);
  EXPECT_NEAR(d.to_ns(), 47.125, 1e-3);
  // Fixed durations are not scaled (they are already exact).
  core.set_speed_factor(1.0);
  core.consume(10_ns);
  EXPECT_NEAR(core.virtual_now().to_ns(), 57.125, 1e-3);
}

TEST(Core, BusyTimeAccumulates) {
  sim::Simulator sim;
  Core core(sim, deterministic_model());
  core.consume(30_ns);
  core.consume(20_ns);
  EXPECT_EQ(core.busy_time(), 50_ns);
}

TEST(Core, EmptyFlushIsNoop) {
  sim::Simulator sim;
  Core core(sim, deterministic_model());
  bool done = false;
  sim.spawn([](Core& c, bool& d) -> sim::Task<void> {
    co_await c.flush();
    d = true;
  }(core, done));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), TimePs::zero());
}

}  // namespace
}  // namespace bb::cpu
