// Whole-stack fault integration on the two-node testbed: a BER storm
// under a real am_lat ping-pong, the fault-rate->0 bit-identity golden,
// seeded repeatability under faults, and the terminal error path (a
// killed descriptor surfacing as an error CQE at the endpoint).

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "benchlib/am_lat.hpp"
#include "pcie/trace.hpp"
#include "scenario/testbed.hpp"

namespace bb {
namespace {

// FNV-1a over the analyzer trace (same mix as the determinism goldens).
std::uint64_t trace_checksum(const pcie::Trace& tr) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& r : tr.records()) {
    mix(static_cast<std::uint64_t>(r.t.ps()));
    mix(static_cast<std::uint64_t>(r.dir));
    mix(static_cast<std::uint64_t>(r.is_dllp));
    mix(static_cast<std::uint64_t>(r.tlp_type));
    mix(static_cast<std::uint64_t>(r.dllp_type));
    mix(r.bytes);
    mix(r.tag);
    mix(r.msg_id);
    for (char c : r.kind) {
      mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
  }
  return h;
}

auto am_lat_fingerprint(const scenario::SystemConfig& cfg) {
  scenario::Testbed tb(cfg);
  bench::AmLatBenchmark b(
      tb, {.iterations = 100, .warmup = 10, .capture_trace = true});
  (void)b.run();
  return std::tuple{tb.sim().events_processed(), tb.sim().now().ps(),
                    trace_checksum(tb.analyzer().trace())};
}

TEST(StackFault, AmLatUnderBerCompletesWithConservation) {
  scenario::Testbed tb(
      scenario::presets::thunderx2_cx4().with(scenario::overlays::faults(0.005)));
  bench::AmLatBenchmark b(
      tb, {.iterations = 100, .warmup = 10, .capture_trace = false});
  const bench::LatencyResult res = b.run();
  EXPECT_EQ(res.iterations, 100u);
  EXPECT_GT(res.adjusted_mean_ns, 0.0);

  const fault::FaultStats fs = tb.fault_stats();
  // The storm actually happened, and every injection was recovered.
  EXPECT_GT(fs.injected(), 0u);
  EXPECT_GT(fs.replays, 0u);
  EXPECT_EQ(fs.poisoned_tlps, 0u);  // BER 0.5% never exhausts 4 replays
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(tb.node(n).link.replay_buffer_depth(), 0u) << "node " << n;
    // Exactly-once, in-order delivery: nothing lost, nothing duplicated.
    EXPECT_EQ(tb.node(n).link.tlps_delivered(), tb.node(n).link.tlps_accepted())
        << "node " << n;
  }
  // The merged stats reach the profiler as counters.
  tb.publish_fault_counters();
  EXPECT_EQ(tb.node(0).profiler.counter("fault.replays"), fs.replays);
}

TEST(StackFault, FaultRateZeroIsBitIdenticalToBaseline) {
  const auto baseline = am_lat_fingerprint(scenario::presets::thunderx2_cx4());
  const auto zero_rate = am_lat_fingerprint(
      scenario::presets::thunderx2_cx4().with(scenario::overlays::faults(0.0)));
  EXPECT_EQ(baseline, zero_rate);
}

TEST(StackFault, SeededFaultRunsAreRepeatable) {
  const scenario::SystemConfig cfg =
      scenario::presets::thunderx2_cx4().with(scenario::overlays::faults(0.005));
  EXPECT_EQ(am_lat_fingerprint(cfg), am_lat_fingerprint(cfg));
}

TEST(StackFault, KilledDescriptorSurfacesAsErrorCqe) {
  // Kill node 0's first downstream TLP (the PIO descriptor of the post):
  // the sender exhausts its replay budget, forwards the TLP poisoned, and
  // the NIC retires the op with a completion-with-error instead of
  // injecting it -- the op fails fast rather than hanging.
  fault::FaultConfig f;
  f.max_replays = 1;
  f.scheduled.push_back(
      {fault::OneShot::Kind::kKillTlp, fault::LinkDir::kDownstream, 1});
  scenario::Testbed tb(scenario::presets::thunderx2_cx4().with(f));
  llp::Endpoint& ep = tb.add_endpoint(0);

  auto driver = [](scenario::Testbed& t, llp::Endpoint& e) -> sim::Task<void> {
    (void)co_await e.am_short(8);
    while (e.tx_errors() == 0 && t.sim().now().to_ns() < 1e6) {
      (void)co_await t.node(0).worker.progress();
    }
  };
  tb.sim().spawn(driver(tb, ep), "error-cqe-driver");
  tb.sim().run();

  EXPECT_EQ(ep.tx_errors(), 1u);
  EXPECT_EQ(ep.outstanding(), 0u);
  EXPECT_EQ(tb.node(0).worker.error_completions(), 1u);

  const fault::FaultStats fs = tb.fault_stats();
  EXPECT_EQ(fs.poisoned_tlps, 1u);
  EXPECT_EQ(fs.error_cqes, 1u);
  // The poisoned TLP was consumed by the NIC, never written to host memory.
  EXPECT_EQ(fs.poisoned_delivered, 0u);
  EXPECT_EQ(tb.node(0).link.replay_buffer_depth(), 0u);
}

}  // namespace
}  // namespace bb
