#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bb::fault {
namespace {

using TlpFate = FaultInjector::TlpFate;

TEST(FaultConfig, DisabledByDefault) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
}

TEST(FaultConfig, AnyRateOrScheduleEnables) {
  FaultConfig cfg;
  cfg.tlp_corrupt_prob = 1e-6;
  EXPECT_TRUE(cfg.enabled());

  FaultConfig sched;
  sched.scheduled.push_back({OneShot::Kind::kDropTlp, LinkDir::kDownstream, 7});
  EXPECT_TRUE(sched.enabled());

  FaultConfig zero;
  zero.tlp_corrupt_prob = 0.0;
  EXPECT_FALSE(zero.enabled());
}

TEST(FaultInjector, SameSeedSameDecisionStream) {
  FaultConfig cfg;
  cfg.tlp_corrupt_prob = 0.3;
  cfg.tlp_drop_prob = 0.2;
  auto fates = [&cfg](std::uint64_t seed) {
    FaultInjector inj(cfg, seed);
    std::vector<TlpFate> out;
    for (std::uint64_t s = 1; s <= 500; ++s) {
      out.push_back(inj.tlp_fate(LinkDir::kDownstream, s, 0));
    }
    return out;
  };
  EXPECT_EQ(fates(42), fates(42));
  EXPECT_NE(fates(42), fates(43));
}

TEST(FaultInjector, BerRatesRoughlyMatchConfigured) {
  FaultConfig cfg;
  cfg.tlp_corrupt_prob = 0.25;
  FaultInjector inj(cfg, 1);
  for (std::uint64_t s = 1; s <= 10000; ++s) {
    (void)inj.tlp_fate(LinkDir::kUpstream, s, 0);
  }
  const double rate =
      static_cast<double>(inj.stats().tlps_corrupted) / 10000.0;
  EXPECT_NEAR(rate, 0.25, 0.02);
  EXPECT_EQ(inj.stats().tlps_dropped, 0u);
}

TEST(FaultInjector, OneShotCorruptFiresExactlyOnce) {
  FaultConfig cfg;
  cfg.scheduled.push_back(
      {OneShot::Kind::kCorruptTlp, LinkDir::kDownstream, 3});
  FaultInjector inj(cfg, 7);
  EXPECT_EQ(inj.tlp_fate(LinkDir::kDownstream, 1, 0), TlpFate::kDeliver);
  EXPECT_EQ(inj.tlp_fate(LinkDir::kDownstream, 2, 0), TlpFate::kDeliver);
  // Wrong direction is not consumed.
  EXPECT_EQ(inj.tlp_fate(LinkDir::kUpstream, 3, 0), TlpFate::kDeliver);
  EXPECT_EQ(inj.tlp_fate(LinkDir::kDownstream, 3, 0), TlpFate::kCorrupt);
  // The retransmission of the same sequence is clean.
  EXPECT_EQ(inj.tlp_fate(LinkDir::kDownstream, 3, 1), TlpFate::kDeliver);
  EXPECT_EQ(inj.stats().tlps_corrupted, 1u);
}

TEST(FaultInjector, KillTlpCorruptsEveryAttempt) {
  FaultConfig cfg;
  cfg.scheduled.push_back({OneShot::Kind::kKillTlp, LinkDir::kUpstream, 2});
  FaultInjector inj(cfg, 7);
  EXPECT_EQ(inj.tlp_fate(LinkDir::kUpstream, 1, 0), TlpFate::kDeliver);
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(inj.tlp_fate(LinkDir::kUpstream, 2, attempt), TlpFate::kCorrupt);
  }
  EXPECT_EQ(inj.stats().tlps_corrupted, 5u);
}

TEST(FaultInjector, ScheduledDllpDropsCountOrdinals) {
  FaultConfig cfg;
  cfg.scheduled.push_back(
      {OneShot::Kind::kDropUpdateFC, LinkDir::kDownstream, 2});
  cfg.scheduled.push_back({OneShot::Kind::kDropAck, LinkDir::kUpstream, 1});
  FaultInjector inj(cfg, 7);
  EXPECT_FALSE(inj.drop_updatefc(LinkDir::kDownstream));  // 1st
  EXPECT_TRUE(inj.drop_updatefc(LinkDir::kDownstream));   // 2nd: scheduled
  EXPECT_FALSE(inj.drop_updatefc(LinkDir::kDownstream));  // 3rd
  EXPECT_TRUE(inj.drop_ack(LinkDir::kUpstream));
  EXPECT_FALSE(inj.drop_ack(LinkDir::kUpstream));
  EXPECT_EQ(inj.stats().updatefc_dropped, 1u);
  EXPECT_EQ(inj.stats().acks_dropped, 1u);
}

TEST(FaultStats, MergeAndConservationHelpers) {
  FaultStats a;
  a.tlps_corrupted = 2;
  a.replays = 3;
  FaultStats b;
  b.updatefc_dropped = 1;
  b.fc_reemissions = 1;
  b.error_cqes = 4;
  a.merge(b);
  EXPECT_EQ(a.injected(), 3u);
  EXPECT_EQ(a.recovered(), 8u);
  // render() is a smoke check: must contain a known row label.
  EXPECT_NE(a.render("T").find("replays"), std::string::npos);
}

}  // namespace
}  // namespace bb::fault
