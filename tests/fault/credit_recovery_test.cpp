// Cumulative (absolute-counter) flow control: the property that makes
// UpdateFC re-emission after a loss safe. Duplicates and stale repeats
// must replenish nothing; only genuinely new totals count.

#include <gtest/gtest.h>

#include "pcie/credit.hpp"

namespace bb::pcie {
namespace {

Tlp mwr(std::uint32_t bytes) {
  Tlp t;
  t.type = TlpType::kMemWrite;
  t.bytes = bytes;
  return t;
}

TEST(CumulativeCredits, LedgerStampsAbsoluteTotals) {
  CreditLedger ledger;
  const Dllp fc1 = ledger.release_for(mwr(64));
  const Dllp fc2 = ledger.release_for(mwr(64));
  EXPECT_TRUE(fc1.cumulative);
  EXPECT_EQ(fc1.header_total, 1u);
  EXPECT_EQ(fc2.header_total, 2u);
  EXPECT_EQ(fc2.data_total, fc1.data_total * 2);
  // The legacy per-TLP delta still rides along for trace consumers.
  EXPECT_EQ(fc2.header_credits, 1u);
  EXPECT_EQ(ledger.header_total(CreditClass::kPosted), 2u);
}

TEST(CumulativeCredits, DuplicateReplenishIsIdempotent) {
  CreditState cs = CreditState::default_endpoint();
  CreditLedger ledger;

  const Tlp t = mwr(64);
  cs.consume(t);
  const CreditBudget drained = cs.available(CreditClass::kPosted);
  const Dllp fc = ledger.release_for(t);

  cs.replenish(fc);
  const CreditBudget full = cs.available(CreditClass::kPosted);
  EXPECT_EQ(full.header, drained.header + 1);

  // Re-emitted duplicate: must not overflow the advertised budget (the
  // non-cumulative scheme would trip the replenish assert here).
  cs.replenish(fc);
  EXPECT_EQ(cs.available(CreditClass::kPosted).header, full.header);
  EXPECT_EQ(cs.available(CreditClass::kPosted).data, full.data);
}

TEST(CumulativeCredits, StaleReemissionAfterNewerTotalIsNoop) {
  CreditState cs = CreditState::default_endpoint();
  CreditLedger ledger;

  const Tlp a = mwr(64);
  const Tlp b = mwr(64);
  cs.consume(a);
  cs.consume(b);
  const Dllp fc_a = ledger.release_for(a);  // totals: 1
  const Dllp fc_b = ledger.release_for(b);  // totals: 2

  // The newer UpdateFC arrives first (the older one was dropped and
  // re-emitted later): it replenishes both TLPs' worth of credits...
  cs.replenish(fc_b);
  const CreditBudget after = cs.available(CreditClass::kPosted);
  // ...and the late, stale re-emission adds nothing.
  cs.replenish(fc_a);
  EXPECT_EQ(cs.available(CreditClass::kPosted).header, after.header);
  EXPECT_EQ(cs.available(CreditClass::kPosted).data, after.data);
}

TEST(CumulativeCredits, LegacyDeltaUpdatesApplyVerbatim) {
  CreditState cs = CreditState::default_endpoint();
  const Tlp t = mwr(64);
  cs.consume(t);
  const Dllp delta = CreditState::release_for(t);  // non-cumulative
  EXPECT_FALSE(delta.cumulative);
  const CreditBudget before = cs.available(CreditClass::kPosted);
  cs.replenish(delta);
  EXPECT_EQ(cs.available(CreditClass::kPosted).header, before.header + 1);
}

}  // namespace
}  // namespace bb::pcie
