// The composable config-overlay API: presets must be exactly equivalent
// to baseline + overlay, overlays must compose left to right with
// self-describing names, and a raw FaultConfig / callable must compose.

#include <gtest/gtest.h>

#include "scenario/config.hpp"

namespace bb::scenario {
namespace {

TEST(Overlays, PresetEqualsBaselinePlusOverlay) {
  const SystemConfig via_preset = presets::genz_switch(30.0);
  const SystemConfig via_overlay =
      presets::thunderx2_cx4().with(overlays::genz_switch(30.0));
  EXPECT_EQ(via_preset.name, via_overlay.name);
  EXPECT_EQ(via_preset.name, "genz-switch");
  EXPECT_EQ(via_preset.net.switch_latency_ns,
            via_overlay.net.switch_latency_ns);

  const SystemConfig tso = presets::tso_cpu();
  const SystemConfig tso_o = presets::thunderx2_cx4().with(overlays::tso_cpu());
  EXPECT_EQ(tso.name, tso_o.name);
  EXPECT_EQ(tso.cpu.barrier_store_md.mean_ns,
            tso_o.cpu.barrier_store_md.mean_ns);
}

TEST(Overlays, ComposeLeftToRightAndRecordNames) {
  const SystemConfig c = presets::thunderx2_cx4().with(
      overlays::genz_switch(30.0), overlays::faults(1e-3));
  EXPECT_EQ(c.name, "genz-switch+faults");
  EXPECT_NEAR(c.net.switch_latency_ns, 30.0, 1e-12);
  EXPECT_NEAR(c.fault.tlp_corrupt_prob, 1e-3, 1e-15);
  EXPECT_TRUE(c.fault.enabled());
}

TEST(Overlays, LaterOverlayWins) {
  const SystemConfig c = presets::thunderx2_cx4().with(
      overlays::genz_switch(30.0), overlays::genz_switch(50.0));
  EXPECT_NEAR(c.net.switch_latency_ns, 50.0, 1e-12);
}

TEST(Overlays, RawFaultConfigComposesDirectly) {
  fault::FaultConfig f;
  f.tlp_drop_prob = 0.01;
  f.max_replays = 9;
  const SystemConfig c = presets::thunderx2_cx4().with(f);
  EXPECT_TRUE(c.fault.enabled());
  EXPECT_EQ(c.fault.max_replays, 9);
  EXPECT_EQ(c.name, "faults");
}

TEST(Overlays, ArbitraryCallableComposes) {
  const SystemConfig c = presets::thunderx2_cx4().with(
      [](SystemConfig& cfg) { cfg.endpoint.txq_depth = 7; });
  EXPECT_EQ(c.endpoint.txq_depth, 7u);
  // Anonymous overlays do not relabel.
  EXPECT_EQ(c.name, "thunderx2-cx4");
}

TEST(Overlays, WithDoesNotMutateTheSource) {
  const SystemConfig base = presets::thunderx2_cx4();
  (void)base.with(overlays::faults(0.5));
  EXPECT_FALSE(base.fault.enabled());
  EXPECT_EQ(base.name, "thunderx2-cx4");
}

TEST(Overlays, FaultyTestbedPresetWiresFaults) {
  fault::FaultConfig f;
  f.updatefc_drop_prob = 0.25;
  const SystemConfig c = presets::faulty_testbed(f);
  EXPECT_TRUE(c.fault.enabled());
  EXPECT_NEAR(c.fault.updatefc_drop_prob, 0.25, 1e-15);
}

TEST(Overlays, ZeroRateFaultsOverlayStaysDisabled) {
  // The fault-rate->0 limit: overlaying zero-rate faults must leave the
  // machine on the error-free fast path (no injector consulted at all).
  const SystemConfig c =
      presets::thunderx2_cx4().with(overlays::faults(0.0));
  EXPECT_FALSE(c.fault.enabled());
}

}  // namespace
}  // namespace bb::scenario
