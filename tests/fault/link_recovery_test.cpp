// Data-link recovery at the pcie::Link level: Nak -> go-back-N replay,
// replay-timer expiry, duplicate discard after a lost Ack, poisoned
// forwarding after an exhausted replay budget, and UpdateFC re-emission.

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hpp"
#include "pcie/link.hpp"

namespace bb::pcie {
namespace {

Tlp write_tlp(std::uint64_t msg_id) {
  Tlp t;
  t.type = TlpType::kMemWrite;
  t.bytes = 64;
  DescriptorWrite dw;
  dw.md.msg_id = msg_id;
  t.content = dw;
  return t;
}

std::uint64_t msg_of(const Tlp& t) {
  return std::get<DescriptorWrite>(t.content).md.msg_id;
}

struct Rig {
  sim::Simulator sim;
  fault::FaultInjector injector;
  Link link;
  std::vector<Tlp> delivered;

  explicit Rig(fault::FaultConfig cfg, LinkParams p = {})
      : injector(cfg, /*seed=*/1), link(sim, p, nullptr, &injector) {
    link.set_b_tlp_handler([this](const Tlp& t) { delivered.push_back(t); });
    link.set_a_tlp_handler([this](const Tlp& t) { delivered.push_back(t); });
  }
  const fault::FaultStats& stats() const { return injector.stats(); }
};

TEST(LinkRecovery, NakTriggersOrderedGoBackNReplay) {
  fault::FaultConfig cfg;
  cfg.scheduled.push_back(
      {fault::OneShot::Kind::kCorruptTlp, fault::LinkDir::kDownstream, 2});
  Rig rig(cfg);

  rig.link.send_downstream(write_tlp(1));
  rig.link.send_downstream(write_tlp(2));
  rig.link.send_downstream(write_tlp(3));
  rig.sim.run();

  // Every TLP delivered exactly once, in posted order, despite the replay.
  ASSERT_EQ(rig.delivered.size(), 3u);
  EXPECT_EQ(msg_of(rig.delivered[0]), 1u);
  EXPECT_EQ(msg_of(rig.delivered[1]), 2u);
  EXPECT_EQ(msg_of(rig.delivered[2]), 3u);
  EXPECT_EQ(rig.stats().tlps_corrupted, 1u);
  EXPECT_EQ(rig.stats().naks_sent, 1u);
  EXPECT_GE(rig.stats().replays, 1u);
  // Recovery is complete: nothing left unacknowledged.
  EXPECT_EQ(rig.link.replay_buffer_depth(), 0u);
  EXPECT_EQ(rig.link.tlps_delivered(), rig.link.tlps_accepted());
}

TEST(LinkRecovery, DroppedTlpRecoveredByReplayTimer) {
  fault::FaultConfig cfg;
  cfg.replay_timeout_ns = 3000.0;
  cfg.scheduled.push_back(
      {fault::OneShot::Kind::kDropTlp, fault::LinkDir::kDownstream, 1});
  Rig rig(cfg);

  rig.link.send_downstream(write_tlp(7));
  rig.sim.run();

  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(msg_of(rig.delivered[0]), 7u);
  EXPECT_FALSE(rig.delivered[0].poisoned);
  EXPECT_EQ(rig.stats().tlps_dropped, 1u);
  EXPECT_GE(rig.stats().replay_timeouts, 1u);
  // The retransmission could not depart before the timer expired.
  EXPECT_GT(rig.sim.now().to_ns(), cfg.replay_timeout_ns);
  EXPECT_EQ(rig.link.replay_buffer_depth(), 0u);
}

TEST(LinkRecovery, LostAckRecoveredAsDiscardedDuplicate) {
  fault::FaultConfig cfg;
  cfg.scheduled.push_back(
      // The Ack for a downstream TLP travels upstream; drop the first one.
      {fault::OneShot::Kind::kDropAck, fault::LinkDir::kUpstream, 1});
  Rig rig(cfg);

  rig.link.send_downstream(write_tlp(9));
  rig.sim.run();

  // Payload delivered exactly once; the timer-driven retransmission was
  // recognized as a duplicate and re-acknowledged.
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(rig.stats().acks_dropped, 1u);
  EXPECT_GE(rig.stats().duplicates_dropped, 1u);
  EXPECT_EQ(rig.link.replay_buffer_depth(), 0u);
}

TEST(LinkRecovery, ExhaustedReplayBudgetForwardsPoisoned) {
  fault::FaultConfig cfg;
  cfg.max_replays = 2;
  cfg.scheduled.push_back(
      {fault::OneShot::Kind::kKillTlp, fault::LinkDir::kDownstream, 1});
  Rig rig(cfg);

  rig.link.send_downstream(write_tlp(13));
  rig.sim.run();

  // The TLP can never pass cleanly; after max_replays retransmissions the
  // sender error-forwards it and the receiver still gets it (EP bit set).
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_TRUE(rig.delivered[0].poisoned);
  EXPECT_EQ(rig.stats().poisoned_tlps, 1u);
  EXPECT_EQ(rig.stats().replays, static_cast<std::uint64_t>(cfg.max_replays) + 1);
  EXPECT_EQ(rig.link.replay_buffer_depth(), 0u);
  EXPECT_EQ(rig.link.tlps_delivered(), rig.link.tlps_accepted());
}

TEST(LinkRecovery, DroppedUpdateFcIsReemittedAfterTimeout) {
  fault::FaultConfig cfg;
  cfg.fc_reemit_timeout_ns = 2000.0;
  cfg.scheduled.push_back(
      {fault::OneShot::Kind::kDropUpdateFC, fault::LinkDir::kDownstream, 1});
  Rig rig(cfg);
  std::vector<double> fc_arrivals;
  rig.link.set_b_dllp_handler([&](const Dllp& d) {
    if (d.type == DllpType::kUpdateFC) {
      fc_arrivals.push_back(rig.sim.now().to_ns());
    }
  });

  Dllp fc;
  fc.type = DllpType::kUpdateFC;
  fc.credit_class = CreditClass::kPosted;
  fc.header_credits = 1;
  fc.cumulative = true;
  fc.header_total = 1;
  rig.link.send_dllp_downstream(fc);
  rig.sim.run();

  // Exactly one arrival, delayed past the credit timeout.
  ASSERT_EQ(fc_arrivals.size(), 1u);
  EXPECT_GT(fc_arrivals[0], cfg.fc_reemit_timeout_ns);
  EXPECT_EQ(rig.stats().updatefc_dropped, 1u);
  EXPECT_EQ(rig.stats().fc_reemissions, 1u);
}

TEST(LinkRecovery, BerStormStillDeliversEverythingInOrder) {
  fault::FaultConfig cfg;
  cfg.tlp_corrupt_prob = 0.10;
  cfg.tlp_drop_prob = 0.05;
  cfg.ack_drop_prob = 0.05;
  Rig rig(cfg);

  constexpr int kN = 200;
  for (int i = 1; i <= kN; ++i) rig.link.send_downstream(write_tlp(i));
  rig.sim.run();

  ASSERT_EQ(rig.delivered.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(msg_of(rig.delivered[i]), static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_GT(rig.stats().injected(), 0u);
  EXPECT_GT(rig.stats().replays, 0u);
  EXPECT_EQ(rig.link.replay_buffer_depth(), 0u);
  EXPECT_EQ(rig.link.tlps_delivered(), rig.link.tlps_accepted());
}

TEST(LinkRecovery, DisabledInjectorLeavesLinkUntouched) {
  fault::FaultConfig cfg;  // all zero
  Rig rig(cfg);
  EXPECT_FALSE(rig.injector.enabled());
  rig.link.send_downstream(write_tlp(1));
  rig.sim.run();
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(rig.link.replay_buffer_depth(), 0u);
  EXPECT_EQ(rig.stats().injected(), 0u);
}

}  // namespace
}  // namespace bb::pcie
