// The rendezvous protocol: RTS -> CTS -> one-sided payload put -> FIN.
// Large sends advertise instead of pushing eagerly; the payload crosses
// the PCIe bus and wire exactly once, against an extra control round trip.

#include <gtest/gtest.h>

#include "scenario/mpi_stack.hpp"
#include "scenario/testbed.hpp"

namespace bb::hlp {
namespace {

using scenario::MpiStack;
using scenario::Testbed;

struct Pair {
  Testbed tb;
  MpiStack a;
  MpiStack b;
  explicit Pair(scenario::SystemConfig cfg)
      : tb(std::move(cfg)), a(tb, 0), b(tb, 1) {
    // Control messages (RTS/CTS/FIN) consume receives on both sides.
    tb.node(0).nic.post_receives(64);
    tb.node(1).nic.post_receives(64);
  }
};

TEST(Rndv, SmallSendsStayEager) {
  Pair p(scenario::presets::deterministic());
  p.tb.sim().spawn([](Pair& pr) -> sim::Task<void> {
    Request* r = (co_await pr.a.ucp().tag_send_nb(512)).value();
    EXPECT_TRUE(r->complete);  // eager: locally complete
  }(p));
  p.tb.sim().run();
  EXPECT_EQ(p.a.ucp().rndv_sends(), 0u);
}

TEST(Rndv, LargeSendUsesRendezvous) {
  Pair p(scenario::presets::deterministic());
  bool recv_done = false;
  p.tb.sim().spawn([](Pair& pr) -> sim::Task<void> {
    Request* s = (co_await pr.a.ucp().tag_send_nb(2048)).value();
    EXPECT_FALSE(s->complete);  // awaiting CTS
    while (!s->complete) co_await pr.a.ucp().progress();
  }(p));
  p.tb.sim().spawn([](Pair& pr, bool& done) -> sim::Task<void> {
    Request* r = pr.b.ucp().tag_recv_nb(2048).value();
    while (!r->complete) co_await pr.b.ucp().progress();
    done = true;
  }(p, recv_done));
  p.tb.sim().run();

  EXPECT_TRUE(recv_done);
  EXPECT_EQ(p.a.ucp().rndv_sends(), 1u);
  // Receiver saw the 2048 B payload plus the 8 B RTS and FIN.
  EXPECT_EQ(p.tb.node(1).host.payload_bytes_delivered(), 2048u + 16u);
  // Sender saw the 8 B CTS.
  EXPECT_EQ(p.tb.node(0).host.payload_bytes_delivered(), 8u);
}

TEST(Rndv, UnexpectedRtsMatchedByLateRecv) {
  Pair p(scenario::presets::deterministic());
  p.tb.sim().spawn([](Pair& pr) -> sim::Task<void> {
    Request* s = (co_await pr.a.ucp().tag_send_nb(4096)).value();
    while (!s->complete) co_await pr.a.ucp().progress();
  }(p));
  p.tb.sim().spawn([](Pair& pr) -> sim::Task<void> {
    // Progress without a posted receive until the RTS has surely landed.
    for (int i = 0; i < 200; ++i) co_await pr.b.ucp().progress();
    EXPECT_EQ(pr.b.ucp().recvs_completed(), 0u);
    Request* r = pr.b.ucp().tag_recv_nb(4096).value();
    while (!r->complete) co_await pr.b.ucp().progress();
  }(p));
  p.tb.sim().run();
  EXPECT_EQ(p.b.ucp().recvs_completed(), 1u);
  EXPECT_EQ(p.tb.node(1).host.payload_bytes_delivered(), 4096u + 16u);
}

TEST(Rndv, MpiWaitDrivesRendezvousSend) {
  Pair p(scenario::presets::deterministic());
  p.tb.sim().spawn([](Pair& pr) -> sim::Task<void> {
    Request* s = (co_await pr.a.mpi().isend(8192)).value();
    co_await pr.a.mpi().wait(s);
    EXPECT_TRUE(s->complete);
  }(p));
  p.tb.sim().spawn([](Pair& pr) -> sim::Task<void> {
    Request* r = pr.b.mpi().irecv(8192).value();
    co_await pr.b.mpi().wait(r);
  }(p));
  p.tb.sim().run();
  EXPECT_EQ(p.tb.node(1).host.payload_bytes_delivered(), 8192u + 16u);
}

TEST(Rndv, PayloadCrossesWireOnceAndControlThrice) {
  Pair p(scenario::presets::deterministic());
  p.tb.sim().spawn([](Pair& pr) -> sim::Task<void> {
    Request* s = (co_await pr.a.ucp().tag_send_nb(2048)).value();
    while (!s->complete) co_await pr.a.ucp().progress();
  }(p));
  p.tb.sim().spawn([](Pair& pr) -> sim::Task<void> {
    Request* r = pr.b.ucp().tag_recv_nb(2048).value();
    while (!r->complete) co_await pr.b.ucp().progress();
  }(p));
  p.tb.sim().run();
  // Node 0 injected RTS + payload + FIN; node 1 injected CTS.
  EXPECT_EQ(p.tb.node(0).nic.messages_injected(), 3u);
  EXPECT_EQ(p.tb.node(1).nic.messages_injected(), 1u);
}

TEST(Rndv, RendezvousSlowerThanEagerAtThresholdBoundary) {
  // Just below the threshold the eager path wins (no control round
  // trip); the protocol switch exists for memory/copy reasons at sizes
  // where the simulation's inline modelling ends.
  auto run = [](std::uint32_t bytes) {
    Pair p(scenario::presets::deterministic());
    double done_ns = 0;
    p.tb.sim().spawn([](Pair& pr, std::uint32_t n) -> sim::Task<void> {
      Request* s = (co_await pr.a.ucp().tag_send_nb(n)).value();
      while (!s->complete) co_await pr.a.ucp().progress();
    }(p, bytes));
    p.tb.sim().spawn([](Pair& pr, std::uint32_t n, double& out) -> sim::Task<void> {
      Request* r = pr.b.ucp().tag_recv_nb(n).value();
      while (!r->complete) co_await pr.b.ucp().progress();
      out = pr.b.node().core.virtual_now().to_ns();
    }(p, bytes, done_ns));
    p.tb.sim().run();
    return done_ns;
  };
  const double eager = run(1023);   // below threshold
  const double rndv = run(1024);    // at threshold
  // The rendezvous pays roughly an extra network round trip.
  EXPECT_GT(rndv, eager + 500.0);
}

}  // namespace
}  // namespace bb::hlp
