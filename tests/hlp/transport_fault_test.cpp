// Wire-transport failures surfacing through the HLP stack: a killed PSN
// exhausts the NIC's retry budget, the QP error reaches the endpoint
// (qp_in_error / tx_errors), the application reconnects and resends, and
// the receiver's MPI-level wait completes as if nothing happened.

#include <gtest/gtest.h>

#include "hlp/mpi.hpp"
#include "nic/nic.hpp"
#include "scenario/mpi_stack.hpp"
#include "scenario/testbed.hpp"

namespace bb::hlp {
namespace {

using scenario::MpiStack;
using scenario::Testbed;

TEST(HlpTransportFault, SenderQpErrorSurfacesReconnectResendsDelivers) {
  // Kill every attempt of node 0's first data packet (PSN 1).
  fault::WireFaultConfig w;
  w.scheduled.push_back({fault::WireOneShot::Kind::kKillData, 0, 1});
  Testbed tb(scenario::presets::deterministic().with(
      scenario::overlays::wire_faults(w)));
  MpiStack a(tb, 0, /*signal_period=*/1);
  MpiStack b(tb, 1, /*signal_period=*/1);
  tb.node(0).nic.post_receives(16);
  tb.node(1).nic.post_receives(16);

  // Sender: the eager isend completes locally (UCX semantics), but the
  // wire never delivers it. Detect the QP error at the endpoint, run the
  // recovery ladder, and resend.
  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    (void)co_await st.mpi().isend(8);
    while (!st.endpoint().qp_in_error()) {
      co_await st.node().worker.progress();
    }
    // Drain the flushed error CQE (it still crosses PCIe and a poll):
    // it retires the op with an error status at the llp layer.
    while (st.endpoint().tx_errors() == 0) {
      co_await st.node().worker.progress();
    }
    EXPECT_EQ(st.endpoint().tx_errors(), 1u);
    EXPECT_EQ(co_await st.endpoint().reconnect(), llp::Status::kOk);
    EXPECT_FALSE(st.endpoint().qp_in_error());
    (void)co_await st.mpi().isend(8);  // PSN 2: delivered
  }(a));

  // Receiver: one blocking wait; it simply takes ~0.4 ms longer than a
  // healthy run while the sender recovers.
  common::Status recv_status = common::Status::kIoError;
  tb.sim().spawn([](MpiStack& st, common::Status& out) -> sim::Task<void> {
    Request* r = st.mpi().irecv(8).value();
    out = co_await st.mpi().wait(r);
  }(b, recv_status));

  tb.sim().run();
  EXPECT_EQ(recv_status, common::Status::kOk);
  EXPECT_EQ(tb.node(1).host.payload_bytes_delivered(), 8u);

  const net::TransportStats s = tb.net_stats();
  EXPECT_EQ(s.qp_errors, 1u);
  EXPECT_EQ(s.qp_recoveries, 1u);
  EXPECT_GT(s.retry_timer_firings, 0u);
  EXPECT_EQ(tb.node(0).nic.tx_unacked(), 0u);
}

}  // namespace
}  // namespace bb::hlp
