// Profiler wrap points across the HLP stack: the §5 measurement
// methodology's instrumentation hooks, exercised one at a time.

#include <gtest/gtest.h>

#include "scenario/mpi_stack.hpp"
#include "scenario/testbed.hpp"

namespace bb::hlp {
namespace {

using scenario::MpiStack;
using scenario::Testbed;
using namespace bb::literals;

/// One successful-wait cycle: sender fires, receiver idles past arrival,
/// then waits. Returns the profiler mean for `region` on node 1.
double measure_rx_region(const std::string& mpi_wrap,
                         const std::string& ucp_wrap,
                         const std::string& uct_wrap,
                         const std::string& region) {
  Testbed tb(scenario::presets::deterministic());
  MpiStack tx(tb, 0);
  MpiStack rx(tb, 1);
  tb.node(1).nic.post_receives(8);
  if (!mpi_wrap.empty()) rx.mpi().set_wrap(mpi_wrap);
  if (!ucp_wrap.empty()) rx.ucp().set_wrap(ucp_wrap);
  if (!uct_wrap.empty()) tb.node(1).worker.set_wrap(uct_wrap);

  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      (void)co_await st.mpi().isend(8);
      co_await st.ucp().progress();
      co_await st.node().core.flush();
      co_await st.node().core.simulator().delay(10_us);
    }
  }(tx));
  tb.sim().spawn([](Testbed& t, MpiStack& st) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      Request* r = st.mpi().irecv(8).value();
      co_await st.node().core.flush();
      const TimePs target = TimePs::from_ns(10e3) * i + 5_us;
      if (target > t.sim().now()) co_await t.sim().delay(target - t.sim().now());
      co_await st.mpi().wait(r);
    }
  }(tb, rx));
  tb.sim().run();
  return tb.node(1).profiler.mean_ns(region);
}

TEST(HlpWraps, MpiWaitTotalIs505_43) {
  // 208.41 + 10.73 + 61.63 + 139.78 + 47.99 + 36.89.
  EXPECT_NEAR(measure_rx_region("MPI_Wait", "", "", "MPI_Wait"), 505.43,
              1e-6);
}

TEST(HlpWraps, UcpProgressIncludesNestedUctPass) {
  // ucp_progress_iter 10.73 + the full UCT pass (LLP_prog 61.63 and both
  // registered callbacks 139.78 + 47.99, which §5 notes execute before
  // uct_worker_progress returns) = 260.13.
  EXPECT_NEAR(measure_rx_region("", "ucp_worker_progress", "",
                                "ucp_worker_progress"),
              260.13, 1e-6);
}

TEST(HlpWraps, UctProgressIncludesCallbackChain) {
  const double uct = measure_rx_region("", "", "uct_worker_progress",
                                       "uct_worker_progress");
  // LLP_prog + UCP callback + MPICH callback execute inside the pass.
  EXPECT_NEAR(uct, 61.63 + 139.78 + 47.99, 1e-6);
}

TEST(HlpWraps, SubtractionRecoversPaperLayerTimes) {
  const double wait = measure_rx_region("MPI_Wait", "", "", "MPI_Wait");
  const double ucp = measure_rx_region("", "ucp_worker_progress", "",
                                       "ucp_worker_progress");
  const double uct = measure_rx_region("", "", "uct_worker_progress",
                                       "uct_worker_progress");
  const double mpich_cb =
      measure_rx_region("MPICH callback", "", "", "MPICH callback");
  const double ucp_cb = measure_rx_region("", "UCP callback", "", "UCP callback");

  // §5's arithmetic: MPICH share = wait - ucp + MPICH callback = 293.29;
  // UCP share = ucp - uct + UCP-alone callback... the published 150.51
  // counts the UCP callback excluding the nested MPICH callback.
  EXPECT_NEAR(wait - ucp + mpich_cb, 293.29, 1e-6);
  EXPECT_NEAR(ucp - uct + ucp_cb, 150.51, 1e-6);
}

TEST(HlpWraps, CallbackRegionsMatchTable1) {
  EXPECT_NEAR(measure_rx_region("MPICH callback", "", "", "MPICH callback"),
              47.99, 1e-6);
  EXPECT_NEAR(measure_rx_region("", "UCP callback", "", "UCP callback"),
              139.78, 1e-6);
  EXPECT_NEAR(measure_rx_region("MPICH after progress", "", "",
                                "MPICH after progress"),
              36.89, 1e-6);
}

}  // namespace
}  // namespace bb::hlp
