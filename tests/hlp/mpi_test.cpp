#include "hlp/mpi.hpp"

#include <gtest/gtest.h>

#include "scenario/mpi_stack.hpp"
#include "scenario/testbed.hpp"

namespace bb::hlp {
namespace {

using scenario::MpiStack;
using scenario::Testbed;
using namespace bb::literals;

TEST(Mpi, IsendCostsPostPath) {
  Testbed tb(scenario::presets::deterministic());
  MpiStack s(tb, 0);
  tb.node(1).nic.post_receives(4);
  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    Request* r = (co_await st.mpi().isend(8)).value();
    // Post = HLP_post (26.56) + LLP_post (175.42) = 201.98 (§6).
    EXPECT_NEAR(st.node().core.virtual_now().to_ns(), 201.98, 1e-6);
    EXPECT_TRUE(r->complete);
  }(s));
  tb.sim().run();
}

TEST(Mpi, PingPongRoundTrip) {
  Testbed tb(scenario::presets::deterministic());
  MpiStack a(tb, 0);
  MpiStack b(tb, 1);
  tb.node(0).nic.post_receives(64);
  tb.node(1).nic.post_receives(64);
  double one_way_ns = 0;
  const int kIters = 10;

  tb.sim().spawn([](MpiStack& st, double& out, int iters) -> sim::Task<void> {
    // Warm-up iteration excluded from timing.
    const double t0 = st.node().core.virtual_now().to_ns();
    for (int i = 0; i < iters; ++i) {
      Request* rr = st.mpi().irecv(8).value();
      (void)co_await st.mpi().isend(8);
      co_await st.mpi().wait(rr);
    }
    out = (st.node().core.virtual_now().to_ns() - t0) / (2.0 * iters);
  }(a, one_way_ns, kIters));

  tb.sim().spawn([](MpiStack& st, int iters) -> sim::Task<void> {
    for (int i = 0; i < iters; ++i) {
      Request* rr = st.mpi().irecv(8).value();
      co_await st.mpi().wait(rr);
      (void)co_await st.mpi().isend(8);
    }
  }(b, kIters));

  tb.sim().run();
  // The paper's modelled end-to-end latency is 1387.02 ns and the observed
  // 1336 ns; the simulator must land in that neighbourhood (within 8%).
  EXPECT_NEAR(one_way_ns, 1387.0, 1387.0 * 0.08);
}

TEST(Mpi, SuccessfulWaitCostMatchesTable1Composition) {
  // Arrange a wait whose first progress pass finds the completion (§5's
  // "successful MPI_Wait"): the message lands while the receiver is
  // deliberately idle.
  Testbed tb(scenario::presets::deterministic());
  MpiStack tx(tb, 0);
  MpiStack rx(tb, 1);
  tb.node(1).nic.post_receives(4);

  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    (void)co_await st.mpi().isend(8);
  }(tx));

  double wait_cost = -1;
  tb.sim().spawn([](Testbed& t, MpiStack& st, double& out) -> sim::Task<void> {
    Request* r = st.mpi().irecv(8).value();
    co_await st.node().core.flush();
    co_await t.sim().delay(5_us);  // message arrives during this idle gap
    const double t0 = st.node().core.virtual_now().to_ns();
    co_await st.mpi().wait(r);
    out = st.node().core.virtual_now().to_ns() - t0;
  }(tb, rx, wait_cost));

  tb.sim().run();
  // mpich_wait_fixed 208.41 + ucp_progress_iter 10.73 + LLP_prog 61.63 +
  // UCP callback 139.78 + MPICH callback 47.99 + after-progress 36.89
  // = 505.43 ns: MPICH 293.29 + UCP 150.51 + LLP 61.63.
  EXPECT_NEAR(wait_cost, 505.43, 1e-6);
}

TEST(Mpi, WaitallChargesPerOpBookkeeping) {
  Testbed tb(scenario::presets::deterministic());
  MpiStack s(tb, 0);
  tb.node(1).nic.post_receives(64);
  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    std::vector<Request*> reqs;
    for (int i = 0; i < 8; ++i) {
      reqs.push_back((co_await st.mpi().isend(8)).value());
    }
    const double t0 = st.node().core.virtual_now().to_ns();
    co_await st.mpi().waitall(reqs);
    const double waitall = st.node().core.virtual_now().to_ns() - t0;
    // All requests were already complete (inlined sends): the waitall cost
    // is the per-op HLP bookkeeping alone, 8 x 58.86.
    EXPECT_NEAR(waitall, 8 * 58.86, 1e-6);
  }(s));
  tb.sim().run();
}

TEST(Mpi, WaitallDrivesPendingSendsToCompletion) {
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.txq_depth = 4;
  Testbed tb(cfg);
  MpiStack s(tb, 0, /*signal_period=*/4);
  tb.node(1).nic.post_receives(64);
  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    std::vector<Request*> reqs;
    for (int i = 0; i < 16; ++i) {
      reqs.push_back((co_await st.mpi().isend(8)).value());
    }
    co_await st.mpi().waitall(reqs);
    for (Request* r : reqs) EXPECT_TRUE(r->complete);
  }(s));
  tb.sim().run();
  EXPECT_EQ(s.endpoint().posted(), 16u);
  EXPECT_GT(s.endpoint().busy_posts(), 0u);
}

TEST(Mpi, WrapMpiIsendMeasures201_98) {
  Testbed tb(scenario::presets::deterministic());
  MpiStack s(tb, 0);
  tb.node(1).nic.post_receives(16);
  s.mpi().set_wrap("MPI_Isend");
  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) (void)co_await st.mpi().isend(8);
  }(s));
  tb.sim().run();
  EXPECT_NEAR(tb.node(0).profiler.mean_ns("MPI_Isend"), 201.98, 1e-6);
}

TEST(Mpi, WrapUcpSendAllowsMpichDerivation) {
  // §5's methodology: MPICH share of MPI_Isend = total - ucp_tag_send_nb.
  Testbed tb(scenario::presets::deterministic());
  MpiStack s(tb, 0);
  tb.node(1).nic.post_receives(16);
  s.mpi().set_wrap("ucp_tag_send_nb");
  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) (void)co_await st.mpi().isend(8);
  }(s));
  tb.sim().run();
  const double ucp_total = tb.node(0).profiler.mean_ns("ucp_tag_send_nb");
  EXPECT_NEAR(ucp_total, 2.19 + 175.42, 1e-6);
  EXPECT_NEAR(201.98 - ucp_total, 24.37, 1e-6);  // MPICH share
}

TEST(Mpi, MessageRateWindowLoopSustains) {
  // A miniature OSU message-rate loop: windows of isend + waitall.
  Testbed tb(scenario::presets::deterministic());
  MpiStack s(tb, 0, /*signal_period=*/64);
  tb.node(1).nic.post_receives(1024);
  const int kWindows = 8, kWindow = 64;
  tb.sim().spawn([](MpiStack& st, int windows, int window) -> sim::Task<void> {
    for (int w = 0; w < windows; ++w) {
      std::vector<Request*> reqs;
      reqs.reserve(static_cast<std::size_t>(window));
      for (int i = 0; i < window; ++i) {
        reqs.push_back((co_await st.mpi().isend(8)).value());
      }
      co_await st.mpi().waitall(reqs);
    }
  }(s, kWindows, kWindow));
  tb.sim().run();

  EXPECT_EQ(s.endpoint().posted(),
            static_cast<std::uint64_t>(kWindows * kWindow));
  // Per-op CPU time must be close to Eq. 2's 264.97 ns (deterministic run;
  // transient fill effects allowed a small band).
  const double per_op = tb.node(0).core.busy_time().to_ns() /
                        static_cast<double>(kWindows * kWindow);
  EXPECT_NEAR(per_op, 264.97, 264.97 * 0.03);
}

}  // namespace
}  // namespace bb::hlp
