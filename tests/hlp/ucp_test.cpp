#include "hlp/ucp.hpp"

#include <gtest/gtest.h>

#include "scenario/mpi_stack.hpp"
#include "scenario/testbed.hpp"

namespace bb::hlp {
namespace {

using scenario::MpiStack;
using scenario::Testbed;
using namespace bb::literals;

TEST(Ucp, ShortSendCompletesLocally) {
  Testbed tb(scenario::presets::deterministic());
  MpiStack s(tb, 0);
  tb.node(1).nic.post_receives(4);
  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    Request* r = (co_await st.ucp().tag_send_nb(8)).value();
    // Inlined short send: complete as soon as the LLP post succeeded.
    EXPECT_TRUE(r->complete);
    EXPECT_FALSE(r->pending);
  }(s));
  tb.sim().run();
  EXPECT_EQ(s.ucp().sends_completed(), 1u);
}

TEST(Ucp, SendCostIsUcpPlusLlp) {
  Testbed tb(scenario::presets::deterministic());
  MpiStack s(tb, 0);
  tb.node(1).nic.post_receives(4);
  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    (void)co_await st.ucp().tag_send_nb(8);
    // 2.19 (UCP) + 175.42 (LLP_post).
    EXPECT_NEAR(st.node().core.virtual_now().to_ns(), 177.61, 1e-6);
  }(s));
  tb.sim().run();
}

TEST(Ucp, BusyPostPendsAndProgressRetries) {
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.txq_depth = 1;
  Testbed tb(cfg);
  MpiStack s(tb, 0, /*signal_period=*/1);
  tb.node(1).nic.post_receives(8);
  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    Request* a = (co_await st.ucp().tag_send_nb(8)).value();
    Request* b = (co_await st.ucp().tag_send_nb(8)).value();
    EXPECT_TRUE(a->complete);
    EXPECT_FALSE(b->complete);
    EXPECT_TRUE(b->pending);
    EXPECT_EQ(st.ucp().pending_sends(), 1u);
    // Progress until the CQE frees the slot and the pending send runs.
    while (!b->complete) {
      co_await st.ucp().progress();
    }
    EXPECT_EQ(st.ucp().pending_sends(), 0u);
  }(s));
  tb.sim().run();
  EXPECT_EQ(s.endpoint().posted(), 2u);
}

TEST(Ucp, PendingSendsPreserveOrder) {
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.txq_depth = 1;
  Testbed tb(cfg);
  MpiStack tx(tb, 0, 1);
  MpiStack rx(tb, 1, 1);
  tb.node(1).nic.post_receives(16);
  std::vector<std::uint64_t> arrival_order;
  tb.node(1).worker.set_rx_handler(
      [&](const nic::Cqe& c) { arrival_order.push_back(c.msg_id); });

  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    std::vector<Request*> reqs;
    for (int i = 0; i < 4; ++i) {
      reqs.push_back((co_await st.ucp().tag_send_nb(8)).value());
    }
    for (Request* r : reqs) {
      while (!r->complete) co_await st.ucp().progress();
    }
  }(tx));
  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    // Poll long enough to cover four serialized round trips (txq depth 1
    // forces each pending send to wait for the previous CQE).
    for (int i = 0; i < 1500; ++i) co_await st.ucp().progress();
  }(rx));
  tb.sim().run();
  ASSERT_EQ(arrival_order.size(), 4u);
  EXPECT_TRUE(std::is_sorted(arrival_order.begin(), arrival_order.end()));
}

TEST(Ucp, RecvMatchesInboundMessage) {
  Testbed tb(scenario::presets::deterministic());
  MpiStack tx(tb, 0);
  MpiStack rx(tb, 1);
  tb.node(1).nic.post_receives(4);

  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    (void)co_await st.ucp().tag_send_nb(8);
  }(tx));
  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    Request* r = st.ucp().tag_recv_nb(8).value();
    while (!r->complete) co_await st.ucp().progress();
    EXPECT_EQ(st.ucp().recvs_completed(), 1u);
  }(rx));
  tb.sim().run();
}

TEST(Ucp, UnexpectedMessageMatchedByLaterRecv) {
  Testbed tb(scenario::presets::deterministic());
  MpiStack tx(tb, 0);
  MpiStack rx(tb, 1);
  tb.node(1).nic.post_receives(4);

  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    (void)co_await st.ucp().tag_send_nb(8);
  }(tx));
  tb.sim().spawn([](Testbed& t, MpiStack& st) -> sim::Task<void> {
    // Drain progress with no posted receive: the message goes unexpected.
    while (st.ucp().recvs_completed() == 0) {
      co_await st.ucp().progress();
      if (t.sim().now() > 5_us) break;
    }
    EXPECT_EQ(st.ucp().recvs_completed(), 0u);
    // A late recv matches the unexpected message immediately.
    Request* r = st.ucp().tag_recv_nb(8).value();
    EXPECT_TRUE(r->complete);
    EXPECT_EQ(st.ucp().recvs_completed(), 1u);
  }(tb, rx));
  tb.sim().run();
}

TEST(Ucp, RxCallbackChainChargesUcpThenUpper) {
  Testbed tb(scenario::presets::deterministic());
  MpiStack tx(tb, 0);
  MpiStack rx(tb, 1);
  tb.node(1).nic.post_receives(4);
  double upper_called_at = -1;
  rx.ucp().set_upper_rx_callback([&](Request*) {
    upper_called_at = rx.node().core.virtual_now().to_ns();
    rx.node().core.consume(rx.node().core.costs().mpich_rx_callback);
  });

  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    (void)co_await st.ucp().tag_send_nb(8);
  }(tx));
  tb.sim().spawn([](MpiStack& st) -> sim::Task<void> {
    Request* r = st.ucp().tag_recv_nb(8).value();
    while (!r->complete) co_await st.ucp().progress();
  }(rx));
  tb.sim().run();
  EXPECT_GT(upper_called_at, 0.0);
}

}  // namespace
}  // namespace bb::hlp
