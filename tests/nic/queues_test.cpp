#include "nic/queues.hpp"

#include <gtest/gtest.h>

namespace bb::nic {
namespace {

using namespace bb::literals;

TEST(CqRing, PollRespectsVisibility) {
  CqRing cq;
  cq.push(Cqe{1, 1, 0, 0, 100_ns});
  EXPECT_FALSE(cq.poll(99_ns).has_value());  // not visible yet
  auto e = cq.poll(100_ns);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->msg_id, 1u);
  EXPECT_FALSE(cq.poll(1_us).has_value());  // dequeued
}

TEST(CqRing, VisibleCountStopsAtFirstInvisible) {
  CqRing cq;
  cq.push(Cqe{1, 1, 0, 0, 10_ns});
  cq.push(Cqe{2, 1, 0, 0, 20_ns});
  cq.push(Cqe{3, 1, 0, 0, 30_ns});
  EXPECT_EQ(cq.visible_count(5_ns), 0u);
  EXPECT_EQ(cq.visible_count(20_ns), 2u);
  EXPECT_EQ(cq.visible_count(35_ns), 3u);
}

TEST(CqRing, FifoOrder) {
  CqRing cq;
  cq.push(Cqe{1, 1, 0, 0, 10_ns});
  cq.push(Cqe{2, 1, 0, 0, 10_ns});
  EXPECT_EQ(cq.poll(10_ns)->msg_id, 1u);
  EXPECT_EQ(cq.poll(10_ns)->msg_id, 2u);
  EXPECT_EQ(cq.total_pushed(), 2u);
}

TEST(HostMemory, CqeWriteLandsInPerQpTxCq) {
  HostMemory host;
  pcie::Tlp tlp;
  tlp.type = pcie::TlpType::kMemWrite;
  tlp.bytes = 64;
  tlp.content = pcie::CqeWrite{3, 42, 16};
  host.commit_write(tlp, 500_ns);
  EXPECT_EQ(host.tx_cq(3).depth(), 1u);
  EXPECT_EQ(host.tx_cq(0).depth(), 0u);
  const auto e = host.tx_cq(3).poll(500_ns);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->msg_id, 42u);
  EXPECT_EQ(e->completes, 16u);
}

TEST(HostMemory, SendPayloadCreatesRxCompletion) {
  HostMemory host;
  pcie::Tlp tlp;
  tlp.type = pcie::TlpType::kMemWrite;
  tlp.bytes = 8;
  tlp.content = pcie::PayloadWrite{7, 0, 8, 0, pcie::WireOp::kSend};
  host.commit_write(tlp, 300_ns);
  EXPECT_EQ(host.rx_cq().depth(), 1u);
  EXPECT_EQ(host.payload_bytes_delivered(), 8u);
}

TEST(HostMemory, RdmaWritePayloadIsSilent) {
  // One-sided put: payload lands but no software-visible completion at
  // the target.
  HostMemory host;
  pcie::Tlp tlp;
  tlp.type = pcie::TlpType::kMemWrite;
  tlp.bytes = 8;
  tlp.content = pcie::PayloadWrite{7, 0, 8, 0, pcie::WireOp::kRdmaWrite};
  host.commit_write(tlp, 300_ns);
  EXPECT_EQ(host.rx_cq().depth(), 0u);
  EXPECT_EQ(host.payload_bytes_delivered(), 8u);
}

TEST(HostMemory, DescriptorStagingServedFifo) {
  HostMemory host;
  pcie::WireMd a, b;
  a.msg_id = 1;
  a.qp = 2;
  b.msg_id = 2;
  b.qp = 2;
  host.stage_descriptor(a);
  host.stage_descriptor(b);
  EXPECT_EQ(host.staged_count(2), 2u);

  pcie::ReadRequest req;
  req.what = pcie::ReadRequest::What::kDescriptor;
  req.qp = 2;
  EXPECT_EQ(host.serve_read(req).md.msg_id, 1u);
  EXPECT_EQ(host.serve_read(req).md.msg_id, 2u);
  EXPECT_EQ(host.staged_count(2), 0u);
}

TEST(HostMemory, PayloadReadReturnsSize) {
  HostMemory host;
  pcie::ReadRequest req;
  req.what = pcie::ReadRequest::What::kPayload;
  req.bytes = 4096;
  EXPECT_EQ(host.serve_read(req).bytes, 4096u);
}

}  // namespace
}  // namespace bb::nic
