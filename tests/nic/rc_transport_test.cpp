// The NIC's RC transport under wire faults (docs/TRANSPORT.md): PSN
// tracking, NAK-driven go-back-N, the transport retry timer, RNR NAK
// backoff for late-posted receives, duplicate discard, and the full
// error path -- retry exhaustion -> QP error -> flushed error CQEs ->
// modify-QP recovery ladder -> traffic resumes.

#include <gtest/gtest.h>

#include "nic/nic.hpp"
#include "scenario/testbed.hpp"

namespace bb::nic {
namespace {

using scenario::Testbed;

/// Posts `n` ops on `ep` and polls until every completion retires.
sim::Task<void> pump(Testbed::Node& node, llp::Endpoint& ep, int n,
                     bool am = false) {
  for (int i = 0; i < n; ++i) {
    const llp::Status st =
        am ? co_await ep.am_short(8) : co_await ep.put_short(8);
    EXPECT_EQ(st, llp::Status::kOk);
  }
  while (ep.outstanding() > 0) {
    co_await node.worker.progress();
  }
}

scenario::SystemConfig with_wire(fault::WireFaultConfig w) {
  return scenario::presets::deterministic().with(
      scenario::overlays::wire_faults(std::move(w)));
}

void expect_conserved(const net::TransportStats& s) {
  EXPECT_EQ(s.packets_sent + s.packets_duplicated,
            s.packets_delivered + s.packets_dropped + s.packets_corrupted);
}

TEST(RcTransport, RnrNakRecoversLatePostedReceive) {
  // Regression for the old hard "RNR: send arrived with no posted
  // receive" error: the responder now refuses with an RNR NAK and the
  // requester backs off and retries until the receive shows up. No wire
  // faults involved -- this is a pure protocol-level recovery.
  Testbed tb(scenario::presets::deterministic());
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn(pump(tb.node(0), ep, 1, /*am=*/true));
  // The receive is posted ~3 us late, past several RNR backoff rounds.
  tb.sim().call_in(TimePs::from_ns(3000.0),
                   [&] { tb.node(1).nic.post_receives(4); });
  tb.sim().run();

  const net::TransportStats s = tb.net_stats();
  EXPECT_GE(s.rnr_naks_sent, 1u);
  EXPECT_EQ(s.rnr_naks_sent, s.rnr_naks_received);
  EXPECT_EQ(s.qp_errors, 0u);
  EXPECT_EQ(tb.node(0).nic.qp_state(0), QpState::kRts);
  // Exactly-once delivery despite the refusals.
  EXPECT_EQ(tb.node(1).host.payload_bytes_delivered(), 8u);
  EXPECT_EQ(tb.node(1).nic.rq_available(), 3u);
  EXPECT_EQ(tb.node(0).nic.tx_unacked(), 0u);
}

TEST(RcTransport, DroppedDataRecoveredByRetryTimer) {
  // A lone packet is dropped: no successor ever reveals the PSN gap, so
  // only the transport retry timer can recover it.
  fault::WireFaultConfig w;
  w.scheduled.push_back({fault::WireOneShot::Kind::kDropData, 0, 1});
  Testbed tb(with_wire(w));
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn(pump(tb.node(0), ep, 1));
  tb.sim().run();

  const net::TransportStats s = tb.net_stats();
  EXPECT_EQ(s.packets_dropped, 1u);
  EXPECT_GE(s.retry_timer_firings, 1u);
  EXPECT_GE(s.retransmits, 1u);
  EXPECT_EQ(s.qp_errors, 0u);
  EXPECT_EQ(tb.node(1).host.payload_bytes_delivered(), 8u);
  EXPECT_EQ(tb.node(0).nic.acks_received(), 1u);
  EXPECT_EQ(tb.node(0).nic.tx_unacked(), 0u);
  expect_conserved(s);
}

TEST(RcTransport, DroppedAckRecoveredByDuplicateDiscard) {
  // The data arrives but its ACK is lost: the retry timer retransmits,
  // the responder discards the stale PSN and re-ACKs -- delivery stays
  // exactly-once.
  fault::WireFaultConfig w;
  w.scheduled.push_back({fault::WireOneShot::Kind::kDropAck, 1, 1});
  Testbed tb(with_wire(w));
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn(pump(tb.node(0), ep, 1));
  tb.sim().run();

  const net::TransportStats s = tb.net_stats();
  EXPECT_EQ(s.packets_dropped, 1u);  // the ACK
  EXPECT_GE(s.retransmits, 1u);
  EXPECT_GE(s.duplicates_discarded, 1u);
  // The payload was written exactly once despite the retransmission.
  EXPECT_EQ(tb.node(1).host.payload_bytes_delivered(), 8u);
  EXPECT_EQ(tb.node(0).nic.acks_received(), 1u);
  EXPECT_EQ(tb.node(0).nic.tx_unacked(), 0u);
  expect_conserved(s);
}

TEST(RcTransport, ReorderedPacketTriggersNakGoBackN) {
  // PSN 1 is delayed past PSN 2: the responder NAKs the gap, the
  // requester goes back to 1, and whichever copy of each PSN lands first
  // is accepted -- the stragglers are discarded by PSN.
  fault::WireFaultConfig w;
  w.scheduled.push_back({fault::WireOneShot::Kind::kReorderData, 0, 1});
  Testbed tb(with_wire(w));
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn(pump(tb.node(0), ep, 2));
  tb.sim().run();

  const net::TransportStats s = tb.net_stats();
  EXPECT_EQ(s.packets_reordered, 1u);
  EXPECT_GE(s.naks_sent, 1u);
  EXPECT_EQ(s.naks_sent, s.naks_received);
  EXPECT_GE(s.retransmits, 1u);
  EXPECT_EQ(s.qp_errors, 0u);
  // Exactly-once: two 8-byte payload writes, no more.
  EXPECT_EQ(tb.node(1).host.payload_bytes_delivered(), 16u);
  EXPECT_EQ(tb.node(0).nic.acks_received(), 2u);
  EXPECT_EQ(tb.node(0).nic.tx_unacked(), 0u);
  expect_conserved(s);
}

TEST(RcTransport, DuplicatedDataDiscardedByPsn) {
  fault::WireFaultConfig w;
  w.scheduled.push_back({fault::WireOneShot::Kind::kDuplicateData, 0, 1});
  Testbed tb(with_wire(w));
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn(pump(tb.node(0), ep, 1));
  tb.sim().run();

  const net::TransportStats s = tb.net_stats();
  EXPECT_EQ(s.packets_duplicated, 1u);
  EXPECT_EQ(s.duplicates_discarded, 1u);
  EXPECT_EQ(tb.node(1).host.payload_bytes_delivered(), 8u);
  EXPECT_EQ(tb.node(0).nic.acks_received(), 1u);
  expect_conserved(s);
}

TEST(RcTransport, RetryExhaustionErrorsFlushesAndRecovers) {
  // The full acceptance chain: a persistently killed PSN exhausts the
  // retry budget -> QP error -> the head WQE retires kIoError and the
  // rest kFlushed -> the endpoint reports the error -> reconnect() walks
  // the modify-QP ladder -> traffic resumes on the recovered QP.
  fault::WireFaultConfig w;
  w.scheduled.push_back({fault::WireOneShot::Kind::kKillData, 0, 1});
  Testbed tb(with_wire(w));
  auto& ep = tb.add_endpoint(0);

  tb.sim().spawn([](Testbed& t, llp::Endpoint& e) -> sim::Task<void> {
    auto& n0 = t.node(0);
    EXPECT_EQ(co_await e.put_short(8), llp::Status::kOk);  // PSN 1: killed
    EXPECT_EQ(co_await e.put_short(8), llp::Status::kOk);  // PSN 2: stuck
    while (e.outstanding() > 0) co_await n0.worker.progress();

    // Retry budget exhausted: QP error, both WQEs flushed with errors.
    EXPECT_TRUE(e.qp_in_error());
    EXPECT_EQ(n0.nic.qp_state(0), QpState::kError);
    EXPECT_EQ(e.tx_errors(), 2u);   // kIoError + kFlushed
    EXPECT_EQ(e.tx_flushed(), 1u);  // the op behind the killed one
    EXPECT_EQ(n0.worker.flushed_completions(), 1u);
    EXPECT_EQ(n0.nic.tx_unacked(), 0u);

    // Posts against the errored QP flush immediately, never reaching the
    // wire (verbs semantics).
    EXPECT_EQ(co_await e.put_short(8), llp::Status::kOk);
    while (e.outstanding() > 0) co_await n0.worker.progress();
    EXPECT_EQ(e.tx_flushed(), 2u);

    // Recovery: reset -> connect handshake -> RTS.
    EXPECT_EQ(co_await e.reconnect(), llp::Status::kOk);
    EXPECT_FALSE(e.qp_in_error());
    EXPECT_EQ(n0.nic.qp_state(0), QpState::kRts);

    // The recovered QP carries traffic again (fresh PSN, so the
    // scheduled kill cannot re-trigger).
    EXPECT_EQ(co_await e.put_short(8), llp::Status::kOk);
    while (e.outstanding() > 0) co_await n0.worker.progress();
  }(tb, ep));
  tb.sim().run();

  const net::TransportStats s = tb.net_stats();
  EXPECT_EQ(s.qp_errors, 1u);
  EXPECT_EQ(s.qp_recoveries, 1u);
  EXPECT_EQ(s.flushed_wqes, 3u);  // 2 at qp_error + 1 post-while-errored
  EXPECT_GT(s.retry_timer_firings, 0u);
  // Only the post-recovery put ever landed.
  EXPECT_EQ(tb.node(1).host.payload_bytes_delivered(), 8u);
  EXPECT_EQ(tb.node(0).nic.tx_unacked(), 0u);
}

TEST(RcTransport, TransportCountersReachTheProfiler) {
  fault::WireFaultConfig w;
  w.scheduled.push_back({fault::WireOneShot::Kind::kDropData, 0, 1});
  Testbed tb(with_wire(w));
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn(pump(tb.node(0), ep, 1));
  tb.sim().run();

  tb.publish_net_counters();
  const net::TransportStats s = tb.net_stats();
  EXPECT_EQ(tb.node(0).profiler.counter("net.packets_sent"), s.packets_sent);
  EXPECT_EQ(tb.node(0).profiler.counter("net.packets_dropped"),
            s.packets_dropped);
  EXPECT_EQ(tb.node(0).profiler.counter("net.retransmits"), s.retransmits);
}

TEST(RcTransport, LossFreeRunsKeepProtocolStateOnly) {
  // With no wire faults configured the RC machinery is pure bookkeeping:
  // no retry timers, no NAKs, no retransmissions -- the property that
  // keeps the error-free determinism goldens bit-identical.
  Testbed tb(scenario::presets::deterministic());
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn(pump(tb.node(0), ep, 4));
  tb.sim().run();

  const net::TransportStats s = tb.net_stats();
  EXPECT_EQ(s.retransmits, 0u);
  EXPECT_EQ(s.retry_timer_firings, 0u);
  EXPECT_EQ(s.naks_sent, 0u);
  EXPECT_EQ(s.packets_dropped, 0u);
  EXPECT_EQ(s.data_packets_sent, 4u);
  EXPECT_EQ(s.acks_sent, 4u);
  EXPECT_EQ(tb.node(0).nic.tx_unacked(), 0u);
  expect_conserved(s);
}

}  // namespace
}  // namespace bb::nic
