// End-to-end NIC behaviour through the two-node testbed: PIO and DMA
// descriptor paths, completion generation and moderation, RX delivery.

#include "nic/nic.hpp"

#include <gtest/gtest.h>

#include "scenario/testbed.hpp"

namespace bb::nic {
namespace {

using scenario::Testbed;
using namespace bb::literals;

/// Drives `ep` with one post and polls until `n` completions retire.
sim::Task<void> post_and_complete(scenario::Testbed::Node& node,
                                  llp::Endpoint& ep, bool am,
                                  double* completion_time_ns) {
  const llp::Status st =
      am ? co_await ep.am_short(8) : co_await ep.put_short(8);
  EXPECT_EQ(st, llp::Status::kOk);
  while (ep.outstanding() > 0) {
    co_await node.worker.progress();
  }
  if (completion_time_ns != nullptr) {
    *completion_time_ns = node.core.virtual_now().to_ns();
  }
}

TEST(Nic, PutShortFullRoundTripTiming) {
  Testbed tb(scenario::presets::deterministic());
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn(post_and_complete(tb.node(0), ep, false, nullptr));
  tb.sim().run();

  const auto& C = tb.config();
  // Reconstruct the critical path from configuration (no magic numbers).
  const double t_post = C.cpu.llp_post_mean_ns();
  const double t_nic = t_post + C.link.tlp_latency(64).to_ns();
  const double t_inject = t_nic + C.nic.tx_proc_ns;
  const double t_target = t_inject + C.net.network_latency().to_ns();
  const double t_ack_sent = t_target + C.nic.rx_proc_ns + C.nic.ack_gen_ns;
  const double t_ack_arr = t_ack_sent + C.net.network_latency().to_ns();
  const double t_cqe_dep = t_ack_arr + C.nic.ack_handle_ns;
  const double t_cqe_rc = t_cqe_dep + C.link.tlp_latency(64).to_ns();
  const double t_visible = t_cqe_rc + C.rc.rc_to_mem(64).to_ns();

  // The CQE must have become visible at exactly t_visible.
  const auto& cqes = tb.analyzer().trace().upstream_writes(64);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_NEAR(cqes[0].t.to_ns(), t_cqe_dep, 0.5);
  EXPECT_EQ(tb.node(0).nic.acks_received(), 1u);
  EXPECT_EQ(tb.node(0).nic.cqes_written(), 1u);
  // Target saw the 8-byte payload, silently (one-sided semantics).
  EXPECT_EQ(tb.node(1).host.payload_bytes_delivered(), 8u);
  EXPECT_EQ(tb.node(1).host.rx_cq().depth(), 0u);
  (void)t_visible;
}

TEST(Nic, AmShortDeliversReceiveCompletion) {
  Testbed tb(scenario::presets::deterministic());
  auto& ep = tb.add_endpoint(0);
  tb.node(1).nic.post_receives(4);
  tb.sim().spawn(post_and_complete(tb.node(0), ep, true, nullptr));
  tb.sim().run();

  const auto& C = tb.config();
  EXPECT_EQ(tb.node(1).host.rx_cq().depth(), 1u);
  EXPECT_EQ(tb.node(1).nic.rq_available(), 3u);

  // RX completion visibility: post + TX PCIe + tx proc + network + rx proc
  // + RX PCIe (8 B payload write) + RC-to-MEM(8B).
  const double t_expected =
      C.cpu.llp_post_mean_ns() + C.link.tlp_latency(64).to_ns() +
      C.nic.tx_proc_ns + C.net.network_latency().to_ns() + C.nic.rx_proc_ns +
      C.link.tlp_latency(8).to_ns() + C.rc.rc_to_mem(8).to_ns();
  EXPECT_EQ(tb.node(1).host.rx_cq().visible_count(TimePs::from_ns(t_expected + 0.5)), 1u);
  EXPECT_EQ(tb.node(1).host.rx_cq().visible_count(TimePs::from_ns(t_expected - 0.5)), 0u);
}

TEST(Nic, PioPathIssuesNoDmaReads) {
  Testbed tb(scenario::presets::deterministic());
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn(post_and_complete(tb.node(0), ep, false, nullptr));
  tb.sim().run();
  EXPECT_EQ(tb.node(0).nic.dma_reads_issued(), 0u);
}

TEST(Nic, DoorbellPathIssuesTwoDmaReads) {
  // §2 steps 1-3: DoorBell ring, MD fetch, payload fetch.
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.use_pio = false;
  cfg.endpoint.inline_payload = false;
  Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn(post_and_complete(tb.node(0), ep, false, nullptr));
  tb.sim().run();
  EXPECT_EQ(tb.node(0).nic.dma_reads_issued(), 2u);
  EXPECT_EQ(tb.node(0).nic.messages_injected(), 1u);
  EXPECT_EQ(tb.node(1).host.payload_bytes_delivered(), 8u);
}

TEST(Nic, DoorbellWithInlineDescriptorSkipsPayloadFetch) {
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.use_pio = false;
  cfg.endpoint.inline_payload = true;
  Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn(post_and_complete(tb.node(0), ep, false, nullptr));
  tb.sim().run();
  EXPECT_EQ(tb.node(0).nic.dma_reads_issued(), 1u);  // MD fetch only
}

TEST(Nic, DmaPathInjectsLaterThanPio) {
  auto run = [](bool pio) {
    auto cfg = scenario::presets::deterministic();
    cfg.endpoint.use_pio = pio;
    cfg.endpoint.inline_payload = pio;
    Testbed tb(cfg);
    auto& ep = tb.add_endpoint(0);
    tb.sim().spawn(post_and_complete(tb.node(0), ep, false, nullptr));
    tb.sim().run();
    // Injection time = first data packet departure onto the fabric; use
    // target payload delivery as a stable proxy.
    return tb.sim().now().to_ns();
  };
  const double t_pio = run(true);
  const double t_dma = run(false);
  // The DMA path adds two PCIe round trips (§2): >500 ns slower.
  EXPECT_GT(t_dma, t_pio + 500.0);
}

TEST(Nic, UnsignaledModerationOneCqePerPeriod) {
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.signal.period = 4;
  cfg.endpoint.txq_depth = 64;
  Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);

  tb.sim().spawn([](scenario::Testbed::Node& n,
                    llp::Endpoint& e) -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(co_await e.put_short(8), llp::Status::kOk);
    }
    while (e.outstanding() > 0) {
      co_await n.worker.progress();
    }
  }(tb.node(0), ep));
  tb.sim().run();

  EXPECT_EQ(tb.node(0).nic.acks_received(), 8u);
  EXPECT_EQ(tb.node(0).nic.cqes_written(), 2u);  // ops 4 and 8 signalled
  EXPECT_EQ(tb.node(0).worker.tx_ops_retired(), 8u);
}

TEST(Nic, InterleavedBidirectionalTraffic) {
  Testbed tb(scenario::presets::deterministic());
  auto& ep0 = tb.add_endpoint(0);
  auto& ep1 = tb.add_endpoint(1);
  tb.node(0).nic.post_receives(8);
  tb.node(1).nic.post_receives(8);

  auto pump = [](scenario::Testbed::Node& n, llp::Endpoint& e) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      llp::Status st;
      do {
        st = co_await e.am_short(8);
        if (st != llp::Status::kOk) co_await n.worker.progress();
      } while (st != llp::Status::kOk);
    }
    while (e.outstanding() > 0) co_await n.worker.progress();
  };
  tb.sim().spawn(pump(tb.node(0), ep0));
  tb.sim().spawn(pump(tb.node(1), ep1));
  tb.sim().run();

  // The pumps' own progress passes drain the RX CQs; count at the worker.
  EXPECT_EQ(tb.node(0).worker.rx_completions() +
                tb.node(0).host.rx_cq().depth(),
            4u);
  EXPECT_EQ(tb.node(1).worker.rx_completions() +
                tb.node(1).host.rx_cq().depth(),
            4u);
  EXPECT_EQ(tb.node(0).nic.messages_injected(), 4u);
  EXPECT_EQ(tb.node(1).nic.messages_injected(), 4u);
}

}  // namespace
}  // namespace bb::nic
