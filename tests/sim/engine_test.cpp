// Regression tests for the simulator's event core: steady-state dispatch
// must be heap-allocation-free (pops never move or allocate), the event
// limit must be a real always-on error, and the three queue sources (ready
// ring, monotone run, timer heap) must preserve the global (time, seq)
// order exactly.
//
// This binary installs counting global `operator new`/`delete` hooks; it
// is kept separate from `test_sim` so the hooks cannot perturb other
// tests.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/channel.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace bb::sim {
namespace {

TEST(EngineAlloc, SteadyStateDispatchIsHeapAllocationFree) {
  Simulator sim;
  int hits = 0;
  // Each wave schedules capturing callbacks (pooled nodes) at strictly
  // increasing future times (monotone run queue) and drains them.
  const auto wave = [&] {
    for (int i = 0; i < 500; ++i) {
      sim.call_at(sim.now() + TimePs(i + 1), [&hits] { ++hits; });
    }
    sim.run();
  };
  wave();  // warm: grows the node pool and the run queue once
  const std::size_t chunks = sim.event_pool_chunks();
  const std::uint64_t allocs = g_heap_allocs.load();
  for (int w = 0; w < 8; ++w) wave();
  EXPECT_EQ(hits, 9 * 500);
  EXPECT_EQ(g_heap_allocs.load(), allocs) << "dispatch hot path allocated";
  EXPECT_EQ(sim.event_pool_chunks(), chunks) << "node pool kept growing";
}

TEST(EngineAlloc, ChannelPingPongSteadyStateIsHeapAllocationFree) {
  Simulator sim;
  Channel<int> a(sim), b(sim);
  auto pinger = [](Channel<int>& rx, Channel<int>& tx,
                   int iters) -> Task<void> {
    for (int i = 0; i < iters; ++i) {
      tx.send(i);
      (void)co_await rx.receive();
    }
  };
  auto ponger = [](Channel<int>& rx, Channel<int>& tx,
                   int iters) -> Task<void> {
    for (int i = 0; i < iters; ++i) {
      const int v = co_await rx.receive();
      tx.send(v);
    }
  };
  // Warm-up pair grows the waiter queues, ready ring, and frame pool.
  sim.spawn(pinger(a, b, 64));
  sim.spawn(ponger(b, a, 64));
  sim.run();
  const std::uint64_t allocs = g_heap_allocs.load();
  // Steady state: only the two spawn bookkeeping entries may allocate
  // (roots vector + name), so measure from after the spawns.
  sim.spawn(pinger(a, b, 4096));
  sim.spawn(ponger(b, a, 4096));
  const std::uint64_t after_spawn = g_heap_allocs.load();
  sim.run();
  EXPECT_EQ(g_heap_allocs.load(), after_spawn)
      << "channel send/receive hot path allocated";
  // And the spawns themselves must not have paid for fresh frames.
  EXPECT_LE(after_spawn - allocs, 4u);
}

TEST(EngineAlloc, CoroutineFramesAreRecycledAcrossSimulators) {
  const auto run_one = [] {
    Simulator sim;
    sim.spawn([](Simulator& s) -> Task<void> {
      co_await s.delay(TimePs(1));
    }(sim));
    sim.run();
  };
  run_one();  // first run may create fresh frame blocks
  const auto before = detail::frame_pool_stats();
  run_one();
  const auto after = detail::frame_pool_stats();
  EXPECT_GT(after.reused, before.reused);
  EXPECT_EQ(after.fresh, before.fresh)
      << "identical frame size should come from the pool";
}

TEST(EngineNodes, OversizedCallablesAreBoxedAndCounted) {
  Simulator sim;
  std::array<char, 256> big{};
  big[0] = 7;
  char seen = 0;
  const std::uint64_t before = detail::EventNode::boxed_events();
  sim.call_at(TimePs(1), [big, &seen] { seen = big[0]; });
  sim.run();
  EXPECT_EQ(seen, 7);
  EXPECT_EQ(detail::EventNode::boxed_events(), before + 1);
}

TEST(EngineLimit, RunawayCoroutineIsCaught) {
  Simulator sim;
  sim.set_event_limit(1000);
  sim.spawn([](Simulator& s) -> Task<void> {
    for (;;) co_await s.delay(TimePs(1));
  }(sim));
  EXPECT_THROW(sim.run(), EventLimitError);
  // The throw happens on the (limit+1)-th event, in every build type.
  EXPECT_EQ(sim.events_processed(), 1001u);
}

TEST(EngineLimit, RunawaySelfReschedulingCallbackIsCaught) {
  Simulator sim;
  sim.set_event_limit(100);
  struct Resched {
    Simulator* s;
    void operator()() const {
      s->call_in(TimePs(1), Resched{s});
    }
  };
  sim.call_in(TimePs(1), Resched{&sim});
  try {
    sim.run();
    FAIL() << "expected EventLimitError";
  } catch (const EventLimitError& e) {
    EXPECT_EQ(e.limit(), 100u);
  }
}

TEST(EngineOrder, MixedQueueSourcesPreserveGlobalOrder) {
  Simulator sim;
  std::vector<int> order;
  const auto mark = [&order](int id) { return [&order, id] { order.push_back(id); }; };
  sim.call_at(TimePs(0), mark(0));   // (t=0,  seq=0)  ready ring
  sim.call_at(TimePs(10), mark(1));  // (t=10, seq=1)  monotone run
  sim.call_at(TimePs(20), mark(2));  // (t=20, seq=2)  monotone run
  sim.call_at(TimePs(5), mark(3));   // (t=5,  seq=3)  heap (out of order)
  sim.call_at(TimePs(15), mark(4));  // (t=15, seq=4)  heap
  sim.call_at(TimePs(10), mark(5));  // (t=10, seq=5)  heap (ties with 1)
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 3, 1, 5, 4, 2}));
}

TEST(EngineOrder, PreScheduledEventRunsBeforeSameTimeRingPush) {
  Simulator sim;
  std::vector<int> order;
  // Event 0 runs at t=10 and schedules event 2 at the current time (ready
  // ring). Event 1 was scheduled earlier for t=10 with a smaller seq, so
  // it must still run before event 2.
  sim.call_at(TimePs(10), [&] {
    order.push_back(0);
    sim.call_at(TimePs(10), [&] { order.push_back(2); });
  });
  sim.call_at(TimePs(10), [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EngineOrder, RunUntilStopsAcrossAllSources) {
  Simulator sim;
  std::vector<int> order;
  sim.call_at(TimePs(30), [&] { order.push_back(3); });  // run
  sim.call_at(TimePs(40), [&] { order.push_back(4); });  // run
  sim.call_at(TimePs(25), [&] { order.push_back(2); });  // heap
  sim.run_until(TimePs(30));
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
  EXPECT_EQ(sim.now(), TimePs(30));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 4}));
}

}  // namespace
}  // namespace bb::sim
