#include "sim/signal.hpp"

#include <gtest/gtest.h>

namespace bb::sim {
namespace {

using namespace bb::literals;

TEST(Signal, WakesAllWaiters) {
  Simulator sim;
  Signal sig(sim);
  int woken = 0;
  auto waiter = [](Signal& s, int& n) -> Task<void> {
    co_await s.wait();
    ++n;
  };
  for (int i = 0; i < 3; ++i) sim.spawn(waiter(sig, woken));
  sim.call_at(10_ns, [&] { sig.fire(); });
  sim.run();
  EXPECT_EQ(woken, 3);
}

TEST(Signal, FireWithNoWaitersIsNoop) {
  Simulator sim;
  Signal sig(sim);
  sig.fire();
  EXPECT_EQ(sig.waiter_count(), 0u);
}

TEST(Signal, WaiterCountTracksBlockedProcesses) {
  Simulator sim;
  Signal sig(sim);
  sim.spawn([](Signal& s) -> Task<void> { co_await s.wait(); }(sig));
  sim.step();  // let the process reach the wait
  EXPECT_EQ(sig.waiter_count(), 1u);
  sig.fire();
  EXPECT_EQ(sig.waiter_count(), 0u);
  sim.run();
}

TEST(Signal, ReusableAcrossFires) {
  Simulator sim;
  Signal sig(sim);
  int wakes = 0;
  sim.spawn([](Signal& s, int& n) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s.wait();
      ++n;
    }
  }(sig, wakes));
  sim.call_at(1_ns, [&] { sig.fire(); });
  sim.call_at(2_ns, [&] { sig.fire(); });
  sim.call_at(3_ns, [&] { sig.fire(); });
  sim.run();
  EXPECT_EQ(wakes, 3);
}

TEST(Signal, WakeHappensAtFireTime) {
  Simulator sim;
  Signal sig(sim);
  double t = -1;
  sim.spawn([](Simulator& s, Signal& sg, double& out) -> Task<void> {
    co_await sg.wait();
    out = s.now().to_ns();
  }(sim, sig, t));
  sim.call_at(42_ns, [&] { sig.fire(); });
  sim.run();
  EXPECT_EQ(t, 42.0);
}

}  // namespace
}  // namespace bb::sim
