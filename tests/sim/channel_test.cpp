#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bb::sim {
namespace {

using namespace bb::literals;

TEST(Channel, ReceiveAfterSendIsImmediate) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.send(5);
  int got = 0;
  sim.spawn([](Channel<int>& c, int& out) -> Task<void> {
    out = co_await c.receive();
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, 5);
}

TEST(Channel, ReceiveBlocksUntilSend) {
  Simulator sim;
  Channel<int> ch(sim);
  double recv_time = -1;
  sim.spawn([](Simulator& s, Channel<int>& c, double& t) -> Task<void> {
    (void)co_await c.receive();
    t = s.now().to_ns();
  }(sim, ch, recv_time));
  sim.call_at(25_ns, [&] { ch.send(1); });
  sim.run();
  EXPECT_EQ(recv_time, 25.0);
}

TEST(Channel, FifoOrderPreserved) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  for (int i = 0; i < 5; ++i) ch.send(i);
  sim.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    for (int i = 0; i < 5; ++i) out.push_back(co_await c.receive());
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, MultipleWaitersServedFifo) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<std::string> log;
  auto waiter = [](Channel<int>& c, std::vector<std::string>& out,
                   std::string name) -> Task<void> {
    const int v = co_await c.receive();
    out.push_back(name + ":" + std::to_string(v));
  };
  sim.spawn(waiter(ch, log, "first"));
  sim.spawn(waiter(ch, log, "second"));
  sim.call_at(5_ns, [&] {
    ch.send(100);
    ch.send(200);
  });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"first:100", "second:200"}));
}

TEST(Channel, TryReceiveNonBlocking) {
  Simulator sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_receive().has_value());
  ch.send(9);
  auto v = ch.try_receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
  EXPECT_FALSE(ch.try_receive().has_value());
}

TEST(Channel, PendingCount) {
  Simulator sim;
  Channel<int> ch(sim);
  EXPECT_EQ(ch.pending(), 0u);
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(ch.pending(), 2u);
}

TEST(Channel, MoveOnlyPayload) {
  Simulator sim;
  Channel<std::unique_ptr<int>> ch(sim);
  ch.send(std::make_unique<int>(77));
  int got = 0;
  sim.spawn([](Channel<std::unique_ptr<int>>& c, int& out) -> Task<void> {
    auto p = co_await c.receive();
    out = *p;
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, 77);
}

TEST(Channel, ProducerConsumerPipeline) {
  // Producer emits every 10 ns, consumer takes 15 ns per item: consumer-
  // bound completion at steady state.
  Simulator sim;
  Channel<int> ch(sim);
  sim.spawn([](Simulator& s, Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await s.delay(10_ns);
      c.send(i);
    }
  }(sim, ch));
  double done_ns = 0;
  sim.spawn([](Simulator& s, Channel<int>& c, double& done) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      (void)co_await c.receive();
      co_await s.delay(15_ns);
    }
    done = s.now().to_ns();
  }(sim, ch, done_ns));
  sim.run();
  // First item at 10 ns, then the 15 ns service dominates: 10 + 10*15.
  EXPECT_EQ(done_ns, 160.0);
}

}  // namespace
}  // namespace bb::sim
