#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/task.hpp"

namespace bb::sim {
namespace {

using namespace bb::literals;

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePs::zero());
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, CallbackRunsAtScheduledTime) {
  Simulator sim;
  TimePs observed;
  sim.call_at(10_ns, [&] { observed = sim.now(); });
  sim.run();
  EXPECT_EQ(observed, 10_ns);
  EXPECT_EQ(sim.now(), 10_ns);
}

TEST(Simulator, CallbacksRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.call_at(30_ns, [&] { order.push_back(3); });
  sim.call_at(10_ns, [&] { order.push_back(1); });
  sim.call_at(20_ns, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EqualTimestampsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.call_at(5_ns, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Simulator, DelayAdvancesProcessTime) {
  Simulator sim;
  std::vector<double> times;
  sim.spawn([](Simulator& s, std::vector<double>& out) -> Task<void> {
    out.push_back(s.now().to_ns());
    co_await s.delay(100_ns);
    out.push_back(s.now().to_ns());
    co_await s.delay(50_ns);
    out.push_back(s.now().to_ns());
  }(sim, times));
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{0.0, 100.0, 150.0}));
}

TEST(Simulator, TwoProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<std::string> log;
  auto proc = [](Simulator& s, std::vector<std::string>& out,
                 std::string name, TimePs step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(step);
      out.push_back(name + "@" + std::to_string(s.now().ps()));
    }
  };
  sim.spawn(proc(sim, log, "a", 10_ns));
  sim.spawn(proc(sim, log, "b", 15_ns));
  sim.run();
  // At the 30 ns tie, "b" armed its delay earlier (at t=15) than "a" (at
  // t=20), so FIFO tie-breaking runs b first.
  EXPECT_EQ(log, (std::vector<std::string>{
                     "a@10000", "b@15000", "a@20000", "b@30000", "a@30000",
                     "b@45000"}));
}

TEST(Simulator, NestedTaskAwaitReturnsValue) {
  Simulator sim;
  int result = 0;
  auto leaf = [](Simulator& s) -> Task<int> {
    co_await s.delay(7_ns);
    co_return 42;
  };
  sim.spawn([](Simulator& s, int& out,
               auto mk) -> Task<void> {
    out = co_await mk(s);
    out += static_cast<int>(s.now().to_ns());
  }(sim, result, leaf));
  sim.run();
  EXPECT_EQ(result, 49);  // 42 + 7 ns elapsed
}

TEST(Simulator, DeeplyNestedAwaitChain) {
  Simulator sim;
  // Each level adds 1 ns; validates symmetric transfer does not blow the
  // stack and times accumulate correctly.
  struct Rec {
    static Task<int> go(Simulator& s, int depth) {
      co_await s.delay(1_ns);
      if (depth == 0) co_return 0;
      co_return 1 + co_await go(s, depth - 1);
    }
  };
  int result = -1;
  sim.spawn([](Simulator& s, int& out) -> Task<void> {
    out = co_await Rec::go(s, 5000);
  }(sim, result));
  sim.run();
  EXPECT_EQ(result, 5000);
  EXPECT_EQ(sim.now(), 5001_ns);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.spawn([](Simulator& s, int& c) -> Task<void> {
    for (;;) {
      co_await s.delay(10_ns);
      ++c;
    }
  }(sim, count));
  sim.run_until(95_ns);
  EXPECT_EQ(count, 9);
  EXPECT_EQ(sim.now(), 95_ns);
  sim.run_until(100_ns);
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunWhilePendingStopsOnPredicate) {
  Simulator sim;
  int count = 0;
  sim.spawn([](Simulator& s, int& c) -> Task<void> {
    for (;;) {
      co_await s.delay(10_ns);
      ++c;
    }
  }(sim, count));
  EXPECT_TRUE(sim.run_while_pending([&] { return count >= 5; }));
  EXPECT_EQ(count, 5);
}

TEST(Simulator, RunWhilePendingReturnsFalseWhenDrained) {
  Simulator sim;
  sim.call_at(1_ns, [] {});
  EXPECT_FALSE(sim.run_while_pending([] { return false; }));
}

TEST(Simulator, RootProcessExceptionPropagates) {
  Simulator sim;
  sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.delay(1_ns);
    throw std::runtime_error("boom");
  }(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, NestedTaskExceptionPropagatesToParent) {
  Simulator sim;
  bool caught = false;
  auto leaf = [](Simulator& s) -> Task<void> {
    co_await s.delay(1_ns);
    throw std::runtime_error("inner");
  };
  sim.spawn([](Simulator& s, bool& c, auto mk) -> Task<void> {
    try {
      co_await mk(s);
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(sim, caught, leaf));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulator, SuspendedProcessesDestroyedCleanly) {
  // A process blocked forever must not leak or crash at teardown.
  auto sim = std::make_unique<Simulator>();
  sim->spawn([](Simulator& s) -> Task<void> {
    co_await s.delay(TimePs(INT64_MAX / 2));
  }(*sim));
  sim->step();  // start the process so it suspends in the delay
  sim.reset();  // must destroy the suspended frame without UB
}

TEST(Simulator, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.call_at(TimePs(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulator, RngDeterministicPerSeed) {
  Simulator a(7), b(7), c(8);
  EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
  Simulator d(8);
  EXPECT_EQ(c.rng().next_u64(), d.rng().next_u64());
}

}  // namespace
}  // namespace bb::sim
