// Rendering-layer tests for the figure reproductions: the bars the bench
// binaries print must carry the right labels and percentages.

#include <gtest/gtest.h>

#include "common/table.hpp"
#include "core/models.hpp"

namespace bb::core {
namespace {

TEST(BreakdownRender, Fig4BarShowsPaperPercentages) {
  const auto t = ComponentTable::paper();
  const std::string out = render_stacked_bar(
      "LLP_post", {{"MD setup", t.md_setup},
                   {"Barrier for MD", t.barrier_md},
                   {"Barrier for DBC", t.barrier_dbc},
                   {"PIO copy", t.pio_copy},
                   {"Other", t.llp_post_misc}});
  EXPECT_NE(out.find("15.84%"), std::string::npos);
  EXPECT_NE(out.find("9.88%"), std::string::npos);
  EXPECT_NE(out.find("12.01%"), std::string::npos);
  EXPECT_NE(out.find("53.73%"), std::string::npos);  // 94.25/175.42
  EXPECT_NE(out.find("8.55%"), std::string::npos);   // 14.99/175.42
}

TEST(BreakdownRender, Fig13BarTotals1387) {
  const LatencyModel m(ComponentTable::paper());
  const std::string out =
      render_stacked_bar("e2e", m.fig13_breakdown());
  EXPECT_NE(out.find("1387.02"), std::string::npos);
  EXPECT_NE(out.find("HLP_rx_prog"), std::string::npos);
}

TEST(BreakdownRender, Fig15NestedBarsConsistent) {
  const LatencyModel m(ComponentTable::paper());
  const auto cats = m.fig15_categories();
  // The category totals must sum to the e2e latency.
  double sum = 0;
  for (const auto& s : cats.top) sum += s.value;
  EXPECT_NEAR(sum, m.e2e_latency_ns(), 1e-9);
  // Each sub-split must sum to its category.
  double cpu = 0;
  for (const auto& s : cats.cpu) cpu += s.value;
  EXPECT_NEAR(cpu, cats.top[0].value, 1e-9);
  double io = 0;
  for (const auto& s : cats.io) io += s.value;
  EXPECT_NEAR(io, cats.top[1].value, 1e-9);
  double net = 0;
  for (const auto& s : cats.network) net += s.value;
  EXPECT_NEAR(net, cats.top[2].value, 1e-9);
}

TEST(BreakdownRender, Fig16NestedBarsConsistent) {
  const LatencyModel m(ComponentTable::paper());
  const auto on = m.fig16_on_node();
  double init = 0, tgt = 0;
  for (const auto& s : on.initiator) init += s.value;
  for (const auto& s : on.target) tgt += s.value;
  EXPECT_NEAR(init, on.split[0].value, 1e-9);
  EXPECT_NEAR(tgt, on.split[1].value, 1e-9);
  // On-node total = e2e latency minus the network share.
  const auto cats = m.fig15_categories();
  EXPECT_NEAR(init + tgt, cats.top[0].value + cats.top[1].value, 1e-9);
}

TEST(BreakdownRender, Fig10OmitsLlpProgLikeThePaper) {
  // The paper's Fig. 10 normalizes over six segments without LLP_prog
  // (its stated 16.33% share of LLP_post reconstructs a 1074.17 ns base).
  const LatencyModel m(ComponentTable::paper());
  double total = 0;
  for (const auto& s : m.fig10_breakdown()) {
    EXPECT_NE(s.label, "LLP_prog");
    total += s.value;
  }
  EXPECT_NEAR(total, 1074.17, 0.01);
}

}  // namespace
}  // namespace bb::core
