#include "core/component_table.hpp"

#include <gtest/gtest.h>

namespace bb::core {
namespace {

TEST(ComponentTable, PaperTable1Totals) {
  const ComponentTable t = ComponentTable::paper();
  EXPECT_NEAR(t.llp_post(), 175.42, 1e-9);      // Table 1
  EXPECT_NEAR(t.misc_llp_inj(), 58.68, 1e-9);   // busy post + meas. update
  EXPECT_NEAR(t.network(), 382.81, 1e-9);       // wire + switch
  EXPECT_NEAR(t.hlp_post(), 26.56, 1e-9);       // MPICH + UCP Isend
  EXPECT_NEAR(t.hlp_rx_prog(), 224.66, 1e-9);   // §6
  EXPECT_NEAR(t.llp_tx_prog(), 61.63 / 64, 1e-9);
}

TEST(ComponentTable, PaperWaitTotals) {
  const ComponentTable t = ComponentTable::paper();
  // Fig. 11's successful-MPI_Wait total: 293.29 + 150.51 = 443.8.
  EXPECT_NEAR(t.mpich_wait_total + t.ucp_wait_total, 443.8, 1e-9);
}

TEST(ComponentTable, FromConfigMatchesPaperCalibration) {
  const auto cfg = scenario::presets::thunderx2_cx4();
  const ComponentTable t = ComponentTable::from_config(cfg);
  const ComponentTable p = ComponentTable::paper();
  EXPECT_NEAR(t.llp_post(), p.llp_post(), 1e-6);
  EXPECT_NEAR(t.llp_prog, p.llp_prog, 1e-6);
  EXPECT_NEAR(t.pcie, p.pcie, 0.2);
  EXPECT_NEAR(t.wire, p.wire, 1e-6);
  EXPECT_NEAR(t.switch_lat, p.switch_lat, 1e-6);
  EXPECT_NEAR(t.rc_to_mem_8b, p.rc_to_mem_8b, 1e-6);
  EXPECT_NEAR(t.hlp_post(), p.hlp_post(), 1e-6);
  EXPECT_NEAR(t.hlp_rx_prog(), p.hlp_rx_prog(), 1e-6);
  EXPECT_NEAR(t.mpich_wait_total, p.mpich_wait_total, 1e-6);
  EXPECT_NEAR(t.ucp_wait_total, p.ucp_wait_total, 1e-6);
}

TEST(ComponentTable, FromConfigTracksOverrides) {
  auto cfg = scenario::presets::genz_switch(30.0);
  const ComponentTable t = ComponentTable::from_config(cfg);
  EXPECT_NEAR(t.switch_lat, 30.0, 1e-9);
  auto cfg2 = scenario::presets::fast_device_memory(15.0);
  EXPECT_NEAR(ComponentTable::from_config(cfg2).pio_copy, 15.0, 1e-9);
}

TEST(ComponentTable, RenderShowsTable1Rows) {
  const std::string out = ComponentTable::paper().render();
  EXPECT_NE(out.find("PIO copy (64 bytes)"), std::string::npos);
  EXPECT_NE(out.find("175.42"), std::string::npos);
  EXPECT_NE(out.find("RC-to-MEM(8B)"), std::string::npos);
  EXPECT_NE(out.find("240.96"), std::string::npos);
}

TEST(ComponentTable, RenderSideBySide) {
  const ComponentTable p = ComponentTable::paper();
  const ComponentTable c =
      ComponentTable::from_config(scenario::presets::thunderx2_cx4());
  const std::string out = p.render(&c, "paper", "config");
  EXPECT_NE(out.find("paper (ns)"), std::string::npos);
  EXPECT_NE(out.find("config (ns)"), std::string::npos);
}

}  // namespace
}  // namespace bb::core
