// Verifies the §7 what-if engine against the paper's spot checks.

#include "core/whatif.hpp"

#include <gtest/gtest.h>

namespace bb::core {
namespace {

class PaperWhatIf : public ::testing::Test {
 protected:
  WhatIf w{ComponentTable::paper()};
};

TEST_F(PaperWhatIf, SpeedupFormulaIsLinear) {
  EXPECT_DOUBLE_EQ(WhatIf::speedup(100.0, 0.5, 1000.0), 0.05);
  EXPECT_DOUBLE_EQ(WhatIf::speedup(100.0, 1.0, 1000.0), 0.10);
  EXPECT_DOUBLE_EQ(WhatIf::speedup(0.0, 0.9, 1000.0), 0.0);
}

TEST_F(PaperWhatIf, PioProjection) {
  // §7.1: PIO at 15 ns (84% reduction) => injection improves by more than
  // 25% and latency by more than 5%.
  EXPECT_GT(w.pio_injection_speedup(15.0), 0.25);
  EXPECT_NEAR(w.pio_injection_speedup(15.0), 0.299, 0.003);
  EXPECT_GT(w.pio_latency_speedup(15.0), 0.05);
  EXPECT_NEAR(w.pio_latency_speedup(15.0), 0.057, 0.002);
}

TEST_F(PaperWhatIf, SoftwareTwentyPercentBounds) {
  // §7.1: a 20% HLP reduction speeds injection by up to 6.44%; a 20% LLP
  // reduction by up to 13.33%.
  EXPECT_NEAR(w.hlp_injection_speedup(0.2) * 100.0, 6.44, 0.05);
  EXPECT_NEAR(w.llp_injection_speedup(0.2) * 100.0, 13.33, 0.05);
}

TEST_F(PaperWhatIf, IntegratedNicFiftyPercent) {
  // §7.1: "over a 15% improvement in overall latency even with a modest
  // 50% reduction in I/O time".
  EXPECT_GT(w.integrated_nic_latency_speedup(0.5), 0.15);
  EXPECT_NEAR(w.integrated_nic_latency_speedup(0.5), 0.186, 0.003);
}

TEST_F(PaperWhatIf, GenZSwitchThirtyNs) {
  // §7.2: reduction to 30 ns (72%) => ~5.5% latency speedup.
  EXPECT_NEAR(w.switch_latency_speedup(30.0) * 100.0, 5.62, 0.25);
  EXPECT_GT(w.switch_latency_speedup(30.0), 0.05);
}

TEST_F(PaperWhatIf, PanelsCoverPaperCurves) {
  const auto a = w.injection_cpu();
  ASSERT_EQ(a.curves.size(), 7u);  // HLP, LLP, LLP_post, PIO, ...
  const auto b = w.latency_cpu();
  ASSERT_EQ(b.curves.size(), 7u);
  const auto c = w.latency_io();
  ASSERT_EQ(c.curves.size(), 3u);
  const auto d = w.latency_network();
  ASSERT_EQ(d.curves.size(), 2u);
}

TEST_F(PaperWhatIf, Fig17aOrderingLlpAboveHlp) {
  // In Fig. 17a the LLP curve dominates the HLP curve everywhere.
  const auto p = w.injection_cpu();
  const auto& hlp = p.curves[0];
  const auto& llp = p.curves[1];
  ASSERT_EQ(hlp.component, "HLP");
  ASSERT_EQ(llp.component, "LLP");
  for (std::size_t i = 0; i < hlp.speedups.size(); ++i) {
    EXPECT_GT(llp.speedups[i], hlp.speedups[i]);
  }
}

TEST_F(PaperWhatIf, Fig17cIntegratedNicPeaksNear33Percent) {
  // 90% I/O reduction: 0.9 * 515.94 / 1387.02 ~ 33.5% (the figure's top).
  const auto p = w.latency_io();
  const auto& integrated = p.curves[0];
  EXPECT_NEAR(integrated.speedups.back() * 100.0, 33.5, 0.5);
}

TEST_F(PaperWhatIf, Fig17dWirePeaksNear18Percent) {
  // 90% wire reduction: 0.9 * 274.81 / 1387.02 ~ 17.8%.
  const auto p = w.latency_network();
  EXPECT_NEAR(p.curves[0].speedups.back() * 100.0, 17.8, 0.3);
}

TEST_F(PaperWhatIf, CurvesAreLinearInReduction) {
  const auto p = w.latency_cpu();
  for (const auto& c : p.curves) {
    for (std::size_t i = 0; i < c.speedups.size(); ++i) {
      EXPECT_NEAR(c.speedups[i],
                  c.reductions[i] * c.component_ns / p.base_total_ns, 1e-12);
    }
  }
}

TEST_F(PaperWhatIf, RenderAndCsv) {
  const auto p = w.latency_network();
  const std::string txt = p.render();
  EXPECT_NE(txt.find("Wire"), std::string::npos);
  EXPECT_NE(txt.find("Switch"), std::string::npos);
  const std::string csv = p.to_csv();
  EXPECT_NE(csv.find("component,component_ns"), std::string::npos);
}

TEST(WhatIfProperty, SpeedupsSumAcrossDisjointComponents) {
  // Reducing two disjoint components is additive in this model.
  const ComponentTable t = ComponentTable::paper();
  WhatIf w(t);
  const double base = LatencyModel(t).e2e_latency_ns();
  const double both =
      WhatIf::speedup(t.wire, 0.5, base) + WhatIf::speedup(t.switch_lat, 0.5, base);
  EXPECT_NEAR(both, WhatIf::speedup(t.network(), 0.5, base), 1e-12);
}

}  // namespace
}  // namespace bb::core
