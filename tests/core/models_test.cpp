// Verifies the analytical models against every number the paper states.

#include "core/models.hpp"

#include <gtest/gtest.h>

namespace bb::core {
namespace {

double pct(const std::vector<BarSegment>& segs, const std::string& label) {
  double total = 0;
  double v = -1;
  for (const auto& s : segs) {
    total += s.value;
    if (s.label == label) v = s.value;
  }
  EXPECT_GE(v, 0) << "missing segment " << label;
  return v / total * 100.0;
}

class PaperModels : public ::testing::Test {
 protected:
  InjectionModel inj{ComponentTable::paper()};
  LatencyModel lat{ComponentTable::paper()};
};

TEST_F(PaperModels, Eq1LlpInjectionIs295_73) {
  EXPECT_NEAR(inj.llp_injection_ns(), 295.73, 0.01);
}

TEST_F(PaperModels, Eq1WithinFivePercentOfObserved282_33) {
  // §4.2's validation claim.
  EXPECT_LE(std::abs(inj.llp_injection_ns() - 282.33) / 282.33, 0.05);
}

TEST_F(PaperModels, GenCompletionAndPollPeriod) {
  // gen_completion = 2 x (137.49 + 382.81) + RC-to-MEM(64B).
  EXPECT_NEAR(inj.gen_completion_ns(), 2 * (137.49 + 382.81) + 260.56, 0.01);
  // p >= gen_completion / LLP_post ~ 7.4: poll at least every ~8 posts.
  EXPECT_NEAR(inj.min_poll_period(), 7.42, 0.05);
}

TEST_F(PaperModels, Eq2OverallInjectionIs264_97) {
  EXPECT_NEAR(inj.post_ns(), 201.98, 0.01);        // §6
  EXPECT_NEAR(inj.post_prog_ns(), 59.82, 0.01);    // §6
  EXPECT_NEAR(inj.overall_injection_ns(), 264.97, 0.01);
  // Within 1% of the observed 263.91 (§6).
  EXPECT_LE(std::abs(inj.overall_injection_ns() - 263.91) / 263.91, 0.01);
}

TEST_F(PaperModels, Fig8Percentages) {
  const auto segs = inj.fig8_breakdown();
  EXPECT_NEAR(pct(segs, "LLP_post"), 61.18, 0.05);
  EXPECT_NEAR(pct(segs, "LLP_prog"), 21.49, 0.05);
  EXPECT_NEAR(pct(segs, "Misc"), 17.33, 0.05);
}

TEST_F(PaperModels, Fig12Percentages) {
  const auto segs = inj.fig12_breakdown();
  EXPECT_NEAR(pct(segs, "Post"), 76.23, 0.05);
  EXPECT_NEAR(pct(segs, "Post_prog"), 22.58, 0.05);
  EXPECT_NEAR(pct(segs, "Misc"), 1.20, 0.05);
}

TEST_F(PaperModels, LlpLatencyIs1135_8) {
  EXPECT_NEAR(lat.llp_latency_ns(), 1135.8, 0.05);
  // §4.3: within 5% of the adjusted observed 1190.25.
  EXPECT_LE(std::abs(lat.llp_latency_ns() - 1190.25) / 1190.25, 0.05);
}

TEST_F(PaperModels, E2eLatencyIs1387_02) {
  EXPECT_NEAR(lat.e2e_latency_ns(), 1387.02, 0.01);
  // §6: within 4% of the observed 1336.
  EXPECT_LE(std::abs(lat.e2e_latency_ns() - 1336.0) / 1336.0, 0.04);
}

TEST_F(PaperModels, Fig10Percentages) {
  const auto segs = lat.fig10_breakdown();
  EXPECT_NEAR(pct(segs, "LLP_post"), 16.33, 0.05);
  EXPECT_NEAR(pct(segs, "TX PCIe"), 12.80, 0.05);
  EXPECT_NEAR(pct(segs, "Wire"), 25.58, 0.05);
  EXPECT_NEAR(pct(segs, "Switch"), 10.05, 0.05);
  EXPECT_NEAR(pct(segs, "RX PCIe"), 12.80, 0.05);
  EXPECT_NEAR(pct(segs, "RC-to-MEM(8B)"), 22.43, 0.05);
}

TEST_F(PaperModels, Fig13Percentages) {
  const auto segs = lat.fig13_breakdown();
  EXPECT_NEAR(pct(segs, "HLP_post"), 1.91, 0.05);
  EXPECT_NEAR(pct(segs, "LLP_post"), 12.65, 0.05);
  EXPECT_NEAR(pct(segs, "TX PCIe"), 9.91, 0.05);
  EXPECT_NEAR(pct(segs, "Wire"), 19.81, 0.05);
  EXPECT_NEAR(pct(segs, "Switch"), 7.79, 0.05);
  EXPECT_NEAR(pct(segs, "RX PCIe"), 9.91, 0.05);
  EXPECT_NEAR(pct(segs, "RC-to-MEM(8B)"), 17.37, 0.05);
  EXPECT_NEAR(pct(segs, "LLP_prog"), 4.44, 0.05);
  EXPECT_NEAR(pct(segs, "HLP_rx_prog"), 16.20, 0.05);
}

TEST_F(PaperModels, Fig11HlpSplits) {
  const auto split = lat.fig11_split();
  EXPECT_NEAR(pct(split.isend, "UCP"), 8.24, 0.05);
  EXPECT_NEAR(pct(split.isend, "MPICH"), 91.76, 0.05);
  EXPECT_NEAR(pct(split.rx_wait, "UCP"), 33.91, 0.05);
  EXPECT_NEAR(pct(split.rx_wait, "MPICH"), 66.09, 0.05);
}

TEST_F(PaperModels, Fig14LayerSplits) {
  const auto split = lat.fig14_split();
  EXPECT_NEAR(pct(split.initiation, "LLP"), 86.85, 0.05);
  EXPECT_NEAR(pct(split.initiation, "HLP"), 13.15, 0.05);
  EXPECT_NEAR(pct(split.tx_progress, "LLP"), 1.61, 0.05);
  EXPECT_NEAR(pct(split.tx_progress, "HLP"), 98.39, 0.05);
  EXPECT_NEAR(pct(split.rx_progress, "LLP"), 21.53, 0.05);
  EXPECT_NEAR(pct(split.rx_progress, "HLP"), 78.47, 0.05);
  // §6 Insight 4: RX progress is 4.78x TX progress.
  const double tx = split.tx_progress[0].value + split.tx_progress[1].value;
  const double rx = split.rx_progress[0].value + split.rx_progress[1].value;
  EXPECT_NEAR(rx / tx, 4.78, 0.02);
}

TEST_F(PaperModels, Fig15Categories) {
  const auto c = lat.fig15_categories();
  EXPECT_NEAR(pct(c.top, "CPU"), 35.20, 0.05);
  EXPECT_NEAR(pct(c.top, "I/O"), 37.20, 0.05);
  EXPECT_NEAR(pct(c.top, "Network"), 27.60, 0.05);
  EXPECT_NEAR(pct(c.cpu, "LLP"), 48.55, 0.05);
  EXPECT_NEAR(pct(c.cpu, "HLP"), 51.45, 0.05);
  EXPECT_NEAR(pct(c.io, "PCIe"), 53.30, 0.05);
  EXPECT_NEAR(pct(c.io, "RC-to-MEM"), 46.70, 0.05);
  EXPECT_NEAR(pct(c.network, "Wire"), 71.79, 0.05);
  EXPECT_NEAR(pct(c.network, "Switch"), 28.21, 0.05);
}

TEST_F(PaperModels, Fig15Insight2OnNodeDominates) {
  // §6 Insight 2: CPU + I/O = 72.4% of the latency.
  const auto c = lat.fig15_categories();
  EXPECT_NEAR(pct(c.top, "CPU") + pct(c.top, "I/O"), 72.40, 0.05);
}

TEST_F(PaperModels, Fig16OnNode) {
  const auto o = lat.fig16_on_node();
  EXPECT_NEAR(pct(o.split, "Initiator"), 33.80, 0.05);
  EXPECT_NEAR(pct(o.split, "Target"), 66.20, 0.05);
  EXPECT_NEAR(pct(o.initiator, "CPU"), 59.50, 0.05);
  EXPECT_NEAR(pct(o.initiator, "I/O"), 40.50, 0.05);
  EXPECT_NEAR(pct(o.target, "CPU"), 43.07, 0.05);
  EXPECT_NEAR(pct(o.target, "I/O"), 56.93, 0.05);
  EXPECT_NEAR(pct(o.target_io, "RC-to-MEM"), 63.67, 0.05);
  EXPECT_NEAR(pct(o.target_io, "PCIe"), 36.33, 0.05);
}

TEST(Models, BreakdownsRespondToTableChanges) {
  // Property: halving the wire halves its share of the latency breakdown.
  ComponentTable t = ComponentTable::paper();
  t.wire /= 2.0;
  LatencyModel lat(t);
  EXPECT_NEAR(lat.llp_latency_ns(), 1135.8 - 274.81 / 2.0, 0.05);
}

}  // namespace
}  // namespace bb::core
