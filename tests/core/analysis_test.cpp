// Unit tests of the trace-analysis methodology on synthetic traces, plus
// integration against real simulator traces.

#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "benchlib/am_lat.hpp"
#include "benchlib/put_bw.hpp"
#include "core/component_table.hpp"
#include "scenario/testbed.hpp"

namespace bb::core {
namespace {

using pcie::Direction;
using pcie::Dllp;
using pcie::DllpType;
using pcie::Tlp;
using pcie::TlpType;
using pcie::Trace;
using namespace bb::literals;

Tlp mwr(Direction dir, std::uint32_t bytes) {
  Tlp t;
  t.type = TlpType::kMemWrite;
  t.dir = dir;
  t.bytes = bytes;
  return t;
}

TEST(Analysis, ObservedInjectionSkipsWarmup) {
  Trace tr;
  for (int i = 0; i < 6; ++i) {
    tr.record_tlp(TimePs::from_ns(100.0 * i),
                  mwr(Direction::kDownstream, 64));
  }
  const Samples s = observed_injection(tr, 2);
  EXPECT_EQ(s.size(), 3u);  // 4 posts remain -> 3 deltas
  EXPECT_NEAR(s.summarize().mean, 100.0, 1e-9);
}

TEST(Analysis, MeasuredPcieHalvesRoundTrip) {
  Trace tr;
  tr.record_tlp(1000_ns, mwr(Direction::kUpstream, 64));
  Dllp ack;
  ack.type = DllpType::kAck;
  tr.record_dllp(TimePs::from_ns(1000.0 + 274.98), Direction::kDownstream, ack);
  const Samples s = measured_pcie(tr);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NEAR(s.values_ns()[0], 137.49, 1e-6);
}

TEST(Analysis, MeasuredNetworkPairsPingWithCompletion) {
  Trace tr;
  tr.record_tlp(0_ns, mwr(Direction::kDownstream, 64));        // ping at NIC
  tr.record_tlp(800_ns, mwr(Direction::kUpstream, 64));        // its CQE
  tr.record_tlp(2000_ns, mwr(Direction::kDownstream, 64));
  tr.record_tlp(2800_ns, mwr(Direction::kUpstream, 64));
  const Samples s = measured_network(tr);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NEAR(s.summarize().mean, 400.0, 1e-9);
}

TEST(Analysis, MeasuredRcToMemBackSolves) {
  Trace tr;
  // Inbound pong payload (8 B up), then the next ping (64 B down) 762 ns
  // later; with PCIe 137.49, LLP_post 175.42, LLP_prog 61.63 the back-
  // solve yields 762 - 274.98 - 237.05 = 249.97.
  tr.record_tlp(0_ns, mwr(Direction::kUpstream, 8));
  tr.record_tlp(762_ns, mwr(Direction::kDownstream, 64));
  const Samples s = measured_rc_to_mem(tr, 137.49, 175.42, 61.63);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NEAR(s.values_ns()[0], 249.97, 1e-6);
}

TEST(Analysis, MeasuredSwitchIsDifference) {
  EXPECT_NEAR(measured_switch(1190.25, 1082.25), 108.0, 1e-9);
}

// --- Integration: methodology applied to real simulator traces ----------

TEST(AnalysisIntegration, PcieFromAmLatTraceMatchesCalibration) {
  scenario::Testbed tb(scenario::presets::deterministic());
  bench::AmLatBenchmark am(tb, {.iterations = 50, .warmup = 5, .bytes = 8,
                                .speed_factor = 1.0, .capture_trace = true});
  (void)am.run();
  const Samples pcie_s = measured_pcie(am.trace());
  ASSERT_GT(pcie_s.size(), 10u);
  // The trace-based measurement carries ~1-2 ns of contamination (Ack
  // DLLPs queue behind larger TLPs sharing the downstream link), the same
  // class of systematic error a real analyzer measurement has.
  EXPECT_NEAR(pcie_s.summarize().mean, tb.config().link.measured_pcie_ns(),
              3.0);
}

TEST(AnalysisIntegration, NetworkFromAmLatTraceNearConfig) {
  scenario::Testbed tb(scenario::presets::deterministic());
  bench::AmLatBenchmark am(tb, {.iterations = 50, .warmup = 5, .bytes = 8,
                                .speed_factor = 1.0, .capture_trace = true});
  (void)am.run();
  const Samples net = measured_network(am.trace());
  ASSERT_GT(net.size(), 10u);
  // The methodology contains NIC processing it cannot see; the measured
  // value sits slightly above the configured network latency.
  const double configured = tb.config().net.network_latency().to_ns();
  EXPECT_GT(net.summarize().mean, configured);
  EXPECT_LT(net.summarize().mean, configured + 40.0);
}

TEST(AnalysisIntegration, RcToMemFromAmLatTraceNearConfig) {
  scenario::Testbed tb(scenario::presets::deterministic());
  bench::AmLatBenchmark am(tb, {.iterations = 50, .warmup = 5, .bytes = 8,
                                .speed_factor = 1.0, .capture_trace = true});
  (void)am.run();
  const ComponentTable t = ComponentTable::from_config(tb.config());
  const Samples rc = measured_rc_to_mem(am.trace(), t.pcie, t.llp_post(),
                                        t.llp_prog);
  ASSERT_GT(rc.size(), 10u);
  // Back-solve includes poll-discovery slack; allow a modest band above
  // the configured 240.96 ns.
  EXPECT_NEAR(rc.summarize().mean, 240.96, 60.0);
}

}  // namespace
}  // namespace bb::core
