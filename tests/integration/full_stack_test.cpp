// Cross-stack integration: scenarios that exercise several modules at
// once in ways no single-module test does.

#include <gtest/gtest.h>

#include "scenario/mpi_stack.hpp"
#include "scenario/testbed.hpp"

namespace bb {
namespace {

using scenario::MpiStack;
using scenario::Testbed;
using namespace bb::literals;

TEST(FullStack, BidirectionalMpiStress) {
  // Both ranks send and receive concurrently; everything must drain.
  Testbed tb(scenario::presets::thunderx2_cx4());
  MpiStack a(tb, 0);
  MpiStack b(tb, 1);
  constexpr int kMsgs = 200;
  tb.node(0).nic.post_receives(kMsgs + 4);
  tb.node(1).nic.post_receives(kMsgs + 4);

  auto rank = [](MpiStack& st, int n) -> sim::Task<void> {
    std::vector<hlp::Request*> recvs;
    for (int i = 0; i < n; ++i) recvs.push_back(st.mpi().irecv(8).value());
    std::vector<hlp::Request*> sends;
    for (int i = 0; i < n; ++i) {
      sends.push_back((co_await st.mpi().isend(8)).value());
      if (i % 16 == 15) co_await st.ucp().progress();
    }
    co_await st.mpi().waitall(sends);
    for (hlp::Request* r : recvs) co_await st.mpi().wait(r);
  };
  tb.sim().spawn(rank(a, kMsgs));
  tb.sim().spawn(rank(b, kMsgs));
  tb.sim().run();

  EXPECT_EQ(a.ucp().recvs_completed(), static_cast<std::uint64_t>(kMsgs));
  EXPECT_EQ(b.ucp().recvs_completed(), static_cast<std::uint64_t>(kMsgs));
  EXPECT_EQ(tb.node(0).nic.messages_injected(),
            static_cast<std::uint64_t>(kMsgs));
  EXPECT_EQ(tb.node(1).nic.messages_injected(),
            static_cast<std::uint64_t>(kMsgs));
}

TEST(FullStack, MixedUctAndMpiTrafficShareTheNic) {
  // A raw UCT endpoint (one-sided puts) and a full MPI stack (two-sided)
  // drive the same node's NIC on different QPs.
  Testbed tb(scenario::presets::deterministic());
  MpiStack mpi(tb, 0);
  llp::EndpointConfig raw_cfg = tb.config().endpoint;
  raw_cfg.qp = 9;
  auto& raw = tb.add_endpoint(0, raw_cfg);
  tb.node(1).nic.post_receives(64);

  tb.sim().spawn([](Testbed& t, MpiStack& st,
                    llp::Endpoint& r) -> sim::Task<void> {
    for (int i = 0; i < 16; ++i) {
      (void)co_await st.mpi().isend(8);
      while (co_await r.put_short(8) != llp::Status::kOk) {
        co_await t.node(0).worker.progress();
      }
    }
    // Retire the unsignalled tails (16 < the moderation period of 64).
    (void)co_await r.flush();
    (void)co_await st.endpoint().flush();
    while (r.outstanding() > 0 || st.endpoint().outstanding() > 0) {
      co_await t.node(0).worker.progress();
    }
  }(tb, mpi, raw));
  tb.sim().run();

  // 32 data messages + 2 zero-byte flush no-ops.
  EXPECT_EQ(tb.node(0).nic.messages_injected(), 34u);
  EXPECT_EQ(tb.node(1).host.payload_bytes_delivered(), 32u * 8u);
  // Only the sends produced RX completions.
  EXPECT_EQ(tb.node(1).host.rx_cq().depth(), 16u);
}

TEST(FullStack, LongRunDeterminism) {
  // Identical seeds produce bit-identical timelines end to end.
  auto run = [] {
    auto cfg = scenario::presets::thunderx2_cx4();
    cfg.seed = 1234;
    Testbed tb(cfg);
    auto& ep = tb.add_endpoint(0);
    tb.sim().spawn([](Testbed& t, llp::Endpoint& e) -> sim::Task<void> {
      for (int i = 0; i < 500; ++i) {
        while (co_await e.put_short(8) != llp::Status::kOk) {
          co_await t.node(0).worker.progress(1);
        }
        if (i % 16 == 0) co_await t.node(0).worker.progress(1);
      }
      while (e.outstanding() > 0) co_await t.node(0).worker.progress();
    }(tb, ep));
    tb.sim().run();
    return std::pair{tb.sim().now().ps(), tb.sim().events_processed()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(FullStack, AnalyzerSeesEveryLayerOfOneSend) {
  // One MPI message: the trace must contain the PIO post (down), the
  // payload write (up, at the target it is the *target's* link -- so on
  // node 0 we see only our own traffic: post + CQE) and their DLLPs.
  Testbed tb(scenario::presets::deterministic());
  MpiStack a(tb, 0, /*signal_period=*/1);
  tb.node(1).nic.post_receives(2);
  tb.sim().spawn([](Testbed& t, MpiStack& st) -> sim::Task<void> {
    (void)co_await st.mpi().isend(8);
    while (st.endpoint().outstanding() > 0) {
      co_await t.node(0).worker.progress();
    }
  }(tb, a));
  tb.sim().run();

  const auto& trace = tb.analyzer().trace();
  EXPECT_EQ(trace.downstream_writes(64).size(), 1u);  // the PIO post
  EXPECT_EQ(trace.upstream_writes(64).size(), 1u);    // the CQE
  const auto acks = trace.filter([](const pcie::TraceRecord& r) {
    return r.is_dllp && r.dllp_type == pcie::DllpType::kAck;
  });
  EXPECT_GE(acks.size(), 2u);  // one per TLP
  const auto fcs = trace.filter([](const pcie::TraceRecord& r) {
    return r.is_dllp && r.dllp_type == pcie::DllpType::kUpdateFC;
  });
  EXPECT_GE(fcs.size(), 2u);  // credits returned both ways
}

TEST(FullStack, HiccupTailSurfacesInLongRuns) {
  // The rare OS hiccup must appear in a long put_bw-style run (Fig. 7's
  // max is ~two orders above the mean).
  auto cfg = scenario::presets::thunderx2_cx4();
  cfg.seed = 7;
  Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  double max_gap = 0;
  tb.sim().spawn([](Testbed& t, llp::Endpoint& e, double& out) -> sim::Task<void> {
    double prev = 0;
    for (int i = 0; i < 20000; ++i) {
      while (co_await e.put_short(8) != llp::Status::kOk) {
        co_await t.node(0).worker.progress(1);
      }
      t.node(0).core.consume(t.node(0).core.costs().loop_exp_noise);
      t.node(0).core.consume(t.node(0).core.costs().loop_hiccup);
      const double now = t.node(0).core.virtual_now().to_ns();
      if (prev > 0) out = std::max(out, now - prev);
      prev = now;
      if (i % 16 == 0) co_await t.node(0).worker.progress(1);
    }
    while (e.outstanding() > 0) co_await t.node(0).worker.progress();
  }(tb, ep, max_gap));
  tb.analyzer().set_enabled(false);
  tb.sim().run();
  EXPECT_GT(max_gap, 1000.0);  // at least one hiccup in 20k iterations
}

}  // namespace
}  // namespace bb
