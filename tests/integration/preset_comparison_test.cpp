// Integration: the §7 presets must order exactly as the what-if analysis
// predicts when executed as real machines.

#include <gtest/gtest.h>

#include "benchlib/am_lat.hpp"
#include "benchlib/osu.hpp"
#include "core/whatif.hpp"
#include "scenario/testbed.hpp"

namespace bb {
namespace {

double am_latency(const scenario::SystemConfig& cfg) {
  scenario::Testbed tb(cfg);
  bench::AmLatBenchmark b(tb, {.iterations = 300,
                               .warmup = 30,
                               .speed_factor = 1.0,
                               .capture_trace = false});
  return b.run().adjusted_mean_ns;
}

TEST(PresetComparison, IntegratedNicBeatsBaseline) {
  const double base = am_latency(scenario::presets::deterministic());
  auto soc = scenario::presets::integrated_nic(0.5);
  soc.cpu.strip_jitter();
  const double fast = am_latency(soc);
  // ~50% of the ~513 ns I/O disappears from the one-way path.
  EXPECT_LT(fast, base - 200.0);
}

TEST(PresetComparison, FastDeviceMemoryShavesPioCopy) {
  const double base = am_latency(scenario::presets::deterministic());
  auto fast_cfg = scenario::presets::fast_device_memory(15.0);
  fast_cfg.cpu.strip_jitter();
  const double fast = am_latency(fast_cfg);
  EXPECT_NEAR(base - fast, 94.25 - 15.0, 3.0);
}

TEST(PresetComparison, GenZSwitchShaves78ns) {
  const double base = am_latency(scenario::presets::deterministic());
  auto genz = scenario::presets::genz_switch(30.0);
  genz.cpu.strip_jitter();
  EXPECT_NEAR(base - am_latency(genz), 108.0 - 30.0, 2.0);
}

TEST(PresetComparison, Pam4WireIsSlowerForSmallMessages) {
  // §7.2: higher-throughput signalling *increases* small-message latency
  // (FEC adds up to 300 ns).
  const double base = am_latency(scenario::presets::deterministic());
  auto pam4 = scenario::presets::pam4_fec_wire(300.0);
  pam4.cpu.strip_jitter();
  EXPECT_NEAR(am_latency(pam4) - base, 300.0, 5.0);
}

TEST(PresetComparison, TofuDLikeRemovesRoughly400ns) {
  // §7.1: Tofu-D's integration improved RDMA-write latency by ~400 ns.
  const double base = am_latency(scenario::presets::deterministic());
  auto tofu = scenario::presets::tofu_d_like();
  tofu.cpu.strip_jitter();
  EXPECT_NEAR(base - am_latency(tofu), 400.0, 50.0);
}

TEST(PresetComparison, OrderingMatchesWhatIfRanking) {
  // The engine ranks: integrated-NIC > fast-PIO > Gen-Z switch for
  // latency; the executed machines must agree.
  const double base = am_latency(scenario::presets::deterministic());
  auto mk = [](scenario::SystemConfig cfg) {
    cfg.cpu.strip_jitter();
    return cfg;
  };
  const double soc = am_latency(mk(scenario::presets::integrated_nic(0.5)));
  const double pio = am_latency(mk(scenario::presets::fast_device_memory()));
  const double genz = am_latency(mk(scenario::presets::genz_switch()));
  EXPECT_LT(soc, pio);
  EXPECT_LT(pio, genz);
  EXPECT_LT(genz, base);
}

}  // namespace
}  // namespace bb
