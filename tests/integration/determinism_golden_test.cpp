// Determinism golden test for the event engine.
//
// Runs the paper's two smallest end-to-end benchmarks (`put_bw`, `am_lat`)
// on the thunderx2_cx4 preset with the default seed and asserts the exact
// event count, final simulated time, and an FNV-1a checksum over every
// field of the analyzer trace. The golden values were captured from the
// `std::priority_queue`-based engine the ready-ring/run/heap dispatcher
// replaced; any reordering of same-timestamp events -- however subtle --
// shifts DLLP interleavings and changes the checksum. Update these
// constants only for a change that is *supposed* to alter simulated
// behavior, never for an engine refactor.

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "benchlib/am_lat.hpp"
#include "benchlib/osu_coll.hpp"
#include "benchlib/put_bw.hpp"
#include "exec/sweep.hpp"
#include "pcie/trace.hpp"
#include "scenario/cluster.hpp"
#include "scenario/testbed.hpp"

namespace bb {
namespace {

// FNV-1a over the analyzer trace: every field of every record in order.
std::uint64_t trace_checksum(const pcie::Trace& tr) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& r : tr.records()) {
    mix(static_cast<std::uint64_t>(r.t.ps()));
    mix(static_cast<std::uint64_t>(r.dir));
    mix(static_cast<std::uint64_t>(r.is_dllp));
    mix(static_cast<std::uint64_t>(r.tlp_type));
    mix(static_cast<std::uint64_t>(r.dllp_type));
    mix(r.bytes);
    mix(r.tag);
    mix(r.msg_id);
    for (char c : r.kind) {
      mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
  }
  return h;
}

TEST(DeterminismGolden, PutBwOnThunderx2Cx4) {
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  bench::PutBwBenchmark b(
      tb, {.messages = 2000, .warmup = 200, .capture_trace = true});
  (void)b.run();
  EXPECT_EQ(tb.sim().events_processed(), 54885u);
  EXPECT_EQ(tb.sim().now().ps(), 623024806);
  EXPECT_EQ(tb.analyzer().trace().size(), 13200u);
  EXPECT_EQ(trace_checksum(tb.analyzer().trace()), 0x4b310291a8770261ull);
}

TEST(DeterminismGolden, AmLatOnThunderx2Cx4) {
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  bench::AmLatBenchmark b(
      tb, {.iterations = 500, .warmup = 50, .capture_trace = true});
  (void)b.run();
  EXPECT_EQ(tb.sim().events_processed(), 155301u);
  EXPECT_EQ(tb.sim().now().ps(), 1319178710);
  EXPECT_EQ(tb.analyzer().trace().size(), 4950u);
  EXPECT_EQ(trace_checksum(tb.analyzer().trace()), 0x99a7aa2d313a960eull);
}

// Collective determinism: an 8-rank allreduce schedule multiplexes four
// peer endpoints per node over one shared progress engine -- far more
// same-timestamp event pressure than the 2-node benches above. The
// analyzer taps node 0's link (Cluster default).
TEST(DeterminismGolden, AllreduceOnThunderx2Cx4) {
  scenario::Cluster cl(scenario::presets::thunderx2_cx4(), 8);
  cl.analyzer().set_enabled(true);
  coll::World world(cl);
  bench::OsuCollConfig cfg;
  cfg.bytes = 256;
  cfg.iterations = 20;
  cfg.warmup = 5;
  bench::OsuColl b(world, bench::OsuColl::Kind::kAllreduce, cfg);
  (void)b.run();
  EXPECT_EQ(cl.sim().events_processed(), 74216u);
  EXPECT_EQ(cl.sim().now().ps(), 25006013113);
  EXPECT_EQ(cl.analyzer().trace().size(), 1275u);
  EXPECT_EQ(trace_checksum(cl.analyzer().trace()), 0x1c3fe29c0a532d44ull);
}

// Lossy-transport determinism: the wire injector's fault pattern is a
// pure function of (scenario seed, packet order) -- seed-forked off the
// simulation's RNG tree, never the host -- so an 8-rank allreduce under
// nonzero packet loss produces bit-identical traces whether the sweep
// runs serially or sharded across 4 worker threads.
TEST(DeterminismGolden, LossyAllreduceIdenticalSerialVsParallel) {
  auto fingerprint = [](std::uint64_t seed) {
    scenario::SystemConfig cfg = scenario::presets::thunderx2_cx4().with(
        scenario::overlays::wire_loss(1e-2));
    cfg.seed = seed;
    scenario::Cluster cl(cfg, 8);
    cl.analyzer().set_enabled(true);
    coll::World world(cl);
    bench::OsuCollConfig bc;
    bc.bytes = 256;
    bc.iterations = 10;
    bc.warmup = 2;
    bench::OsuColl b(world, bench::OsuColl::Kind::kAllreduce, bc);
    (void)b.run();
    return std::tuple{cl.sim().events_processed(), cl.sim().now().ps(),
                      trace_checksum(cl.analyzer().trace()),
                      cl.net_stats().packets_dropped};
  };
  const auto sw = exec::sweep(std::vector<int>{0, 1, 2, 3}, 42);
  const auto job = [&](const int&, exec::Job& j) {
    return fingerprint(j.seed());
  };
  auto serial = exec::run_sweep(sw, job, {.jobs = 1});
  auto parallel = exec::run_sweep(sw, job, {.jobs = 4});
  ASSERT_EQ(serial.values.size(), parallel.values.size());
  std::uint64_t total_dropped = 0;
  for (std::size_t i = 0; i < serial.values.size(); ++i) {
    EXPECT_EQ(serial.values[i], parallel.values[i]) << "grid point " << i;
    total_dropped += std::get<3>(serial.values[i]);
  }
  // The loss rate was live: this golden exercises the recovery machinery,
  // not an idle injector.
  EXPECT_GT(total_dropped, 0u);
}

// Two runs with the same seed must agree event-for-event, independent of
// the golden constants above (guards nondeterminism that happens to
// change both runs identically within a process but not across hosts).
TEST(DeterminismGolden, BackToBackRunsAreIdentical) {
  auto run_once = [] {
    scenario::Testbed tb(scenario::presets::thunderx2_cx4());
    bench::PutBwBenchmark b(
        tb, {.messages = 500, .warmup = 50, .capture_trace = true});
    (void)b.run();
    return std::tuple{tb.sim().events_processed(), tb.sim().now().ps(),
                      trace_checksum(tb.analyzer().trace())};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace bb
