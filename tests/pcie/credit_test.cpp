#include "pcie/credit.hpp"

#include <gtest/gtest.h>

namespace bb::pcie {
namespace {

Tlp mwr(std::uint32_t bytes) {
  Tlp t;
  t.type = TlpType::kMemWrite;
  t.bytes = bytes;
  return t;
}

Tlp mrd() {
  Tlp t;
  t.type = TlpType::kMemRead;
  t.bytes = 0;
  return t;
}

TEST(Credit, ClassOfMapsTlpTypes) {
  EXPECT_EQ(CreditState::class_of(mwr(64)), CreditClass::kPosted);
  EXPECT_EQ(CreditState::class_of(mrd()), CreditClass::kNonPosted);
  Tlp cpl;
  cpl.type = TlpType::kCompletionData;
  EXPECT_EQ(CreditState::class_of(cpl), CreditClass::kCompletion);
}

TEST(Credit, DataCreditUnitsRoundUp) {
  EXPECT_EQ(data_credit_units(mwr(64)), 4u);
  EXPECT_EQ(data_credit_units(mwr(8)), 1u);
  EXPECT_EQ(data_credit_units(mwr(65)), 5u);
  EXPECT_EQ(data_credit_units(mrd()), 0u);  // MRd carries no data
}

TEST(Credit, ConsumeDecrementsAvailability) {
  auto s = CreditState::with_budget({4, 16}, {2, 2}, {4, 16});
  EXPECT_TRUE(s.can_send(mwr(64)));
  s.consume(mwr(64));
  const auto avail = s.available(CreditClass::kPosted);
  EXPECT_EQ(avail.header, 3u);
  EXPECT_EQ(avail.data, 12u);
}

TEST(Credit, ExhaustionBlocksSending) {
  auto s = CreditState::with_budget({2, 8}, {1, 1}, {1, 4});
  s.consume(mwr(64));
  s.consume(mwr(64));
  EXPECT_FALSE(s.can_send(mwr(64)));  // headers gone
}

TEST(Credit, DataCreditsCanBeTheBinder) {
  auto s = CreditState::with_budget({8, 4}, {1, 1}, {1, 4});
  s.consume(mwr(64));  // 4 data units consumed
  EXPECT_FALSE(s.can_send(mwr(16)));  // headers remain, data exhausted
}

TEST(Credit, ReplenishRestoresAndRespectsBudget) {
  auto s = CreditState::with_budget({2, 8}, {1, 1}, {1, 4});
  const Tlp t = mwr(64);
  s.consume(t);
  EXPECT_EQ(s.outstanding_headers(CreditClass::kPosted), 1);
  s.replenish(CreditState::release_for(t));
  EXPECT_EQ(s.outstanding_headers(CreditClass::kPosted), 0);
  EXPECT_TRUE(s.can_send(t));
}

TEST(Credit, ReleaseForMatchesConsumption) {
  const Tlp t = mwr(40);
  const Dllp d = CreditState::release_for(t);
  EXPECT_EQ(d.type, DllpType::kUpdateFC);
  EXPECT_EQ(d.credit_class, CreditClass::kPosted);
  EXPECT_EQ(d.header_credits, 1u);
  EXPECT_EQ(d.data_credits, data_credit_units(t));
}

TEST(Credit, DefaultEndpointNeverExhaustedBySingleCoreBurst) {
  // §4.2: "a single core does not exhaust the credits for MWr
  // transactions" -- with UpdateFCs flowing, 64 posted headers cover the
  // handful of in-flight 64 B writes a single core can sustain.
  auto s = CreditState::default_endpoint();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(s.can_send(mwr(64)));
    s.consume(mwr(64));
  }
  EXPECT_TRUE(s.can_send(mwr(64)));
}

TEST(Credit, IndependentClasses) {
  auto s = CreditState::with_budget({1, 4}, {1, 1}, {1, 4});
  s.consume(mwr(64));
  EXPECT_FALSE(s.can_send(mwr(8)));
  EXPECT_TRUE(s.can_send(mrd()));  // non-posted pool untouched
}

}  // namespace
}  // namespace bb::pcie
