#include "pcie/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bb::pcie {
namespace {

using namespace bb::literals;

Tlp pio_post(std::uint64_t msg_id) {
  Tlp t;
  t.type = TlpType::kMemWrite;
  t.bytes = 64;
  DescriptorWrite dw;
  dw.md.msg_id = msg_id;
  dw.md.payload_bytes = 8;
  t.content = dw;
  return t;
}

TEST(LinkParams, LatencyIsAffineInBytes) {
  LinkParams p;
  EXPECT_NEAR(p.tlp_latency(0).to_ns(), p.base_latency_ns, 1e-9);
  EXPECT_NEAR(p.tlp_latency(64).to_ns(), p.base_latency_ns + 64 * p.per_byte_ns,
              1e-9);
}

TEST(LinkParams, MeasuredPcieMatchesPaperCalibration) {
  // The default link is calibrated so the paper's methodology (half the
  // MWr->Ack round trip) yields PCIe ~= 137.49 ns.
  LinkParams p;
  EXPECT_NEAR(p.measured_pcie_ns(), 137.49, 0.2);
}

TEST(Link, DownstreamDeliveryTiming) {
  sim::Simulator sim;
  LinkParams p;
  Link link(sim, p);
  double arrival = -1;
  link.set_b_tlp_handler([&](const Tlp&) { arrival = sim.now().to_ns(); });
  link.send_downstream(pio_post(1));
  sim.run();
  EXPECT_NEAR(arrival, p.tlp_latency(64).to_ns(), 1e-6);
}

TEST(Link, AutoAckReachesSenderSide) {
  sim::Simulator sim;
  LinkParams p;
  Link link(sim, p);
  link.set_b_tlp_handler([](const Tlp&) {});
  std::vector<DllpType> a_dllps;
  link.set_a_dllp_handler([&](const Dllp& d) { a_dllps.push_back(d.type); });
  link.send_downstream(pio_post(1));
  sim.run();
  ASSERT_EQ(a_dllps.size(), 1u);
  EXPECT_EQ(a_dllps[0], DllpType::kAck);
}

TEST(Link, SerializationLimitsBackToBackThroughput) {
  sim::Simulator sim;
  LinkParams p;
  Link link(sim, p);
  std::vector<double> arrivals;
  link.set_b_tlp_handler([&](const Tlp&) {
    arrivals.push_back(sim.now().to_ns());
  });
  for (int i = 0; i < 3; ++i) link.send_downstream(pio_post(i));
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  const double gap = p.serialize(64).to_ns();
  EXPECT_NEAR(arrivals[1] - arrivals[0], gap, 1e-6);
  EXPECT_NEAR(arrivals[2] - arrivals[1], gap, 1e-6);
}

TEST(Link, PostedOrderingPreserved) {
  // A small TLP after a big one must not overtake it.
  sim::Simulator sim;
  LinkParams p;
  p.per_byte_ns = 1.0;  // exaggerate size-dependent latency
  Link link(sim, p);
  std::vector<std::uint32_t> sizes;
  link.set_b_tlp_handler([&](const Tlp& t) { sizes.push_back(t.bytes); });
  Tlp big = pio_post(1);
  big.bytes = 256;
  Tlp small = pio_post(2);
  small.bytes = 8;
  link.send_downstream(big);
  link.send_downstream(small);
  sim.run();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 256u);
  EXPECT_EQ(sizes[1], 8u);
}

TEST(Link, UpstreamTapRecordsAtDeparture) {
  sim::Simulator sim;
  Analyzer tap;
  LinkParams p;
  Link link(sim, p, &tap);
  link.set_a_tlp_handler([](const Tlp&) {});
  sim.call_at(100_ns, [&] {
    Tlp t;
    t.type = TlpType::kMemWrite;
    t.bytes = 64;
    link.send_upstream(t);
  });
  sim.run();
  const auto ups = tap.trace().upstream_writes();
  ASSERT_EQ(ups.size(), 1u);
  EXPECT_NEAR(ups[0].t.to_ns(), 100.0, 1e-9);  // departure, not arrival
}

TEST(Link, DownstreamTapRecordsAtArrival) {
  sim::Simulator sim;
  Analyzer tap;
  LinkParams p;
  Link link(sim, p, &tap);
  link.set_b_tlp_handler([](const Tlp&) {});
  link.send_downstream(pio_post(7));
  sim.run();
  const auto downs = tap.trace().downstream_writes();
  ASSERT_EQ(downs.size(), 1u);
  EXPECT_NEAR(downs[0].t.to_ns(), p.tlp_latency(64).to_ns(), 1e-6);
  EXPECT_EQ(downs[0].msg_id, 7u);
}

TEST(Link, MeasuredRoundTripMatchesMethodology) {
  // Reproduce §4.3's PCIe measurement end to end: NIC-initiated MWr
  // (upstream) followed by the RC's Ack DLLP, both timestamped at the tap;
  // half the span must equal LinkParams::measured_pcie_ns().
  sim::Simulator sim;
  Analyzer tap;
  LinkParams p;
  Link link(sim, p, &tap);
  link.set_a_tlp_handler([](const Tlp&) {});
  Tlp cqe;
  cqe.type = TlpType::kMemWrite;
  cqe.bytes = 64;
  cqe.content = CqeWrite{0, 1, 1};
  link.send_upstream(cqe);
  sim.run();

  const auto mwrs = tap.trace().filter([](const TraceRecord& r) {
    return !r.is_dllp && r.dir == Direction::kUpstream;
  });
  const auto acks = tap.trace().filter([](const TraceRecord& r) {
    return r.is_dllp && r.dir == Direction::kDownstream &&
           r.dllp_type == DllpType::kAck;
  });
  ASSERT_EQ(mwrs.size(), 1u);
  ASSERT_EQ(acks.size(), 1u);
  const double round_trip = (acks[0].t - mwrs[0].t).to_ns();
  EXPECT_NEAR(round_trip / 2.0, p.measured_pcie_ns(), 1e-6);
}

}  // namespace
}  // namespace bb::pcie
