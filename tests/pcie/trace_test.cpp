#include "pcie/trace.hpp"

#include <gtest/gtest.h>

namespace bb::pcie {
namespace {

using namespace bb::literals;

Tlp make_tlp(TlpType type, Direction dir, std::uint32_t bytes,
             std::uint64_t msg_id = 0) {
  Tlp t;
  t.type = type;
  t.dir = dir;
  t.bytes = bytes;
  if (msg_id != 0) {
    DescriptorWrite dw;
    dw.md.msg_id = msg_id;
    t.content = dw;
  }
  return t;
}

TEST(Trace, RecordsCarryMsgIdAndKind) {
  Trace tr;
  tr.record_tlp(10_ns, make_tlp(TlpType::kMemWrite, Direction::kDownstream,
                                64, 42));
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr.records()[0].msg_id, 42u);
  EXPECT_EQ(tr.records()[0].kind, "PIO-MD");
}

TEST(Trace, DownstreamWritesFiltersDirectionTypeAndSize) {
  Trace tr;
  tr.record_tlp(1_ns, make_tlp(TlpType::kMemWrite, Direction::kDownstream, 64));
  tr.record_tlp(2_ns, make_tlp(TlpType::kMemWrite, Direction::kUpstream, 64));
  tr.record_tlp(3_ns, make_tlp(TlpType::kMemRead, Direction::kDownstream, 0));
  tr.record_dllp(4_ns, Direction::kDownstream, Dllp{});
  const auto down = tr.downstream_writes();
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].t, 1_ns);
  const auto up = tr.upstream_writes();
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].t, 2_ns);
}

TEST(Trace, DeltasComputeConsecutiveGaps) {
  Trace tr;
  for (double t : {100.0, 382.0, 665.0, 947.0}) {
    tr.record_tlp(TimePs::from_ns(t),
                  make_tlp(TlpType::kMemWrite, Direction::kDownstream, 64));
  }
  const Samples deltas = Trace::deltas(tr.downstream_writes());
  ASSERT_EQ(deltas.size(), 3u);
  EXPECT_NEAR(deltas.values_ns()[0], 282.0, 1e-9);
  EXPECT_NEAR(deltas.values_ns()[1], 283.0, 1e-9);
  EXPECT_NEAR(deltas.values_ns()[2], 282.0, 1e-9);
}

TEST(Trace, SpansPairsFirstLaterRecord) {
  Trace tr;
  // "ping" downstream at 0, "completion" upstream at 900; next pair at
  // 1000/1900.
  tr.record_tlp(0_ns, make_tlp(TlpType::kMemWrite, Direction::kDownstream, 64));
  tr.record_tlp(900_ns, make_tlp(TlpType::kMemWrite, Direction::kUpstream, 64));
  tr.record_tlp(1000_ns,
                make_tlp(TlpType::kMemWrite, Direction::kDownstream, 64));
  tr.record_tlp(1900_ns,
                make_tlp(TlpType::kMemWrite, Direction::kUpstream, 64));
  const Samples spans =
      Trace::spans(tr.downstream_writes(), tr.upstream_writes());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NEAR(spans.values_ns()[0], 900.0, 1e-9);
  EXPECT_NEAR(spans.values_ns()[1], 900.0, 1e-9);
}

TEST(Trace, SpansByMsgIdMatchesAcrossInterleaving) {
  Trace tr;
  tr.record_tlp(0_ns, make_tlp(TlpType::kMemWrite, Direction::kDownstream, 64, 1));
  tr.record_tlp(10_ns, make_tlp(TlpType::kMemWrite, Direction::kDownstream, 64, 2));
  // Completions arrive out of order relative to posts.
  Tlp c2;
  c2.type = TlpType::kMemWrite;
  c2.dir = Direction::kUpstream;
  c2.bytes = 64;
  c2.content = CqeWrite{0, 2, 1};
  tr.record_tlp(500_ns, c2);
  Tlp c1 = c2;
  c1.content = CqeWrite{0, 1, 1};
  tr.record_tlp(600_ns, c1);
  const Samples spans =
      Trace::spans(tr.downstream_writes(), tr.upstream_writes(), true);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NEAR(spans.values_ns()[0], 600.0, 1e-9);  // msg 1: 0 -> 600
  EXPECT_NEAR(spans.values_ns()[1], 490.0, 1e-9);  // msg 2: 10 -> 500
}

TEST(Trace, RenderShowsFigSixStyleRows) {
  Trace tr;
  tr.record_tlp(282.33_ns,
                make_tlp(TlpType::kMemWrite, Direction::kDownstream, 64, 5));
  const std::string out = tr.render();
  EXPECT_NE(out.find("MWr"), std::string::npos);
  EXPECT_NE(out.find("down"), std::string::npos);
  EXPECT_NE(out.find("64"), std::string::npos);
  EXPECT_NE(out.find("282.33"), std::string::npos);
}

TEST(Trace, CsvExport) {
  Trace tr;
  tr.record_tlp(282.33_ns,
                make_tlp(TlpType::kMemWrite, Direction::kDownstream, 64, 5));
  tr.record_dllp(300_ns, Direction::kUpstream, Dllp{});
  const std::string csv = tr.to_csv();
  EXPECT_NE(csv.find("time_ns,dir,packet,bytes,kind,msg_id"),
            std::string::npos);
  EXPECT_NE(csv.find("282.330,down,MWr,64,PIO-MD,5"), std::string::npos);
  EXPECT_NE(csv.find("300.000,up,Ack,8"), std::string::npos);
}

TEST(Analyzer, DisabledCaptureRecordsNothing) {
  Analyzer a;
  a.set_enabled(false);
  a.on_tlp(1_ns, make_tlp(TlpType::kMemWrite, Direction::kDownstream, 64));
  EXPECT_EQ(a.trace().size(), 0u);
  a.set_enabled(true);
  a.on_tlp(2_ns, make_tlp(TlpType::kMemWrite, Direction::kDownstream, 64));
  EXPECT_EQ(a.trace().size(), 1u);
}

}  // namespace
}  // namespace bb::pcie
