#include "pcie/root_complex.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bb::pcie {
namespace {

using namespace bb::literals;

struct RcFixture {
  sim::Simulator sim;
  Link link{sim, LinkParams{}};
  RcParams params{};
  RootComplex rc{sim, link, params};
};

Tlp doorbell() {
  Tlp t;
  t.type = TlpType::kMemWrite;
  t.bytes = 8;
  t.content = DoorbellWrite{0, 1};
  return t;
}

TEST(RcParams, RcToMemCalibration) {
  RcParams p;
  // Table 1: RC-to-MEM(8B) = 240.96 ns.
  EXPECT_NEAR(p.rc_to_mem(8).to_ns(), 240.96, 1e-6);
  EXPECT_GT(p.rc_to_mem(64).to_ns(), p.rc_to_mem(8).to_ns());
}

TEST(RootComplex, ForwardsMmioDownstream) {
  RcFixture f;
  int delivered = 0;
  f.link.set_b_tlp_handler([&](const Tlp& t) {
    EXPECT_EQ(t.bytes, 8u);
    ++delivered;
  });
  f.rc.post_mmio(doorbell());
  f.sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(f.rc.mmio_issued(), 1u);
}

TEST(RootComplex, CommitsUpstreamWriteAfterRcToMem) {
  RcFixture f;
  f.link.set_b_tlp_handler([](const Tlp&) {});
  double visible = -1;
  f.rc.set_memory_sink([&](const Tlp&, TimePs at) { visible = at.to_ns(); });
  Tlp up;
  up.type = TlpType::kMemWrite;
  up.bytes = 8;
  up.content = PayloadWrite{1, 0, 8, 0, WireOp::kRdmaWrite};
  f.link.send_upstream(up);
  f.sim.run();
  const double arrival = f.link.params().tlp_latency(8).to_ns();
  EXPECT_NEAR(visible, arrival + 240.96, 1e-6);
  EXPECT_EQ(f.rc.mem_writes_committed(), 1u);
}

TEST(RootComplex, ServesDmaReadWithCplD) {
  RcFixture f;
  f.rc.set_read_provider([](const ReadRequest& req) {
    ReadCompletion rc;
    rc.what = req.what;
    rc.bytes = 64;
    rc.md.msg_id = 77;
    return rc;
  });
  std::vector<Tlp> at_b;
  f.link.set_b_tlp_handler([&](const Tlp& t) { at_b.push_back(t); });

  Tlp rd;
  rd.type = TlpType::kMemRead;
  rd.tag = 9;
  ReadRequest req;
  req.what = ReadRequest::What::kDescriptor;
  req.bytes = 64;
  rd.content = req;
  f.link.send_upstream(rd);
  f.sim.run();

  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].type, TlpType::kCompletionData);
  EXPECT_EQ(at_b[0].tag, 9u);
  const auto* rc = std::get_if<ReadCompletion>(&at_b[0].content);
  ASSERT_NE(rc, nullptr);
  EXPECT_EQ(rc->md.msg_id, 77u);
}

TEST(RootComplex, ReturnsCreditsForProcessedUpstreamTlps) {
  RcFixture f;
  f.rc.set_memory_sink([](const Tlp&, TimePs) {});
  std::vector<Dllp> at_b;
  f.link.set_b_dllp_handler([&](const Dllp& d) {
    if (d.type == DllpType::kUpdateFC) at_b.push_back(d);
  });
  Tlp up;
  up.type = TlpType::kMemWrite;
  up.bytes = 64;
  up.content = CqeWrite{0, 1, 1};
  f.link.send_upstream(up);
  f.sim.run();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].credit_class, CreditClass::kPosted);
  EXPECT_EQ(at_b[0].header_credits, 1u);
  EXPECT_EQ(at_b[0].data_credits, 4u);
}

TEST(RootComplex, StallsWhenCreditsExhaustedAndResumesOnUpdateFC) {
  sim::Simulator sim;
  Link link(sim, LinkParams{});
  // Room for exactly one 64 B posted write.
  auto credits = CreditState::with_budget({1, 4}, {1, 1}, {1, 4});
  RootComplex rc(sim, link, RcParams{}, credits);
  std::vector<double> arrivals;
  link.set_b_tlp_handler([&](const Tlp&) {
    arrivals.push_back(sim.now().to_ns());
  });

  Tlp pio;
  pio.type = TlpType::kMemWrite;
  pio.bytes = 64;
  pio.content = DescriptorWrite{};
  rc.post_mmio(pio);
  rc.post_mmio(pio);  // must stall until credits return

  // The NIC side returns credits at t = 3000 ns.
  sim.call_at(3000_ns, [&] {
    Dllp fc;
    fc.type = DllpType::kUpdateFC;
    fc.credit_class = CreditClass::kPosted;
    fc.header_credits = 1;
    fc.data_credits = 4;
    link.send_dllp_upstream(fc);
  });
  sim.run();

  ASSERT_EQ(arrivals.size(), 2u);
  const double l64 = link.params().tlp_latency(64).to_ns();
  EXPECT_NEAR(arrivals[0], l64, 1e-6);
  // Second write left only after the UpdateFC arrived (3000 + DLLP latency).
  const double fc_arrival = 3000.0 + link.params().dllp_latency().to_ns();
  EXPECT_NEAR(arrivals[1], fc_arrival + l64, 1.0);
  EXPECT_GE(rc.credit_stalls(), 1u);
}

}  // namespace
}  // namespace bb::pcie
