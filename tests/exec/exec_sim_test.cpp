// Simulation-level guarantees of bb::exec: running whole simulators as
// jobs reproduces the determinism goldens bit-for-bit at any thread
// count, and two simulators on two raw threads share no state (the
// ThreadSanitizer target -- see the tsan job in ci.yml).

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "benchlib/am_lat.hpp"
#include "benchlib/osu_coll.hpp"
#include "benchlib/put_bw.hpp"
#include "exec/sweep.hpp"
#include "pcie/trace.hpp"
#include "scenario/cluster.hpp"
#include "scenario/testbed.hpp"

namespace bb {
namespace {

// FNV-1a over the analyzer trace (same mix as the determinism goldens).
std::uint64_t trace_checksum(const pcie::Trace& tr) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& r : tr.records()) {
    mix(static_cast<std::uint64_t>(r.t.ps()));
    mix(static_cast<std::uint64_t>(r.dir));
    mix(static_cast<std::uint64_t>(r.is_dllp));
    mix(static_cast<std::uint64_t>(r.tlp_type));
    mix(static_cast<std::uint64_t>(r.dllp_type));
    mix(r.bytes);
    mix(r.tag);
    mix(r.msg_id);
    for (char c : r.kind) {
      mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
  }
  return h;
}

using Fingerprint = std::tuple<std::uint64_t, std::int64_t, std::uint64_t>;

Fingerprint run_put_bw() {
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  bench::PutBwBenchmark b(
      tb, {.messages = 2000, .warmup = 200, .capture_trace = true});
  (void)b.run();
  return {tb.sim().events_processed(), tb.sim().now().ps(),
          trace_checksum(tb.analyzer().trace())};
}

Fingerprint run_am_lat() {
  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  bench::AmLatBenchmark b(
      tb, {.iterations = 500, .warmup = 50, .capture_trace = true});
  (void)b.run();
  return {tb.sim().events_processed(), tb.sim().now().ps(),
          trace_checksum(tb.analyzer().trace())};
}

Fingerprint run_allreduce() {
  scenario::Cluster cl(scenario::presets::thunderx2_cx4(), 8);
  cl.analyzer().set_enabled(true);
  coll::World world(cl);
  bench::OsuCollConfig cfg;
  cfg.bytes = 256;
  cfg.iterations = 20;
  cfg.warmup = 5;
  bench::OsuColl b(world, bench::OsuColl::Kind::kAllreduce, cfg);
  (void)b.run();
  return {cl.sim().events_processed(), cl.sim().now().ps(),
          trace_checksum(cl.analyzer().trace())};
}

// The exact constants from tests/integration/determinism_golden_test.cpp.
// Reproducing them from *inside pool workers* proves a parallel sweep
// computes the same simulation a serial run does -- not merely a
// self-consistent one.
const Fingerprint kPutBwGolden{54885u, 623024806, 0x4b310291a8770261ull};
const Fingerprint kAmLatGolden{155301u, 1319178710, 0x99a7aa2d313a960eull};
const Fingerprint kAllreduceGolden{74216u, 25006013113, 0x1c3fe29c0a532d44ull};

Fingerprint run_kind(std::size_t kind) {
  switch (kind) {
    case 0: return run_put_bw();
    case 1: return run_am_lat();
    default: return run_allreduce();
  }
}

TEST(ExecSim, ParallelMatchesSerialOnDeterminismGoldens) {
  // The same 6-job batch (each golden twice) at 1 and 4 threads.
  const auto body = [](exec::Job& job) { return run_kind(job.index() % 3); };
  const auto serial = exec::run(6, /*seed=*/42, body, {.jobs = 1});
  const auto parallel = exec::run(6, /*seed=*/42, body, {.jobs = 4});
  ASSERT_EQ(serial.values.size(), parallel.values.size());
  EXPECT_EQ(serial.values, parallel.values);
  EXPECT_EQ(serial.values[0], kPutBwGolden);
  EXPECT_EQ(serial.values[1], kAmLatGolden);
  EXPECT_EQ(serial.values[2], kAllreduceGolden);
  EXPECT_EQ(parallel.values[3], kPutBwGolden);
  EXPECT_EQ(parallel.values[4], kAmLatGolden);
  EXPECT_EQ(parallel.values[5], kAllreduceGolden);
}

TEST(ExecSim, JobStatsReflectSimulatorTotals) {
  const auto res = exec::run(
      2, /*seed=*/42,
      [](exec::Job& job) {
        scenario::Testbed tb(scenario::presets::thunderx2_cx4());
        bench::AmLatBenchmark b(tb, {.iterations = 100, .warmup = 10});
        (void)b.run();
        job.note_events(tb.sim().events_processed());
        job.note_sim_time_ps(tb.sim().now().ps());
        return 0;
      },
      {.jobs = 2});
  EXPECT_EQ(res.stats[0].events, res.stats[1].events);
  EXPECT_GT(res.stats[0].events, 0u);
  EXPECT_EQ(res.stats[0].sim_time_ps, res.stats[1].sim_time_ps);
  EXPECT_EQ(res.total_events(), res.stats[0].events * 2);
}

TEST(ExecSim, ErrorInOneSimJobCancelsAndPropagates) {
  struct SimFailure : std::runtime_error {
    using std::runtime_error::runtime_error;
  };
  try {
    (void)exec::run(
        8, /*seed=*/42,
        [](exec::Job& job) -> int {
          if (job.index() == 1) throw SimFailure("nic wedge");
          scenario::Testbed tb(scenario::presets::deterministic());
          bench::AmLatBenchmark b(tb, {.iterations = 20, .warmup = 2});
          (void)b.run();
          return 0;
        },
        {.jobs = 2});
    FAIL() << "expected SimFailure";
  } catch (const SimFailure& e) {
    EXPECT_STREQ(e.what(), "nic wedge");
  }
}

// The TSan stress target: two full simulators on two *raw* std::threads,
// no pool in between. Any shared mutable state anywhere under sim/,
// pcie/, nic/, llp/, scenario/ shows up here as a data race.
TEST(ExecSim, TwoSimulatorsOnTwoRawThreadsDontInterfere) {
  Fingerprint a{}, b{};
  std::thread ta([&a] { a = run_am_lat(); });
  std::thread tb([&b] { b = run_put_bw(); });
  ta.join();
  tb.join();
  EXPECT_EQ(a, kAmLatGolden);
  EXPECT_EQ(b, kPutBwGolden);
}

}  // namespace
}  // namespace bb
