// Pool semantics of bb::exec: ordered collection, deterministic seeds,
// oversubscription, error propagation, cancellation, and grid expansion.
// Everything here is simulation-free on purpose -- these properties must
// hold for any job body.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec.hpp"
#include "exec/sweep.hpp"

namespace bb::exec {
namespace {

TEST(Exec, ResultsArriveInGridOrderAtAnyThreadCount) {
  for (int jobs : {1, 2, 4, 7}) {
    const auto res = run(
        23, /*seed=*/1, [](Job& job) { return job.index() * 10; },
        {.jobs = jobs});
    ASSERT_EQ(res.values.size(), 23u);
    for (std::size_t i = 0; i < res.values.size(); ++i) {
      EXPECT_EQ(res.values[i], i * 10);
    }
    EXPECT_EQ(res.jobs, std::min(jobs, 23));
  }
}

TEST(Exec, SeedsAreAPureFunctionOfSweepSeedAndIndex) {
  const auto serial =
      run(16, /*seed=*/99, [](Job& job) { return job.seed(); }, {.jobs = 1});
  const auto parallel =
      run(16, /*seed=*/99, [](Job& job) { return job.seed(); }, {.jobs = 4});
  EXPECT_EQ(serial.values, parallel.values);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(serial.values[i], derive_seed(99, i));
  }
  // Distinct sweep seed => distinct job seeds.
  const auto other =
      run(16, /*seed=*/100, [](Job& job) { return job.seed(); }, {.jobs = 1});
  EXPECT_NE(serial.values, other.values);
}

TEST(Exec, ForkSeedMatchesDeriveSeedChain) {
  const auto res = run(
      4, /*seed=*/7, [](Job& job) { return job.fork_seed(3); }, {.jobs = 2});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(res.values[i], derive_seed(derive_seed(7, i), 3));
  }
}

TEST(Exec, OversubscriptionIsHarmless) {
  // Far more threads than jobs: pool clamps to the job count.
  const auto res =
      run(3, /*seed=*/5, [](Job& job) { return job.index(); }, {.jobs = 64});
  EXPECT_EQ(res.jobs, 3);
  ASSERT_EQ(res.values.size(), 3u);
  // And far more jobs than threads.
  const auto many =
      run(257, /*seed=*/5, [](Job& job) { return job.index(); }, {.jobs = 2});
  for (std::size_t i = 0; i < many.values.size(); ++i) {
    EXPECT_EQ(many.values[i], i);
  }
}

TEST(Exec, EveryJobRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(101);
  (void)run(
      hits.size(), /*seed=*/0,
      [&hits](Job& job) {
        hits[job.index()].fetch_add(1, std::memory_order_relaxed);
        return 0;
      },
      {.jobs = 4});
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Exec, LowestIndexErrorIsRethrown) {
  for (int jobs : {1, 2, 4}) {
    try {
      (void)run(
          8, /*seed=*/0,
          [](Job& job) -> int {
            if (job.index() == 2 || job.index() == 5) {
              throw std::runtime_error("job " + std::to_string(job.index()));
            }
            return 0;
          },
          {.jobs = jobs, .fail_fast = false});
      FAIL() << "expected an exception at jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      // fail_fast=false runs everything, so both errors are captured and
      // the lowest grid index must win deterministically.
      EXPECT_STREQ(e.what(), "job 2");
    }
  }
}

TEST(Exec, FailFastCancelsOutstandingJobs) {
  // Serial execution makes cancellation deterministic: job 0 throws, so
  // jobs 1..N never start.
  std::atomic<int> started{0};
  try {
    (void)run(
        10, /*seed=*/0,
        [&started](Job&) -> int {
          started.fetch_add(1);
          throw std::runtime_error("boom");
        },
        {.jobs = 1, .fail_fast = true});
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(started.load(), 1);
}

TEST(Exec, CancelledJobsAreMarkedNotRan) {
  // With fail_fast off every job runs even after failures.
  std::atomic<int> started{0};
  try {
    (void)run(
        6, /*seed=*/0,
        [&started](Job&) -> int {
          started.fetch_add(1);
          throw std::runtime_error("boom");
        },
        {.jobs = 2, .fail_fast = false});
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(started.load(), 6);
}

TEST(Exec, StatsRecordWorkerAndWallTime) {
  const auto res = run(
      6, /*seed=*/0,
      [](Job& job) {
        job.note_events(100 + job.index());
        job.note_sim_time_ps(7);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return 0;
      },
      {.jobs = 2});
  ASSERT_EQ(res.stats.size(), 6u);
  std::uint64_t events = 0;
  for (std::size_t i = 0; i < res.stats.size(); ++i) {
    EXPECT_TRUE(res.stats[i].ran);
    EXPECT_GE(res.stats[i].worker, 0);
    EXPECT_LT(res.stats[i].worker, 2);
    EXPECT_GT(res.stats[i].wall_ms, 0.0);
    EXPECT_EQ(res.stats[i].events, 100 + i);
    EXPECT_EQ(res.stats[i].sim_time_ps, 7);
    events += res.stats[i].events;
  }
  EXPECT_EQ(res.total_events(), events);
  EXPECT_GE(res.serial_ms(), 6.0);
  EXPECT_FALSE(res.summary().empty());
}

TEST(Sweep, GridExpandsRowMajorLastAxisFastest) {
  const auto pts = grid(std::vector<int>{4, 8}, std::vector<int>{1, 2, 3});
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_EQ(pts[0], std::make_tuple(4, 1));
  EXPECT_EQ(pts[1], std::make_tuple(4, 2));
  EXPECT_EQ(pts[2], std::make_tuple(4, 3));
  EXPECT_EQ(pts[3], std::make_tuple(8, 1));
  EXPECT_EQ(pts[5], std::make_tuple(8, 3));
}

TEST(Sweep, ThreeAxisGridOrderAndSize) {
  const auto pts =
      grid(std::vector<int>{0, 1}, std::vector<char>{'a', 'b'},
           std::vector<int>{5, 6});
  ASSERT_EQ(pts.size(), 8u);
  EXPECT_EQ(pts[0], std::make_tuple(0, 'a', 5));
  EXPECT_EQ(pts[1], std::make_tuple(0, 'a', 6));
  EXPECT_EQ(pts[2], std::make_tuple(0, 'b', 5));
  EXPECT_EQ(pts[7], std::make_tuple(1, 'b', 6));
}

TEST(Sweep, RunSweepMapsPointsToValuesInOrder) {
  const auto s = sweep<int>({3, 1, 4, 1, 5}, /*seed=*/11);
  for (int jobs : {1, 3}) {
    const auto res = run_sweep(
        s, [](const int& p, Job& job) { return p * 100 + int(job.index()); },
        {.jobs = jobs});
    ASSERT_EQ(res.values.size(), 5u);
    EXPECT_EQ(res.values[0], 300);
    EXPECT_EQ(res.values[2], 402);
    EXPECT_EQ(res.values[4], 504);
  }
}

TEST(Exec, DefaultJobsHonorsEnvironment) {
  EXPECT_GE(hardware_jobs(), 1);
  EXPECT_GE(default_jobs(), 1);
}

}  // namespace
}  // namespace bb::exec
