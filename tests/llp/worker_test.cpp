#include "llp/worker.hpp"

#include <gtest/gtest.h>

#include "llp/endpoint.hpp"
#include "scenario/testbed.hpp"

namespace bb::llp {
namespace {

using scenario::Testbed;
using namespace bb::literals;

TEST(Worker, EmptyProgressCostsEmptyPass) {
  Testbed tb(scenario::presets::deterministic());
  tb.add_endpoint(0);
  tb.sim().spawn([](Testbed::Node& n) -> sim::Task<void> {
    const std::uint32_t got = co_await n.worker.progress();
    EXPECT_EQ(got, 0u);
    EXPECT_NEAR(n.core.virtual_now().to_ns(),
                n.core.costs().llp_empty_progress.mean_ns, 1e-6);
  }(tb.node(0)));
  tb.sim().run();
}

TEST(Worker, EachDequeuedCqeCostsLlpProg) {
  Testbed tb(scenario::presets::deterministic());
  auto& ep = tb.add_endpoint(0);
  // Inject two CQEs directly into the TX CQ at time zero.
  tb.node(0).host.tx_cq(ep.config().qp).push(nic::Cqe{1, 1, 0, 0, 0_ns});
  tb.node(0).host.tx_cq(ep.config().qp).push(nic::Cqe{2, 1, 0, 0, 0_ns});
  tb.sim().spawn([](Testbed::Node& n, Endpoint& e) -> sim::Task<void> {
    // Make the endpoint accounting consistent with the injected CQEs.
    (void)co_await e.put_short(8);
    (void)co_await e.put_short(8);
    const double t0 = n.core.virtual_now().to_ns();
    const std::uint32_t got = co_await n.worker.progress();
    EXPECT_EQ(got, 2u);
    EXPECT_NEAR(n.core.virtual_now().to_ns() - t0, 2 * 61.63, 1e-6);
  }(tb.node(0), ep));
  tb.sim().run();
}

TEST(Worker, BatchLimitBoundsDequeues) {
  auto cfg = scenario::presets::deterministic();
  cfg.llp_worker.batch_limit = 16;
  Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  for (int i = 0; i < 5; ++i) {
    tb.node(0).host.tx_cq(ep.config().qp).push(
        nic::Cqe{static_cast<std::uint64_t>(i + 1), 1, 0, 0, 0_ns});
  }
  tb.sim().spawn([](Testbed::Node& n, Endpoint& e) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) (void)co_await e.put_short(8);
    EXPECT_EQ(co_await n.worker.progress(2), 2u);
    EXPECT_EQ(co_await n.worker.progress(2), 2u);
    EXPECT_EQ(co_await n.worker.progress(2), 1u);
  }(tb.node(0), ep));
  tb.sim().run();
}

TEST(Worker, RxHandlerInvokedPerReceiveCompletion) {
  Testbed tb(scenario::presets::deterministic());
  tb.add_endpoint(0);
  std::vector<std::uint64_t> seen;
  tb.node(0).worker.set_rx_handler(
      [&](const nic::Cqe& c) { seen.push_back(c.msg_id); });
  tb.node(0).host.rx_cq().push(nic::Cqe{21, 1, 0, 0, 0_ns});
  tb.node(0).host.rx_cq().push(nic::Cqe{22, 1, 0, 0, 0_ns});
  tb.sim().spawn([](Testbed::Node& n) -> sim::Task<void> {
    (void)co_await n.worker.progress();
  }(tb.node(0)));
  tb.sim().run();
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{21, 22}));
  EXPECT_EQ(tb.node(0).worker.rx_completions(), 2u);
}

TEST(Worker, InvisibleCqesNotDequeued) {
  Testbed tb(scenario::presets::deterministic());
  auto& ep = tb.add_endpoint(0);
  tb.node(0).host.tx_cq(ep.config().qp).push(nic::Cqe{1, 1, 0, 0, 10_us});
  tb.sim().spawn([](Testbed::Node& n, Endpoint& e) -> sim::Task<void> {
    (void)co_await e.put_short(8);
    EXPECT_EQ(co_await n.worker.progress(), 0u);
  }(tb.node(0), ep));
  tb.sim().run();
}

TEST(Worker, MsgIdsAreUniqueAndMonotonic) {
  Testbed tb(scenario::presets::deterministic());
  auto& w = tb.node(0).worker;
  const auto a = w.alloc_msg_id();
  const auto b = w.alloc_msg_id();
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace bb::llp
