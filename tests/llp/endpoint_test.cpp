#include "llp/endpoint.hpp"

#include <gtest/gtest.h>

#include "scenario/testbed.hpp"

namespace bb::llp {
namespace {

using scenario::Testbed;
using namespace bb::literals;

TEST(Endpoint, PostCostsExactlyLlpPost) {
  Testbed tb(scenario::presets::deterministic());
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn([](Testbed::Node& n, Endpoint& e) -> sim::Task<void> {
    EXPECT_EQ(co_await e.put_short(8), Status::kOk);
    // Table 1: LLP_post = 175.42 ns of CPU work, all flushed by the post.
    EXPECT_NEAR(n.core.virtual_now().to_ns(), 175.42, 1e-6);
  }(tb.node(0), ep));
  tb.sim().run();
}

TEST(Endpoint, EightBytePayloadIsOnePioChunk) {
  Testbed tb(scenario::presets::deterministic());
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn([](Endpoint& e) -> sim::Task<void> {
    (void)co_await e.put_short(8);
  }(ep));
  tb.sim().run();
  const auto posts = tb.analyzer().trace().downstream_writes();
  ASSERT_EQ(posts.size(), 1u);
  // "The PIO copy of an 8-byte message is one 64-byte chunk" (§4.1).
  EXPECT_EQ(posts[0].bytes, 64u);
}

TEST(Endpoint, LargerPayloadUsesMorePioChunks) {
  Testbed tb(scenario::presets::deterministic());
  auto cfg = tb.config().endpoint;
  cfg.max_inline_bytes = 256;
  auto& ep = tb.add_endpoint(0, cfg);
  double t_small = 0, t_big = 0;
  tb.sim().spawn([](Testbed::Node& n, Endpoint& e, double& small,
                    double& big) -> sim::Task<void> {
    const double t0 = n.core.virtual_now().to_ns();
    (void)co_await e.put_short(8);
    small = n.core.virtual_now().to_ns() - t0;
    (void)co_await e.put_short(128);  // 32 B MD overhead + 128 B = 3 chunks
    big = n.core.virtual_now().to_ns() - small - t0;
  }(tb.node(0), ep, t_small, t_big));
  tb.sim().run();
  // Two extra 94.25 ns PIO chunks.
  EXPECT_NEAR(t_big - t_small, 2 * 94.25, 1e-6);
  const auto posts = tb.analyzer().trace().downstream_writes();
  ASSERT_EQ(posts.size(), 2u);
  EXPECT_EQ(posts[0].bytes, 64u);
  EXPECT_EQ(posts[1].bytes, 192u);
}

TEST(Endpoint, BusyPostWhenTxqFull) {
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.txq_depth = 2;
  Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn([](Testbed::Node& n, Endpoint& e) -> sim::Task<void> {
    EXPECT_EQ(co_await e.put_short(8), Status::kOk);
    EXPECT_EQ(co_await e.put_short(8), Status::kOk);
    const double before = n.core.virtual_now().to_ns();
    EXPECT_EQ(co_await e.put_short(8), Status::kNoResource);
    // The busy post costs only the early-exit time (Table 1: 8.99 ns).
    EXPECT_NEAR(n.core.virtual_now().to_ns() - before, 8.99, 1e-6);
    EXPECT_EQ(e.busy_posts(), 1u);
    EXPECT_EQ(e.outstanding(), 2u);
  }(tb.node(0), ep));
  tb.sim().run();
}

TEST(Endpoint, BusyPostClearsAfterProgress) {
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.txq_depth = 1;
  Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn([](Testbed::Node& n, Endpoint& e) -> sim::Task<void> {
    EXPECT_EQ(co_await e.put_short(8), Status::kOk);
    EXPECT_EQ(co_await e.put_short(8), Status::kNoResource);
    while (e.outstanding() > 0) co_await n.worker.progress();
    EXPECT_EQ(co_await e.put_short(8), Status::kOk);
  }(tb.node(0), ep));
  tb.sim().run();
  EXPECT_EQ(ep.posted(), 2u);
}

TEST(Endpoint, SignalPolicyMarksEveryNth) {
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.signal.period = 3;
  Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn([](Testbed::Node& n, Endpoint& e) -> sim::Task<void> {
    for (int i = 0; i < 6; ++i) (void)co_await e.put_short(8);
    while (e.outstanding() > 0) co_await n.worker.progress();
  }(tb.node(0), ep));
  tb.sim().run();
  EXPECT_EQ(tb.node(0).nic.cqes_written(), 2u);
}

TEST(Endpoint, TxRetireHandlerObservesCounts) {
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.signal.period = 4;
  Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  std::vector<std::uint32_t> retires;
  ep.set_tx_retire_handler([&](std::uint32_t k) { retires.push_back(k); });
  tb.sim().spawn([](Testbed::Node& n, Endpoint& e) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) (void)co_await e.put_short(8);
    while (e.outstanding() > 0) co_await n.worker.progress();
  }(tb.node(0), ep));
  tb.sim().run();
  EXPECT_EQ(retires, (std::vector<std::uint32_t>{4}));
}

TEST(Endpoint, FlushRetiresUnsignaledTail) {
  // 5 ops at period 4: op 4 is signalled, op 5 would hang a drain loop
  // without the flush's forced-signal no-op.
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.signal.period = 4;
  Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn([](Testbed::Node& n, Endpoint& e) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) (void)co_await e.put_short(8);
    EXPECT_EQ(co_await e.flush(), Status::kOk);
    while (e.outstanding() > 0) co_await n.worker.progress();
  }(tb.node(0), ep));
  tb.sim().run();
  EXPECT_EQ(ep.posted(), 6u);  // 5 data ops + the flush no-op
  EXPECT_EQ(tb.node(0).nic.cqes_written(), 2u);
  EXPECT_EQ(tb.node(0).worker.tx_ops_retired(), 6u);
}

TEST(Endpoint, FlushIsNoopWhenIdle) {
  Testbed tb(scenario::presets::deterministic());
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn([](Endpoint& e) -> sim::Task<void> {
    EXPECT_EQ(co_await e.flush(), Status::kOk);
    EXPECT_EQ(e.posted(), 0u);
  }(ep));
  tb.sim().run();
}

TEST(Endpoint, ProfiledSubstepsMatchFig4Constituents) {
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.profile_level = 2;
  Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn([](Endpoint& e) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) (void)co_await e.put_short(8);
  }(ep));
  tb.sim().run();
  auto& prof = tb.node(0).profiler;
  EXPECT_NEAR(prof.mean_ns("MD setup"), 27.78, 1e-6);
  EXPECT_NEAR(prof.mean_ns("Barrier for MD"), 17.33, 1e-6);
  EXPECT_NEAR(prof.mean_ns("Barrier for DBC"), 21.07, 1e-6);
  EXPECT_NEAR(prof.mean_ns("PIO copy"), 94.25, 1e-6);
  EXPECT_NEAR(prof.mean_ns("Other"), 14.99, 1e-6);
}

TEST(Endpoint, ProfiledTotalMatchesTable1) {
  auto cfg = scenario::presets::deterministic();
  cfg.endpoint.profile_level = 1;
  Testbed tb(cfg);
  auto& ep = tb.add_endpoint(0);
  tb.sim().spawn([](Endpoint& e) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) (void)co_await e.put_short(8);
  }(ep));
  tb.sim().run();
  EXPECT_NEAR(tb.node(0).profiler.mean_ns("LLP_post"), 175.42, 1e-6);
}

}  // namespace
}  // namespace bb::llp
