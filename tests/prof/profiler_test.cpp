#include "prof/profiler.hpp"

#include <gtest/gtest.h>

namespace bb::prof {
namespace {

using namespace bb::literals;

cpu::CpuCostModel deterministic_model() {
  cpu::CpuCostModel m;
  m.strip_jitter();
  return m;
}

struct Fixture {
  sim::Simulator sim;
  cpu::Core core;
  Profiler prof;
  explicit Fixture(cpu::CpuCostModel m) : core(sim, m), prof(core) {}
};

TEST(Profiler, CompensatedDurationMatchesRegionWork) {
  Fixture f(deterministic_model());
  auto r = f.prof.begin("work");
  f.core.consume(175.42_ns);
  f.prof.end(r);
  // With deterministic overhead, compensation is exact.
  EXPECT_NEAR(f.prof.mean_ns("work"), 175.42, 1e-6);
}

TEST(Profiler, PerturbsTimelineByOneOverheadPerRegion) {
  Fixture f(deterministic_model());
  auto r = f.prof.begin("work");
  f.core.consume(100_ns);
  f.prof.end(r);
  // Region work + one full timer overhead landed on the core.
  EXPECT_NEAR(f.core.virtual_now().to_ns(), 100.0 + 49.69, 1e-6);
}

TEST(Profiler, DisabledCostsAndRecordsNothing) {
  Fixture f(deterministic_model());
  f.prof.set_enabled(false);
  auto r = f.prof.begin("work");
  f.core.consume(100_ns);
  f.prof.end(r);
  EXPECT_NEAR(f.core.virtual_now().to_ns(), 100.0, 1e-9);
  EXPECT_FALSE(f.prof.has("work"));
}

TEST(Profiler, NestedRegionsInnerInflatesOuterRaw) {
  // The outer region's raw span contains the inner region's overhead --
  // the reason §3 measures one component at a time. Here the outer mean
  // exceeds inner work + outer work by exactly one extra overhead.
  Fixture f(deterministic_model());
  auto outer = f.prof.begin("outer");
  f.core.consume(50_ns);
  auto inner = f.prof.begin("inner");
  f.core.consume(30_ns);
  f.prof.end(inner);
  f.prof.end(outer);
  EXPECT_NEAR(f.prof.mean_ns("inner"), 30.0, 1e-6);
  EXPECT_NEAR(f.prof.mean_ns("outer"), 80.0 + 49.69, 1e-6);
}

TEST(Profiler, NoisyOverheadCompensationIsUnbiased) {
  cpu::CpuCostModel m;
  m.strip_jitter();
  m.timer_read = cpu::CostSpec{49.69, 1.48 / 49.69, 0.0, 0.0};  // paper §3
  Fixture f(m);
  for (int i = 0; i < 2000; ++i) {
    auto r = f.prof.begin("work");
    f.core.consume(100_ns);
    f.prof.end(r);
  }
  const Summary s = f.prof.samples("work").summarize();
  EXPECT_NEAR(s.mean, 100.0, 0.15);   // unbiased
  EXPECT_NEAR(s.stddev, 1.48, 0.35);  // residual = timer noise
}

TEST(Profiler, RecordNsForDerivedComponents) {
  Fixture f(deterministic_model());
  f.prof.record_ns("MPICH (derived)", 24.37);
  f.prof.record_ns("MPICH (derived)", 24.37);
  EXPECT_NEAR(f.prof.mean_ns("MPICH (derived)"), 24.37, 1e-9);
}

TEST(Profiler, ReportListsRegions) {
  Fixture f(deterministic_model());
  auto r = f.prof.begin("LLP_post");
  f.core.consume(175.42_ns);
  f.prof.end(r);
  const std::string rep = f.prof.report();
  EXPECT_NE(rep.find("LLP_post"), std::string::npos);
  EXPECT_NE(rep.find("175.42"), std::string::npos);
}

TEST(Profiler, OverheadMeanExposed) {
  Fixture f(deterministic_model());
  EXPECT_NEAR(f.prof.overhead_mean_ns(), 49.69, 1e-9);
}

TEST(Profiler, SnapshotDetachesFromLiveProfiler) {
  Fixture f(deterministic_model());
  f.prof.record_ns("LLP_post", 175.0);
  f.prof.note_count("posts", 3);
  const ProfileData snap = f.prof.snapshot();
  f.prof.clear();
  EXPECT_FALSE(f.prof.has("LLP_post"));
  EXPECT_EQ(snap.regions.at("LLP_post").summarize().count, 1u);
  EXPECT_EQ(snap.counters.at("posts"), 3u);
}

TEST(ProfileData, MergeAppendsRegionsAndAddsCounters) {
  // The bb::exec aggregation path: per-job snapshots folded in grid
  // order into one report.
  Fixture a(deterministic_model());
  a.prof.record_ns("LLP_post", 100.0);
  a.prof.record_ns("LLP_post", 200.0);
  a.prof.note_count("posts", 2);
  Fixture b(deterministic_model());
  b.prof.record_ns("LLP_post", 300.0);
  b.prof.record_ns("LLP_prog", 60.0);
  b.prof.note_count("posts", 1);
  b.prof.note_count("polls", 5);

  ProfileData total = a.prof.snapshot();
  total.merge(b.prof.snapshot());
  EXPECT_EQ(total.regions.at("LLP_post").summarize().count, 3u);
  EXPECT_NEAR(total.regions.at("LLP_post").summarize().mean, 200.0, 1e-9);
  EXPECT_EQ(total.regions.at("LLP_prog").summarize().count, 1u);
  EXPECT_EQ(total.counters.at("posts"), 3u);
  EXPECT_EQ(total.counters.at("polls"), 5u);
}

TEST(ProfileData, MergeOrderIsDeterministic) {
  // this-first, then other: merging A<-B and A'<-B' with identical
  // inputs yields identical sample order (what makes the parallel
  // aggregate bit-identical to the serial one).
  ProfileData a1, b1, a2, b2;
  a1.regions["r"].add_ns(1.0);
  b1.regions["r"].add_ns(2.0);
  a2.regions["r"].add_ns(1.0);
  b2.regions["r"].add_ns(2.0);
  a1.merge(b1);
  a2.merge(b2);
  EXPECT_EQ(a1.regions["r"].values_ns(), a2.regions["r"].values_ns());
  EXPECT_EQ(a1.report(), a2.report());
}

TEST(ProfileData, EmptyAndReport) {
  ProfileData d;
  EXPECT_TRUE(d.empty());
  d.counters["faults"] = 7;
  EXPECT_FALSE(d.empty());
  const std::string rep = d.report();
  EXPECT_NE(rep.find("faults"), std::string::npos);
}

}  // namespace
}  // namespace bb::prof
