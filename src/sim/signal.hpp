#pragma once
// Broadcast synchronization primitives.
//
// `Signal` is a resettable broadcast event: any number of processes can
// `co_await sig.wait()`; a `fire()` wakes all of them. Used for e.g. "a
// completion landed in the CQ" notifications where polling loops want to
// sleep instead of spinning simulated time away.

#include <coroutine>
#include <vector>

#include "sim/simulator.hpp"

namespace bb::sim {

class Signal {
 public:
  explicit Signal(Simulator& sim) : sim_(&sim) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  /// Wakes every waiting process (at the current simulated time). Wake-ups
  /// go through the simulator's O(1) ready ring, in FIFO wait order.
  void fire() {
    for (auto h : waiters_) sim_->schedule_now(h);
    waiters_.clear();
  }

  std::size_t waiter_count() const { return waiters_.size(); }

  struct WaitAwaiter {
    Signal& sig;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sig.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  WaitAwaiter wait() { return WaitAwaiter{*this}; }

 private:
  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace bb::sim
