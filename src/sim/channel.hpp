#pragma once
// Message channels between simulation processes.
//
// `Channel<T>` is an unbounded FIFO: `send()` never blocks (hardware queues
// with finite depth model their own back-pressure explicitly, which is what
// the paper's busy-post semantics require); `co_await ch.receive()` blocks
// the receiving process until an item is available. Receivers are served in
// FIFO order and resumed through the simulator's ready ring at the current
// time, preserving global determinism.
//
// The receive path is allocation- and branch-lean: the awaiter holds the
// delivered item in an engaged union (no `std::optional` discriminant
// shuffling on the hot path), a send to a blocked receiver constructs the
// value directly into the awaiter's slot, and the wake-up goes through
// `Simulator::schedule_now` -- an O(1) ring push.

#include <coroutine>
#include <deque>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace bb::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(&sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T value) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.pop();
      w.awaiter->fill(std::move(value));
      sim_->schedule_now(w.h);
    } else {
      items_.push_back(std::move(value));
    }
  }

  std::size_t pending() const { return items_.size(); }
  bool has_waiters() const { return !waiters_.empty(); }

  class ReceiveAwaiter {
   public:
    explicit ReceiveAwaiter(Channel& ch) : ch_(ch) {}
    ReceiveAwaiter(const ReceiveAwaiter&) = delete;
    ReceiveAwaiter& operator=(const ReceiveAwaiter&) = delete;
    ~ReceiveAwaiter() {
      if (engaged_) value_.~T();
    }

    bool await_ready() {
      if (!ch_.items_.empty()) {
        fill(std::move(ch_.items_.front()));
        ch_.items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ch_.waiters_.push(Waiter{h, this});
    }
    T await_resume() {
      BB_ASSERT_MSG(engaged_, "channel resume without a value");
      return std::move(value_);
    }

    /// Constructs the delivered value in place (sender side).
    void fill(T&& v) {
      ::new (static_cast<void*>(&value_)) T(std::move(v));
      engaged_ = true;
    }

   private:
    Channel& ch_;
    union {
      T value_;  // constructed iff engaged_
    };
    bool engaged_ = false;
  };

  ReceiveAwaiter receive() { return ReceiveAwaiter(*this); }

  /// Non-blocking receive; returns nullopt when empty.
  std::optional<T> try_receive() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    ReceiveAwaiter* awaiter;
  };

  /// Power-of-two circular FIFO of blocked receivers: push/pop are an
  /// index mask and a 16-byte store, cheaper than `std::deque`'s segment
  /// bookkeeping on the ping-pong hot path.
  class WaiterQueue {
   public:
    bool empty() const { return count_ == 0; }
    void push(Waiter w) {
      if (count_ == v_.size()) grow();
      v_[(head_ + count_) & mask_] = w;
      ++count_;
    }
    Waiter pop() noexcept {
      const Waiter w = v_[head_ & mask_];
      head_ = (head_ + 1) & mask_;
      --count_;
      return w;
    }

   private:
    void grow() {
      const std::size_t cap = v_.empty() ? 8 : v_.size() * 2;
      std::vector<Waiter> bigger(cap);
      for (std::size_t i = 0; i < count_; ++i) {
        bigger[i] = v_[(head_ + i) & mask_];
      }
      v_ = std::move(bigger);
      head_ = 0;
      mask_ = cap - 1;
    }

    std::vector<Waiter> v_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t mask_ = 0;
  };

  Simulator* sim_;
  std::deque<T> items_;
  WaiterQueue waiters_;
};

}  // namespace bb::sim
