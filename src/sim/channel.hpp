#pragma once
// Message channels between simulation processes.
//
// `Channel<T>` is an unbounded FIFO: `send()` never blocks (hardware queues
// with finite depth model their own back-pressure explicitly, which is what
// the paper's busy-post semantics require); `co_await ch.receive()` blocks
// the receiving process until an item is available. Receivers are served in
// FIFO order and resumed through the simulator queue at the current time,
// preserving global determinism.

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace bb::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(&sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T value) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      *w.slot = std::move(value);
      sim_->schedule_at(sim_->now(), w.h);
    } else {
      items_.push_back(std::move(value));
    }
  }

  std::size_t pending() const { return items_.size(); }
  bool has_waiters() const { return !waiters_.empty(); }

  class ReceiveAwaiter {
   public:
    explicit ReceiveAwaiter(Channel& ch) : ch_(ch) {}
    bool await_ready() {
      if (!ch_.items_.empty()) {
        slot_ = std::move(ch_.items_.front());
        ch_.items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ch_.waiters_.push_back(Waiter{h, &slot_});
    }
    T await_resume() {
      BB_ASSERT_MSG(slot_.has_value(), "channel resume without a value");
      return std::move(*slot_);
    }

   private:
    Channel& ch_;
    std::optional<T> slot_;
  };

  ReceiveAwaiter receive() { return ReceiveAwaiter(*this); }

  /// Non-blocking receive; returns nullopt when empty.
  std::optional<T> try_receive() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    std::optional<T>* slot;
  };

  Simulator* sim_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

}  // namespace bb::sim
