#include "sim/simulator.hpp"

#include <cstdio>

namespace bb::sim {

namespace detail {

void notify_root_error(void* simulator, std::uint32_t root_index,
                       std::exception_ptr error) noexcept {
  static_cast<Simulator*>(simulator)->note_root_error(root_index,
                                                      std::move(error));
}

}  // namespace detail

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

Simulator::~Simulator() {
  // Destroy any still-suspended root frames. Nothing may be resumed after
  // this, so dangling waiter entries inside channels are harmless.
  for (auto& r : roots_) {
    if (r.handle) r.handle.destroy();
  }
  // Destroy the payloads of events that never ran (captured resources in
  // queued callbacks must still be released).
  drop_pending();
}

void Simulator::drop_pending() noexcept {
  // Destroy payloads of queued callback events; queued coroutine handles
  // are owned by their root frames and need no action here.
  const auto drop_item = [this](detail::EventItem item) {
    if (detail::item_is_node(item)) {
      detail::EventNode* n = detail::item_node(item);
      if (n->drop) n->drop(n);
      pool_.release(n);
    }
  };
  while (!ring_.empty()) drop_item(ring_.pop().item);
  while (!run_.empty()) drop_item(run_.pop());
  while (!heap_.empty()) drop_item(heap_.pop());
}

void Simulator::spawn(Task<void> task, std::string name) {
  auto h = task.release();
  BB_ASSERT_MSG(h, "cannot spawn an empty task");
  auto& promise = h.promise();
  promise.root_sim = this;
  promise.root_index = static_cast<std::uint32_t>(roots_.size());
  roots_.push_back(RootProcess{h, std::move(name)});
  schedule_at(now_, h);
}

void Simulator::note_root_error(std::uint32_t root_index,
                                std::exception_ptr error) noexcept {
  if (!root_error_) {
    root_error_ = std::move(error);
    root_error_index_ = root_index;
  }
}

void Simulator::rethrow_root_error() {
  // Surface exceptions from failed root processes immediately: a failed
  // process invalidates the whole timeline. The flag stays set, so any
  // further stepping keeps rethrowing.
  std::fprintf(stderr, "bb::sim: root process '%s' threw\n",
               roots_[root_error_index_].name.c_str());
  std::rethrow_exception(root_error_);
}

void Simulator::dispatch(TimePs t, detail::EventItem item) {
  now_ = t;
  ++events_processed_;
  if (event_limit_ != 0 && events_processed_ > event_limit_) {
    if (detail::item_is_node(item)) {
      detail::EventNode* n = detail::item_node(item);
      if (n->drop) n->drop(n);
      pool_.release(n);
    }
    throw EventLimitError(event_limit_);
  }
  if ((item & 3u) == 0) {
    detail::item_coro(item).resume();
  } else if (detail::item_is_fn(item)) {
    detail::item_fn(item)();
  } else {
    // Callback event: run the in-place callable; destroy the payload and
    // recycle the node even if it throws.
    detail::EventNode* n = detail::item_node(item);
    struct Guard {
      Simulator* sim;
      detail::EventNode* node;
      ~Guard() {
        if (node->drop) node->drop(node);
        sim->pool_.release(node);
      }
    } guard{this, n};
    n->invoke(n);
  }
  if (root_error_) [[unlikely]] {
    rethrow_root_error();
  }
}

// Pops the globally smallest (time, seq) event across the three sources.
// Ring entries all sit at `now_`; a run/heap entry ties with the ring head
// only when it was scheduled -- with a smaller seq -- before time advanced
// to `now_`, in which case it must run first to preserve global order.
bool Simulator::pick_next(TimePs& t, detail::EventItem& item) {
  // Future sources first: the monotone run and the timer heap, both keyed
  // by (time, seq).
  int src = 0;  // 0 = none, 1 = run, 2 = heap
  std::int64_t ft = 0;
  std::uint64_t fseq = 0;
  if (!run_.empty()) {
    ft = run_.front_time();
    fseq = run_.front_seq();
    src = 1;
  }
  if (!heap_.empty()) {
    const std::int64_t ht = heap_.top_time().ps();
    const std::uint64_t hseq = heap_.top_seq();
    if (src == 0 || ht < ft || (ht == ft && hseq < fseq)) {
      ft = ht;
      fseq = hseq;
      src = 2;
    }
  }
  if (!ring_.empty()) {
    if (src == 0 || ft > now_.ps() || fseq > ring_.head().seq) {
      t = now_;
      item = ring_.pop().item;
      return true;
    }
  } else if (src == 0) {
    return false;
  }
  t = TimePs(ft);
  item = (src == 1) ? run_.pop() : heap_.pop();
  return true;
}

bool Simulator::has_event_at_or_before(TimePs t) const {
  if (!ring_.empty()) return now_ <= t;
  if (!run_.empty() && TimePs(run_.front_time()) <= t) return true;
  if (!heap_.empty() && heap_.top_time() <= t) return true;
  return false;
}

bool Simulator::step_impl() {
  TimePs t;
  detail::EventItem item;
  if (!pick_next(t, item)) return false;
  dispatch(t, item);
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(TimePs t) {
  while (has_event_at_or_before(t)) {
    step();
  }
  if (now_ < t) now_ = t;
}

bool Simulator::run_while_pending(const std::function<bool()>& pred) {
  while (!pred()) {
    if (!step()) return false;
  }
  return true;
}

}  // namespace bb::sim
