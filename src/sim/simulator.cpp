#include "sim/simulator.hpp"

#include <cstdio>

namespace bb::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

Simulator::~Simulator() {
  // Destroy any still-suspended root frames. Nothing may be resumed after
  // this, so dangling waiter entries inside channels are harmless.
  for (auto& r : roots_) {
    if (r.handle) r.handle.destroy();
  }
}

void Simulator::schedule_at(TimePs t, std::coroutine_handle<> h) {
  BB_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, h, nullptr});
}

void Simulator::call_at(TimePs t, std::function<void()> fn) {
  BB_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, nullptr, std::move(fn)});
}

void Simulator::spawn(Task<void> task, std::string name) {
  auto h = task.release();
  BB_ASSERT_MSG(h, "cannot spawn an empty task");
  roots_.push_back(RootProcess{h, std::move(name)});
  schedule_at(now_, h);
}

void Simulator::dispatch(Event& ev) {
  now_ = ev.t;
  ++events_processed_;
  if (event_limit_ != 0 && events_processed_ > event_limit_) {
    BB_UNREACHABLE("simulator event limit exceeded (runaway process?)");
  }
  if (ev.h) {
    ev.h.resume();
    check_roots_for_errors();
  } else {
    ev.callback();
  }
}

void Simulator::check_roots_for_errors() {
  // Surface exceptions from completed root processes immediately: a failed
  // process invalidates the whole timeline.
  for (auto& r : roots_) {
    if (r.handle && r.handle.done()) {
      if (r.handle.promise().exception) {
        std::fprintf(stderr, "bb::sim: root process '%s' threw\n",
                     r.name.c_str());
        std::rethrow_exception(r.handle.promise().exception);
      }
    }
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  dispatch(ev);
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(TimePs t) {
  while (!queue_.empty() && queue_.top().t <= t) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  if (now_ < t) now_ = t;
}

bool Simulator::run_while_pending(const std::function<bool()>& pred) {
  while (!pred()) {
    if (!step()) return false;
  }
  return true;
}

}  // namespace bb::sim
