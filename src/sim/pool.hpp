#pragma once
// Size-bucketed recycler for coroutine frames.
//
// Simulation processes are short-lived coroutines spawned at very high
// rates (every `progress()` call and benchmark iteration creates frames).
// `detail::PromiseBase` routes frame allocation through this pool, so a
// frame released by one completed task is handed back, still cache-warm, to
// the next task of the same size class. Buckets are powers of two from 64 B
// to 8 KiB; larger frames (none exist in this codebase) fall through to the
// global allocator.
//
// The pool is thread-local: simulations are single-threaded by design, and
// per-thread lists make the pool safe if several simulators ever run on
// different threads concurrently.

#include <cstddef>
#include <cstdint>

namespace bb::sim::detail {

/// Allocates an `n`-byte coroutine frame (pool bucket or global new).
void* frame_alloc(std::size_t n);
/// Returns a frame to its bucket (or the global allocator).
void frame_free(void* p, std::size_t n) noexcept;

struct FramePoolStats {
  std::uint64_t fresh = 0;     // bucket allocations served by ::operator new
  std::uint64_t reused = 0;    // bucket allocations served by the free list
  std::uint64_t oversize = 0;  // frames beyond the largest bucket
};
/// Counters for this thread's pool (diagnostics and tests).
FramePoolStats frame_pool_stats() noexcept;

}  // namespace bb::sim::detail
