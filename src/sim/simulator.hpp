#pragma once
// The discrete-event simulator core.
//
// A `Simulator` advances a timeline of suspended coroutines and plain
// callbacks. Processes are `Task<void>` coroutines spawned as roots; they
// advance simulated time only by `co_await sim.delay(d)` or by blocking on
// synchronization primitives (`Channel`, `Signal`). Events with equal
// timestamps run in FIFO spawn order (a monotonically increasing sequence
// number breaks ties), which makes runs deterministic.
//
// The dispatch loop is built for near-zero per-event overhead (see
// docs/SIM_ENGINE.md for the full design):
//  * events live in pooled fixed-size nodes; callables are constructed in
//    place (no `std::function`, no per-event heap allocation, no copy on
//    pop);
//  * events at the current time -- the dominant case -- go through an O(1)
//    FIFO ready ring; future timestamps scheduled in nondecreasing order
//    (fixed latencies) ride an O(1) monotone run queue; only out-of-order
//    timestamps pay the (4-ary) heap;
//  * root-process failures set a flag via a promise hook instead of being
//    discovered by a per-event scan over all roots.

#include <coroutine>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/event.hpp"
#include "sim/task.hpp"

namespace bb::sim {

/// Thrown when `set_event_limit` is exceeded: a runaway self-rescheduling
/// process. Always on, in every build type -- a simulator that silently
/// spins produces plausible-looking wrong numbers.
class EventLimitError : public std::runtime_error {
 public:
  explicit EventLimitError(std::uint64_t limit)
      : std::runtime_error(
            "simulator event limit (" + std::to_string(limit) +
            ") exceeded: runaway process?"),
        limit_(limit) {}
  std::uint64_t limit() const { return limit_; }

 private:
  std::uint64_t limit_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 42);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimePs now() const { return now_; }

  /// Deterministic RNG shared by the run. Components typically `fork()`
  /// their own child streams at construction.
  Rng& rng() { return rng_; }

  /// Schedules a raw coroutine resume at absolute time `t` (>= now).
  /// Coroutine events are a bare tagged pointer in the queue: no event
  /// node, no pool, no allocation.
  void schedule_at(TimePs t, std::coroutine_handle<> h) {
    BB_ASSERT_MSG(t >= now_, "cannot schedule into the past");
    enqueue(t, detail::coro_item(h));
  }

  /// Fast path for wake-ups at the current time (Channel sends, Signal
  /// fires): straight onto the ready ring, no heap involved.
  void schedule_now(std::coroutine_handle<> h) {
    ring_.push(next_seq_++, detail::coro_item(h));
  }

  /// Schedules a callback at absolute time `t` (>= now). Stateless
  /// callables travel as a tagged bare function pointer; callables with
  /// captures are constructed in place in a pooled event node (up to
  /// `detail::EventNode::kInlineBytes` without touching the heap).
  template <typename F>
  void call_at(TimePs t, F&& fn) {
    BB_ASSERT_MSG(t >= now_, "cannot schedule into the past");
    enqueue(t, detail::make_callback_item(pool_, std::forward<F>(fn)));
  }

  /// Schedules a callback `d` after the current time (the common
  /// "processing delay" idiom in the hardware models).
  template <typename F>
  void call_in(TimePs d, F&& fn) {
    call_at(now_ + d, std::forward<F>(fn));
  }

  /// Awaitable that suspends the current process for `d`.
  struct DelayAwaiter {
    Simulator* sim;
    TimePs d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->schedule_at(sim->now_ + d, h);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(TimePs d) { return DelayAwaiter{this, d}; }

  /// Registers and starts a root process. The simulator owns the frame and
  /// destroys it at teardown; exceptions escaping a root process abort.
  void spawn(Task<void> task, std::string name = "process");

  /// Runs one event. Returns false if the queue is empty.
  /// Isolation invariant (debug-checked): a Simulator is single-threaded
  /// -- it must be stepped on the thread that constructed it. Parallel
  /// execution (bb::exec) runs whole simulators on distinct threads; it
  /// never shares one across threads.
  bool step() {
#ifndef NDEBUG
    BB_ASSERT_MSG(owner_ == std::this_thread::get_id(),
                  "Simulator stepped off its construction thread");
#endif
    return step_impl();
  }
  /// Runs until the event queue drains.
  void run();
  /// Runs while events exist and now() <= t.
  void run_until(TimePs t);
  void run_for(TimePs d) { run_until(now_ + d); }
  /// Runs until `pred()` becomes true (checked after each event) or the
  /// queue drains. Returns whether the predicate held.
  bool run_while_pending(const std::function<bool()>& pred);

  std::uint64_t events_processed() const { return events_processed_; }
  bool idle() const {
    return ring_.empty() && run_.empty() && heap_.empty();
  }

  /// Safety valve against runaway process loops; 0 disables. Exceeding the
  /// limit throws `EventLimitError` in every build type.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// Event-node slabs allocated so far (diagnostic: flat once warm).
  std::size_t event_pool_chunks() const { return pool_.chunks(); }

  /// Internal: called from the root promise's unhandled_exception hook.
  void note_root_error(std::uint32_t root_index,
                       std::exception_ptr error) noexcept;

 private:
  struct RootProcess {
    std::coroutine_handle<detail::Promise<void>> handle;
    std::string name;
  };

  void enqueue(TimePs t, detail::EventItem item) {
    const std::uint64_t seq = next_seq_++;
    if (t == now_) {
      ring_.push(seq, item);
    } else if (run_.empty() || t.ps() >= run_.back_time()) {
      run_.push(t.ps(), seq, item);
    } else {
      heap_.push(t, seq, item);
    }
  }

  bool step_impl();
  bool pick_next(TimePs& t, detail::EventItem& item);
  bool has_event_at_or_before(TimePs t) const;
  void dispatch(TimePs t, detail::EventItem item);
  [[noreturn]] void rethrow_root_error();
  void drop_pending() noexcept;

  TimePs now_ = TimePs::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_limit_ = 0;
  detail::EventPool pool_;
  detail::ReadyRing ring_;
  detail::MonotoneRun run_;
  detail::TimerHeap heap_;
  std::exception_ptr root_error_;
  std::uint32_t root_error_index_ = 0;
  std::vector<RootProcess> roots_;
  Rng rng_;
#ifndef NDEBUG
  std::thread::id owner_ = std::this_thread::get_id();
#endif
};

}  // namespace bb::sim
