#pragma once
// The discrete-event simulator core.
//
// A `Simulator` holds a time-ordered event queue of suspended coroutines
// (and plain callbacks). Processes are `Task<void>` coroutines spawned as
// roots; they advance simulated time only by `co_await sim.delay(d)` or by
// blocking on synchronization primitives (`Channel`, `Signal`). Events with
// equal timestamps run in FIFO spawn order (a monotonically increasing
// sequence number breaks ties), which makes runs deterministic.

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/task.hpp"

namespace bb::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 42);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimePs now() const { return now_; }

  /// Deterministic RNG shared by the run. Components typically `fork()`
  /// their own child streams at construction.
  Rng& rng() { return rng_; }

  /// Schedules a raw coroutine resume at absolute time `t` (>= now).
  void schedule_at(TimePs t, std::coroutine_handle<> h);
  /// Schedules a plain callback at absolute time `t` (>= now).
  void call_at(TimePs t, std::function<void()> fn);

  /// Awaitable that suspends the current process for `d`.
  struct DelayAwaiter {
    Simulator* sim;
    TimePs d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->schedule_at(sim->now_ + d, h);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(TimePs d) { return DelayAwaiter{this, d}; }

  /// Registers and starts a root process. The simulator owns the frame and
  /// destroys it at teardown; exceptions escaping a root process abort.
  void spawn(Task<void> task, std::string name = "process");

  /// Runs one event. Returns false if the queue is empty.
  bool step();
  /// Runs until the event queue drains.
  void run();
  /// Runs while events exist and now() <= t.
  void run_until(TimePs t);
  void run_for(TimePs d) { run_until(now_ + d); }
  /// Runs until `pred()` becomes true (checked after each event) or the
  /// queue drains. Returns whether the predicate held.
  bool run_while_pending(const std::function<bool()>& pred);

  std::uint64_t events_processed() const { return events_processed_; }
  bool idle() const { return queue_.empty(); }

  /// Safety valve against runaway process loops; 0 disables.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

 private:
  struct Event {
    TimePs t;
    std::uint64_t seq;
    std::coroutine_handle<> h;       // either a coroutine ...
    std::function<void()> callback;  // ... or a callback
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  struct RootProcess {
    std::coroutine_handle<detail::Promise<void>> handle;
    std::string name;
  };

  void dispatch(Event& ev);
  void check_roots_for_errors();

  TimePs now_ = TimePs::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_limit_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<RootProcess> roots_;
  Rng rng_;
};

}  // namespace bb::sim
