#pragma once
// Coroutine task type for simulation processes.
//
// `Task<T>` is a lazy coroutine: creating it does not run anything; it runs
// when awaited (or when spawned as a root process on a Simulator). On
// completion it resumes its awaiter via symmetric transfer, so arbitrarily
// deep co_await chains run in constant stack space.
//
// Ownership: the `Task` object owns the coroutine frame and destroys it in
// its destructor. In `co_await child()`, the temporary `Task` lives until
// the await completes, which is exactly the child frame's lifetime.

#include <coroutine>
#include <exception>
#include <utility>

#include "common/assert.hpp"
#include "sim/pool.hpp"

namespace bb::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

/// O(1) root-failure hook: wired by `Simulator::spawn` into the root
/// promise and invoked (from `Promise<void>::unhandled_exception`) the
/// moment a root process completes with an exception. Defined in
/// simulator.cpp; declared here so task.hpp stays independent of the
/// simulator header.
void notify_root_error(void* simulator, std::uint32_t root_index,
                       std::exception_ptr error) noexcept;

struct PromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();
  std::exception_ptr exception;

  // Coroutine frames recycle through the thread-local frame pool: process
  // spawn/teardown is steady-state in every benchmark loop, and pooling
  // keeps it off the global allocator.
  static void* operator new(std::size_t n) { return frame_alloc(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    frame_free(p, n);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      return h.promise().continuation;
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  T value{};

  Task<T> get_return_object() noexcept;
  void return_value(T v) noexcept { value = std::move(v); }

  T take_result() {
    if (exception) std::rethrow_exception(exception);
    return std::move(value);
  }
};

template <>
struct Promise<void> : PromiseBase {
  /// Set by `Simulator::spawn` on root processes (null otherwise): the
  /// owning simulator and this root's index in its root table.
  void* root_sim = nullptr;
  std::uint32_t root_index = 0;

  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}

  // Shadows PromiseBase::unhandled_exception: a failed *root* process
  // notifies the simulator directly, replacing the per-event linear scan
  // over all roots with a single flag check in the dispatch loop.
  void unhandled_exception() noexcept {
    exception = std::current_exception();
    if (root_sim != nullptr) {
      notify_root_error(root_sim, root_index, exception);
    }
  }

  void take_result() {
    if (exception) std::rethrow_exception(exception);
  }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return !h_ || h_.done(); }

  /// Awaiting a task starts it and suspends the awaiter until it finishes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer: start the child now
      }
      T await_resume() { return h.promise().take_result(); }
    };
    return Awaiter{h_};
  }

  /// Releases ownership of the frame (used by Simulator::spawn).
  handle_type release() { return std::exchange(h_, {}); }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  handle_type h_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace bb::sim
