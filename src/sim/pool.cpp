#include "sim/pool.hpp"

#include <new>

namespace bb::sim::detail {
namespace {

constexpr std::size_t kMinBucketBytes = 64;
constexpr std::size_t kMaxBucketBytes = 8192;
constexpr std::size_t kBucketCount = 8;  // 64, 128, ..., 8192

// Index of the smallest bucket holding `n` bytes.
std::size_t bucket_index(std::size_t n) {
  std::size_t idx = 0;
  std::size_t cap = kMinBucketBytes;
  while (cap < n) {
    cap <<= 1;
    ++idx;
  }
  return idx;
}

constexpr std::size_t bucket_bytes(std::size_t idx) {
  return kMinBucketBytes << idx;
}

class FramePool {
 public:
  ~FramePool() {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      void* p = free_[i];
      while (p != nullptr) {
        void* next = *static_cast<void**>(p);
        ::operator delete(p);
        p = next;
      }
    }
  }

  void* alloc(std::size_t n) {
    if (n > kMaxBucketBytes) {
      ++stats_.oversize;
      return ::operator new(n);
    }
    const std::size_t idx = bucket_index(n);
    if (void* p = free_[idx]) {
      free_[idx] = *static_cast<void**>(p);
      ++stats_.reused;
      return p;
    }
    ++stats_.fresh;
    return ::operator new(bucket_bytes(idx));
  }

  void free(void* p, std::size_t n) noexcept {
    if (n > kMaxBucketBytes) {
      ::operator delete(p);
      return;
    }
    const std::size_t idx = bucket_index(n);
    *static_cast<void**>(p) = free_[idx];
    free_[idx] = p;
  }

  const FramePoolStats& stats() const { return stats_; }

 private:
  void* free_[kBucketCount] = {};
  FramePoolStats stats_;
};

FramePool& pool() {
  thread_local FramePool p;
  return p;
}

}  // namespace

void* frame_alloc(std::size_t n) { return pool().alloc(n); }

void frame_free(void* p, std::size_t n) noexcept { pool().free(p, n); }

FramePoolStats frame_pool_stats() noexcept { return pool().stats(); }

}  // namespace bb::sim::detail
