#pragma once
// The pooled event core of the discrete-event simulator.
//
// Dispatch cost is the tax every simulated nanosecond pays, so the event
// representation is built for zero steady-state heap traffic:
//
//  * An event is a 16-byte tagged `EventItem`: either a raw coroutine
//    handle (the dominant case -- delays, channel wake-ups, signal fires)
//    or a pointer to an `EventNode` holding a callback. Coroutine events
//    therefore touch no pool and no allocator at all.
//  * `EventNode` is a fixed-size, pool-recycled node for callbacks. The
//    callable is constructed in place in the node's inline storage (no
//    `std::function`, no move on dispatch). Callables larger than the
//    inline buffer -- none exist on the hot path today -- fall back to a
//    heap box, counted so benchmarks can flag them.
//  * `EventPool` hands nodes out of bump-allocated slabs with an intrusive
//    free list; steady-state acquire/release never allocates.
//  * `ReadyRing` is the FIFO for events at the current simulated time: an
//    index-masked circular buffer of (seq, item) slots with O(1) push/pop.
//  * `TimerHeap` orders future timestamps. It is a 4-ary implicit heap
//    whose 24-byte entries carry the (time, seq) key inline, so sift
//    compares never chase pointers and pops never copy a callable.
//
// Global ordering is (timestamp, schedule sequence) -- identical to the
// previous `std::priority_queue` engine, which keeps seeded runs
// byte-for-byte reproducible (see docs/SIM_ENGINE.md).

#include <atomic>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace bb::sim::detail {

struct EventNode;

/// Tagged event payload. The two low bits encode the kind; every payload
/// pointer is at least 4-byte aligned, so they are always free:
///   00 -> coroutine handle address (resume it)
///   x1 -> `EventNode*` holding a callback with captured state
///   10 -> bare `void(*)()` for a stateless callable (no node, no pool)
using EventItem = std::uintptr_t;
using EventFn = void (*)();

inline bool item_is_node(EventItem it) { return (it & 1u) != 0; }
inline bool item_is_fn(EventItem it) { return (it & 3u) == 2u; }
inline EventNode* item_node(EventItem it) {
  return reinterpret_cast<EventNode*>(it & ~static_cast<std::uintptr_t>(1));
}
inline EventFn item_fn(EventItem it) {
  return reinterpret_cast<EventFn>(it & ~static_cast<std::uintptr_t>(3));
}
inline std::coroutine_handle<> item_coro(EventItem it) {
  return std::coroutine_handle<>::from_address(reinterpret_cast<void*>(it));
}
inline EventItem coro_item(std::coroutine_handle<> h) {
  return reinterpret_cast<std::uintptr_t>(h.address());
}
inline EventItem node_item(EventNode* n) {
  return reinterpret_cast<std::uintptr_t>(n) | 1u;
}

struct EventNode {
  /// Inline callable storage, sized for the largest hot-path capture
  /// (the PCIe link delivery lambda: this + Tlp + seq + arrive = 152 B).
  static constexpr std::size_t kInlineBytes = 152;

  // Storage first: it inherits the node's max alignment at offset 0, and
  // the 24-byte header behind it keeps the node at exactly 176 bytes.
  alignas(std::max_align_t) unsigned char storage[kInlineBytes];
  void (*invoke)(EventNode*);  // runs the callable
  void (*drop)(EventNode*);    // destroys the payload; null => trivial
  EventNode* next;             // free-list link

  template <typename F>
  void set_callback(F&& fn) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage)) Fn(std::forward<F>(fn));
      invoke = [](EventNode* n) { (*n->payload<Fn>())(); };
      if constexpr (std::is_trivially_destructible_v<Fn>) {
        drop = nullptr;
      } else {
        drop = [](EventNode* n) { n->payload<Fn>()->~Fn(); };
      }
    } else {
      // Oversized callable: boxed on the heap. Not steady-state -- counted
      // so the allocation-free invariant stays observable.
      boxed_events_counter().fetch_add(1, std::memory_order_relaxed);
      Fn* box = new Fn(std::forward<F>(fn));
      std::memcpy(storage, &box, sizeof(box));
      invoke = [](EventNode* n) {
        Fn* b;
        std::memcpy(&b, n->storage, sizeof(b));
        (*b)();
      };
      drop = [](EventNode* n) {
        Fn* b;
        std::memcpy(&b, n->storage, sizeof(b));
        delete b;
      };
    }
  }

  template <typename Fn>
  Fn* payload() {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }

  /// Process-wide count of events whose callable overflowed the inline
  /// buffer (diagnostic; the hot path must keep this at zero). Atomic:
  /// bb::exec runs simulators on several threads, and this is the one
  /// counter they legitimately share.
  static std::uint64_t boxed_events() {
    return boxed_events_counter().load(std::memory_order_relaxed);
  }
  static std::atomic<std::uint64_t>& boxed_events_counter() {
    static std::atomic<std::uint64_t> count{0};
    return count;
  }
};

static_assert(sizeof(EventNode) == 176, "unexpected EventNode padding");

/// Slab-backed free list of callback nodes. Slabs are bump-carved on first
/// use (no up-front link pass over cold memory); released nodes go onto an
/// intrusive LIFO so the next acquire reuses cache-hot memory. Retired
/// slabs park in a thread-local cache, so short-lived simulators (the
/// benchmark harness builds one per measurement) reuse warm, already
/// page-faulted memory instead of hitting the allocator.
class EventPool {
 public:
  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;
  ~EventPool() {
    auto& cache = slab_cache();
    for (EventNode* c : chunks_) {
      if (cache.size() < kMaxCachedSlabs) {
        cache.push_back(c);
      } else {
        delete[] c;
      }
    }
  }

  EventNode* acquire() {
    if (free_ != nullptr) {
      EventNode* n = free_;
      free_ = n->next;
      return n;
    }
    if (bump_ == bump_end_) grow();
    return bump_++;
  }

  void release(EventNode* n) noexcept {
    n->next = free_;
    free_ = n;
  }

  /// Number of slabs ever allocated; flat across steady-state waves.
  std::size_t chunks() const { return chunks_.size(); }

 private:
  static constexpr std::size_t kChunkNodes = 256;
  static constexpr std::size_t kMaxCachedSlabs = 64;

  static std::vector<EventNode*>& slab_cache() {
    struct Cache {
      std::vector<EventNode*> slabs;
      ~Cache() {
        for (EventNode* s : slabs) delete[] s;
      }
    };
    thread_local Cache cache;
    return cache.slabs;
  }

  void grow() {
    auto& cache = slab_cache();
    EventNode* chunk;
    if (!cache.empty()) {
      chunk = cache.back();
      cache.pop_back();
    } else {
      chunk = new EventNode[kChunkNodes];
    }
    chunks_.push_back(chunk);
    bump_ = chunk;
    bump_end_ = chunk + kChunkNodes;
  }

  EventNode* free_ = nullptr;
  EventNode* bump_ = nullptr;
  EventNode* bump_end_ = nullptr;
  std::vector<EventNode*> chunks_;
};

/// Builds the queue representation for a callback: stateless callables
/// (empty, trivially destructible, default-constructible -- e.g. a
/// captureless lambda) collapse to a tagged bare function pointer;
/// everything else is constructed in place in a pooled node.
template <typename F>
EventItem make_callback_item(EventPool& pool, F&& fn) {
  using Fn = std::remove_cvref_t<F>;
  if constexpr (std::is_empty_v<Fn> && std::is_trivially_destructible_v<Fn> &&
                std::is_default_constructible_v<Fn>) {
    constexpr EventFn tramp = [] { Fn{}(); };
    const auto u = reinterpret_cast<std::uintptr_t>(tramp);
    if ((u & 3u) == 0) [[likely]] {
      return u | 2u;
    }
  }
  EventNode* n = pool.acquire();
  n->set_callback(std::forward<F>(fn));
  return node_item(n);
}

/// FIFO of events at the current simulated time: a power-of-two circular
/// buffer of 16-byte slots. All entries share one timestamp (`now`);
/// sequence numbers are monotone along the ring by construction.
class ReadyRing {
 public:
  struct Slot {
    std::uint64_t seq;
    EventItem item;
  };

  ReadyRing() {
    v_.swap(buffer_cache());
    mask_ = v_.empty() ? 0 : v_.size() - 1;
  }
  ~ReadyRing() {
    if (v_.size() > buffer_cache().size()) v_.swap(buffer_cache());
  }
  ReadyRing(const ReadyRing&) = delete;
  ReadyRing& operator=(const ReadyRing&) = delete;

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  const Slot& head() const { return v_[head_ & mask_]; }

  void push(std::uint64_t seq, EventItem item) {
    if (count_ == v_.size()) grow();
    v_[(head_ + count_) & mask_] = Slot{seq, item};
    ++count_;
  }

  Slot pop() noexcept {
    const Slot s = v_[head_ & mask_];
    head_ = (head_ + 1) & mask_;
    --count_;
    return s;
  }

 private:
  // Retired backing buffers park in a thread-local cache so a fresh ring
  // starts at the high-water capacity of its predecessor, pre-faulted.
  static std::vector<Slot>& buffer_cache() {
    thread_local std::vector<Slot> cache;
    return cache;
  }

  void grow() {
    const std::size_t cap = v_.empty() ? 64 : v_.size() * 2;
    std::vector<Slot> bigger(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = v_[(head_ + i) & mask_];
    }
    v_ = std::move(bigger);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<Slot> v_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

/// FIFO of future events whose timestamps were scheduled in nondecreasing
/// order -- the dominant pattern (fixed link/processing latencies yield
/// monotone wakeups). Entries are strictly ordered by (time, seq) along
/// the ring by construction, so push and pop are O(1); out-of-order
/// timestamps fall back to the `TimerHeap` and the two are merged by
/// (time, seq) at pop.
class MonotoneRun {
 public:
  struct Slot {
    std::int64_t t_ps;
    std::uint64_t seq;
    EventItem item;
  };

  MonotoneRun() {
    v_.swap(buffer_cache());
    mask_ = v_.empty() ? 0 : v_.size() - 1;
  }
  ~MonotoneRun() {
    if (v_.size() > buffer_cache().size()) v_.swap(buffer_cache());
  }
  MonotoneRun(const MonotoneRun&) = delete;
  MonotoneRun& operator=(const MonotoneRun&) = delete;

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::int64_t front_time() const { return v_[head_ & mask_].t_ps; }
  std::uint64_t front_seq() const { return v_[head_ & mask_].seq; }
  std::int64_t back_time() const {
    return v_[(head_ + count_ - 1) & mask_].t_ps;
  }

  /// Precondition: empty() or t_ps >= back_time().
  void push(std::int64_t t_ps, std::uint64_t seq, EventItem item) {
    if (count_ == v_.size()) grow();
    v_[(head_ + count_) & mask_] = Slot{t_ps, seq, item};
    ++count_;
  }

  EventItem pop() noexcept {
    const EventItem item = v_[head_ & mask_].item;
    head_ = (head_ + 1) & mask_;
    --count_;
    return item;
  }

 private:
  static std::vector<Slot>& buffer_cache() {
    thread_local std::vector<Slot> cache;
    return cache;
  }

  void grow() {
    const std::size_t cap = v_.empty() ? 64 : v_.size() * 2;
    std::vector<Slot> bigger(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = v_[(head_ + i) & mask_];
    }
    v_ = std::move(bigger);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<Slot> v_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

/// 4-ary implicit min-heap over (time, seq) for events in the future.
/// Keys live in the heap entries, so a sift touches one contiguous array;
/// entries are trivially copyable (24 bytes), so moves are cheap.
class TimerHeap {
 public:
  TimerHeap() { v_.swap(buffer_cache()); }
  ~TimerHeap() {
    if (v_.capacity() > buffer_cache().capacity()) {
      v_.clear();
      v_.swap(buffer_cache());
    }
  }
  TimerHeap(const TimerHeap&) = delete;
  TimerHeap& operator=(const TimerHeap&) = delete;

  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  TimePs top_time() const { return TimePs(v_[0].t_ps); }
  std::uint64_t top_seq() const { return v_[0].seq; }

  void push(TimePs t, std::uint64_t seq, EventItem item) {
    v_.push_back(Entry{t.ps(), seq, item});
    sift_up(v_.size() - 1);
  }

  EventItem pop() {
    const EventItem item = v_[0].item;
    const Entry last = v_.back();
    v_.pop_back();
    if (!v_.empty()) {
      v_[0] = last;
      sift_down(0);
    }
    return item;
  }

 private:
  struct Entry {
    std::int64_t t_ps;
    std::uint64_t seq;
    EventItem item;

    bool before(const Entry& o) const {
      if (t_ps != o.t_ps) return t_ps < o.t_ps;
      return seq < o.seq;
    }
  };

  // Retired backing arrays park in a thread-local cache (cleared, capacity
  // kept) so fresh heaps skip the doubling-growth ramp entirely.
  static std::vector<Entry>& buffer_cache() {
    thread_local std::vector<Entry> cache;
    return cache;
  }

  void sift_up(std::size_t i) {
    const Entry e = v_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!e.before(v_[parent])) break;
      v_[i] = v_[parent];
      i = parent;
    }
    v_[i] = e;
  }

  // Bottom-up sift: descend the hole along min children without comparing
  // against `e`, then bubble `e` up. During a drain `e` (the old last leaf)
  // nearly always belongs at the bottom, so the bubble-up step is ~free and
  // each level costs only the min-of-children compares.
  void sift_down(std::size_t i) {
    const Entry e = v_[i];
    const std::size_t n = v_.size();
    std::size_t hole = i;
    for (;;) {
      const std::size_t first = 4 * hole + 1;
      if (first >= n) break;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (v_[c].before(v_[best])) best = c;
      }
      v_[hole] = v_[best];
      hole = best;
    }
    // Bubble `e` back up from the bottom of the descent path.
    while (hole > i) {
      const std::size_t parent = (hole - 1) / 4;
      if (!e.before(v_[parent])) break;
      v_[hole] = v_[parent];
      hole = parent;
    }
    v_[hole] = e;
  }

  std::vector<Entry> v_;
};

}  // namespace bb::sim::detail
