#include "net/fabric.hpp"

#include "common/assert.hpp"

namespace bb::net {

Fabric::Fabric(sim::Simulator& sim, NetParams params, int node_count)
    : sim_(sim), params_(params) {
  BB_ASSERT(node_count >= 2);
  handlers_.resize(static_cast<std::size_t>(node_count));
  next_free_.resize(static_cast<std::size_t>(node_count));
  last_arrival_.resize(static_cast<std::size_t>(node_count));
  rx_next_free_.resize(static_cast<std::size_t>(node_count));
}

void Fabric::attach(int node, Handler h) {
  BB_ASSERT(node >= 0 && node < node_count());
  handlers_[static_cast<std::size_t>(node)] = std::move(h);
}

void Fabric::send(NetPacket pkt) {
  BB_ASSERT(pkt.src_node != pkt.dst_node);
  BB_ASSERT(pkt.src_node >= 0 && pkt.src_node < node_count());
  BB_ASSERT(pkt.dst_node >= 0 && pkt.dst_node < node_count());
  const auto src = static_cast<std::size_t>(pkt.src_node);

  const TimePs depart = std::max(sim_.now(), next_free_[src]);
  next_free_[src] = depart + params_.serialize(pkt.payload_bytes);
  TimePs arrive = depart + params_.network_latency();
  arrive = std::max(arrive, last_arrival_[src]);  // in-order delivery
  last_arrival_[src] = arrive;

  const auto dst = static_cast<std::size_t>(pkt.dst_node);
  if (params_.model_incast) {
    // Converging flows drain one at a time through the receiver port.
    arrive = std::max(arrive, rx_next_free_[dst]);
    rx_next_free_[dst] = arrive + params_.serialize(pkt.payload_bytes);
  }
  sim_.call_at(arrive, [this, dst, pkt = std::move(pkt)] {
    ++packets_delivered_;
    BB_ASSERT_MSG(handlers_[dst], "no NIC attached at destination node");
    handlers_[dst](pkt);
  });
}

}  // namespace bb::net
