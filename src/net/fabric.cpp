#include "net/fabric.hpp"

#include "common/assert.hpp"
#include "common/table.hpp"

namespace bb::net {

void TransportStats::merge(const TransportStats& o) {
  packets_sent += o.packets_sent;
  data_packets_sent += o.data_packets_sent;
  packets_delivered += o.packets_delivered;
  packets_dropped += o.packets_dropped;
  packets_corrupted += o.packets_corrupted;
  packets_duplicated += o.packets_duplicated;
  packets_reordered += o.packets_reordered;
  retransmits += o.retransmits;
  acks_sent += o.acks_sent;
  acks_received += o.acks_received;
  naks_sent += o.naks_sent;
  naks_received += o.naks_received;
  rnr_naks_sent += o.rnr_naks_sent;
  rnr_naks_received += o.rnr_naks_received;
  duplicates_discarded += o.duplicates_discarded;
  retry_timer_firings += o.retry_timer_firings;
  qp_errors += o.qp_errors;
  qp_recoveries += o.qp_recoveries;
  flushed_wqes += o.flushed_wqes;
}

std::string TransportStats::render(const std::string& title) const {
  TextTable t({title, "count"});
  auto row = [&](const char* name, std::uint64_t v) {
    t.add_row({name, std::to_string(v)});
  };
  row("Packets sent", packets_sent);
  row("  of which data", data_packets_sent);
  row("Packets delivered", packets_delivered);
  row("Packets dropped", packets_dropped);
  row("Packets corrupted", packets_corrupted);
  row("Packets duplicated", packets_duplicated);
  row("Packets reordered", packets_reordered);
  t.add_rule();
  row("Data retransmits", retransmits);
  row("ACKs sent", acks_sent);
  row("ACKs received", acks_received);
  row("NAKs sent", naks_sent);
  row("NAKs received", naks_received);
  row("RNR NAKs sent", rnr_naks_sent);
  row("RNR NAKs received", rnr_naks_received);
  row("Duplicate PSNs discarded", duplicates_discarded);
  row("Retry-timer expiries", retry_timer_firings);
  t.add_rule();
  row("QP errors", qp_errors);
  row("QP recoveries", qp_recoveries);
  row("WQEs flushed with error", flushed_wqes);
  return t.render();
}

Fabric::Fabric(sim::Simulator& sim, NetParams params, int node_count,
               fault::WireInjector* wire)
    : sim_(sim), params_(params), wire_(wire) {
  BB_ASSERT(node_count >= 2);
  handlers_.resize(static_cast<std::size_t>(node_count));
  next_free_.resize(static_cast<std::size_t>(node_count));
  last_arrival_.resize(static_cast<std::size_t>(node_count));
  rx_next_free_.resize(static_cast<std::size_t>(node_count));
}

void Fabric::attach(int node, Handler h) {
  BB_ASSERT(node >= 0 && node < node_count());
  handlers_[static_cast<std::size_t>(node)] = std::move(h);
}

void Fabric::deliver(std::size_t dst, TimePs arrive, NetPacket pkt,
                     bool corrupt) {
  sim_.call_at(arrive, [this, dst, corrupt, pkt = std::move(pkt)] {
    if (corrupt) {
      // The packet occupied the wire but fails the receiver's ICRC check
      // and is discarded without notification (IB semantics); the sender
      // recovers via a later PSN-gap NAK or its retry timer.
      ++stats_.packets_corrupted;
      return;
    }
    ++stats_.packets_delivered;
    BB_ASSERT_MSG(handlers_[dst], "no NIC attached at destination node");
    handlers_[dst](pkt);
  });
}

void Fabric::send(NetPacket pkt) {
  BB_ASSERT(pkt.src_node != pkt.dst_node);
  BB_ASSERT(pkt.src_node >= 0 && pkt.src_node < node_count());
  BB_ASSERT(pkt.dst_node >= 0 && pkt.dst_node < node_count());
  const auto src = static_cast<std::size_t>(pkt.src_node);
  ++stats_.packets_sent;
  if (pkt.is_data()) ++stats_.data_packets_sent;

  const TimePs depart = std::max(sim_.now(), next_free_[src]);
  next_free_[src] = depart + params_.serialize(pkt.payload_bytes);
  TimePs arrive = depart + params_.network_latency();

  auto fate = fault::WireInjector::Fate::kDeliver;
  if (lossy()) {
    fate = wire_->packet_fate(pkt.src_node, pkt.is_data(), pkt.psn);
  }
  if (fate == fault::WireInjector::Fate::kDrop) {
    // The serialization slot was consumed but nothing arrives, and the
    // in-order gate is NOT advanced: a dropped packet cannot delay its
    // successors' arrival.
    ++stats_.packets_dropped;
    return;
  }
  if (fate == fault::WireInjector::Fate::kReorder) {
    // Exempt from the in-order gate and delayed, so successors overtake.
    ++stats_.packets_reordered;
    arrive = arrive + TimePs::from_ns(wire_->config().reorder_delay_ns);
  } else {
    arrive = std::max(arrive, last_arrival_[src]);  // in-order delivery
    last_arrival_[src] = arrive;
  }

  const auto dst = static_cast<std::size_t>(pkt.dst_node);
  if (params_.model_incast) {
    // Converging flows drain one at a time through the receiver port.
    arrive = std::max(arrive, rx_next_free_[dst]);
    rx_next_free_[dst] = arrive + params_.serialize(pkt.payload_bytes);
  }
  const bool corrupt = fate == fault::WireInjector::Fate::kCorrupt;
  if (fate == fault::WireInjector::Fate::kDuplicate) {
    // The second copy trails the first by one serialization slot and
    // delivers unconditionally (no re-rolled fate), keeping the
    // conservation identity simple: sent + duplicated == delivered +
    // dropped + corrupted.
    ++stats_.packets_duplicated;
    const TimePs dup_arrive = arrive + params_.serialize(pkt.payload_bytes);
    last_arrival_[src] = dup_arrive;
    deliver(dst, dup_arrive, pkt, /*corrupt=*/false);
  }
  deliver(dst, arrive, std::move(pkt), corrupt);
}

}  // namespace bb::net
