#pragma once
// Packets on the high-performance interconnect between the NICs.
//
// Data packets carry a per-QP packet sequence number (PSN) so the RC
// transport in the NIC (docs/TRANSPORT.md) can detect loss, discard
// duplicates and NAK sequence gaps. Control packets (ACK/NAK/RNR-NAK and
// the connect handshake) carry no payload; their `psn` field is the
// cumulative/expected sequence number of the flow they report on.

#include <cstdint>
#include <string>

#include "pcie/tlp.hpp"  // WireMd / WireOp

namespace bb::net {

struct NetPacket {
  enum class Kind : std::uint8_t {
    kData = 0,     // message payload, PSN-sequenced
    kAck,          // cumulative ACK: every PSN <= psn received
    kNak,          // PSN gap: retransmit from `psn` (go-back-N)
    kRnrNak,       // receiver-not-ready: PSN `psn` refused, retry later
    kConnect,      // QP re-handshake: receiver resets its flow to `psn`
    kConnectAck,   // handshake complete, sender may enter RTS
  };

  Kind kind = Kind::kData;
  std::uint64_t msg_id = 0;
  int src_node = 0;
  int dst_node = 0;
  /// RC flow identity: the sender's queue pair number.
  std::uint32_t qp = 0;
  /// Data: this packet's sequence number (1-based per QP flow).
  /// Ack: highest PSN cumulatively acknowledged.
  /// Nak/RnrNak: the PSN the receiver expects / refused.
  /// Connect/ConnectAck: the starting PSN of the re-established flow.
  std::uint64_t psn = 0;
  std::uint32_t payload_bytes = 0;
  pcie::WireMd md;  // delivery semantics for data packets

  bool is_data() const { return kind == Kind::kData; }

  static NetPacket data(const pcie::WireMd& md_, int src, int dst,
                        std::uint64_t psn_) {
    NetPacket p;
    p.kind = Kind::kData;
    p.msg_id = md_.msg_id;
    p.src_node = src;
    p.dst_node = dst;
    p.qp = md_.qp;
    p.psn = psn_;
    p.payload_bytes = md_.payload_bytes;
    p.md = md_;
    return p;
  }

  /// Control packet (ACK/NAK/RNR-NAK/connect); carries no payload.
  static NetPacket ctrl(Kind kind_, std::uint32_t qp_, std::uint64_t psn_,
                        int src, int dst) {
    NetPacket p;
    p.kind = kind_;
    p.src_node = src;
    p.dst_node = dst;
    p.qp = qp_;
    p.psn = psn_;
    return p;
  }
};

}  // namespace bb::net
