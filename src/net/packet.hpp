#pragma once
// Packets on the high-performance interconnect between the two NICs.

#include <cstdint>
#include <string>

#include "pcie/tlp.hpp"  // WireMd / WireOp

namespace bb::net {

struct NetPacket {
  std::uint64_t msg_id = 0;
  int src_node = 0;
  int dst_node = 0;
  /// Link-level acknowledgement from the target NIC (§2 step 4): carries
  /// no payload and triggers completion generation at the initiator.
  bool is_ack = false;
  std::uint32_t payload_bytes = 0;
  pcie::WireMd md;  // delivery semantics for data packets

  static NetPacket data(const pcie::WireMd& md_, int src, int dst) {
    NetPacket p;
    p.msg_id = md_.msg_id;
    p.src_node = src;
    p.dst_node = dst;
    p.payload_bytes = md_.payload_bytes;
    p.md = md_;
    return p;
  }

  static NetPacket ack(std::uint64_t msg_id_, int src, int dst) {
    NetPacket p;
    p.msg_id = msg_id_;
    p.src_node = src;
    p.dst_node = dst;
    p.is_ack = true;
    return p;
  }
};

}  // namespace bb::net
