#pragma once
// The interconnect fabric between two nodes: physical wire plus an
// optional chain of switches.
//
// Timing: every packet incurs the one-way wire latency, one switch latency
// per hop, and a bandwidth-limited serialization gap at the sender. The
// defaults reproduce the paper's measurements: Wire = 274.81 ns for a
// direct NIC-to-NIC connection, Switch = 108 ns per switch (Table 1).
//
// Faults: with a fault::WireInjector attached and enabled, packets can be
// dropped, corrupted (delivered but discarded at the receiver's ICRC
// check), duplicated or reordered (docs/TRANSPORT.md). A dropped packet
// still consumed its sender serialization slot; a corrupt one additionally
// occupies the wire and the receiver port. With the injector absent or
// disabled the delivery path is untouched and runs are bit-identical to a
// fabric built without one.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "fault/fault.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace bb::net {

struct NetParams {
  /// One-way physical-wire latency for a direct connection (incl. SerDes).
  double wire_latency_ns = 274.81;
  /// Store-and-forward latency added by each switch.
  double switch_latency_ns = 108.0;
  /// Number of switches between the nodes (the paper's setup has one).
  int num_switches = 1;
  /// Sender occupancy per payload byte (EDR ~ 12.5 GB/s => 0.08 ns/B).
  double serialize_ns_per_byte = 0.08;
  /// Fixed per-packet framing bytes for serialization purposes.
  std::uint32_t header_bytes = 30;
  /// Model receiver-port occupancy: packets converging on one node
  /// (incast, the many-senders pattern collectives create) queue behind
  /// each other at the destination at the same serialization rate the
  /// sender pays. Off by default -- the two-node testbed cannot incast,
  /// and existing goldens are bit-identical with the knob off.
  bool model_incast = false;

  /// Total one-way fabric latency ("Network" in the paper's terminology).
  TimePs network_latency() const {
    return TimePs::from_ns(wire_latency_ns +
                           switch_latency_ns * static_cast<double>(num_switches));
  }
  TimePs serialize(std::uint32_t payload_bytes) const {
    return TimePs::from_ns(serialize_ns_per_byte *
                           static_cast<double>(payload_bytes + header_bytes));
  }
};

/// Counters for the reliable-transport layer: the wire-side half lives in
/// the fabric (packet fates), the protocol-side half in each NIC's RC
/// machine (ACK/NAK/retry activity). Merged per testbed/cluster and
/// exported as `net.*` profiler counters, mirroring `fault.*`.
struct TransportStats {
  // Wire side (fabric). Conservation at quiescence:
  //   sent + duplicated == delivered + dropped + corrupted.
  std::uint64_t packets_sent = 0;
  std::uint64_t data_packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_corrupted = 0;
  std::uint64_t packets_duplicated = 0;
  std::uint64_t packets_reordered = 0;
  // Protocol side (NIC RC transport).
  std::uint64_t retransmits = 0;          // data packets re-sent (go-back-N)
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;        // raw ACK packets processed
  std::uint64_t naks_sent = 0;
  std::uint64_t naks_received = 0;
  std::uint64_t rnr_naks_sent = 0;
  std::uint64_t rnr_naks_received = 0;
  std::uint64_t duplicates_discarded = 0; // stale-PSN data discarded + re-ACKed
  std::uint64_t retry_timer_firings = 0;
  std::uint64_t qp_errors = 0;            // retry/RNR budget exhausted
  std::uint64_t qp_recoveries = 0;        // reconnect handshakes completed
  std::uint64_t flushed_wqes = 0;         // WQEs retired as error CQEs

  void merge(const TransportStats& o);
  /// Two-column table for reports (bb::prof attaches this to its output).
  std::string render(const std::string& title = "Transport stats") const;
};

/// Switched fabric between `node_count` NICs (the paper's testbed has
/// two; multi-rank workloads use more). Serialization and in-order
/// delivery are maintained per sender (reorder faults excepted).
class Fabric {
 public:
  using Handler = std::function<void(const NetPacket&)>;

  Fabric(sim::Simulator& sim, NetParams params, int node_count = 2,
         fault::WireInjector* wire = nullptr);

  void attach(int node, Handler h);
  const NetParams& params() const { return params_; }
  int node_count() const { return static_cast<int>(handlers_.size()); }

  /// Whether wire faults are live. The NIC arms its transport retry
  /// timers only on a lossy fabric: on a reliable wire the NAK/RNR paths
  /// already recover everything and the timer events would perturb the
  /// error-free goldens.
  bool lossy() const { return wire_ != nullptr && wire_->enabled(); }

  /// Transmits a packet from `pkt.src_node` to `pkt.dst_node`.
  void send(NetPacket pkt);

  std::uint64_t packets_delivered() const { return stats_.packets_delivered; }
  const TransportStats& stats() const { return stats_; }

 private:
  void deliver(std::size_t dst, TimePs arrive, NetPacket pkt, bool corrupt);

  sim::Simulator& sim_;
  NetParams params_;
  fault::WireInjector* wire_ = nullptr;
  std::vector<Handler> handlers_;
  // Per-sender transmitter state for serialization and ordering.
  std::vector<TimePs> next_free_;
  std::vector<TimePs> last_arrival_;
  // Per-receiver port occupancy (only advanced when model_incast is on).
  std::vector<TimePs> rx_next_free_;
  TransportStats stats_;
};

}  // namespace bb::net
