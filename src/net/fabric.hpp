#pragma once
// The interconnect fabric between two nodes: physical wire plus an
// optional chain of switches.
//
// Timing: every packet incurs the one-way wire latency, one switch latency
// per hop, and a bandwidth-limited serialization gap at the sender. The
// defaults reproduce the paper's measurements: Wire = 274.81 ns for a
// direct NIC-to-NIC connection, Switch = 108 ns per switch (Table 1).

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace bb::net {

struct NetParams {
  /// One-way physical-wire latency for a direct connection (incl. SerDes).
  double wire_latency_ns = 274.81;
  /// Store-and-forward latency added by each switch.
  double switch_latency_ns = 108.0;
  /// Number of switches between the nodes (the paper's setup has one).
  int num_switches = 1;
  /// Sender occupancy per payload byte (EDR ~ 12.5 GB/s => 0.08 ns/B).
  double serialize_ns_per_byte = 0.08;
  /// Fixed per-packet framing bytes for serialization purposes.
  std::uint32_t header_bytes = 30;
  /// Model receiver-port occupancy: packets converging on one node
  /// (incast, the many-senders pattern collectives create) queue behind
  /// each other at the destination at the same serialization rate the
  /// sender pays. Off by default -- the two-node testbed cannot incast,
  /// and existing goldens are bit-identical with the knob off.
  bool model_incast = false;

  /// Total one-way fabric latency ("Network" in the paper's terminology).
  TimePs network_latency() const {
    return TimePs::from_ns(wire_latency_ns +
                           switch_latency_ns * static_cast<double>(num_switches));
  }
  TimePs serialize(std::uint32_t payload_bytes) const {
    return TimePs::from_ns(serialize_ns_per_byte *
                           static_cast<double>(payload_bytes + header_bytes));
  }
};

/// Switched fabric between `node_count` NICs (the paper's testbed has
/// two; multi-rank workloads use more). Serialization and in-order
/// delivery are maintained per sender.
class Fabric {
 public:
  using Handler = std::function<void(const NetPacket&)>;

  Fabric(sim::Simulator& sim, NetParams params, int node_count = 2);

  void attach(int node, Handler h);
  const NetParams& params() const { return params_; }
  int node_count() const { return static_cast<int>(handlers_.size()); }

  /// Transmits a packet from `pkt.src_node` to `pkt.dst_node`.
  void send(NetPacket pkt);

  std::uint64_t packets_delivered() const { return packets_delivered_; }

 private:
  sim::Simulator& sim_;
  NetParams params_;
  std::vector<Handler> handlers_;
  // Per-sender transmitter state for serialization and ordering.
  std::vector<TimePs> next_free_;
  std::vector<TimePs> last_arrival_;
  // Per-receiver port occupancy (only advanced when model_incast is on).
  std::vector<TimePs> rx_next_free_;
  std::uint64_t packets_delivered_ = 0;
};

}  // namespace bb::net
