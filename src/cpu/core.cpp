#include "cpu/core.hpp"

#include "common/assert.hpp"

namespace bb::cpu {

Core::Core(sim::Simulator& simulator, CpuCostModel model, std::string name)
    : sim_(simulator),
      model_(model),
      name_(std::move(name)),
      rng_(simulator.rng().fork()) {}

void Core::consume(TimePs d) {
  BB_ASSERT_MSG(d >= TimePs::zero(), "CPU work cannot be negative");
  pending_ += d;
  busy_ += d;
}

TimePs Core::consume(const CostSpec& spec) {
  TimePs d = spec.sample(rng_);
  if (speed_factor_ != 1.0) d = d.scaled(speed_factor_);
  consume(d);
  return d;
}

sim::Task<void> Core::flush() {
  if (pending_ > TimePs::zero()) {
    const TimePs d = pending_;
    pending_ = TimePs::zero();
    co_await sim_.delay(d);
  }
}

TimePs Core::virtual_now() const { return sim_.now() + pending_; }

}  // namespace bb::cpu
