#pragma once
// A single CPU core on the simulated timeline.
//
// Software layers (LLP/HLP/benchmark loops) run as one coroutine per core.
// Most of their work is pure time consumption; only at interaction points
// (an MMIO write to the NIC, a poll of a CQ in host memory) does the core
// need to synchronize with the rest of the simulated world. `consume()`
// therefore accrues cost into a pending accumulator synchronously, and
// `flush()` -- a coroutine -- converts the accumulated cost into simulated
// delay before any interaction. `virtual_now()` is the core-local clock
// (simulator time plus pending work), which is what the emulated
// cntvct_el0 timer reads.

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "cpu/cost.hpp"
#include "cpu/cost_model.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace bb::cpu {

class Core {
 public:
  Core(sim::Simulator& simulator, CpuCostModel model, std::string name = "core");

  sim::Simulator& simulator() { return sim_; }
  const CpuCostModel& costs() const { return model_; }
  CpuCostModel& costs() { return model_; }
  const std::string& name() const { return name_; }
  Rng& rng() { return rng_; }

  /// Accrues a fixed duration of CPU work.
  void consume(TimePs d);
  /// Samples `spec`, applies the speed factor, and accrues the result;
  /// returns the accrued duration.
  TimePs consume(const CostSpec& spec);

  /// Scales sampled costs. Models the gap between profiled means
  /// (instrumented, cold-path) and hot-loop execution (warm icache and
  /// branch predictors) that makes analyzer-observed loop times fall a few
  /// percent below the sum of profiled component means (§4.2).
  void set_speed_factor(double f) { speed_factor_ = f; }
  double speed_factor() const { return speed_factor_; }

  /// Converts all pending work into simulated delay. Must be awaited before
  /// interacting with any other simulation entity.
  sim::Task<void> flush();

  /// Core-local time: simulator time plus un-flushed pending work.
  TimePs virtual_now() const;

  /// Total CPU time this core has consumed (for utilisation accounting).
  TimePs busy_time() const { return busy_; }

 private:
  sim::Simulator& sim_;
  CpuCostModel model_;
  std::string name_;
  Rng rng_;
  TimePs pending_ = TimePs::zero();
  TimePs busy_ = TimePs::zero();
  double speed_factor_ = 1.0;
};

}  // namespace bb::cpu
