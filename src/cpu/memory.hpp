#pragma once
// ARMv8-A memory types relevant to the HW/SW interface (§4.1, §7).
//
// The PIO fast path writes the descriptor to memory-mapped device memory.
// On the paper's ThunderX2 the mapping is Device-GRE (gathering,
// re-ordering, early-ack), and a 64-byte write costs ~94 ns versus <1 ns to
// cacheable Normal memory -- the gap §7's "PIO" what-if targets. This table
// makes the memory type an explicit knob.

#include <string>

#include "cpu/cost.hpp"
#include "cpu/cost_model.hpp"

namespace bb::cpu {

enum class MemoryType {
  kNormal,      // cacheable, write-back
  kDeviceGRE,   // gathering + re-ordering + early-ack (paper's mapping)
  kDeviceNGnRE, // non-gathering: every store is a separate device access
};

std::string to_string(MemoryType t);

/// Cost of a 64-byte store sequence to memory of the given type, expressed
/// against a cost model. Device-nGnRE forbids write-gathering, so the
/// 64-byte copy decomposes into eight ungathered 8-byte device stores; we
/// model it as a fixed multiple of the gathered Device-GRE cost.
CostSpec write_cost_64b(const CpuCostModel& m, MemoryType t);

/// Multiplier applied to the Device-GRE PIO cost under Device-nGnRE.
inline constexpr double kNGnREPenalty = 2.5;

}  // namespace bb::cpu
