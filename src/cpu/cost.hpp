#pragma once
// Cost specifications for CPU primitives.
//
// Every software component the paper times (§3-§5) is represented as a
// `CostSpec`: a mean duration plus a jitter model. Samples are drawn from a
// moment-matched lognormal (real timing noise is positively skewed) with an
// optional rare heavy tail that models OS/SMM "hiccups" -- the paper's
// Fig. 7 shows exactly this shape (median < mean, max of ~35 us against a
// 282 ns mean).

#include "common/rng.hpp"
#include "common/units.hpp"

namespace bb::cpu {

struct CostSpec {
  /// Mean duration in nanoseconds.
  double mean_ns = 0.0;
  /// Coefficient of variation of the lognormal body (sd = cv * mean).
  /// Zero means a deterministic cost.
  double cv = 0.0;
  /// Probability that a sample additionally incurs a hiccup.
  double tail_prob = 0.0;
  /// Mean of the exponential hiccup duration.
  double tail_mean_ns = 0.0;

  static constexpr CostSpec fixed(double ns) { return CostSpec{ns, 0.0, 0.0, 0.0}; }
  static constexpr CostSpec jittered(double ns, double cv_) {
    return CostSpec{ns, cv_, 0.0, 0.0};
  }

  TimePs mean() const { return TimePs::from_ns(mean_ns); }

  TimePs sample(Rng& rng) const {
    double v = mean_ns;
    if (cv > 0.0 && mean_ns > 0.0) {
      v = rng.lognormal_by_moments(mean_ns, cv * mean_ns);
    }
    if (tail_prob > 0.0 && rng.bernoulli(tail_prob)) {
      v += rng.exponential(tail_mean_ns);
    }
    return TimePs::from_ns(v);
  }

  /// Returns a copy with the mean scaled by `f` (what-if experiments).
  CostSpec scaled(double f) const {
    CostSpec c = *this;
    c.mean_ns *= f;
    return c;
  }
};

}  // namespace bb::cpu
