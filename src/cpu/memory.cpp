#include "cpu/memory.hpp"

#include "common/assert.hpp"

namespace bb::cpu {

std::string to_string(MemoryType t) {
  switch (t) {
    case MemoryType::kNormal:
      return "Normal";
    case MemoryType::kDeviceGRE:
      return "Device-GRE";
    case MemoryType::kDeviceNGnRE:
      return "Device-nGnRE";
  }
  BB_UNREACHABLE("bad MemoryType");
}

CostSpec write_cost_64b(const CpuCostModel& m, MemoryType t) {
  switch (t) {
    case MemoryType::kNormal:
      return m.memcpy_normal_64b;
    case MemoryType::kDeviceGRE:
      return m.pio_copy_64b;
    case MemoryType::kDeviceNGnRE:
      return m.pio_copy_64b.scaled(kNGnREPenalty);
  }
  BB_UNREACHABLE("bad MemoryType");
}

}  // namespace bb::cpu
