#pragma once
// The per-primitive CPU cost model.
//
// Defaults are calibrated to the paper's Table 1 (ThunderX2 @ 2 GHz,
// ConnectX-4, MPICH/CH4 over UCX). Each named spec corresponds to a row of
// Table 1 or to a quantity derived in §5-§6; the derivations are noted
// inline. Changing these values retargets the whole simulator to another
// system -- the models and benches consume them symbolically.

#include "cpu/cost.hpp"

namespace bb::cpu {

struct CpuCostModel {
  // --- LLP_post constituents (§4.1, Table 1, Fig. 4) ---------------------
  /// Writing the control segment of the message descriptor (+ payload
  /// memcpy when inlining).
  CostSpec md_setup = CostSpec::jittered(27.78, 0.15);
  /// `dmb st` ensuring the MD is written before signalling the NIC.
  CostSpec barrier_store_md = CostSpec::jittered(17.33, 0.15);
  /// DoorBell-counter update plus the `dmb st` ordering it before device
  /// writes.
  CostSpec barrier_store_dbc = CostSpec::jittered(21.07, 0.15);
  /// The 64-byte programmed-I/O copy to Device-GRE memory (one chunk per
  /// 64 bytes of descriptor+inline payload).
  CostSpec pio_copy_64b = CostSpec::jittered(94.25, 0.18);
  /// Function-call overhead, branching, etc. within uct_ep_*_short.
  CostSpec llp_post_misc = CostSpec::jittered(14.99, 0.15);

  // --- LLP progress (§4.1) ------------------------------------------------
  /// Dequeuing one CQ entry (load barrier + CQE read + bookkeeping).
  CostSpec llp_prog = CostSpec::jittered(61.63, 0.15);
  /// A progress pass that finds the CQ empty (load barrier + miss).
  CostSpec llp_empty_progress = CostSpec::jittered(18.0, 0.15);
  /// An LLP_post attempt that fails because the TxQ is full.
  CostSpec busy_post = CostSpec::jittered(8.99, 0.15);
  /// The 8-byte atomic DoorBell write (non-PIO descriptor path).
  CostSpec doorbell_write_8b = CostSpec::jittered(15.0, 0.15);

  // --- Measurement infrastructure (§3) ------------------------------------
  /// One profiling timestamp pair: isb + cntvct_el0 read + record. The
  /// profiler subtracts the configured mean, reproducing §3's methodology.
  CostSpec timer_read = CostSpec{49.69, 1.48 / 49.69, 0.0, 0.0};

  // --- Plain memory ops (§7 "PIO" optimization reference point) -----------
  /// 64-byte copy to cacheable Normal memory ("less than a nanosecond").
  CostSpec memcpy_normal_64b = CostSpec::jittered(0.9, 0.10);

  // --- HLP: initiation (§5, Table 1) --------------------------------------
  /// MPICH work inside MPI_Isend above ucp_tag_send_nb.
  CostSpec mpich_isend = CostSpec::jittered(24.37, 0.15);
  /// UCP work inside ucp_tag_send_nb above uct_ep_am_short.
  CostSpec ucp_isend = CostSpec::jittered(2.19, 0.15);

  // --- HLP: receive-side progress (§5-§6, Table 1) -------------------------
  /// Registered MPICH callback for a completed MPI_Irecv.
  CostSpec mpich_rx_callback = CostSpec::jittered(47.99, 0.15);
  /// Registered UCP callback (UCP-only share; the MPICH callback is timed
  /// separately).
  CostSpec ucp_rx_callback = CostSpec::jittered(139.78, 0.15);
  /// MPICH work after a successful ucp_worker_progress before MPI_Wait
  /// returns (measured 36.89 in §6).
  CostSpec mpich_after_progress = CostSpec::jittered(36.89, 0.15);
  /// MPICH blocking-wait fixed work (entry, request inspection, loop
  /// control). Derived: MPI_Wait-in-MPICH 293.29 = this + mpich_rx_callback
  /// 47.99 + mpich_after_progress 36.89  =>  208.41.
  CostSpec mpich_wait_fixed = CostSpec::jittered(208.41, 0.15);
  /// UCP work per ucp_worker_progress pass excluding callbacks. Derived:
  /// MPI_Wait-in-UCP 150.51 = this + ucp_rx_callback 139.78  =>  10.73.
  CostSpec ucp_progress_iter = CostSpec::jittered(10.73, 0.15);

  // --- HLP: send-side progress (§6) ----------------------------------------
  /// Per-operation HLP overhead of progressing sends inside MPI_Waitall
  /// (unsignalled completions amortize the LLP share to <1 ns). Derived:
  /// Post_prog 59.82 minus the amortized LLP_prog (61.63/64 = 0.96).
  CostSpec hlp_tx_prog = CostSpec::jittered(58.86, 0.15);

  // --- Interrupt-driven completion (§2's alternative to polling) ----------
  /// Kernel context switch + interrupt handling on the critical path when
  /// the user requests completion notification instead of polling. §2:
  /// "the polling approach is latency-oriented since there is no context
  /// switch to the kernel in the critical path."
  CostSpec interrupt_wakeup = CostSpec::jittered(2400.0, 0.20);

  // --- Background noise -----------------------------------------------------
  /// Rare per-iteration OS hiccup applied by benchmark loops; produces the
  /// heavy tail in Fig. 7 (max ~35 us against a 282 ns mean).
  CostSpec loop_hiccup = CostSpec{0.0, 0.0, 1.5e-4, 2200.0};
  /// Per-iteration microarchitectural noise of the injection hot loop
  /// (cache/TLB/branch effects): exponential, i.e. strongly right-skewed.
  /// Together with the hot-loop speed factor this reproduces Fig. 7's
  /// shifted-exponential shape -- its mean-median gap of ~16 ns equals
  /// sd x (1 - ln 2) for an exponential component.
  CostSpec loop_exp_noise = CostSpec{0.0, 0.0, 1.0, 58.0};

  /// Removes all jitter and tails (deterministic timing, used by tests and
  /// by exact model-vs-simulator comparisons).
  void strip_jitter() {
    for (CostSpec* s :
         {&md_setup, &barrier_store_md, &barrier_store_dbc, &pio_copy_64b,
          &llp_post_misc, &llp_prog, &llp_empty_progress, &busy_post,
          &doorbell_write_8b, &timer_read, &memcpy_normal_64b, &mpich_isend,
          &ucp_isend, &mpich_rx_callback, &ucp_rx_callback,
          &mpich_after_progress, &mpich_wait_fixed, &ucp_progress_iter,
          &hlp_tx_prog, &interrupt_wakeup, &loop_hiccup, &loop_exp_noise}) {
      s->cv = 0.0;
      s->tail_prob = 0.0;
    }
  }

  /// The paper's own Table-1 LLP_post total (sum of the five constituent
  /// means); useful for model cross-checks.
  double llp_post_mean_ns() const {
    return md_setup.mean_ns + barrier_store_md.mean_ns +
           barrier_store_dbc.mean_ns + pio_copy_64b.mean_ns +
           llp_post_misc.mean_ns;
  }
};

}  // namespace bb::cpu
