#pragma once
// The multi-peer communicator bb::coll schedules run over.
//
// A Cluster gives every rank one node (core, host memory, PCIe, NIC) and
// one LLP worker; the pt2pt stack above it (UcpWorker -> MpiComm) models
// protocol state toward exactly one peer. A Communicator therefore owns
// one full per-peer stack per remote rank, all demultiplexed over the
// node's single RX CQ by an hlp::RxMux keyed on the source rank stamped
// into message headers, and provides the MPI-style progress engine that
// drives *all* of the rank's peers while blocked -- without it, a
// rendezvous CTS arriving for peer A while the rank waits on peer B
// would never be answered (classic multi-endpoint progress).
//
// Message payload *contents* ride out of band through World's per-pair
// FIFO mailboxes (the simulator's wire carries byte counts only); since
// both the fabric and the UCP matching engine preserve per-pair order,
// the k-th receive from a peer always pairs with the k-th payload, which
// is what lets the collective tests assert reduction results.

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "hlp/mpi.hpp"
#include "hlp/mux.hpp"
#include "scenario/cluster.hpp"

namespace bb::coll {

class World;

class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }
  cpu::Core& core() { return node_.core; }
  scenario::Testbed::Node& node() { return node_; }
  const CollTuning& tuning() const;

  /// MPI_Isend to `peer`; `data` is the logical payload (may be empty for
  /// pure-synchronization messages) delivered through the mailbox.
  sim::Task<hlp::Request*> isend(int peer, std::uint32_t bytes,
                                 std::vector<double> data = {});
  /// MPI_Irecv from `peer`.
  hlp::Request* irecv(int peer, std::uint32_t bytes);
  /// The logical payload of the oldest completed-and-unconsumed receive
  /// from `peer` (FIFO per pair; call after the matching wait returned).
  std::vector<double> take_data(int peer);

  /// Blocking MPI_Wait: the multi-peer progress engine (all peers'
  /// pending work + one shared uct_worker_progress per pass).
  sim::Task<common::Status> wait(hlp::Request* req);
  /// MPI_Waitall over a window.
  sim::Task<common::Status> waitall(const std::vector<hlp::Request*>& reqs);

  /// One progress pass over every peer stack.
  sim::Task<std::uint32_t> progress();

  std::uint64_t isends() const { return isends_; }
  std::uint64_t waits() const { return waits_; }

 private:
  friend class World;
  Communicator(World& world, scenario::Cluster& cl, int rank,
               std::uint32_t signal_period, std::uint32_t rndv_threshold);

  World& world_;
  scenario::Testbed::Node& node_;
  int rank_;
  int size_;
  hlp::RxMux mux_;
  // Indexed by peer rank; the self slot stays empty.
  std::vector<std::unique_ptr<hlp::UcpWorker>> ucp_;
  std::vector<std::unique_ptr<hlp::MpiComm>> mpi_;
  std::uint64_t isends_ = 0;
  std::uint64_t waits_ = 0;
};

/// All ranks of one job: builds a Communicator per cluster node and the
/// mailbox fabric between them.
class World {
 public:
  struct Config {
    /// One CQE per `signal_period` sends (UCX default 64).
    std::uint32_t signal_period = 64;
    /// UCP eager->rendezvous crossover.
    std::uint32_t rndv_threshold = 1024;
    /// Receive WQEs pre-posted per node (collectives keep the RQ fed the
    /// way MPI implementations do).
    std::uint32_t preposted_receives = 1u << 16;
  };

  World(scenario::Cluster& cl, Config cfg);
  explicit World(scenario::Cluster& cl) : World(cl, Config{}) {}

  int size() const { return static_cast<int>(comms_.size()); }
  Communicator& comm(int rank) { return *comms_[static_cast<std::size_t>(rank)]; }
  scenario::Cluster& cluster() { return cl_; }

 private:
  friend class Communicator;
  void deliver(int src, int dst, std::vector<double> data) {
    inbox_[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)]
        .push_back(std::move(data));
  }
  std::vector<double> take(int dst, int src);

  scenario::Cluster& cl_;
  std::vector<std::unique_ptr<Communicator>> comms_;
  // inbox_[dst][src]: payloads in flight or awaiting consumption.
  std::vector<std::vector<std::deque<std::vector<double>>>> inbox_;
};

}  // namespace bb::coll
