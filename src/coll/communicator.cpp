#include "coll/communicator.hpp"

#include "common/assert.hpp"

namespace bb::coll {

Communicator::Communicator(World& world, scenario::Cluster& cl, int rank,
                           std::uint32_t signal_period,
                           std::uint32_t rndv_threshold)
    : world_(world),
      node_(cl.node(rank)),
      rank_(rank),
      size_(cl.node_count()),
      mux_(node_.worker) {
  ucp_.resize(static_cast<std::size_t>(size_));
  mpi_.resize(static_cast<std::size_t>(size_));
  for (int peer = 0; peer < size_; ++peer) {
    if (peer == rank_) continue;
    llp::EndpointConfig ec = cl.config().endpoint;
    ec.signal.period = signal_period;
    llp::Endpoint& ep = cl.add_endpoint(rank_, peer, ec);
    hlp::UcpConfig uc;
    uc.rndv_threshold = rndv_threshold;
    uc.src_rank = rank_;
    uc.attach_rx = false;  // the mux owns the node's RX handler
    auto ucp = std::make_unique<hlp::UcpWorker>(node_.worker, ep, uc);
    mux_.attach(peer, ucp.get());
    mpi_[static_cast<std::size_t>(peer)] =
        std::make_unique<hlp::MpiComm>(*ucp);
    ucp_[static_cast<std::size_t>(peer)] = std::move(ucp);
  }
}

const CollTuning& Communicator::tuning() const {
  return world_.cluster().config().coll;
}

sim::Task<hlp::Request*> Communicator::isend(int peer, std::uint32_t bytes,
                                             std::vector<double> data) {
  BB_ASSERT(peer >= 0 && peer < size_ && peer != rank_);
  world_.deliver(rank_, peer, std::move(data));
  ++isends_;
  common::Expected<hlp::Request*> r =
      co_await mpi_[static_cast<std::size_t>(peer)]->isend(bytes);
  co_return r.value();
}

hlp::Request* Communicator::irecv(int peer, std::uint32_t bytes) {
  BB_ASSERT(peer >= 0 && peer < size_ && peer != rank_);
  return mpi_[static_cast<std::size_t>(peer)]->irecv(bytes).value();
}

std::vector<double> Communicator::take_data(int peer) {
  return world_.take(rank_, peer);
}

sim::Task<std::uint32_t> Communicator::progress() {
  // One UCP pass for the whole communicator: drive every peer's queued
  // work (busy-post retries, rendezvous control/data), then one shared
  // uct_worker_progress whose completions the mux fans back out, then
  // the state machines those completions unblocked.
  cpu::Core& c = core();
  c.consume(c.costs().ucp_progress_iter);
  for (auto& u : ucp_) {
    if (u && u->has_pending_work()) co_await u->progress_pending();
  }
  const std::uint32_t n = co_await node_.worker.progress();
  for (auto& u : ucp_) {
    if (u && u->has_pending_work()) co_await u->progress_pending();
  }
  co_return n;
}

sim::Task<common::Status> Communicator::wait(hlp::Request* req) {
  cpu::Core& c = core();
  // Same cost structure as the pt2pt MpiComm::wait; the progress engine
  // spans all peers.
  c.consume(c.costs().mpich_wait_fixed);
  const double timeout_us = tuning().wait_timeout_us;
  const TimePs deadline =
      c.virtual_now() + TimePs::from_ns(timeout_us * 1000.0);
  while (!req->complete) {
    if (timeout_us > 0.0 && c.virtual_now() > deadline) {
      // Watchdog: diagnosable abort instead of a hang (the request stays
      // incomplete; the transport underneath it is stuck or flushed).
      co_await c.flush();
      co_return common::Status::kTimedOut;
    }
    co_await progress();
  }
  c.consume(c.costs().mpich_after_progress);
  ++waits_;
  co_await c.flush();
  co_return req->status;
}

sim::Task<common::Status> Communicator::waitall(
    const std::vector<hlp::Request*>& reqs) {
  cpu::Core& c = core();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    c.consume(c.costs().hlp_tx_prog);
  }
  const double timeout_us = tuning().wait_timeout_us;
  const TimePs deadline =
      c.virtual_now() + TimePs::from_ns(timeout_us * 1000.0);
  for (;;) {
    bool all = true;
    for (hlp::Request* r : reqs) {
      if (!r->complete) {
        all = false;
        break;
      }
    }
    if (all) break;
    if (timeout_us > 0.0 && c.virtual_now() > deadline) {
      co_await c.flush();
      co_return common::Status::kTimedOut;
    }
    co_await progress();
  }
  co_await c.flush();
  for (hlp::Request* r : reqs) {
    if (r->status != common::Status::kOk) co_return r->status;
  }
  co_return common::Status::kOk;
}

World::World(scenario::Cluster& cl, Config cfg) : cl_(cl) {
  const int n = cl.node_count();
  inbox_.resize(static_cast<std::size_t>(n));
  for (auto& row : inbox_) row.resize(static_cast<std::size_t>(n));
  comms_.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    cl.node(r).nic.post_receives(cfg.preposted_receives);
    comms_.push_back(std::unique_ptr<Communicator>(new Communicator(
        *this, cl, r, cfg.signal_period, cfg.rndv_threshold)));
  }
}

std::vector<double> World::take(int dst, int src) {
  auto& q =
      inbox_[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)];
  BB_ASSERT_MSG(!q.empty(), "take_data with no unconsumed receive");
  std::vector<double> d = std::move(q.front());
  q.pop_front();
  return d;
}

}  // namespace bb::coll
