#pragma once
// bb::coll -- MPI-style collectives as coroutine schedules over the
// simulated pt2pt stack (MPICH/CH4 over the UCP model of §5).
//
// Each primitive ships two algorithms spanning the classic latency /
// bandwidth trade-off, selected MPICH/UCX-style from message size and
// rank count (CollTuning, part of scenario::SystemConfig):
//
//   Barrier    dissemination (log rounds)   | two-pass ring token
//   Bcast      binomial tree (MPICH)        | pipelined chain
//   Allgather  Bruck (log rounds)           | ring (n-1 steps)
//   Allreduce  recursive doubling (MPICH,   | ring (reduce-scatter +
//              non-power-of-two fold)       |       ring allgather)
//
// Payload convention: data-bearing collectives move vectors of doubles;
// the wire size of a message carrying k elements is max(8, 8*k) bytes
// (every protocol message occupies at least one 8-byte slot, matching
// the pt2pt layer's control-message size). The analytical cost model in
// bb::model replicates these byte counts step for step.

#include <cstdint>
#include <vector>

#include "coll/communicator.hpp"

namespace bb::coll {

enum class Algo {
  kAuto,  ///< pick from CollTuning (message size + rank count)
  // Barrier
  kDissemination,
  kRingToken,
  // Bcast
  kBinomialTree,
  kChain,
  // Allgather
  kBruck,
  kRingAllgather,
  // Allreduce
  kRecursiveDoubling,
  kRingAllreduce,
};

const char* algo_name(Algo a);

enum class ReduceOp { kSum, kMax };

/// Wire size of a message carrying `bytes` of payload (>= one 8B slot).
inline std::uint32_t wire_bytes(std::uint64_t bytes) {
  return bytes < 8 ? 8u : static_cast<std::uint32_t>(bytes);
}

/// The concrete algorithm `Algo::kAuto` resolves to, given the tuning
/// thresholds, rank count and (for data-bearing collectives) the total
/// payload in bytes. Exposed so benches and the cost model agree with
/// the schedules on what actually runs.
Algo resolve_barrier(const CollTuning& t, int nranks, Algo a = Algo::kAuto);
Algo resolve_bcast(const CollTuning& t, int nranks, std::uint32_t bytes,
                   Algo a = Algo::kAuto);
Algo resolve_allgather(const CollTuning& t, int nranks,
                       std::uint32_t bytes_per_rank, Algo a = Algo::kAuto);
Algo resolve_allreduce(const CollTuning& t, int nranks, std::uint32_t bytes,
                       Algo a = Algo::kAuto);

/// MPI_Barrier.
sim::Task<void> barrier(Communicator& c, Algo a = Algo::kAuto);

/// MPI_Bcast: on the root, `data` holds the payload (bytes/8 elements);
/// elsewhere it is overwritten with the root's payload.
sim::Task<void> bcast(Communicator& c, int root, std::uint32_t bytes,
                      std::vector<double>& data, Algo a = Algo::kAuto);

/// MPI_Allgather: every rank contributes `mine` (bytes_per_rank/8
/// elements); `out` ends up with one entry per rank, `out[r]` = rank r's
/// contribution (including our own).
sim::Task<void> allgather(Communicator& c, std::uint32_t bytes_per_rank,
                          const std::vector<double>& mine,
                          std::vector<std::vector<double>>& out,
                          Algo a = Algo::kAuto);

/// MPI_Allreduce: elementwise `op` across all ranks' `inout` vectors
/// (bytes/8 elements each); every rank ends with the reduced vector.
sim::Task<void> allreduce(Communicator& c, std::uint32_t bytes,
                          std::vector<double>& inout, ReduceOp op,
                          Algo a = Algo::kAuto);

}  // namespace bb::coll
