#pragma once
// Algorithm-selection thresholds for the collective layer (bb::coll),
// MPICH/UCX style: short messages use the log-step algorithms (latency
// bound, minimize rounds), long messages the ring/chain family
// (bandwidth bound, minimize bytes moved per link). Part of
// scenario::SystemConfig so machines can retune the crossovers via
// overlays (a Gen-Z-class switch shifts them, for example).
//
// Header-only and dependency-free: scenario::SystemConfig embeds it, and
// bb::coll / bb::model consume it.

#include <cstdint>

namespace bb::coll {

struct CollTuning {
  /// Bcast: binomial tree below, chain (pipelined ring) at and above.
  std::uint32_t bcast_chain_min_bytes = 2048;
  /// Chain bcast pipelines the payload in segments of this size.
  std::uint32_t bcast_chain_segment_bytes = 1024;
  /// Allgather: Bruck below, ring at and above (per-rank contribution).
  std::uint32_t allgather_ring_min_bytes = 1024;
  /// Allreduce: recursive doubling below, ring (reduce-scatter +
  /// allgather) at and above.
  std::uint32_t allreduce_ring_min_bytes = 2048;
  /// Barrier: ring token up to this many ranks (cheap at trivial scale),
  /// dissemination above. 0 = always dissemination (the MPICH default).
  int barrier_ring_max_ranks = 0;
  /// Progress-engine watchdog for wait/waitall, in simulated
  /// microseconds: a request still incomplete after this long aborts the
  /// wait with common::Status::kTimedOut instead of hanging -- the
  /// lossy-fabric insurance of docs/TRANSPORT.md (e.g. a peer's QP died
  /// and its ops were flushed). Checked inside the existing progress
  /// loop, so no timer events are scheduled and error-free timing is
  /// untouched. 0 disables. The default is orders of magnitude above any
  /// healthy collective wait in the bench suite (whole 8-rank allreduce
  /// runs finish in ~25 ms simulated).
  double wait_timeout_us = 50000.0;
};

}  // namespace bb::coll
