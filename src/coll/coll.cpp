#include "coll/coll.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bb::coll {

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kAuto: return "auto";
    case Algo::kDissemination: return "dissemination";
    case Algo::kRingToken: return "ring-token";
    case Algo::kBinomialTree: return "binomial-tree";
    case Algo::kChain: return "chain";
    case Algo::kBruck: return "bruck";
    case Algo::kRingAllgather: return "ring";
    case Algo::kRecursiveDoubling: return "recursive-doubling";
    case Algo::kRingAllreduce: return "ring";
  }
  BB_UNREACHABLE("bad Algo");
}

Algo resolve_barrier(const CollTuning& t, int nranks, Algo a) {
  if (a != Algo::kAuto) {
    BB_ASSERT(a == Algo::kDissemination || a == Algo::kRingToken);
    return a;
  }
  return nranks <= t.barrier_ring_max_ranks ? Algo::kRingToken
                                            : Algo::kDissemination;
}

Algo resolve_bcast(const CollTuning& t, int nranks, std::uint32_t bytes,
                   Algo a) {
  if (a != Algo::kAuto) {
    BB_ASSERT(a == Algo::kBinomialTree || a == Algo::kChain);
    return a;
  }
  (void)nranks;
  return bytes >= t.bcast_chain_min_bytes ? Algo::kChain
                                          : Algo::kBinomialTree;
}

Algo resolve_allgather(const CollTuning& t, int nranks,
                       std::uint32_t bytes_per_rank, Algo a) {
  if (a != Algo::kAuto) {
    BB_ASSERT(a == Algo::kBruck || a == Algo::kRingAllgather);
    return a;
  }
  (void)nranks;
  return bytes_per_rank >= t.allgather_ring_min_bytes ? Algo::kRingAllgather
                                                      : Algo::kBruck;
}

Algo resolve_allreduce(const CollTuning& t, int nranks, std::uint32_t bytes,
                       Algo a) {
  if (a != Algo::kAuto) {
    BB_ASSERT(a == Algo::kRecursiveDoubling || a == Algo::kRingAllreduce);
    return a;
  }
  (void)nranks;
  return bytes >= t.allreduce_ring_min_bytes ? Algo::kRingAllreduce
                                             : Algo::kRecursiveDoubling;
}

namespace {

/// Simultaneous exchange with (possibly identical) peers: recv posted
/// first (MPI idiom), both completed by the shared progress engine, the
/// received payload handed back.
sim::Task<std::vector<double>> sendrecv(Communicator& c, int dst,
                                        std::uint32_t send_bytes,
                                        std::vector<double> send_data,
                                        int src, std::uint32_t recv_bytes) {
  hlp::Request* rr = c.irecv(src, recv_bytes);
  hlp::Request* sr = co_await c.isend(dst, send_bytes, std::move(send_data));
  std::vector<hlp::Request*> reqs;
  reqs.push_back(sr);
  reqs.push_back(rr);
  co_await c.waitall(reqs);
  co_return c.take_data(src);
}

void reduce_into(ReduceOp op, std::vector<double>& dst,
                 const std::vector<double>& src, std::size_t dst_off = 0) {
  BB_ASSERT(dst_off + src.size() <= dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    double& d = dst[dst_off + i];
    d = op == ReduceOp::kSum ? d + src[i] : std::max(d, src[i]);
  }
}

// ---------------------------------------------------------------- Barrier

sim::Task<void> barrier_dissemination(Communicator& c) {
  const int n = c.size(), r = c.rank();
  // Round k: notify rank r+2^k, hear from rank r-2^k. ceil(log2 n)
  // rounds, after which every rank transitively heard from every other.
  for (int k = 1; k < n; k <<= 1) {
    const int dst = (r + k) % n;
    const int src = (r - k + n) % n;
    // Named empty payload: GCC 12 double-destroys prvalue temporaries
    // passed as coroutine arguments inside co_await expressions.
    std::vector<double> token;
    (void)co_await sendrecv(c, dst, 8, std::move(token), src, 8);
  }
  co_return;
}

sim::Task<void> barrier_ring_token(Communicator& c) {
  const int n = c.size(), r = c.rank();
  const int right = (r + 1) % n, left = (r - 1 + n) % n;
  // Two laps of a token: lap one proves everyone arrived, lap two
  // releases everyone (a rank may only leave once the token has visited
  // all ranks *after* its own arrival).
  for (int lap = 0; lap < 2; ++lap) {
    if (r == 0) {
      hlp::Request* s = co_await c.isend(right, 8);
      co_await c.wait(s);
      hlp::Request* rr = c.irecv(left, 8);
      co_await c.wait(rr);
      (void)c.take_data(left);
    } else {
      hlp::Request* rr = c.irecv(left, 8);
      co_await c.wait(rr);
      (void)c.take_data(left);
      hlp::Request* s = co_await c.isend(right, 8);
      co_await c.wait(s);
    }
  }
  co_return;
}

// ------------------------------------------------------------------ Bcast

sim::Task<void> bcast_binomial(Communicator& c, int root, std::uint32_t bytes,
                               std::vector<double>& data) {
  const int n = c.size(), r = c.rank();
  const int vr = (r - root + n) % n;  // relative rank: root becomes 0
  const std::uint32_t wb = wire_bytes(bytes);

  // Receive phase: the lowest set bit of vr names the subtree parent.
  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      const int src = (vr - mask + root) % n;
      hlp::Request* rr = c.irecv(src, wb);
      co_await c.wait(rr);
      data = c.take_data(src);
      break;
    }
    mask <<= 1;
  }
  // Send phase: peel the mask back down, feeding each child subtree.
  mask >>= 1;
  std::vector<hlp::Request*> sends;
  while (mask > 0) {
    if (vr + mask < n) {
      const int dst = (vr + mask + root) % n;
      sends.push_back(co_await c.isend(dst, wb, data));
    }
    mask >>= 1;
  }
  if (!sends.empty()) co_await c.waitall(sends);
  co_return;
}

sim::Task<void> bcast_chain(Communicator& c, int root, std::uint32_t bytes,
                            std::vector<double>& data) {
  const int n = c.size(), r = c.rank();
  const std::uint32_t seg =
      std::max<std::uint32_t>(8, c.tuning().bcast_chain_segment_bytes);
  const int vr = (r - root + n) % n;
  const int nseg = static_cast<int>((bytes + seg - 1) / seg);
  auto seg_bytes = [&](int s) {
    const std::uint32_t last = bytes - seg * static_cast<std::uint32_t>(nseg - 1);
    return wire_bytes(s == nseg - 1 ? last : seg);
  };
  const int prev = (vr - 1 + root + n) % n;
  const int next = (vr + 1 + root) % n;

  if (vr == 0) {
    // Root: stream all segments down the chain. The logical payload
    // rides on segment 0; later segments carry bytes only.
    std::vector<hlp::Request*> sends;
    sends.reserve(static_cast<std::size_t>(nseg));
    for (int s = 0; s < nseg; ++s) {
      std::vector<double> payload;
      if (s == 0) payload = data;
      sends.push_back(co_await c.isend(next, seg_bytes(s), std::move(payload)));
    }
    co_await c.waitall(sends);
    co_return;
  }

  // Interior and tail ranks: pre-post every segment, then forward each
  // the moment it lands -- segment s flows down the chain while segment
  // s+1 is still in flight upstream (the pipeline).
  std::vector<hlp::Request*> recvs;
  recvs.reserve(static_cast<std::size_t>(nseg));
  for (int s = 0; s < nseg; ++s) recvs.push_back(c.irecv(prev, seg_bytes(s)));
  std::vector<hlp::Request*> sends;
  for (int s = 0; s < nseg; ++s) {
    co_await c.wait(recvs[static_cast<std::size_t>(s)]);
    std::vector<double> got = c.take_data(prev);
    if (s == 0) data = got;
    if (vr != n - 1) {
      sends.push_back(co_await c.isend(next, seg_bytes(s), std::move(got)));
    }
  }
  if (!sends.empty()) co_await c.waitall(sends);
  co_return;
}

// -------------------------------------------------------------- Allgather

sim::Task<void> allgather_ring(Communicator& c, std::uint32_t bytes_per_rank,
                               const std::vector<double>& mine,
                               std::vector<std::vector<double>>& out) {
  const int n = c.size(), r = c.rank();
  const std::uint32_t wb = wire_bytes(bytes_per_rank);
  const int right = (r + 1) % n, left = (r - 1 + n) % n;
  out.assign(static_cast<std::size_t>(n), {});
  out[static_cast<std::size_t>(r)] = mine;
  // Step s: pass block (r-s) right while block (r-s-1) arrives from the
  // left; after n-1 steps every block has visited every rank.
  for (int s = 0; s < n - 1; ++s) {
    const int sb = (r - s + n) % n;
    const int rb = (r - s - 1 + n) % n;
    out[static_cast<std::size_t>(rb)] = co_await sendrecv(
        c, right, wb, out[static_cast<std::size_t>(sb)], left, wb);
  }
  co_return;
}

sim::Task<void> allgather_bruck(Communicator& c, std::uint32_t bytes_per_rank,
                                const std::vector<double>& mine,
                                std::vector<std::vector<double>>& out) {
  const int n = c.size(), r = c.rank();
  const std::size_t elems = mine.size();
  // tmp[i] accumulates the contribution of rank (r+i) % n; round k ships
  // the first min(k, n-k) filled blocks k ranks backwards, doubling the
  // filled prefix. Works for any n (the tail round is partial).
  std::vector<std::vector<double>> tmp(static_cast<std::size_t>(n));
  tmp[0] = mine;
  for (int k = 1; k < n; k <<= 1) {
    const int cnt = std::min(k, n - k);
    const int dst = (r - k + n) % n, src = (r + k) % n;
    std::vector<double> payload;
    payload.reserve(static_cast<std::size_t>(cnt) * elems);
    for (int i = 0; i < cnt; ++i) {
      payload.insert(payload.end(), tmp[static_cast<std::size_t>(i)].begin(),
                     tmp[static_cast<std::size_t>(i)].end());
    }
    const std::uint32_t wb =
        wire_bytes(static_cast<std::uint64_t>(cnt) * bytes_per_rank);
    std::vector<double> got =
        co_await sendrecv(c, dst, wb, std::move(payload), src, wb);
    BB_ASSERT(got.size() == static_cast<std::size_t>(cnt) * elems);
    for (int i = 0; i < cnt; ++i) {
      auto first = got.begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(i) * elems);
      tmp[static_cast<std::size_t>(k + i)].assign(
          first, first + static_cast<std::ptrdiff_t>(elems));
    }
  }
  out.assign(static_cast<std::size_t>(n), {});
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>((r + i) % n)] =
        std::move(tmp[static_cast<std::size_t>(i)]);
  }
  co_return;
}

// -------------------------------------------------------------- Allreduce

sim::Task<void> allreduce_ring(Communicator& c, std::uint32_t bytes,
                               std::vector<double>& inout, ReduceOp op) {
  const int n = c.size(), r = c.rank();
  const std::size_t elems = inout.size();
  (void)bytes;
  // Ceil-partition the vector into n chunks (front chunks one element
  // larger); chunks that come up empty still cost one 8B control slot on
  // the wire, which the cost model mirrors.
  std::vector<std::size_t> counts(static_cast<std::size_t>(n)),
      displs(static_cast<std::size_t>(n));
  const std::size_t base = elems / static_cast<std::size_t>(n);
  const std::size_t rem = elems % static_cast<std::size_t>(n);
  for (std::size_t i = 0, off = 0; i < static_cast<std::size_t>(n); ++i) {
    counts[i] = base + (i < rem ? 1 : 0);
    displs[i] = off;
    off += counts[i];
  }
  auto chunk_wire = [&](int i) {
    return wire_bytes(8ull * counts[static_cast<std::size_t>(i)]);
  };
  auto chunk_copy = [&](int i) {
    const auto b = inout.begin() +
                   static_cast<std::ptrdiff_t>(displs[static_cast<std::size_t>(i)]);
    return std::vector<double>(
        b, b + static_cast<std::ptrdiff_t>(counts[static_cast<std::size_t>(i)]));
  };
  const int right = (r + 1) % n, left = (r - 1 + n) % n;

  // Reduce-scatter lap: after step s rank r holds the partial reduction
  // of chunk (r-s-1) over s+2 ranks; after n-1 steps it owns the fully
  // reduced chunk (r+1) % n.
  for (int s = 0; s < n - 1; ++s) {
    const int sc = (r - s + n) % n;
    const int rc = (r - s - 1 + n) % n;
    std::vector<double> outgoing = chunk_copy(sc);
    std::vector<double> got =
        co_await sendrecv(c, right, chunk_wire(sc), std::move(outgoing), left,
                          chunk_wire(rc));
    reduce_into(op, inout, got, displs[static_cast<std::size_t>(rc)]);
  }
  // Allgather lap: circulate the reduced chunks.
  for (int s = 0; s < n - 1; ++s) {
    const int sc = (r + 1 - s + n) % n;
    const int rc = (r - s + n) % n;
    std::vector<double> outgoing = chunk_copy(sc);
    std::vector<double> got =
        co_await sendrecv(c, right, chunk_wire(sc), std::move(outgoing), left,
                          chunk_wire(rc));
    std::copy(got.begin(), got.end(),
              inout.begin() +
                  static_cast<std::ptrdiff_t>(displs[static_cast<std::size_t>(rc)]));
  }
  co_return;
}

sim::Task<void> allreduce_recursive_doubling(Communicator& c,
                                             std::uint32_t bytes,
                                             std::vector<double>& inout,
                                             ReduceOp op) {
  const int n = c.size(), r = c.rank();
  const std::uint32_t wb = wire_bytes(bytes);
  // MPICH non-power-of-two fold: the first 2*rem ranks pair up so that
  // pof2 ranks run the power-of-two exchange, then the result unfolds.
  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;

  int newrank;
  if (r < 2 * rem) {
    if ((r & 1) == 0) {
      hlp::Request* s = co_await c.isend(r + 1, wb, inout);
      co_await c.wait(s);
      newrank = -1;  // folded out until the final unfold
    } else {
      hlp::Request* rr = c.irecv(r - 1, wb);
      co_await c.wait(rr);
      reduce_into(op, inout, c.take_data(r - 1));
      newrank = r / 2;
    }
  } else {
    newrank = r - rem;
  }

  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int peer_new = newrank ^ mask;
      const int peer = peer_new < rem ? peer_new * 2 + 1 : peer_new + rem;
      std::vector<double> got =
          co_await sendrecv(c, peer, wb, inout, peer, wb);
      reduce_into(op, inout, got);
    }
  }

  if (r < 2 * rem) {
    if (r & 1) {
      hlp::Request* s = co_await c.isend(r - 1, wb, inout);
      co_await c.wait(s);
    } else {
      hlp::Request* rr = c.irecv(r + 1, wb);
      co_await c.wait(rr);
      inout = c.take_data(r + 1);
    }
  }
  co_return;
}

}  // namespace

// ----------------------------------------------------------- entry points

sim::Task<void> barrier(Communicator& c, Algo a) {
  if (c.size() < 2) co_return;
  switch (resolve_barrier(c.tuning(), c.size(), a)) {
    case Algo::kRingToken: co_await barrier_ring_token(c); break;
    default: co_await barrier_dissemination(c); break;
  }
}

sim::Task<void> bcast(Communicator& c, int root, std::uint32_t bytes,
                      std::vector<double>& data, Algo a) {
  BB_ASSERT(root >= 0 && root < c.size());
  BB_ASSERT(bytes >= 8 && bytes % 8 == 0);
  if (c.size() < 2) co_return;
  if (c.rank() == root) BB_ASSERT(data.size() == bytes / 8);
  switch (resolve_bcast(c.tuning(), c.size(), bytes, a)) {
    case Algo::kChain: co_await bcast_chain(c, root, bytes, data); break;
    default: co_await bcast_binomial(c, root, bytes, data); break;
  }
}

sim::Task<void> allgather(Communicator& c, std::uint32_t bytes_per_rank,
                          const std::vector<double>& mine,
                          std::vector<std::vector<double>>& out, Algo a) {
  BB_ASSERT(bytes_per_rank >= 8 && bytes_per_rank % 8 == 0);
  BB_ASSERT(mine.size() == bytes_per_rank / 8);
  if (c.size() < 2) {
    out.assign(1, mine);
    co_return;
  }
  switch (resolve_allgather(c.tuning(), c.size(), bytes_per_rank, a)) {
    case Algo::kRingAllgather:
      co_await allgather_ring(c, bytes_per_rank, mine, out);
      break;
    default: co_await allgather_bruck(c, bytes_per_rank, mine, out); break;
  }
}

sim::Task<void> allreduce(Communicator& c, std::uint32_t bytes,
                          std::vector<double>& inout, ReduceOp op, Algo a) {
  BB_ASSERT(bytes >= 8 && bytes % 8 == 0);
  BB_ASSERT(inout.size() == bytes / 8);
  if (c.size() < 2) co_return;
  switch (resolve_allreduce(c.tuning(), c.size(), bytes, a)) {
    case Algo::kRingAllreduce:
      co_await allreduce_ring(c, bytes, inout, op);
      break;
    default:
      co_await allreduce_recursive_doubling(c, bytes, inout, op);
      break;
  }
}

}  // namespace bb::coll
