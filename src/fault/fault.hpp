#pragma once
// Deterministic, seed-driven fault injection for the transport stack.
//
// The paper's breakdown lives on the error-free critical path; this module
// perturbs it in a controlled way so the recovery machinery (data-link
// replay, credit re-emission, error completions) can be exercised and its
// latency cost attributed. Two kinds of faults are modelled:
//
//  * BER-style probabilistic faults: every TLP/DLLP transmission consults
//    the injector, which corrupts or drops it with configured probability.
//  * Scheduled one-shot faults: a specific data-link sequence number on a
//    specific link direction is hit exactly once (or, for kKillTlp, on
//    every retransmission attempt until the sender gives up and forwards
//    the TLP poisoned).
//
// Determinism: the injector owns a private Rng forked off the scenario
// seed, so fault decisions never perturb the simulator's main stream. With
// a default (all-zero) FaultConfig the injector is never consulted, no
// timers are armed, and a run is bit-identical to one without the module
// compiled in -- the property the fault-rate->0 golden test pins down.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace bb::fault {

/// Link direction, mirroring pcie::Direction without depending on it
/// (bb_fault sits below bb_pcie in the module graph).
enum class LinkDir : std::uint8_t {
  kDownstream = 0,  // Root Complex -> NIC
  kUpstream = 1,    // NIC -> Root Complex
};

/// A fault scheduled against one specific packet.
struct OneShot {
  enum class Kind : std::uint8_t {
    kCorruptTlp,   // LCRC failure at the receiver -> Nak + replay
    kDropTlp,      // TLP vanishes on the wire -> replay-timer recovery
    kDropAck,      // the Nth Ack/Nak DLLP in `dir` is lost
    kDropUpdateFC, // the Nth UpdateFC DLLP in `dir` is lost
    kKillTlp,      // corrupt *every* attempt of this TLP: forces the
                   // replay budget to exhaust and the TLP to be forwarded
                   // poisoned (-> error CQE)
  };
  Kind kind = Kind::kCorruptTlp;
  LinkDir dir = LinkDir::kDownstream;
  /// For TLP kinds: the data-link sequence number (1-based, per
  /// direction). For DLLP kinds: the Nth DLLP of that class (1-based).
  std::uint64_t seq = 0;
};

/// A fault scheduled against one specific fabric packet (wire level, as
/// opposed to the PCIe data-link OneShot above). Data packets are matched
/// by PSN; control (ACK/NAK/connect) packets by per-source ordinal.
struct WireOneShot {
  enum class Kind : std::uint8_t {
    kDropData,      // one data packet vanishes -> NAK/retry-timer recovery
    kKillData,      // drop *every* attempt of this PSN: forces the retry
                    // budget to exhaust and the QP into the error state
    kDropAck,       // the Nth control packet from `src_node` is lost
    kDuplicateData, // one data packet is delivered twice (dup discard)
    kReorderData,   // one data packet is delayed past its successors
  };
  Kind kind = Kind::kDropData;
  /// Source node the packet leaves from; -1 matches any sender.
  int src_node = -1;
  /// For data kinds: the packet sequence number (PSN, 1-based per QP
  /// flow); 0 matches any. For kDropAck: the Nth control packet (1-based).
  std::uint64_t psn = 0;
};

/// Wire-level (fabric) fault knobs: the lossy-network model the RC
/// transport in the NIC recovers from (docs/TRANSPORT.md). Nested inside
/// FaultConfig so one overlay composes PCIe-link and wire faults.
struct WireFaultConfig {
  /// Per-packet silent-loss probability (NAK or retry timer recovers).
  double drop_prob = 0.0;
  /// Per-packet ICRC-corruption probability. Corrupt packets occupy the
  /// wire and arrive, but the receiving NIC discards them silently (IB
  /// semantics: no NAK for a bad ICRC) -- recovery is via PSN gap/timer.
  double corrupt_prob = 0.0;
  /// Per-packet duplication probability (receiver discards by PSN).
  double duplicate_prob = 0.0;
  /// Per-packet reorder probability: the packet is delayed by
  /// `reorder_delay_ns` and exempted from the sender's in-order gate, so
  /// successors can overtake it (receiver NAKs the PSN gap).
  double reorder_prob = 0.0;
  double reorder_delay_ns = 500.0;
  /// Scheduled one-shot wire faults (consumed in match order).
  std::vector<WireOneShot> scheduled;

  bool enabled() const {
    return drop_prob > 0.0 || corrupt_prob > 0.0 || duplicate_prob > 0.0 ||
           reorder_prob > 0.0 || !scheduled.empty();
  }
};

/// All fault-injection and recovery knobs. Lives in scenario::SystemConfig
/// and is applied per node; `enabled()` false means the stack runs the
/// original error-free fast path untouched.
struct FaultConfig {
  // --- injection ---------------------------------------------------------
  /// Per-TLP LCRC-corruption probability (receiver Naks the TLP).
  double tlp_corrupt_prob = 0.0;
  /// Per-TLP loss probability (no arrival; replay timer recovers).
  double tlp_drop_prob = 0.0;
  /// Per-Ack/Nak-DLLP loss probability.
  double ack_drop_prob = 0.0;
  /// Per-UpdateFC-DLLP loss probability (credit-timeout re-emission
  /// recovers).
  double updatefc_drop_prob = 0.0;
  /// Scheduled one-shot faults (consumed in match order).
  std::vector<OneShot> scheduled;

  // --- recovery ----------------------------------------------------------
  /// REPLAY_TIMER: unacknowledged TLPs older than this are retransmitted.
  double replay_timeout_ns = 3000.0;
  /// Retransmission budget per TLP; past it the TLP is forwarded poisoned
  /// (error-forwarding, the EP-bit model) and surfaced as an error CQE.
  int max_replays = 4;
  /// Lost UpdateFC DLLPs are re-emitted after this timeout (cumulative
  /// credit counters make re-emission idempotent).
  double fc_reemit_timeout_ns = 2000.0;

  // --- wire (fabric) faults ----------------------------------------------
  /// Lossy-network faults on net::Fabric packets; the NIC's RC transport
  /// (PSN/ACK/NAK/retry, docs/TRANSPORT.md) recovers from these.
  WireFaultConfig wire;

  /// PCIe data-link faults configured (gates the per-link FaultInjector).
  bool link_enabled() const {
    return tlp_corrupt_prob > 0.0 || tlp_drop_prob > 0.0 ||
           ack_drop_prob > 0.0 || updatefc_drop_prob > 0.0 ||
           !scheduled.empty();
  }
  /// Any fault source configured, at either layer.
  bool enabled() const { return link_enabled() || wire.enabled(); }
};

/// Flat counters for everything injected and everything recovered; merged
/// across components/nodes for the conservation checks in
/// bench_ablation_faults (every injected fault must be matched by a
/// recovery path).
struct FaultStats {
  // Injected.
  std::uint64_t tlps_corrupted = 0;
  std::uint64_t tlps_dropped = 0;
  std::uint64_t acks_dropped = 0;
  std::uint64_t updatefc_dropped = 0;
  // Recovery activity.
  std::uint64_t naks_sent = 0;
  std::uint64_t replays = 0;
  std::uint64_t replay_timeouts = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t fc_reemissions = 0;
  // Terminal outcomes.
  std::uint64_t poisoned_tlps = 0;      // gave up replaying, forwarded EP
  std::uint64_t poisoned_delivered = 0; // poisoned writes reaching host memory
  std::uint64_t error_cqes = 0;         // completions-with-error generated
  std::uint64_t read_retries = 0;       // NIC DMA reads reissued
  std::uint64_t busy_post_retries = 0;  // endpoint-level post retries

  std::uint64_t injected() const {
    return tlps_corrupted + tlps_dropped + acks_dropped + updatefc_dropped;
  }
  std::uint64_t recovered() const {
    return replays + fc_reemissions + error_cqes;
  }

  void merge(const FaultStats& o);
  /// Two-column table for reports (bb::prof attaches this to its output).
  std::string render(const std::string& title = "Fault stats") const;
};

/// Per-link fault decision source. One injector serves both directions of
/// one pcie::Link; its Rng stream is independent of the simulator's.
class FaultInjector {
 public:
  /// Disabled injector (never consulted).
  FaultInjector() = default;
  FaultInjector(FaultConfig cfg, std::uint64_t seed);

  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return cfg_; }

  enum class TlpFate : std::uint8_t { kDeliver, kCorrupt, kDrop };
  /// Fate of transmission attempt `attempt` (0 = first) of TLP `seq`.
  TlpFate tlp_fate(LinkDir dir, std::uint64_t seq, int attempt);
  /// Whether the next Ack/Nak DLLP in `dir` is lost.
  bool drop_ack(LinkDir dir);
  /// Whether the next UpdateFC DLLP in `dir` is lost.
  bool drop_updatefc(LinkDir dir);

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  bool take_scheduled(OneShot::Kind kind, LinkDir dir, std::uint64_t seq);
  bool has_scheduled(OneShot::Kind kind, LinkDir dir,
                     std::uint64_t seq) const;

  FaultConfig cfg_;
  Rng rng_;
  bool enabled_ = false;
  FaultStats stats_;
  /// Live scheduled faults (one-shots are removed once they fire).
  std::vector<OneShot> pending_;
  /// DLLP ordinal counters per direction, for scheduled DLLP faults.
  std::uint64_t acks_seen_[2] = {0, 0};
  std::uint64_t fcs_seen_[2] = {0, 0};
};

/// Wire-level fault decision source for one net::Fabric. Like the per-link
/// FaultInjector it only *decides* packet fates -- the fabric does the
/// counting (net::TransportStats) so decisions and accounting cannot
/// drift. Seed-forked off the scenario seed with a wire-specific label so
/// loss patterns are pure functions of (seed, packet order): bit-identical
/// serial vs `exec --jobs N`.
class WireInjector {
 public:
  /// Disabled injector (never consulted).
  WireInjector() = default;
  WireInjector(WireFaultConfig cfg, std::uint64_t seed);

  bool enabled() const { return enabled_; }
  const WireFaultConfig& config() const { return cfg_; }

  enum class Fate : std::uint8_t {
    kDeliver,
    kDrop,       // never arrives
    kCorrupt,    // arrives, receiver discards on ICRC (silent)
    kDuplicate,  // delivered twice
    kReorder,    // delayed past the in-order gate
  };
  /// Fate of one fabric transmission. `is_data` selects the data-packet
  /// fault classes; control packets only see kDropAck and drop_prob.
  /// `psn` is the data packet's sequence number for scheduled matching.
  Fate packet_fate(int src_node, bool is_data, std::uint64_t psn);

 private:
  bool take_scheduled(WireOneShot::Kind kind, int src_node,
                      std::uint64_t psn);
  bool has_scheduled(WireOneShot::Kind kind, int src_node,
                     std::uint64_t psn) const;

  WireFaultConfig cfg_;
  Rng rng_;
  bool enabled_ = false;
  /// Live scheduled faults (one-shots are removed once they fire).
  std::vector<WireOneShot> pending_;
  /// Control-packet ordinal per source node, for scheduled kDropAck.
  std::map<int, std::uint64_t> ctrl_seen_;
};

}  // namespace bb::fault
