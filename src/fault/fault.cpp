#include "fault/fault.hpp"

#include <algorithm>

#include "common/table.hpp"

namespace bb::fault {

void FaultStats::merge(const FaultStats& o) {
  tlps_corrupted += o.tlps_corrupted;
  tlps_dropped += o.tlps_dropped;
  acks_dropped += o.acks_dropped;
  updatefc_dropped += o.updatefc_dropped;
  naks_sent += o.naks_sent;
  replays += o.replays;
  replay_timeouts += o.replay_timeouts;
  duplicates_dropped += o.duplicates_dropped;
  fc_reemissions += o.fc_reemissions;
  poisoned_tlps += o.poisoned_tlps;
  poisoned_delivered += o.poisoned_delivered;
  error_cqes += o.error_cqes;
  read_retries += o.read_retries;
  busy_post_retries += o.busy_post_retries;
}

std::string FaultStats::render(const std::string& title) const {
  TextTable t({title, "count"});
  auto row = [&](const char* name, std::uint64_t v) {
    t.add_row({name, std::to_string(v)});
  };
  row("TLPs corrupted", tlps_corrupted);
  row("TLPs dropped", tlps_dropped);
  row("Ack/Nak DLLPs dropped", acks_dropped);
  row("UpdateFC DLLPs dropped", updatefc_dropped);
  t.add_rule();
  row("Naks sent", naks_sent);
  row("TLP replays", replays);
  row("Replay-timer expiries", replay_timeouts);
  row("Duplicate TLPs discarded", duplicates_dropped);
  row("UpdateFC re-emissions", fc_reemissions);
  t.add_rule();
  row("TLPs forwarded poisoned", poisoned_tlps);
  row("Poisoned writes delivered", poisoned_delivered);
  row("Error CQEs", error_cqes);
  row("NIC DMA-read retries", read_retries);
  row("Busy-post retries", busy_post_retries);
  return t.render();
}

FaultInjector::FaultInjector(FaultConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      rng_(SplitMix64(seed ^ 0xFA017ED5EEDull).next()),
      enabled_(cfg_.link_enabled()),
      pending_(cfg_.scheduled) {}

bool FaultInjector::has_scheduled(OneShot::Kind kind, LinkDir dir,
                                  std::uint64_t seq) const {
  for (const OneShot& s : pending_) {
    if (s.kind == kind && s.dir == dir && s.seq == seq) return true;
  }
  return false;
}

bool FaultInjector::take_scheduled(OneShot::Kind kind, LinkDir dir,
                                   std::uint64_t seq) {
  auto it = std::find_if(pending_.begin(), pending_.end(),
                         [&](const OneShot& s) {
                           return s.kind == kind && s.dir == dir &&
                                  s.seq == seq;
                         });
  if (it == pending_.end()) return false;
  pending_.erase(it);
  return true;
}

FaultInjector::TlpFate FaultInjector::tlp_fate(LinkDir dir, std::uint64_t seq,
                                               int attempt) {
  if (!enabled_) return TlpFate::kDeliver;
  // kKillTlp persists across attempts: the sender can never get this TLP
  // through and must exhaust its replay budget.
  if (has_scheduled(OneShot::Kind::kKillTlp, dir, seq)) {
    ++stats_.tlps_corrupted;
    return TlpFate::kCorrupt;
  }
  if (attempt == 0) {
    if (take_scheduled(OneShot::Kind::kDropTlp, dir, seq)) {
      ++stats_.tlps_dropped;
      return TlpFate::kDrop;
    }
    if (take_scheduled(OneShot::Kind::kCorruptTlp, dir, seq)) {
      ++stats_.tlps_corrupted;
      return TlpFate::kCorrupt;
    }
  }
  // BER-style faults apply to every attempt; the poisoned-forwarding path
  // bounds the number of attempts, so recovery always converges.
  if (cfg_.tlp_drop_prob > 0.0 && rng_.bernoulli(cfg_.tlp_drop_prob)) {
    ++stats_.tlps_dropped;
    return TlpFate::kDrop;
  }
  if (cfg_.tlp_corrupt_prob > 0.0 && rng_.bernoulli(cfg_.tlp_corrupt_prob)) {
    ++stats_.tlps_corrupted;
    return TlpFate::kCorrupt;
  }
  return TlpFate::kDeliver;
}

bool FaultInjector::drop_ack(LinkDir dir) {
  if (!enabled_) return false;
  const std::uint64_t nth = ++acks_seen_[static_cast<int>(dir)];
  if (take_scheduled(OneShot::Kind::kDropAck, dir, nth) ||
      (cfg_.ack_drop_prob > 0.0 && rng_.bernoulli(cfg_.ack_drop_prob))) {
    ++stats_.acks_dropped;
    return true;
  }
  return false;
}

WireInjector::WireInjector(WireFaultConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      rng_(SplitMix64(seed ^ 0x51B3FA017ull).next()),
      enabled_(cfg_.enabled()),
      pending_(cfg_.scheduled) {}

bool WireInjector::has_scheduled(WireOneShot::Kind kind, int src_node,
                                 std::uint64_t psn) const {
  for (const WireOneShot& s : pending_) {
    if (s.kind == kind && (s.src_node < 0 || s.src_node == src_node) &&
        (s.psn == 0 || s.psn == psn)) {
      return true;
    }
  }
  return false;
}

bool WireInjector::take_scheduled(WireOneShot::Kind kind, int src_node,
                                  std::uint64_t psn) {
  auto it = std::find_if(
      pending_.begin(), pending_.end(), [&](const WireOneShot& s) {
        return s.kind == kind && (s.src_node < 0 || s.src_node == src_node) &&
               (s.psn == 0 || s.psn == psn);
      });
  if (it == pending_.end()) return false;
  pending_.erase(it);
  return true;
}

WireInjector::Fate WireInjector::packet_fate(int src_node, bool is_data,
                                             std::uint64_t psn) {
  if (!enabled_) return Fate::kDeliver;
  if (is_data) {
    // kKillData persists across attempts: the sender can never get this
    // PSN through and must exhaust its transport retry budget.
    if (has_scheduled(WireOneShot::Kind::kKillData, src_node, psn)) {
      return Fate::kDrop;
    }
    if (take_scheduled(WireOneShot::Kind::kDropData, src_node, psn)) {
      return Fate::kDrop;
    }
    if (take_scheduled(WireOneShot::Kind::kDuplicateData, src_node, psn)) {
      return Fate::kDuplicate;
    }
    if (take_scheduled(WireOneShot::Kind::kReorderData, src_node, psn)) {
      return Fate::kReorder;
    }
  } else {
    const std::uint64_t nth = ++ctrl_seen_[src_node];
    if (take_scheduled(WireOneShot::Kind::kDropAck, src_node, nth)) {
      return Fate::kDrop;
    }
  }
  // BER-style faults. Retry budgets at the NIC bound the attempt count,
  // so recovery always converges (or diagnosably errors the QP).
  if (cfg_.drop_prob > 0.0 && rng_.bernoulli(cfg_.drop_prob)) {
    return Fate::kDrop;
  }
  if (cfg_.corrupt_prob > 0.0 && rng_.bernoulli(cfg_.corrupt_prob)) {
    return Fate::kCorrupt;
  }
  if (is_data) {
    if (cfg_.duplicate_prob > 0.0 && rng_.bernoulli(cfg_.duplicate_prob)) {
      return Fate::kDuplicate;
    }
    if (cfg_.reorder_prob > 0.0 && rng_.bernoulli(cfg_.reorder_prob)) {
      return Fate::kReorder;
    }
  }
  return Fate::kDeliver;
}

bool FaultInjector::drop_updatefc(LinkDir dir) {
  if (!enabled_) return false;
  const std::uint64_t nth = ++fcs_seen_[static_cast<int>(dir)];
  if (take_scheduled(OneShot::Kind::kDropUpdateFC, dir, nth) ||
      (cfg_.updatefc_drop_prob > 0.0 &&
       rng_.bernoulli(cfg_.updatefc_drop_prob))) {
    ++stats_.updatefc_dropped;
    return true;
  }
  return false;
}

}  // namespace bb::fault
