#pragma once
// Data Link Layer Packets (§2): per-TLP acknowledgements and the
// credit-replenishing UpdateFC packets of the flow-control protocol.

#include <cstdint>
#include <string>

namespace bb::pcie {

enum class DllpType : std::uint8_t {
  kAck,       // data-link acknowledgement of a received TLP
  kNak,       // retransmission request (exercised under fault injection:
              // the receiver Naks a corrupt or out-of-sequence TLP and the
              // sender replays from its buffer)
  kUpdateFC,  // credit replenishment
};

enum class CreditClass : std::uint8_t {
  kPosted,     // MWr
  kNonPosted,  // MRd
  kCompletion, // CplD
};

std::string to_string(DllpType t);
std::string to_string(CreditClass c);

struct Dllp {
  DllpType type = DllpType::kAck;
  /// Sequence number of the TLP being acknowledged (kAck/kNak).
  std::uint64_t ack_seq = 0;
  /// Credits being returned (kUpdateFC).
  CreditClass credit_class = CreditClass::kPosted;
  std::uint32_t header_credits = 0;
  std::uint32_t data_credits = 0;
  /// Cumulative credit totals released since link-up (kUpdateFC). Real
  /// PCIe advertises absolute counters, which makes UpdateFC delivery
  /// idempotent: stale or re-emitted packets replenish at most the
  /// difference from what the receiver has already seen. Essential for
  /// loss-tolerant re-emission (docs/FAULTS.md).
  bool cumulative = false;
  std::uint64_t header_total = 0;
  std::uint64_t data_total = 0;
};

}  // namespace bb::pcie
