#pragma once
// Data Link Layer Packets (§2): per-TLP acknowledgements and the
// credit-replenishing UpdateFC packets of the flow-control protocol.

#include <cstdint>
#include <string>

namespace bb::pcie {

enum class DllpType : std::uint8_t {
  kAck,       // data-link acknowledgement of a received TLP
  kNak,       // retransmission request (modelled but not exercised on the
              // error-free critical path)
  kUpdateFC,  // credit replenishment
};

enum class CreditClass : std::uint8_t {
  kPosted,     // MWr
  kNonPosted,  // MRd
  kCompletion, // CplD
};

std::string to_string(DllpType t);
std::string to_string(CreditClass c);

struct Dllp {
  DllpType type = DllpType::kAck;
  /// Sequence number of the TLP being acknowledged (kAck/kNak).
  std::uint64_t ack_seq = 0;
  /// Credits being returned (kUpdateFC).
  CreditClass credit_class = CreditClass::kPosted;
  std::uint32_t header_credits = 0;
  std::uint32_t data_credits = 0;
};

}  // namespace bb::pcie
