#include "pcie/link.hpp"

#include "common/assert.hpp"

namespace bb::pcie {

Link::Link(sim::Simulator& sim, LinkParams params, Analyzer* tap,
           fault::FaultInjector* injector)
    : sim_(sim), params_(params), tap_(tap), injector_(injector) {}

void Link::send_downstream(Tlp tlp) {
  tlp.dir = Direction::kDownstream;
  transmit_tlp(Direction::kDownstream, std::move(tlp));
}

void Link::send_upstream(Tlp tlp) {
  tlp.dir = Direction::kUpstream;
  transmit_tlp(Direction::kUpstream, std::move(tlp));
}

void Link::send_dllp_downstream(Dllp d) {
  transmit_dllp(Direction::kDownstream, d);
}

void Link::send_dllp_upstream(Dllp d) { transmit_dllp(Direction::kUpstream, d); }

void Link::transmit_tlp(Direction dir, Tlp tlp) {
  DirState& st = dir_state(dir);
  const std::uint64_t seq = st.next_seq++;
  ++tlps_accepted_;
  if (faults_on()) {
    // Hold every transmitted TLP until the data-link Ack purges it.
    st.replay.push_back(ReplayEntry{tlp, seq, 0});
    arm_replay_timer(dir);
  }
  transmit_attempt(dir, tlp, seq, 0);
}

void Link::transmit_attempt(Direction dir, const Tlp& tlp, std::uint64_t seq,
                            int attempt) {
  DirState& st = dir_state(dir);
  const TimePs depart = std::max(sim_.now(), st.next_free);
  st.next_free = depart + params_.serialize(tlp.bytes);

  // Tap: upstream packets pass the tap as they leave the NIC (depart);
  // downstream packets pass it as they arrive at the NIC.
  if (tap_ && dir == Direction::kUpstream) tap_->on_tlp(depart, tlp);

  // Fault injection sits on the wire, after the tap's vantage point.
  // Poisoned retransmissions bypass it: the sender already gave up on
  // clean delivery and error-forwards, so recovery always terminates.
  bool corrupt = false;
  if (faults_on() && !tlp.poisoned) {
    switch (injector_->tlp_fate(fault_dir(dir), seq, attempt)) {
      case fault::FaultInjector::TlpFate::kDeliver:
        break;
      case fault::FaultInjector::TlpFate::kCorrupt:
        corrupt = true;
        break;
      case fault::FaultInjector::TlpFate::kDrop:
        return;  // consumed wire time, but no arrival: the replay timer
                 // (or a later Nak) recovers it
    }
  }

  TimePs arrive = depart + params_.tlp_latency(tlp.bytes);
  arrive = std::max(arrive, st.last_arrival);  // posted-ordering guarantee
  st.last_arrival = arrive;

  sim_.call_at(arrive,
               [this, dir, tlp, seq, arrive, corrupt]() {
    if (tap_ && dir == Direction::kDownstream) tap_->on_tlp(arrive, tlp);

    if (!faults_on()) {
      // Error-free fast path: accept unconditionally (sequences cannot be
      // disturbed), identical to the pre-fault model bit for bit.
      deliver(dir, tlp, seq);
      return;
    }

    DirState& st = dir_state(dir);
    if (corrupt) {
      // LCRC failure: discard and request retransmission once per
      // recovery window (further Naks are suppressed until the window
      // closes; the sender's replay timer backstops a lost Nak).
      if (!st.nak_outstanding) {
        st.nak_outstanding = true;
        ++injector_->stats().naks_sent;
        send_ack(dir, DllpType::kNak, st.expected_seq - 1);
      }
      return;
    }
    if (seq < st.expected_seq) {
      // Duplicate of an already-accepted TLP (a replay raced the Ack):
      // discard and re-acknowledge so the sender can purge it.
      ++injector_->stats().duplicates_dropped;
      send_ack(dir, DllpType::kAck, st.expected_seq - 1);
      return;
    }
    if (seq > st.expected_seq) {
      // Sequence gap: a predecessor was lost.
      if (!st.nak_outstanding) {
        st.nak_outstanding = true;
        ++injector_->stats().naks_sent;
        send_ack(dir, DllpType::kNak, st.expected_seq - 1);
      }
      return;
    }
    // In sequence: accept.
    st.expected_seq = seq + 1;
    st.nak_outstanding = false;
    deliver(dir, tlp, seq);
  });
}

void Link::deliver(Direction dir, const Tlp& tlp, std::uint64_t seq) {
  ++tlps_delivered_;
  // Data-link acknowledgement from the receiving end.
  send_ack(dir, DllpType::kAck, seq);
  // Deliver to the endpoint.
  if (dir == Direction::kDownstream) {
    if (b_tlp_) b_tlp_(tlp);
  } else {
    if (a_tlp_) a_tlp_(tlp);
  }
}

void Link::send_ack(Direction dir, DllpType type, std::uint64_t seq) {
  Dllp ack;
  ack.type = type;
  ack.ack_seq = seq;
  const Direction back = opposite(dir);
  sim_.call_in(TimePs::from_ns(params_.ack_processing_ns),
               [this, back, ack] { transmit_dllp(back, ack); });
}

void Link::transmit_dllp(Direction dir, Dllp d) {
  DirState& st = dir_state(dir);
  const TimePs depart = std::max(sim_.now(), st.next_free);
  st.next_free = depart + params_.serialize(params_.dllp_bytes);

  if (tap_ && dir == Direction::kUpstream) tap_->on_dllp(depart, dir, d);

  if (faults_on()) {
    if (d.type == DllpType::kUpdateFC) {
      if (injector_->drop_updatefc(fault_dir(dir))) {
        // Credit-timeout re-emission: the releasing side's cumulative
        // counters make the repeat idempotent, so resending the same
        // DLLP later is always safe (and converges even if the repeat is
        // dropped again). This stands in for PCIe's periodic FC-update
        // timer, which would flood a run-to-completion simulation.
        sim_.call_in(TimePs::from_ns(injector_->config().fc_reemit_timeout_ns),
                     [this, dir, d] {
                       ++injector_->stats().fc_reemissions;
                       transmit_dllp(dir, d);
                     });
        return;
      }
    } else if (injector_->drop_ack(fault_dir(dir))) {
      // A lost Ack/Nak is recovered by the sender's replay timer (the
      // replayed TLP is discarded as a duplicate and re-acknowledged).
      return;
    }
  }

  TimePs arrive = depart + params_.dllp_latency();
  arrive = std::max(arrive, st.last_arrival);
  st.last_arrival = arrive;

  sim_.call_at(arrive, [this, dir, d, arrive] {
    if (tap_ && dir == Direction::kDownstream) tap_->on_dllp(arrive, dir, d);
    if (faults_on() && d.type != DllpType::kUpdateFC) {
      // An Ack/Nak travelling in `dir` acknowledges TLPs transmitted in
      // the opposite direction: service that replay buffer first.
      on_ack_dllp(opposite(dir), d);
    }
    if (dir == Direction::kDownstream) {
      if (b_dllp_) b_dllp_(d);
    } else {
      if (a_dllp_) a_dllp_(d);
    }
  });
}

void Link::on_ack_dllp(Direction dir, const Dllp& d) {
  DirState& st = dir_state(dir);
  while (!st.replay.empty() && st.replay.front().seq <= d.ack_seq) {
    st.replay.pop_front();
  }
  if (d.type == DllpType::kNak) {
    // Go-back-N: everything after the Nak'd sequence is retransmitted in
    // order.
    replay_all(dir);
  }
  // Ack/Nak receipt restarts REPLAY_TIMER.
  st.timer_armed = false;
  ++st.timer_epoch;
  arm_replay_timer(dir);
}

void Link::replay_all(Direction dir) {
  DirState& st = dir_state(dir);
  for (ReplayEntry& e : st.replay) {
    ++e.attempts;
    if (e.attempts > injector_->config().max_replays && !e.tlp.poisoned) {
      // Replay budget exhausted: error-forward (EP bit). The poisoned
      // attempt bypasses the injector, so it is guaranteed to arrive and
      // be acknowledged; the receiver surfaces an error completion.
      e.tlp.poisoned = true;
      ++injector_->stats().poisoned_tlps;
    }
    ++injector_->stats().replays;
    transmit_attempt(dir, e.tlp, e.seq, e.attempts);
  }
}

void Link::arm_replay_timer(Direction dir) {
  if (!faults_on()) return;
  DirState& st = dir_state(dir);
  if (st.timer_armed || st.replay.empty()) return;
  st.timer_armed = true;
  const std::uint64_t epoch = ++st.timer_epoch;
  sim_.call_in(TimePs::from_ns(injector_->config().replay_timeout_ns),
               [this, dir, epoch] { on_replay_timeout(dir, epoch); });
}

void Link::on_replay_timeout(Direction dir, std::uint64_t epoch) {
  DirState& st = dir_state(dir);
  if (!st.timer_armed || epoch != st.timer_epoch) return;  // stale
  st.timer_armed = false;
  if (st.replay.empty()) return;
  ++injector_->stats().replay_timeouts;
  replay_all(dir);
  arm_replay_timer(dir);
}

}  // namespace bb::pcie
