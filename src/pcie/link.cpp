#include "pcie/link.hpp"

#include "common/assert.hpp"

namespace bb::pcie {

Link::Link(sim::Simulator& sim, LinkParams params, Analyzer* tap)
    : sim_(sim), params_(params), tap_(tap) {}

void Link::send_downstream(Tlp tlp) {
  tlp.dir = Direction::kDownstream;
  transmit_tlp(Direction::kDownstream, std::move(tlp));
}

void Link::send_upstream(Tlp tlp) {
  tlp.dir = Direction::kUpstream;
  transmit_tlp(Direction::kUpstream, std::move(tlp));
}

void Link::send_dllp_downstream(Dllp d) {
  transmit_dllp(Direction::kDownstream, d);
}

void Link::send_dllp_upstream(Dllp d) { transmit_dllp(Direction::kUpstream, d); }

void Link::transmit_tlp(Direction dir, Tlp tlp) {
  DirState& st = dir_state(dir);
  const TimePs depart = std::max(sim_.now(), st.next_free);
  st.next_free = depart + params_.serialize(tlp.bytes);
  TimePs arrive = depart + params_.tlp_latency(tlp.bytes);
  arrive = std::max(arrive, st.last_arrival);  // posted-ordering guarantee
  st.last_arrival = arrive;

  const std::uint64_t seq = st.next_seq++;

  // Tap: upstream packets pass the tap as they leave the NIC (depart);
  // downstream packets pass it as they arrive at the NIC.
  if (tap_ && dir == Direction::kUpstream) tap_->on_tlp(depart, tlp);

  sim_.call_at(arrive, [this, dir, tlp = std::move(tlp), seq, arrive]() {
    if (tap_ && dir == Direction::kDownstream) tap_->on_tlp(arrive, tlp);
    ++tlps_delivered_;

    // Data-link acknowledgement from the receiving end.
    Dllp ack;
    ack.type = DllpType::kAck;
    ack.ack_seq = seq;
    const Direction back = dir == Direction::kDownstream
                               ? Direction::kUpstream
                               : Direction::kDownstream;
    sim_.call_in(TimePs::from_ns(params_.ack_processing_ns),
                 [this, back, ack] {
                   transmit_dllp(back, ack);
                 });

    // Deliver to the endpoint.
    if (dir == Direction::kDownstream) {
      if (b_tlp_) b_tlp_(tlp);
    } else {
      if (a_tlp_) a_tlp_(tlp);
    }
  });
}

void Link::transmit_dllp(Direction dir, Dllp d) {
  DirState& st = dir_state(dir);
  const TimePs depart = std::max(sim_.now(), st.next_free);
  st.next_free = depart + params_.serialize(params_.dllp_bytes);
  TimePs arrive = depart + params_.dllp_latency();
  arrive = std::max(arrive, st.last_arrival);
  st.last_arrival = arrive;

  if (tap_ && dir == Direction::kUpstream) tap_->on_dllp(depart, dir, d);

  sim_.call_at(arrive, [this, dir, d, arrive] {
    if (tap_ && dir == Direction::kDownstream) tap_->on_dllp(arrive, dir, d);
    if (dir == Direction::kDownstream) {
      if (b_dllp_) b_dllp_(d);
    } else {
      if (a_dllp_) a_dllp_(d);
    }
  });
}

}  // namespace bb::pcie
