#include "pcie/trace.hpp"

#include <cstdio>

namespace bb::pcie {

std::uint64_t msg_id_of(const Tlp& tlp) {
  if (const auto* d = std::get_if<DescriptorWrite>(&tlp.content)) {
    return d->md.msg_id;
  }
  if (const auto* c = std::get_if<CqeWrite>(&tlp.content)) return c->msg_id;
  if (const auto* p = std::get_if<PayloadWrite>(&tlp.content)) return p->msg_id;
  return 0;
}

std::string kind_of(const Tlp& tlp) {
  if (std::holds_alternative<DoorbellWrite>(tlp.content)) return "DoorBell";
  if (std::holds_alternative<DescriptorWrite>(tlp.content)) return "PIO-MD";
  if (std::holds_alternative<CqeWrite>(tlp.content)) return "CQE";
  if (std::holds_alternative<PayloadWrite>(tlp.content)) return "payload";
  if (std::holds_alternative<ReadRequest>(tlp.content)) return "DMA-read";
  if (std::holds_alternative<ReadCompletion>(tlp.content)) return "DMA-data";
  return "-";
}

void Trace::record_tlp(TimePs t, const Tlp& tlp) {
  TraceRecord r;
  r.t = t;
  r.dir = tlp.dir;
  r.is_dllp = false;
  r.tlp_type = tlp.type;
  r.bytes = tlp.bytes;
  r.tag = tlp.tag;
  r.msg_id = msg_id_of(tlp);
  r.kind = kind_of(tlp);
  // Error-forwarded packets are visibly flagged, like an analyzer decoding
  // the EP bit. Never set on the error-free path, so golden traces are
  // untouched.
  if (tlp.poisoned) r.kind += "!EP";
  records_.push_back(std::move(r));
}

void Trace::record_dllp(TimePs t, Direction dir, const Dllp& dllp) {
  TraceRecord r;
  r.t = t;
  r.dir = dir;
  r.is_dllp = true;
  r.dllp_type = dllp.type;
  r.bytes = 8;
  r.tag = dllp.ack_seq;
  r.kind = to_string(dllp.type);
  records_.push_back(std::move(r));
}

std::vector<TraceRecord> Trace::filter(
    const std::function<bool(const TraceRecord&)>& pred) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (pred(r)) out.push_back(r);
  }
  return out;
}

std::vector<TraceRecord> Trace::downstream_writes(
    std::uint32_t min_bytes) const {
  return filter([min_bytes](const TraceRecord& r) {
    return !r.is_dllp && r.dir == Direction::kDownstream &&
           r.tlp_type == TlpType::kMemWrite && r.bytes >= min_bytes;
  });
}

std::vector<TraceRecord> Trace::upstream_writes(std::uint32_t min_bytes) const {
  return filter([min_bytes](const TraceRecord& r) {
    return !r.is_dllp && r.dir == Direction::kUpstream &&
           r.tlp_type == TlpType::kMemWrite && r.bytes >= min_bytes;
  });
}

Samples Trace::deltas(const std::vector<TraceRecord>& recs) {
  Samples s;
  for (std::size_t i = 1; i < recs.size(); ++i) {
    s.add(recs[i].t - recs[i - 1].t);
  }
  return s;
}

Samples Trace::spans(const std::vector<TraceRecord>& from,
                     const std::vector<TraceRecord>& to, bool match_msg_id) {
  Samples s;
  std::size_t j = 0;
  for (const auto& f : from) {
    if (match_msg_id) {
      for (const auto& t : to) {
        if (t.msg_id == f.msg_id && t.t > f.t) {
          s.add(t.t - f.t);
          break;
        }
      }
    } else {
      while (j < to.size() && to[j].t <= f.t) ++j;
      if (j == to.size()) break;
      s.add(to[j].t - f.t);
      ++j;
    }
  }
  return s;
}

std::string Trace::to_csv() const {
  std::string out = "time_ns,dir,packet,bytes,kind,msg_id\n";
  char line[160];
  for (const auto& r : records_) {
    std::snprintf(line, sizeof(line), "%.3f,%s,%s,%u,%s,%llu\n", r.t.to_ns(),
                  to_string(r.dir).c_str(),
                  r.is_dllp ? to_string(r.dllp_type).c_str()
                            : to_string(r.tlp_type).c_str(),
                  r.bytes, r.kind.c_str(),
                  static_cast<unsigned long long>(r.msg_id));
    out += line;
  }
  return out;
}

std::string Trace::render(std::size_t start, std::size_t count) const {
  std::string out =
      "      time (ns)  dir   pkt       bytes  kind       msg\n";
  char line[160];
  for (std::size_t i = start; i < records_.size() && i < start + count; ++i) {
    const auto& r = records_[i];
    std::snprintf(line, sizeof(line), "%15.2f  %-4s  %-8s  %5u  %-9s  %llu\n",
                  r.t.to_ns(), to_string(r.dir).c_str(),
                  r.is_dllp ? to_string(r.dllp_type).c_str()
                            : to_string(r.tlp_type).c_str(),
                  r.bytes, r.kind.c_str(),
                  static_cast<unsigned long long>(r.msg_id));
    out += line;
  }
  return out;
}

}  // namespace bb::pcie
