#pragma once
// PCIe trace capture: the software view of the paper's LeCroy analyzer.
//
// A `TraceRecord` is one packet passing the tap point, timestamped with the
// simulated time at which it passes. `Trace` provides the filtering and
// delta arithmetic the paper's methodology (§4.2-§4.3) performs on the
// analyzer output, plus a Fig.-6-style pretty printer.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "pcie/dllp.hpp"
#include "pcie/tlp.hpp"

namespace bb::pcie {

struct TraceRecord {
  TimePs t;
  Direction dir = Direction::kDownstream;
  bool is_dllp = false;
  TlpType tlp_type = TlpType::kMemWrite;
  DllpType dllp_type = DllpType::kAck;
  std::uint32_t bytes = 0;
  std::uint64_t tag = 0;
  /// Message identity extracted from the semantic content (0 if none).
  std::uint64_t msg_id = 0;
  /// Short classification, e.g. "PIO-MD", "CQE", "payload".
  std::string kind;
};

/// Extracts the message id from a TLP's semantic content (0 if absent).
std::uint64_t msg_id_of(const Tlp& tlp);
/// Short human label for the TLP's semantic content.
std::string kind_of(const Tlp& tlp);

class Trace {
 public:
  void record_tlp(TimePs t, const Tlp& tlp);
  void record_dllp(TimePs t, Direction dir, const Dllp& dllp);
  void clear() { records_.clear(); }

  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// Records matching a predicate, in time order.
  std::vector<TraceRecord> filter(
      const std::function<bool(const TraceRecord&)>& pred) const;

  /// Downstream data-bearing MWr TLPs of at least `min_bytes` -- the view
  /// Fig. 6 shows after "filtering for downstream transactions".
  std::vector<TraceRecord> downstream_writes(std::uint32_t min_bytes = 1) const;
  /// Upstream MWr TLPs (completions, payload deliveries).
  std::vector<TraceRecord> upstream_writes(std::uint32_t min_bytes = 1) const;

  /// Timestamp deltas between consecutive records (the observed injection
  /// overhead when applied to downstream PIO posts).
  static Samples deltas(const std::vector<TraceRecord>& recs);

  /// For each record in `from`, the first record in `to` with a strictly
  /// later timestamp and, if `match_msg_id`, the same msg_id. Returns the
  /// pairwise time differences (used for MWr->Ack round trips and
  /// ping->completion spans).
  static Samples spans(const std::vector<TraceRecord>& from,
                       const std::vector<TraceRecord>& to,
                       bool match_msg_id = false);

  /// Fig.-6-style listing of `count` records starting at `start`.
  std::string render(std::size_t start = 0, std::size_t count = 16) const;

  /// Full trace as CSV (time_ns, dir, packet, bytes, kind, msg_id) for
  /// external plotting.
  std::string to_csv() const;

 private:
  std::vector<TraceRecord> records_;
};

/// The passive analyzer: forwards every packet it sees into a Trace. It
/// never delays traffic (§3: "a passive instrument that allows data to
/// pass through fully unaltered"); capture can be toggled to keep long
/// calibration runs cheap.
class Analyzer {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void on_tlp(TimePs t, const Tlp& tlp) {
    if (enabled_) trace_.record_tlp(t, tlp);
  }
  void on_dllp(TimePs t, Direction dir, const Dllp& d) {
    if (enabled_) trace_.record_dllp(t, dir, d);
  }

  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

 private:
  bool enabled_ = true;
  Trace trace_;
};

}  // namespace bb::pcie
