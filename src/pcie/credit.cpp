#include "pcie/credit.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bb::pcie {

std::string to_string(DllpType t) {
  switch (t) {
    case DllpType::kAck:
      return "Ack";
    case DllpType::kNak:
      return "Nak";
    case DllpType::kUpdateFC:
      return "UpdateFC";
  }
  BB_UNREACHABLE("bad DllpType");
}

std::string to_string(CreditClass c) {
  switch (c) {
    case CreditClass::kPosted:
      return "P";
    case CreditClass::kNonPosted:
      return "NP";
    case CreditClass::kCompletion:
      return "CPL";
  }
  BB_UNREACHABLE("bad CreditClass");
}

CreditState CreditState::default_endpoint() {
  // Generous budgets typical of a x8 port: 64 posted headers with 1 KiB of
  // data credits, 32 non-posted headers, 64 completion headers.
  return with_budget({64, 1024 / 16 * 16}, {32, 32}, {64, 1024});
}

CreditState CreditState::with_budget(CreditBudget posted,
                                     CreditBudget non_posted,
                                     CreditBudget completion) {
  CreditState s;
  s.cls(CreditClass::kPosted).limit = posted;
  s.cls(CreditClass::kPosted).available_ = posted;
  s.cls(CreditClass::kNonPosted).limit = non_posted;
  s.cls(CreditClass::kNonPosted).available_ = non_posted;
  s.cls(CreditClass::kCompletion).limit = completion;
  s.cls(CreditClass::kCompletion).available_ = completion;
  return s;
}

CreditClass CreditState::class_of(const Tlp& tlp) {
  switch (tlp.type) {
    case TlpType::kMemWrite:
      return CreditClass::kPosted;
    case TlpType::kMemRead:
      return CreditClass::kNonPosted;
    case TlpType::kCompletionData:
      return CreditClass::kCompletion;
  }
  BB_UNREACHABLE("bad TlpType");
}

bool CreditState::can_send(const Tlp& tlp) const {
  const PerClass& c = cls(class_of(tlp));
  return c.available_.header >= 1 && c.available_.data >= data_credit_units(tlp);
}

void CreditState::consume(const Tlp& tlp) {
  PerClass& c = cls(class_of(tlp));
  BB_ASSERT_MSG(can_send(tlp), "credit consume without availability");
  c.available_.header -= 1;
  c.available_.data -= data_credit_units(tlp);
  c.consumed_headers += 1;
}

void CreditState::replenish(const Dllp& update) {
  BB_ASSERT(update.type == DllpType::kUpdateFC);
  PerClass& c = cls(update.credit_class);
  std::uint32_t dh = update.header_credits;
  std::uint32_t dd = update.data_credits;
  if (update.cumulative) {
    // Absolute counters: replenish only what exceeds the totals already
    // seen, so duplicate/stale/re-emitted UpdateFCs are no-ops.
    dh = update.header_total > c.seen_header_total
             ? static_cast<std::uint32_t>(update.header_total -
                                          c.seen_header_total)
             : 0;
    dd = update.data_total > c.seen_data_total
             ? static_cast<std::uint32_t>(update.data_total -
                                          c.seen_data_total)
             : 0;
    c.seen_header_total = std::max(c.seen_header_total, update.header_total);
    c.seen_data_total = std::max(c.seen_data_total, update.data_total);
  }
  c.available_.header += dh;
  c.available_.data += dd;
  c.replenished_headers += dh;
  BB_ASSERT_MSG(c.available_.header <= c.limit.header &&
                    c.available_.data <= c.limit.data,
                "credit replenish exceeded advertised budget");
}

CreditBudget CreditState::available(CreditClass c) const {
  return cls(c).available_;
}

Dllp CreditState::release_for(const Tlp& tlp) {
  Dllp d;
  d.type = DllpType::kUpdateFC;
  d.credit_class = class_of(tlp);
  d.header_credits = 1;
  d.data_credits = data_credit_units(tlp);
  return d;
}

std::int64_t CreditState::outstanding_headers(CreditClass c) const {
  return cls(c).consumed_headers - cls(c).replenished_headers;
}

Dllp CreditLedger::release_for(const Tlp& tlp) {
  Dllp d = CreditState::release_for(tlp);
  Totals& t = totals_[static_cast<int>(d.credit_class)];
  t.header += d.header_credits;
  t.data += d.data_credits;
  d.cumulative = true;
  d.header_total = t.header;
  d.data_total = t.data;
  return d;
}

}  // namespace bb::pcie
