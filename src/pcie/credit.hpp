#pragma once
// Credit-based flow control (§2).
//
// A PCIe transmitter may issue a TLP only while it holds enough header and
// data credits for that TLP's class; credits are consumed on transmission
// and replenished by UpdateFC DLLPs from the neighbour. The paper observes
// that a single core never exhausts MWr credits -- our default budgets
// reproduce that -- but the mechanism is fully modelled so that
// small-budget configurations (tests, ablations) exhibit genuine stalls.

#include <array>
#include <cstdint>

#include "pcie/dllp.hpp"
#include "pcie/tlp.hpp"

namespace bb::pcie {

struct CreditBudget {
  std::uint32_t header = 0;
  std::uint32_t data = 0;  // 16-byte units
};

class CreditState {
 public:
  /// Typical budgets for a x8 endpoint port; far more than one core can
  /// consume (§4.2).
  static CreditState default_endpoint();
  static CreditState with_budget(CreditBudget posted, CreditBudget non_posted,
                                 CreditBudget completion);

  /// Whether `tlp` can be issued right now.
  bool can_send(const Tlp& tlp) const;
  /// Consumes credits for `tlp`; caller must have checked can_send.
  void consume(const Tlp& tlp);
  /// Applies an UpdateFC replenishment. Cumulative updates (absolute
  /// released-credit counters, the real-PCIe scheme) are idempotent:
  /// duplicates and stale re-emissions replenish only the delta beyond
  /// what was already seen. Legacy delta updates apply verbatim.
  void replenish(const Dllp& update);

  /// Credits currently available for a class.
  CreditBudget available(CreditClass c) const;
  /// Credits the receiver should advertise back for a processed TLP.
  static Dllp release_for(const Tlp& tlp);

  static CreditClass class_of(const Tlp& tlp);

  /// Total header credits consumed minus replenished (invariant checks).
  std::int64_t outstanding_headers(CreditClass c) const;

 private:
  struct PerClass {
    CreditBudget limit;      // advertised budget
    CreditBudget available_; // current credits
    std::int64_t consumed_headers = 0;
    std::int64_t replenished_headers = 0;
    /// Highest cumulative totals seen (cumulative UpdateFC dedup).
    std::uint64_t seen_header_total = 0;
    std::uint64_t seen_data_total = 0;
  };
  std::array<PerClass, 3> classes_{};

  PerClass& cls(CreditClass c) { return classes_[static_cast<int>(c)]; }
  const PerClass& cls(CreditClass c) const {
    return classes_[static_cast<int>(c)];
  }
};

/// The releasing side of the flow-control protocol: tracks the cumulative
/// credits a receiver has handed back since link-up and stamps each
/// UpdateFC with both the per-TLP delta (legacy consumers, the trace) and
/// the absolute totals that make delivery idempotent. The Root Complex
/// and the NIC each own one per direction they replenish.
class CreditLedger {
 public:
  /// The UpdateFC releasing the credits `tlp` consumed.
  Dllp release_for(const Tlp& tlp);

  std::uint64_t header_total(CreditClass c) const {
    return totals_[static_cast<int>(c)].header;
  }

 private:
  struct Totals {
    std::uint64_t header = 0;
    std::uint64_t data = 0;
  };
  std::array<Totals, 3> totals_{};
};

}  // namespace bb::pcie
