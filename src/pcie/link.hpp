#pragma once
// The PCIe link between the Root Complex (endpoint A) and the NIC
// (endpoint B), with the analyzer tap sitting "just before the NIC"
// (paper §3, Fig. 3).
//
// Timing model: a packet leaving an endpoint occupies the transmitter for
// a serialization gap (back-to-back throughput limit) and arrives after a
// size-dependent latency. Posted-write ordering is preserved per
// direction. The data-link layer is modelled by per-TLP Ack DLLPs
// generated at the receiving end.
//
// Tap semantics: downstream packets are recorded when they *arrive* at B
// (the analyzer is upstream-adjacent to the NIC); upstream packets are
// recorded when they *depart* B. This is exactly the vantage point the
// paper's measurement methodology relies on.

#include <functional>

#include "common/units.hpp"
#include "pcie/dllp.hpp"
#include "pcie/tlp.hpp"
#include "pcie/trace.hpp"
#include "sim/simulator.hpp"

namespace bb::pcie {

struct LinkParams {
  /// Fixed one-way latency (stack traversal + wire).
  double base_latency_ns = 134.83;
  /// Additional latency per payload byte.
  double per_byte_ns = 0.06;
  /// Transmitter occupancy per byte (Gen3 x8 ~ 8 GB/s => 0.125 ns/B).
  double serialize_ns_per_byte = 0.125;
  /// Receiver processing before the data-link Ack is emitted.
  double ack_processing_ns = 1.0;
  /// Header bytes added to every TLP for serialization purposes.
  std::uint32_t tlp_header_bytes = 24;
  std::uint32_t dllp_bytes = 8;

  TimePs tlp_latency(std::uint32_t payload_bytes) const {
    return TimePs::from_ns(base_latency_ns +
                           per_byte_ns * static_cast<double>(payload_bytes));
  }
  TimePs dllp_latency() const {
    return TimePs::from_ns(base_latency_ns +
                           per_byte_ns * static_cast<double>(dllp_bytes));
  }
  TimePs serialize(std::uint32_t payload_bytes) const {
    return TimePs::from_ns(serialize_ns_per_byte *
                           static_cast<double>(payload_bytes + tlp_header_bytes));
  }

  /// The one-way "PCIe" component the paper's methodology would measure on
  /// this link: half of the (64 B MWr -> Ack DLLP) round trip.
  double measured_pcie_ns() const {
    return (tlp_latency(64).to_ns() + ack_processing_ns +
            dllp_latency().to_ns()) /
           2.0;
  }
};

class Link {
 public:
  Link(sim::Simulator& sim, LinkParams params, Analyzer* tap = nullptr);

  const LinkParams& params() const { return params_; }

  // Handlers installed by the endpoints.
  void set_a_tlp_handler(std::function<void(const Tlp&)> h) { a_tlp_ = std::move(h); }
  void set_b_tlp_handler(std::function<void(const Tlp&)> h) { b_tlp_ = std::move(h); }
  void set_a_dllp_handler(std::function<void(const Dllp&)> h) { a_dllp_ = std::move(h); }
  void set_b_dllp_handler(std::function<void(const Dllp&)> h) { b_dllp_ = std::move(h); }

  /// Transmits a TLP downstream (A -> B). The TLP's `dir` is stamped.
  void send_downstream(Tlp tlp);
  /// Transmits a TLP upstream (B -> A).
  void send_upstream(Tlp tlp);
  void send_dllp_downstream(Dllp d);
  void send_dllp_upstream(Dllp d);

  std::uint64_t tlps_delivered() const { return tlps_delivered_; }

 private:
  struct DirState {
    TimePs next_free = TimePs::zero();    // transmitter availability
    TimePs last_arrival = TimePs::zero(); // ordering enforcement
    std::uint64_t next_seq = 1;           // data-link sequence numbers
  };

  /// Computes departure/arrival and schedules delivery.
  void transmit_tlp(Direction dir, Tlp tlp);
  void transmit_dllp(Direction dir, Dllp d);
  DirState& dir_state(Direction d) {
    return d == Direction::kDownstream ? down_ : up_;
  }

  sim::Simulator& sim_;
  LinkParams params_;
  Analyzer* tap_;
  DirState down_;
  DirState up_;
  std::function<void(const Tlp&)> a_tlp_, b_tlp_;
  std::function<void(const Dllp&)> a_dllp_, b_dllp_;
  std::uint64_t tlps_delivered_ = 0;
};

}  // namespace bb::pcie
