#pragma once
// The PCIe link between the Root Complex (endpoint A) and the NIC
// (endpoint B), with the analyzer tap sitting "just before the NIC"
// (paper §3, Fig. 3).
//
// Timing model: a packet leaving an endpoint occupies the transmitter for
// a serialization gap (back-to-back throughput limit) and arrives after a
// size-dependent latency. Posted-write ordering is preserved per
// direction. The data-link layer is modelled by per-TLP Ack DLLPs
// generated at the receiving end.
//
// Data-link reliability: with a fault injector attached, every transmitted
// TLP is also held in a per-direction replay buffer until acknowledged.
// The receiver tracks the expected sequence number; a corrupt or
// out-of-sequence TLP is discarded and Nak'd, a duplicate is discarded and
// re-Ack'd, and the sender replays unacknowledged TLPs on Nak reception or
// REPLAY_TIMER expiry. A TLP that exhausts its replay budget is forwarded
// *poisoned* (error forwarding, the EP-bit model) so upper layers can
// surface an error completion instead of hanging. Lost UpdateFC DLLPs are
// re-emitted after a credit timeout; cumulative credit counters make the
// re-emission idempotent. Without an injector (or with a disabled one)
// none of this machinery runs and the link is bit-identical to the
// error-free model.
//
// Tap semantics: downstream packets are recorded when they *arrive* at B
// (the analyzer is upstream-adjacent to the NIC); upstream packets are
// recorded when they *depart* B. This is exactly the vantage point the
// paper's measurement methodology relies on.

#include <deque>
#include <functional>

#include "common/units.hpp"
#include "fault/fault.hpp"
#include "pcie/dllp.hpp"
#include "pcie/tlp.hpp"
#include "pcie/trace.hpp"
#include "sim/simulator.hpp"

namespace bb::pcie {

struct LinkParams {
  /// Fixed one-way latency (stack traversal + wire).
  double base_latency_ns = 134.83;
  /// Additional latency per payload byte.
  double per_byte_ns = 0.06;
  /// Transmitter occupancy per byte (Gen3 x8 ~ 8 GB/s => 0.125 ns/B).
  double serialize_ns_per_byte = 0.125;
  /// Receiver processing before the data-link Ack is emitted.
  double ack_processing_ns = 1.0;
  /// Header bytes added to every TLP for serialization purposes.
  std::uint32_t tlp_header_bytes = 24;
  std::uint32_t dllp_bytes = 8;

  TimePs tlp_latency(std::uint32_t payload_bytes) const {
    return TimePs::from_ns(base_latency_ns +
                           per_byte_ns * static_cast<double>(payload_bytes));
  }
  TimePs dllp_latency() const {
    return TimePs::from_ns(base_latency_ns +
                           per_byte_ns * static_cast<double>(dllp_bytes));
  }
  TimePs serialize(std::uint32_t payload_bytes) const {
    return TimePs::from_ns(serialize_ns_per_byte *
                           static_cast<double>(payload_bytes + tlp_header_bytes));
  }

  /// The one-way "PCIe" component the paper's methodology would measure on
  /// this link: half of the (64 B MWr -> Ack DLLP) round trip.
  double measured_pcie_ns() const {
    return (tlp_latency(64).to_ns() + ack_processing_ns +
            dllp_latency().to_ns()) /
           2.0;
  }
};

class Link {
 public:
  Link(sim::Simulator& sim, LinkParams params, Analyzer* tap = nullptr,
       fault::FaultInjector* injector = nullptr);

  const LinkParams& params() const { return params_; }

  // Handlers installed by the endpoints.
  void set_a_tlp_handler(std::function<void(const Tlp&)> h) { a_tlp_ = std::move(h); }
  void set_b_tlp_handler(std::function<void(const Tlp&)> h) { b_tlp_ = std::move(h); }
  void set_a_dllp_handler(std::function<void(const Dllp&)> h) { a_dllp_ = std::move(h); }
  void set_b_dllp_handler(std::function<void(const Dllp&)> h) { b_dllp_ = std::move(h); }

  /// Transmits a TLP downstream (A -> B). The TLP's `dir` is stamped.
  void send_downstream(Tlp tlp);
  /// Transmits a TLP upstream (B -> A).
  void send_upstream(Tlp tlp);
  void send_dllp_downstream(Dllp d);
  void send_dllp_upstream(Dllp d);

  std::uint64_t tlps_delivered() const { return tlps_delivered_; }
  /// TLPs handed to send_* (each counted once, however many attempts).
  std::uint64_t tlps_accepted() const { return tlps_accepted_; }
  /// Unacknowledged TLPs currently held for replay (both directions);
  /// zero at quiescence when every loss was recovered.
  std::size_t replay_buffer_depth() const {
    return down_.replay.size() + up_.replay.size();
  }

  fault::FaultInjector* injector() { return injector_; }

 private:
  /// A transmitted-but-unacknowledged TLP held for retransmission.
  struct ReplayEntry {
    Tlp tlp;
    std::uint64_t seq = 0;
    int attempts = 0;  // retransmissions so far
  };

  struct DirState {
    // Transmitter state for TLPs sent *in* this direction.
    TimePs next_free = TimePs::zero();    // transmitter availability
    TimePs last_arrival = TimePs::zero(); // ordering enforcement
    std::uint64_t next_seq = 1;           // data-link sequence numbers
    std::deque<ReplayEntry> replay;       // unacknowledged TLPs, seq order
    std::uint64_t timer_epoch = 0;        // invalidates stale timer events
    bool timer_armed = false;
    // Receiver state for TLPs arriving from this direction.
    std::uint64_t expected_seq = 1;
    bool nak_outstanding = false;  // one Nak per recovery window
  };

  bool faults_on() const { return injector_ && injector_->enabled(); }
  static fault::LinkDir fault_dir(Direction d) {
    return d == Direction::kDownstream ? fault::LinkDir::kDownstream
                                       : fault::LinkDir::kUpstream;
  }
  static Direction opposite(Direction d) {
    return d == Direction::kDownstream ? Direction::kUpstream
                                       : Direction::kDownstream;
  }

  /// Computes departure/arrival and schedules delivery of one attempt.
  void transmit_attempt(Direction dir, const Tlp& tlp, std::uint64_t seq,
                        int attempt);
  void transmit_tlp(Direction dir, Tlp tlp);
  void transmit_dllp(Direction dir, Dllp d);
  /// Receiver accepted `seq` in order: ack and deliver.
  void deliver(Direction dir, const Tlp& tlp, std::uint64_t seq);
  void send_ack(Direction dir, DllpType type, std::uint64_t seq);
  /// Sender-side processing of an arriving Ack/Nak for direction `dir`'s
  /// replay buffer.
  void on_ack_dllp(Direction dir, const Dllp& d);
  /// Retransmits every entry still in `dir`'s replay buffer.
  void replay_all(Direction dir);
  void arm_replay_timer(Direction dir);
  void on_replay_timeout(Direction dir, std::uint64_t epoch);

  DirState& dir_state(Direction d) {
    return d == Direction::kDownstream ? down_ : up_;
  }

  sim::Simulator& sim_;
  LinkParams params_;
  Analyzer* tap_;
  fault::FaultInjector* injector_;
  DirState down_;
  DirState up_;
  std::function<void(const Tlp&)> a_tlp_, b_tlp_;
  std::function<void(const Dllp&)> a_dllp_, b_dllp_;
  std::uint64_t tlps_delivered_ = 0;
  std::uint64_t tlps_accepted_ = 0;
};

}  // namespace bb::pcie
