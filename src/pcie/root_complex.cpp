#include "pcie/root_complex.hpp"

#include "common/assert.hpp"

namespace bb::pcie {

RootComplex::RootComplex(sim::Simulator& sim, Link& link, RcParams params,
                         CreditState credits)
    : sim_(sim),
      link_(link),
      params_(params),
      credits_(credits),
      ingress_(sim),
      credit_avail_(sim) {
  link_.set_a_tlp_handler([this](const Tlp& t) { on_upstream_tlp(t); });
  link_.set_a_dllp_handler([this](const Dllp& d) { on_upstream_dllp(d); });
  sim_.spawn(downstream_pump(), "rc-downstream-pump");
}

void RootComplex::post_mmio(Tlp tlp) {
  tlp.dir = Direction::kDownstream;
  ingress_.send(std::move(tlp));
}

sim::Task<void> RootComplex::downstream_pump() {
  for (;;) {
    Tlp tlp = co_await ingress_.receive();
    // §2: a transaction may be issued only with sufficient credits;
    // otherwise wait for an UpdateFC from the NIC.
    while (!credits_.can_send(tlp)) {
      ++credit_stalls_;
      co_await credit_avail_.wait();
    }
    credits_.consume(tlp);
    ++mmio_issued_;
    link_.send_downstream(std::move(tlp));
  }
}

void RootComplex::on_upstream_tlp(const Tlp& tlp) {
  if (tlp.poisoned && tlp.type == TlpType::kMemRead) {
    // A poisoned MRd cannot be served (its request fields are nominally
    // corrupt): answer with a poisoned CplD -- without consuming the
    // host-side read state, so the NIC's retry can be served cleanly --
    // and still release the credits the MRd consumed.
    const auto* req = std::get_if<ReadRequest>(&tlp.content);
    BB_ASSERT_MSG(req != nullptr, "MRd without a ReadRequest content");
    Tlp cpl;
    cpl.type = TlpType::kCompletionData;
    cpl.bytes = req->bytes;
    cpl.tag = tlp.tag;
    cpl.poisoned = true;
    ReadCompletion rc;
    rc.what = req->what;
    rc.bytes = req->bytes;
    rc.served = false;
    cpl.content = rc;
    link_.send_downstream(std::move(cpl));
    link_.send_dllp_downstream(ledger_.release_for(tlp));
    return;
  }
  switch (tlp.type) {
    case TlpType::kMemWrite: {
      // Commit to host memory after RC-to-MEM(x B); then visible to loads.
      const TimePs visible = sim_.now() + params_.rc_to_mem(tlp.bytes);
      ++mem_writes_committed_;
      if (mem_sink_) {
        sim_.call_at(visible,
                     [this, tlp, visible] { mem_sink_(tlp, visible); });
      }
      break;
    }
    case TlpType::kMemRead: {
      BB_ASSERT_MSG(read_provider_, "MRd received but no read provider");
      const auto* req = std::get_if<ReadRequest>(&tlp.content);
      BB_ASSERT_MSG(req != nullptr, "MRd without a ReadRequest content");
      // Serve from DRAM, then return a CplD downstream.
      const ReadRequest request = *req;
      const std::uint64_t tag = tlp.tag;
      sim_.call_in(TimePs::from_ns(params_.mem_read_ns),
                   [this, request, tag] {
                     ReadCompletion rc = read_provider_(request);
                     Tlp cpl;
                     cpl.type = TlpType::kCompletionData;
                     cpl.bytes = rc.bytes;
                     cpl.tag = tag;
                     cpl.content = rc;
                     link_.send_downstream(std::move(cpl));
                   });
      break;
    }
    case TlpType::kCompletionData:
      BB_UNREACHABLE("RC does not expect upstream CplD in this topology");
  }
  // Return the consumed credits to the NIC (cumulative totals: idempotent
  // under loss-recovery re-emission).
  link_.send_dllp_downstream(ledger_.release_for(tlp));
}

void RootComplex::on_upstream_dllp(const Dllp& d) {
  if (d.type == DllpType::kUpdateFC) {
    credits_.replenish(d);
    credit_avail_.fire();
  }
  // Acks/Naks: the error-free link needs no replay logic.
}

}  // namespace bb::pcie
