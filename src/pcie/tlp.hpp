#pragma once
// Transaction Layer Packets.
//
// Two TLP types matter on the critical path (§2): Memory Write (MWr) --
// posted, no reply -- and Memory Read (MRd), which is answered by a
// Completion-with-Data (CplD) from the target. Each TLP carries, besides
// the transport fields, a typed semantic content so the behavioural NIC
// and Root Complex models do not need to decode raw bytes: the content
// mirrors what the device-specific descriptor formats encode on real
// hardware.

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.hpp"

namespace bb::pcie {

enum class TlpType : std::uint8_t {
  kMemWrite,        // MWr: posted write
  kMemRead,         // MRd: read request, expects CplD
  kCompletionData,  // CplD: completion with data
};

enum class Direction : std::uint8_t {
  kDownstream,  // Root Complex -> NIC
  kUpstream,    // NIC -> Root Complex
};

std::string to_string(TlpType t);
std::string to_string(Direction d);

/// Operation requested by a message descriptor.
enum class WireOp : std::uint8_t {
  kRdmaWrite,  // one-sided put (UCX put_short / put_bw test)
  kSend,       // two-sided send, matched by a posted receive (am_short)
};

/// The device-specific message descriptor as the NIC sees it (§2 step 0).
struct WireMd {
  std::uint64_t msg_id = 0;   // simulator-wide message identity
  std::uint32_t qp = 0;       // queue pair the post targets
  /// Destination node (-1 = the single peer of a two-node testbed).
  int dst_node = -1;
  WireOp op = WireOp::kRdmaWrite;
  std::uint32_t payload_bytes = 0;
  bool inline_payload = false;  // payload embedded in the MD
  bool signaled = true;         // request a CQE for this post
  /// Opaque immediate data delivered with the message (the ibv
  /// imm_data/header equivalent); protocol layers use it for control
  /// messages (e.g. rendezvous RTS/CTS/FIN).
  std::uint64_t user_data = 0;
  std::uint64_t remote_addr = 0;
  std::uint64_t host_md_addr = 0;       // where the MD lives (DMA path)
  std::uint64_t host_payload_addr = 0;  // where the payload lives (DMA path)
};

// --- Semantic contents carried by TLPs ------------------------------------

/// 8-byte atomic DoorBell write (§2 step 1, non-PIO path).
struct DoorbellWrite {
  std::uint32_t qp = 0;
  std::uint64_t counter = 0;
};

/// PIO ("BlueFlame") descriptor write: the CPU copies the MD -- and, with
/// inlining, the payload -- straight into device memory in 64 B chunks.
struct DescriptorWrite {
  WireMd md;
};

/// NIC DMA-write of a completion entry into a host CQ (64 B on Mellanox).
struct CqeWrite {
  std::uint32_t qp = 0;
  std::uint64_t msg_id = 0;
  /// Number of operations this CQE retires (unsignalled moderation: a CQE
  /// every c ops acknowledges all c).
  std::uint32_t completes = 1;
  /// kIoError marks a completion-with-error (exhausted link recovery).
  common::Status status = common::Status::kOk;
};

/// NIC DMA-write of an inbound message payload into host memory.
struct PayloadWrite {
  std::uint64_t msg_id = 0;
  std::uint32_t qp = 0;
  std::uint32_t bytes = 0;
  std::uint64_t user_data = 0;
  WireOp op = WireOp::kSend;
};

/// NIC DMA-read request (MRd) for a host-resident MD or payload.
struct ReadRequest {
  enum class What : std::uint8_t { kDescriptor, kPayload };
  What what = What::kDescriptor;
  std::uint32_t qp = 0;
  std::uint64_t host_addr = 0;
  std::uint32_t bytes = 0;
  /// Marks a read reissued after a poisoned completion (payload reads are
  /// idempotent against host memory, so a retry is a plain re-read).
  bool retry = false;
};

/// CplD answering a ReadRequest.
struct ReadCompletion {
  ReadRequest::What what = ReadRequest::What::kDescriptor;
  WireMd md;  // valid when what == kDescriptor
  std::uint32_t bytes = 0;
  /// False when the completer aborted without touching host state (the
  /// MRd itself arrived poisoned), so no descriptor was consumed.
  bool served = true;
};

using TlpContent = std::variant<std::monostate, DoorbellWrite, DescriptorWrite,
                                CqeWrite, PayloadWrite, ReadRequest,
                                ReadCompletion>;

struct Tlp {
  TlpType type = TlpType::kMemWrite;
  Direction dir = Direction::kDownstream;
  std::uint64_t address = 0;
  /// Payload size on the wire (the PIO post of an 8-byte message is one
  /// 64-byte chunk; a CQE is 64 bytes; an MRd carries no data).
  std::uint32_t bytes = 0;
  /// Transaction tag pairing MRd with its CplD.
  std::uint64_t tag = 0;
  /// Error forwarding (the EP bit): set when the sender exhausted its
  /// data-link replay budget and forwarded the TLP anyway. Receivers turn
  /// poisoned TLPs into error completions instead of acting on their
  /// (nominally corrupt) content.
  bool poisoned = false;
  TlpContent content;

  std::string describe() const;
};

/// Total data credits (in 16-byte units, 4 DW) a TLP consumes.
std::uint32_t data_credit_units(const Tlp& tlp);

}  // namespace bb::pcie
