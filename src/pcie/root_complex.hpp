#pragma once
// The Root Complex (§2): connects the processor and memory to the PCIe
// fabric.
//
// Downstream: CPU cores deposit posted MMIO writes (DoorBell rings, PIO
// descriptor copies); the RC issues them as MWr TLPs as soon as flow-
// control credits allow. Its own generation cost is a few cycles and is
// ignored, following §4.2.
//
// Upstream: MWr TLPs from the NIC (completions, inbound payloads) are
// committed to host memory after the RC-to-MEM(x B) latency and then
// surfaced to the registered memory sink; MRd TLPs (NIC DMA reads of
// descriptors/payloads) are answered with CplD after the memory read
// latency. Every processed upstream TLP returns its credits to the NIC
// via an UpdateFC DLLP.

#include <cstdint>
#include <functional>

#include "common/units.hpp"
#include "pcie/credit.hpp"
#include "pcie/link.hpp"
#include "sim/channel.hpp"
#include "sim/signal.hpp"
#include "sim/simulator.hpp"

namespace bb::pcie {

struct RcParams {
  /// RC-to-MEM(x B) = base + per_byte * x. Calibrated so that
  /// RC-to-MEM(8 B) = 240.96 ns (Table 1).
  double rc_to_mem_base_ns = 238.16;
  double rc_to_mem_per_byte_ns = 0.35;
  /// Host DRAM read latency serving a NIC DMA read.
  double mem_read_ns = 150.0;

  TimePs rc_to_mem(std::uint32_t bytes) const {
    return TimePs::from_ns(rc_to_mem_base_ns +
                           rc_to_mem_per_byte_ns * static_cast<double>(bytes));
  }
};

class RootComplex {
 public:
  /// A committed host-memory write: the TLP plus the time at which the
  /// write became visible to CPU loads.
  using MemorySink = std::function<void(const Tlp&, TimePs visible_at)>;
  /// Serves NIC DMA reads of host-resident descriptors/payloads.
  using ReadProvider = std::function<ReadCompletion(const ReadRequest&)>;

  RootComplex(sim::Simulator& sim, Link& link, RcParams params,
              CreditState credits = CreditState::default_endpoint());
  RootComplex(const RootComplex&) = delete;
  RootComplex& operator=(const RootComplex&) = delete;

  void set_memory_sink(MemorySink sink) { mem_sink_ = std::move(sink); }
  void set_read_provider(ReadProvider p) { read_provider_ = std::move(p); }

  /// Posted MMIO write from a CPU core (fire-and-forget: posted writes do
  /// not stall the core). The caller must have flushed its core first.
  void post_mmio(Tlp tlp);

  const RcParams& params() const { return params_; }
  const CreditState& credits() const { return credits_; }

  std::uint64_t mmio_issued() const { return mmio_issued_; }
  std::uint64_t mem_writes_committed() const { return mem_writes_committed_; }
  std::uint64_t credit_stalls() const { return credit_stalls_; }

 private:
  sim::Task<void> downstream_pump();
  void on_upstream_tlp(const Tlp& tlp);
  void on_upstream_dllp(const Dllp& d);

  sim::Simulator& sim_;
  Link& link_;
  RcParams params_;
  CreditState credits_;
  /// Cumulative released-credit totals for the UpdateFCs we send the NIC.
  CreditLedger ledger_;
  sim::Channel<Tlp> ingress_;
  sim::Signal credit_avail_;
  MemorySink mem_sink_;
  ReadProvider read_provider_;
  std::uint64_t mmio_issued_ = 0;
  std::uint64_t mem_writes_committed_ = 0;
  std::uint64_t credit_stalls_ = 0;
};

}  // namespace bb::pcie
