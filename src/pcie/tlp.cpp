#include "pcie/tlp.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace bb::pcie {

std::string to_string(TlpType t) {
  switch (t) {
    case TlpType::kMemWrite:
      return "MWr";
    case TlpType::kMemRead:
      return "MRd";
    case TlpType::kCompletionData:
      return "CplD";
  }
  BB_UNREACHABLE("bad TlpType");
}

std::string to_string(Direction d) {
  switch (d) {
    case Direction::kDownstream:
      return "down";
    case Direction::kUpstream:
      return "up";
  }
  BB_UNREACHABLE("bad Direction");
}

std::string Tlp::describe() const {
  const char* what = "";
  if (std::holds_alternative<DoorbellWrite>(content)) what = " DoorBell";
  if (std::holds_alternative<DescriptorWrite>(content)) what = " PIO-MD";
  if (std::holds_alternative<CqeWrite>(content)) what = " CQE";
  if (std::holds_alternative<PayloadWrite>(content)) what = " payload";
  if (std::holds_alternative<ReadRequest>(content)) what = " DMA-read";
  if (std::holds_alternative<ReadCompletion>(content)) what = " DMA-data";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s(%s) %uB%s", to_string(type).c_str(),
                to_string(dir).c_str(), bytes, what);
  return buf;
}

std::uint32_t data_credit_units(const Tlp& tlp) {
  // One unit per started 16 bytes of data; MRd carries none.
  if (tlp.type == TlpType::kMemRead) return 0;
  return (tlp.bytes + 15) / 16;
}

}  // namespace bb::pcie
