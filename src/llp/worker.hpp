#pragma once
// The LLP worker: owns progress (CQ polling) for the endpoints created
// from it, mirroring uct_worker_progress (§4.1).
//
// A progress pass scans the RX CQ and every registered endpoint's TX CQ,
// dequeuing visible entries up to a batch limit. Each dequeued entry costs
// LLP_prog (load memory barrier + CQE read + bookkeeping); an empty pass
// costs the cheaper empty-progress time. Completion dispatch (endpoint
// accounting, registered upper-layer callbacks) runs before the pass
// returns, exactly as UCT executes callbacks before uct_worker_progress
// returns (§5).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cpu/core.hpp"
#include "fault/fault.hpp"
#include "nic/queues.hpp"
#include "prof/profiler.hpp"
#include "sim/task.hpp"

namespace bb::llp {

class Endpoint;

struct WorkerConfig {
  /// Maximum CQ entries dequeued per progress call.
  std::uint32_t batch_limit = 16;
};

class Worker {
 public:
  Worker(cpu::Core& core, nic::HostMemory& host, WorkerConfig cfg = {});

  cpu::Core& core() { return core_; }
  nic::HostMemory& host() { return host_; }

  /// Optional profiler wrapped around LLP-internal operations.
  void set_profiler(prof::Profiler* p) { profiler_ = p; }
  prof::Profiler* profiler() { return profiler_; }

  /// Profiler wrap point (one at a time, §3): "uct_worker_progress"
  /// (whole pass) or "LLP_prog" (each CQE dequeue).
  void set_wrap(std::string region) { wrap_ = std::move(region); }

  /// Callback invoked for every receive completion (HLP registers its
  /// tag-matching here; §5's "registered callback" chain).
  void set_rx_handler(std::function<void(const nic::Cqe&)> h) {
    rx_handler_ = std::move(h);
  }

  /// Message ids are allocated node-wide (via the host memory image) so
  /// multiple workers on one node never collide at the shared NIC.
  std::uint64_t alloc_msg_id() { return host_.alloc_msg_id(); }
  void register_endpoint(Endpoint* ep) { endpoints_.push_back(ep); }

  /// One uct_worker_progress pass; returns completions processed (TX ops
  /// retired count as the number of CQEs dequeued, not ops).
  sim::Task<std::uint32_t> progress(std::uint32_t max_completions = 0);

  std::uint64_t tx_cqes_polled() const { return tx_cqes_polled_; }
  std::uint64_t tx_ops_retired() const { return tx_ops_retired_; }
  std::uint64_t rx_completions() const { return rx_completions_; }
  /// Completions-with-error surfaced through this worker (fault path).
  std::uint64_t error_completions() const { return error_completions_; }
  /// Subset of error completions that were QP-error flushes (kFlushed):
  /// ops that never failed themselves but lost their QP underneath them.
  std::uint64_t flushed_completions() const { return flushed_completions_; }

  /// Shared fault-stat accumulator (wired by the testbed when fault
  /// injection is enabled).
  void set_fault_stats(fault::FaultStats* s) { fault_stats_ = s; }
  void note_busy_post_retry() {
    if (fault_stats_) ++fault_stats_->busy_post_retries;
  }

 private:
  cpu::Core& core_;
  nic::HostMemory& host_;
  WorkerConfig cfg_;
  prof::Profiler* profiler_ = nullptr;
  std::string wrap_;
  std::vector<Endpoint*> endpoints_;
  std::function<void(const nic::Cqe&)> rx_handler_;
  std::uint64_t tx_cqes_polled_ = 0;
  std::uint64_t tx_ops_retired_ = 0;
  std::uint64_t rx_completions_ = 0;
  std::uint64_t error_completions_ = 0;
  std::uint64_t flushed_completions_ = 0;
  fault::FaultStats* fault_stats_ = nullptr;
};

}  // namespace bb::llp
