#include "llp/endpoint.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "nic/nic.hpp"

namespace bb::llp {

Endpoint::Endpoint(Worker& worker, pcie::RootComplex& rc, EndpointConfig cfg,
                   nic::Nic* nic)
    : worker_(worker), rc_(rc), cfg_(cfg), nic_(nic) {
  // With moderation period > TxQ depth the queue can fill before any
  // descriptor is signalled, so no CQE is ever generated and every later
  // post busy-loops forever -- the same deadlock a real mlx5 queue pair
  // would exhibit. Reject the configuration up front.
  BB_ASSERT_MSG(cfg_.signal.period <= cfg_.txq_depth,
                "unsignalled-completion period must not exceed TxQ depth");
  // Registered-memory payload region: disjoint per QP so concurrent DMA
  // payload fetches from different endpoints never alias.
  next_payload_addr_ = 0x100000ull * (cfg_.qp + 1ull);
  worker_.register_endpoint(this);
}

sim::Task<Status> Endpoint::put_short(std::uint32_t bytes) {
  return post(pcie::WireOp::kRdmaWrite, bytes);
}

sim::Task<Status> Endpoint::am_short(std::uint32_t bytes,
                                     std::uint64_t user_data) {
  return post(pcie::WireOp::kSend, bytes, /*force_signal=*/false, user_data);
}

sim::Task<Status> Endpoint::put_short_retry(std::uint32_t bytes) {
  return post_retrying(pcie::WireOp::kRdmaWrite, bytes, 0);
}

sim::Task<Status> Endpoint::am_short_retry(std::uint32_t bytes,
                                           std::uint64_t user_data) {
  return post_retrying(pcie::WireOp::kSend, bytes, user_data);
}

sim::Task<Status> Endpoint::post_retrying(pcie::WireOp op, std::uint32_t bytes,
                                          std::uint64_t user_data) {
  // Exponential backoff between fruitless progress passes: under faults
  // the freeing CQE waits on a replay timer, so spinning at poll speed
  // would charge millions of empty passes to the core.
  double backoff_ns = 0.0;
  for (;;) {
    const Status st = co_await post(op, bytes, /*force_signal=*/false,
                                    user_data);
    if (st != Status::kNoResource) co_return st;
    worker_.note_busy_post_retry();
    const std::uint32_t progressed = co_await worker_.progress();
    if (progressed > 0) {
      backoff_ns = 0.0;
      continue;
    }
    backoff_ns = backoff_ns == 0.0 ? 50.0 : std::min(backoff_ns * 2.0, 4000.0);
    co_await worker_.core().simulator().delay(TimePs::from_ns(backoff_ns));
  }
}

sim::Task<Status> Endpoint::flush() {
  if (outstanding_ == 0) co_return Status::kOk;
  co_return co_await post(pcie::WireOp::kRdmaWrite, 0,
                          /*force_signal=*/true);
}

sim::Task<Status> Endpoint::post(pcie::WireOp op, std::uint32_t bytes,
                                 bool force_signal,
                                 std::uint64_t user_data) {
  cpu::Core& core = worker_.core();
  const cpu::CpuCostModel& costs = core.costs();
  prof::Profiler* prof = worker_.profiler();

  if (outstanding_ >= cfg_.txq_depth) {
    // Busy post: early-exit before any descriptor work (§4.2).
    ++busy_posts_;
    prof::Profiler::Region rb;
    if (prof && cfg_.profile_level >= 1) rb = prof->begin("Busy post");
    core.consume(costs.busy_post);
    if (prof) prof->end(rb);
    co_return Status::kNoResource;
  }

  const bool substeps = prof && cfg_.profile_level >= 2;
  prof::Profiler::Region r_total;
  if (prof && cfg_.profile_level == 1) r_total = prof->begin("LLP_post");

  auto step = [&](const char* name, const cpu::CostSpec& spec) {
    prof::Profiler::Region r;
    if (substeps) r = prof->begin(name);
    core.consume(spec);
    if (substeps) prof->end(r);
  };

  // (1) Prepare the MD; includes the inline-payload memcpy.
  step("MD setup", costs.md_setup);
  // (2) Store barrier: MD fully written before signalling the NIC.
  step("Barrier for MD", costs.barrier_store_md);
  // (3)+(4) DoorBell counter increment + its store barrier.
  step("Barrier for DBC", costs.barrier_store_dbc);

  pcie::WireMd md;
  md.msg_id = worker_.alloc_msg_id();
  md.qp = cfg_.qp;
  md.dst_node = cfg_.peer_node;
  md.user_data = user_data;
  md.op = op;
  md.payload_bytes = bytes;
  md.inline_payload = cfg_.inline_payload && bytes <= cfg_.max_inline_bytes;
  ++signal_counter_;
  md.signaled = force_signal || (signal_counter_ % cfg_.signal.period) == 0;

  if (!md.inline_payload) {
    // The payload stays in registered memory; give it its address before
    // the descriptor is staged/copied anywhere.
    md.host_payload_addr = next_payload_addr_;
    next_payload_addr_ += bytes;
  }

  std::uint32_t mmio_bytes = 0;
  if (cfg_.use_pio) {
    // (5) PIO copy in 64-byte chunks (§2). Without inlining, the payload
    // still needs a DMA read, so only the control segment is copied.
    const std::uint32_t body =
        cfg_.md_overhead_bytes + (md.inline_payload ? bytes : 0);
    const std::uint32_t chunks = (body + 63) / 64;
    for (std::uint32_t i = 0; i < chunks; ++i) {
      step("PIO copy", costs.pio_copy_64b);
    }
    mmio_bytes = chunks * 64;
  } else {
    // DoorBell path: the driver already wrote the MD into the host ring
    // (covered by MD setup); ring the 8-byte DoorBell.
    worker_.host().stage_descriptor(md);
    step("DoorBell write", costs.doorbell_write_8b);
    mmio_bytes = 8;
  }

  // Function-call overhead, branches to decide the code path, etc.
  step("Other", costs.llp_post_misc);

  ++outstanding_;
  ++posted_;

  if (prof && cfg_.profile_level == 1) prof->end(r_total);

  // Interaction point: materialize the accrued CPU time, then hand the
  // posted write to the Root Complex.
  co_await core.flush();

  pcie::Tlp tlp;
  tlp.type = pcie::TlpType::kMemWrite;
  tlp.bytes = mmio_bytes;
  if (cfg_.use_pio) {
    tlp.content = pcie::DescriptorWrite{md};
  } else {
    tlp.content = pcie::DoorbellWrite{cfg_.qp, ++doorbell_counter_};
  }
  rc_.post_mmio(std::move(tlp));

  co_return Status::kOk;
}

void Endpoint::on_tx_cqe(const nic::Cqe& cqe) {
  BB_ASSERT_MSG(outstanding_ >= cqe.completes,
                "CQE retired more ops than outstanding");
  outstanding_ -= cqe.completes;
  if (cqe.status != Status::kOk) ++tx_errors_;
  if (cqe.status == Status::kFlushed) ++tx_flushed_;
  if (tx_retire_) tx_retire_(cqe.completes);
}

bool Endpoint::qp_in_error() const {
  return nic_ != nullptr && nic_->qp_state(cfg_.qp) == nic::QpState::kError;
}

sim::Task<Status> Endpoint::reconnect() {
  if (nic_ == nullptr) co_return Status::kIoError;
  // Drain every outstanding op first. A QP in the error state has
  // already flushed them as error CQEs; a healthy QP finishes them
  // normally. Either way progress() retires them all.
  double backoff_ns = 0.0;
  while (outstanding_ > 0) {
    const std::uint32_t progressed = co_await worker_.progress();
    if (progressed > 0) {
      backoff_ns = 0.0;
      continue;
    }
    backoff_ns = backoff_ns == 0.0 ? 50.0 : std::min(backoff_ns * 2.0, 4000.0);
    co_await worker_.core().simulator().delay(TimePs::from_ns(backoff_ns));
  }
  // Modify-QP ladder, then poll for the re-handshake like a verbs driver
  // polls the async event queue.
  nic_->qp_reset(cfg_.qp);
  nic_->qp_connect(cfg_.qp, cfg_.peer_node);
  backoff_ns = 100.0;
  while (nic_->qp_state(cfg_.qp) == nic::QpState::kConnecting) {
    co_await worker_.core().simulator().delay(TimePs::from_ns(backoff_ns));
    backoff_ns = std::min(backoff_ns * 2.0, 4000.0);
  }
  co_return nic_->qp_state(cfg_.qp) == nic::QpState::kRts ? Status::kOk
                                                          : Status::kIoError;
}

}  // namespace bb::llp
