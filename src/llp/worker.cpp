#include "llp/worker.hpp"

#include "llp/endpoint.hpp"

namespace bb::llp {

Worker::Worker(cpu::Core& core, nic::HostMemory& host, WorkerConfig cfg)
    : core_(core), host_(host), cfg_(cfg) {}

sim::Task<std::uint32_t> Worker::progress(std::uint32_t max_completions) {
  const std::uint32_t limit =
      max_completions == 0 ? cfg_.batch_limit : max_completions;
  const cpu::CpuCostModel& costs = core_.costs();

  prof::Profiler::Region r_pass;
  if (profiler_ && wrap_ == "uct_worker_progress") {
    r_pass = profiler_->begin("uct_worker_progress");
  }
  const bool wrap_prog = profiler_ && wrap_ == "LLP_prog";

  std::uint32_t n = 0;
  bool found = true;
  while (n < limit && found) {
    found = false;
    const TimePs now = core_.virtual_now();

    // RX CQ first: inbound completions unblock the latency-critical path.
    if (auto cqe = host_.rx_cq().poll(now)) {
      prof::Profiler::Region r;
      if (wrap_prog) r = profiler_->begin("LLP_prog");
      core_.consume(costs.llp_prog);
      if (wrap_prog) profiler_->end(r);
      ++rx_completions_;
      if (cqe->status != common::Status::kOk) ++error_completions_;
      if (cqe->status == common::Status::kFlushed) ++flushed_completions_;
      ++n;
      found = true;
      if (rx_handler_) rx_handler_(*cqe);
      continue;
    }
    // Then each endpoint's TX CQ.
    for (Endpoint* ep : endpoints_) {
      if (auto cqe = host_.tx_cq(ep->config().qp).poll(now)) {
        prof::Profiler::Region r;
        if (wrap_prog) r = profiler_->begin("LLP_prog");
        core_.consume(costs.llp_prog);
        if (wrap_prog) profiler_->end(r);
        ++tx_cqes_polled_;
        tx_ops_retired_ += cqe->completes;
        if (cqe->status != common::Status::kOk) ++error_completions_;
        if (cqe->status == common::Status::kFlushed) ++flushed_completions_;
        ++n;
        found = true;
        ep->on_tx_cqe(*cqe);
        break;
      }
    }
  }

  if (n == 0) {
    // An empty pass still pays the load barrier and the CQ read miss.
    core_.consume(costs.llp_empty_progress);
  }

  if (profiler_ && wrap_ == "uct_worker_progress") profiler_->end(r_pass);

  // Materialize the consumed time so subsequent polls observe later CQEs.
  co_await core_.flush();
  co_return n;
}

}  // namespace bb::llp
