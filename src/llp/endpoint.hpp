#pragma once
// A UCT-like endpoint: the HW/SW interface for posting messages to one
// queue pair (§4.1).
//
// put_short / am_short execute the paper's five-step PIO post sequence on
// the owning core:
//   (1) prepare the MD (memcpy of the inline payload included),
//   (2) store barrier for the MD,
//   (3+4) DoorBell-counter update + its store barrier,
//   (5) PIO copy of 64-byte chunks into Device-GRE memory,
// plus the miscellaneous function-call/branching time, and then hand the
// posted MWr to the Root Complex. The alternative DoorBell+DMA descriptor
// path (use_pio = false) stages the descriptor in host memory and rings
// an 8-byte DoorBell instead -- the configuration §2 explains PIO
// replaces, kept for the descriptor-path ablation.

#include <cstdint>
#include <functional>

#include "llp/uct.hpp"
#include "llp/worker.hpp"
#include "pcie/root_complex.hpp"
#include "pcie/tlp.hpp"

namespace bb::nic {
class Nic;
}

namespace bb::llp {

struct EndpointConfig {
  std::uint32_t qp = 0;
  /// Destination node (-1 = the single peer of a two-node testbed).
  int peer_node = -1;
  /// Transmit-queue depth; posts beyond it fail with kNoResource.
  std::uint32_t txq_depth = 128;
  /// PIO ("BlueFlame") vs DoorBell+DMA descriptor path.
  bool use_pio = true;
  /// Inline the payload in the descriptor (only meaningful for sizes that
  /// fit; larger payloads force the DMA payload fetch).
  bool inline_payload = true;
  /// Largest payload that can be inlined.
  std::uint32_t max_inline_bytes = 192;
  /// Control-segment bytes preceding the payload in the descriptor (PIO
  /// chunking: an 8-byte payload still fills one 64-byte chunk).
  std::uint32_t md_overhead_bytes = 32;
  SignalPolicy signal;
  /// Wrap posts in profiler regions: 0 = none, 1 = total ("LLP_post"),
  /// 2 = per-substep (Fig. 4). Levels are exclusive, following §3's
  /// one-component-at-a-time rule.
  int profile_level = 0;
};

class Endpoint {
 public:
  /// `nic` (optional) is this node's NIC, used for QP state queries and
  /// the reconnect path; without it reconnect() reports kIoError.
  Endpoint(Worker& worker, pcie::RootComplex& rc, EndpointConfig cfg,
           nic::Nic* nic = nullptr);

  const EndpointConfig& config() const { return cfg_; }
  EndpointConfig& config() { return cfg_; }

  /// RDMA write (UCX put_short; the put_bw test).
  sim::Task<Status> put_short(std::uint32_t bytes);
  /// Two-sided send (UCX am_short; the am_lat test). `user_data` is the
  /// immediate data delivered with the receive completion (protocol
  /// headers ride here).
  sim::Task<Status> am_short(std::uint32_t bytes,
                             std::uint64_t user_data = 0);
  /// Fault-tolerant variants: retry busy posts, progressing the worker
  /// between attempts with exponential backoff while no completion
  /// arrives (under faults a CQE may be thousands of ns away -- §replay
  /// timer -- and spinning would melt the simulated core). Returns kOk
  /// once posted; completions may still retire with kIoError later.
  sim::Task<Status> put_short_retry(std::uint32_t bytes);
  sim::Task<Status> am_short_retry(std::uint32_t bytes,
                                   std::uint64_t user_data = 0);
  /// Posts a zero-byte *signalled* no-op whose CQE retires every
  /// unsignalled predecessor -- the uct_ep_flush equivalent needed to
  /// drain a moderated queue whose op count is not a multiple of the
  /// signalling period. No-op when nothing is outstanding.
  sim::Task<Status> flush();

  /// Whether this endpoint's QP sits in the error state (retry budget
  /// exhausted; posts are flushed until reconnect()).
  bool qp_in_error() const;
  /// QP recovery (docs/TRANSPORT.md): drains every outstanding
  /// completion (the error flush already queued error CQEs for them),
  /// walks the modify-QP ladder (reset -> init -> RTR -> RTS) and polls
  /// with backoff until the re-handshake lands. kOk once the QP is back
  /// in RTS; flushed ops must be reposted by the caller.
  sim::Task<Status> reconnect();

  /// Ops posted but not yet retired by a polled CQE.
  std::uint32_t outstanding() const { return outstanding_; }
  std::uint64_t posted() const { return posted_; }
  std::uint64_t busy_posts() const { return busy_posts_; }
  /// Ops retired by a completion-with-error (fault path).
  std::uint64_t tx_errors() const { return tx_errors_; }
  /// Subset of tx_errors that were QP-error flushes (kFlushed).
  std::uint64_t tx_flushed() const { return tx_flushed_; }

  /// Invoked by the worker when a TX CQE retires `k` ops (upper layers
  /// hook their send-progress accounting here).
  void set_tx_retire_handler(std::function<void(std::uint32_t)> h) {
    tx_retire_ = std::move(h);
  }

  /// Worker-internal: CQE dequeued for this endpoint.
  void on_tx_cqe(const nic::Cqe& cqe);

 private:
  sim::Task<Status> post(pcie::WireOp op, std::uint32_t bytes,
                         bool force_signal = false,
                         std::uint64_t user_data = 0);
  sim::Task<Status> post_retrying(pcie::WireOp op, std::uint32_t bytes,
                                  std::uint64_t user_data);

  Worker& worker_;
  pcie::RootComplex& rc_;
  EndpointConfig cfg_;
  nic::Nic* nic_ = nullptr;
  std::uint32_t outstanding_ = 0;
  std::uint64_t posted_ = 0;
  std::uint64_t busy_posts_ = 0;
  std::uint64_t tx_errors_ = 0;
  std::uint64_t tx_flushed_ = 0;
  std::uint64_t signal_counter_ = 0;
  std::uint64_t doorbell_counter_ = 0;
  std::uint64_t next_payload_addr_ = 0x1000;
  std::function<void(std::uint32_t)> tx_retire_;
};

}  // namespace bb::llp
