#pragma once
// Common types of the low-level communication protocol (LLP), a UCT-like
// transport interface (§4).

#include <cstdint>

namespace bb::llp {

enum class Status : std::uint8_t {
  kOk = 0,
  /// The transmit queue is full: the post failed and the caller must
  /// progress the worker before retrying ("busy post", §4.2).
  kNoResource,
};

/// How descriptors request completions.
struct SignalPolicy {
  /// Every `period`-th descriptor is signalled; its CQE retires the whole
  /// batch. 1 = every message signalled (the UCX perftest configuration);
  /// 64 = UCX's unsignalled-completion default (§6, [14]).
  std::uint32_t period = 1;
};

}  // namespace bb::llp
