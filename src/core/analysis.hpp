#pragma once
// The measurement methodology of §3-§4 applied to analyzer traces: how
// each low-level component time is extracted from timestamped PCIe
// packets captured just before the NIC.

#include <cstddef>
#include <cstdint>

#include "common/stats.hpp"
#include "pcie/trace.hpp"

namespace bb::core {

/// §4.2: the observed injection overhead -- deltas between consecutive
/// downstream PIO posts (64 B MWr) arriving at the NIC, after skipping a
/// warmup prefix.
Samples observed_injection(const pcie::Trace& trace, std::size_t skip = 0);

/// §4.3 "Measuring PCIe": half the round trip from a NIC-initiated MWr
/// (e.g. the DMA write of a completion) to the RC's Ack DLLP, both
/// timestamped at the tap.
Samples measured_pcie(const pcie::Trace& trace, std::uint32_t mwr_bytes = 64);

/// §4.3 "Measuring Network" on an am_lat trace: half the span from a
/// downstream 64 B PIO post (the ping reaching the NIC) to the next
/// upstream 64 B MWr (the ping's completion, generated on the target
/// NIC's ACK). Note the same systematic contamination a real measurement
/// has: NIC processing on both ends is inside the span.
Samples measured_network(const pcie::Trace& trace);

/// §4.3/Fig. 9 "Measuring RC-to-MEM(xB)" on an am_lat trace: the span
/// from an inbound pong's payload write (upstream MWr of payload size)
/// to the next outgoing ping (downstream 64 B MWr) contains
/// RC-to-MEM + 2 x PCIe + LLP_prog + LLP_post; the remaining components
/// are subtracted using their measured values.
Samples measured_rc_to_mem(const pcie::Trace& trace, double pcie_ns,
                           double llp_post_ns, double llp_prog_ns,
                           std::uint32_t payload_bytes = 8);

/// §4.3 "Measuring Switch": the difference between two latency
/// measurements, one with a switch and one without.
double measured_switch(double latency_with_switch_ns,
                       double latency_without_switch_ns);

}  // namespace bb::core
