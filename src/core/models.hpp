#pragma once
// The paper's analytical models (§4.2, §4.3, §6) and every percentage
// breakdown its figures present, computed from a ComponentTable.

#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/component_table.hpp"

namespace bb::core {

/// Injection-overhead models (§4.2, §6).
class InjectionModel {
 public:
  explicit InjectionModel(ComponentTable t) : t_(t) {}
  const ComponentTable& table() const { return t_; }

  /// Time to generate a completion after the message reached the NIC:
  /// gen_completion = 2 x (PCIe + Network) + RC-to-MEM(64B).
  double gen_completion_ns() const;
  /// Lower bound on the poll period p (posts per poll) that hides
  /// completion latency: p >= gen_completion / LLP_post.
  double min_poll_period() const;

  /// Eq. 1: LLP-level injection overhead = LLP_post + LLP_prog + Misc.
  double llp_injection_ns() const;
  /// Eq. 2: overall injection overhead = Post + Post_prog + Misc.
  double overall_injection_ns() const;
  double post_ns() const { return t_.hlp_post() + t_.llp_post(); }
  double post_prog_ns() const { return t_.hlp_tx_prog + t_.llp_tx_prog(); }

  /// Fig. 8: breakdown of the LLP injection overhead.
  std::vector<BarSegment> fig8_breakdown() const;
  /// Fig. 12: breakdown of the overall injection overhead.
  std::vector<BarSegment> fig12_breakdown() const;

 private:
  ComponentTable t_;
};

/// Latency models (§4.3, §6).
class LatencyModel {
 public:
  explicit LatencyModel(ComponentTable t) : t_(t) {}
  const ComponentTable& table() const { return t_; }

  /// §4.3: LLP-level latency of an x-byte send-receive message.
  /// Latency = LLP_post + 2 PCIe + Network + RC-to-MEM(xB) + LLP_prog.
  double llp_latency_ns() const;
  /// §6: end-to-end latency = + HLP_post + HLP_rx_prog.
  double e2e_latency_ns() const;

  /// Fig. 10: LLP latency breakdown (6 segments).
  std::vector<BarSegment> fig10_breakdown() const;
  /// Fig. 13: end-to-end latency breakdown (9 bars, ns).
  std::vector<BarSegment> fig13_breakdown() const;

  /// Fig. 11: HLP split between MPICH and UCP for initiation and for a
  /// successful receive-side MPI_Wait.
  struct HlpSplit {
    std::vector<BarSegment> isend;    // {UCP, MPICH}
    std::vector<BarSegment> rx_wait;  // {UCP, MPICH}
  };
  HlpSplit fig11_split() const;

  /// Fig. 14: protocol-layer split (LLP vs HLP) for initiation, TX
  /// progress and RX progress.
  struct LayerSplit {
    std::vector<BarSegment> initiation;
    std::vector<BarSegment> tx_progress;
    std::vector<BarSegment> rx_progress;
  };
  LayerSplit fig14_split() const;

  /// Fig. 15: CPU / IO / Network category totals plus per-category splits.
  struct Categories {
    std::vector<BarSegment> top;      // CPU, I/O, Network
    std::vector<BarSegment> cpu;      // LLP, HLP
    std::vector<BarSegment> io;       // PCIe, RC-to-MEM
    std::vector<BarSegment> network;  // Wire, Switch
  };
  Categories fig15_categories() const;

  /// Fig. 16: on-node time, initiator vs target and their CPU/IO splits.
  struct OnNode {
    std::vector<BarSegment> split;        // Initiator, Target
    std::vector<BarSegment> initiator;    // CPU, I/O
    std::vector<BarSegment> target;       // CPU, I/O
    std::vector<BarSegment> target_io;    // RC-to-MEM, PCIe
  };
  OnNode fig16_on_node() const;

 private:
  ComponentTable t_;
};

}  // namespace bb::core
