#pragma once
// The §7 what-if engine: "if we optimize component X by Y%, what is the
// corresponding reduction in injection overhead and latency?"
//
// The models' components are not concurrent (their executions do not
// overlap), so the speedup of reducing component c by fraction r in a
// pipeline of total T is exactly  r * c / T  -- the linear curves of
// Fig. 17. The engine produces the four panels (CPU->injection,
// CPU->latency, I/O->latency, network->latency) for the standard 10-90%
// reduction grid, plus the paper's individual spot checks.

#include <string>
#include <vector>

#include "core/component_table.hpp"
#include "core/models.hpp"

namespace bb::core {

struct WhatIfCurve {
  std::string component;
  double component_ns = 0;           // time attributed to the component
  std::vector<double> reductions;    // e.g. {0.1, 0.3, 0.5, 0.7, 0.9}
  std::vector<double> speedups;      // fraction of the base total saved
};

struct WhatIfPanel {
  std::string title;
  double base_total_ns = 0;
  std::vector<WhatIfCurve> curves;

  std::string render() const;
  std::string to_csv() const;
};

class WhatIf {
 public:
  explicit WhatIf(ComponentTable t);

  /// Speedup (fractional reduction of the base metric) from reducing a
  /// component of size `component_ns` by `reduction`.
  static double speedup(double component_ns, double reduction,
                        double base_ns) {
    return reduction * component_ns / base_ns;
  }

  static const std::vector<double>& standard_grid();

  /// Fig. 17a: CPU components vs overall injection.
  WhatIfPanel injection_cpu() const;
  /// Fig. 17b: CPU components vs end-to-end latency.
  WhatIfPanel latency_cpu() const;
  /// Fig. 17c: I/O components vs end-to-end latency ("Integrated NIC" is
  /// the whole I/O subsystem).
  WhatIfPanel latency_io() const;
  /// Fig. 17d: network components vs end-to-end latency.
  WhatIfPanel latency_network() const;

  // --- §7 spot checks -----------------------------------------------------
  /// PIO copy projected to `target_ns` (default 15): speedups of overall
  /// injection and of e2e latency.
  double pio_injection_speedup(double target_ns = 15.0) const;
  double pio_latency_speedup(double target_ns = 15.0) const;
  /// A `reduction` of all HLP (resp. LLP) components: injection speedup.
  double hlp_injection_speedup(double reduction) const;
  double llp_injection_speedup(double reduction) const;
  /// I/O reduced by `reduction` (integrated NIC): latency speedup.
  double integrated_nic_latency_speedup(double reduction) const;
  /// Switch reduced to `target_ns` (Gen-Z forecast): latency speedup.
  double switch_latency_speedup(double target_ns = 30.0) const;

 private:
  ComponentTable t_;
  double inj_base_;
  double lat_base_;
};

}  // namespace bb::core
