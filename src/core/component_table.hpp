#pragma once
// The component-time table: every measured quantity of the paper's
// Table 1 plus the quantities §5-§6 derive from it, as plain data.
//
// The analytical models (injection, latency, what-if) consume this table
// symbolically, so they can run against:
//  * the paper's published numbers (`paper()`),
//  * the values a SystemConfig is calibrated to (`from_config()`), or
//  * values measured from a simulator run (`from_profiler()` composed by
//    the benches).

#include <string>

#include "scenario/config.hpp"

namespace bb::core {

struct ComponentTable {
  // --- LLP_post constituents (ns) ---
  double md_setup = 0;
  double barrier_md = 0;
  double barrier_dbc = 0;
  double pio_copy = 0;
  double llp_post_misc = 0;

  // --- LLP ---
  double llp_prog = 0;
  double busy_post = 0;
  double measurement_update = 0;

  // --- I/O and network ---
  double pcie = 0;
  double wire = 0;
  double switch_lat = 0;
  double rc_to_mem_8b = 0;
  double rc_to_mem_64b = 0;

  // --- HLP ---
  double mpich_isend = 0;
  double ucp_isend = 0;
  double mpich_rx_cb = 0;
  double ucp_rx_cb = 0;
  double mpich_after_progress = 0;
  double mpich_wait_total = 0;  // successful MPI_Wait, MPICH share
  double ucp_wait_total = 0;    // successful MPI_Wait, UCP share
  double hlp_tx_prog = 0;       // per-op send-progress overhead (HLP share)
  double misc_overall_inj = 0;  // busy posts amortized per op (§6)

  /// Unsignalled-completion period c (§6; UCX default 64).
  double completion_period = 64;

  // --- Derived quantities ---
  double llp_post() const {
    return md_setup + barrier_md + barrier_dbc + pio_copy + llp_post_misc;
  }
  double network() const { return wire + switch_lat; }
  double hlp_post() const { return mpich_isend + ucp_isend; }
  double hlp_rx_prog() const {
    return mpich_rx_cb + ucp_rx_cb + mpich_after_progress;
  }
  /// LLP share of send progress, amortized by completion moderation.
  double llp_tx_prog() const { return llp_prog / completion_period; }
  /// Misc of the LLP-level injection model (Eq. 1).
  double misc_llp_inj() const { return busy_post + measurement_update; }

  /// The paper's published Table 1 (ThunderX2 + ConnectX-4 + EDR).
  static ComponentTable paper();

  /// The table a simulator configuration is calibrated to: CPU costs from
  /// the cost model, PCIe from the link's measured-methodology value,
  /// wire/switch from the fabric, RC-to-MEM from the Root Complex.
  static ComponentTable from_config(const scenario::SystemConfig& cfg);

  /// Renders the Table-1 equivalent (optionally side-by-side with a
  /// second table, e.g. paper vs. measured).
  std::string render(const ComponentTable* other = nullptr,
                     const std::string& self_name = "this",
                     const std::string& other_name = "other") const;
};

}  // namespace bb::core
