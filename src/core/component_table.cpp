#include "core/component_table.hpp"

#include <vector>

#include "common/table.hpp"

namespace bb::core {

ComponentTable ComponentTable::paper() {
  ComponentTable t;
  // Table 1 of the paper, verbatim.
  t.md_setup = 27.78;
  t.barrier_md = 17.33;
  t.barrier_dbc = 21.07;
  t.pio_copy = 94.25;
  t.llp_post_misc = 14.99;
  t.llp_prog = 61.63;
  t.busy_post = 8.99;
  t.measurement_update = 49.69;
  t.pcie = 137.49;
  t.wire = 274.81;
  t.switch_lat = 108.0;
  t.rc_to_mem_8b = 240.96;
  // Not published; the paper uses RC-to-MEM(64B) only inside
  // gen_completion. Extrapolated with the same affine model our RC uses.
  t.rc_to_mem_64b = 260.56;
  t.mpich_isend = 24.37;
  t.ucp_isend = 2.19;
  t.mpich_rx_cb = 47.99;
  t.ucp_rx_cb = 139.78;
  t.mpich_after_progress = 36.89;
  t.mpich_wait_total = 293.29;
  t.ucp_wait_total = 150.51;
  t.hlp_tx_prog = 58.86;  // Post_prog 59.82 minus amortized LLP 0.96 (§6)
  t.misc_overall_inj = 3.17;
  t.completion_period = 64;
  return t;
}

ComponentTable ComponentTable::from_config(const scenario::SystemConfig& cfg) {
  ComponentTable t;
  const auto& c = cfg.cpu;
  t.md_setup = c.md_setup.mean_ns;
  t.barrier_md = c.barrier_store_md.mean_ns;
  t.barrier_dbc = c.barrier_store_dbc.mean_ns;
  t.pio_copy = c.pio_copy_64b.mean_ns;
  t.llp_post_misc = c.llp_post_misc.mean_ns;
  t.llp_prog = c.llp_prog.mean_ns;
  t.busy_post = c.busy_post.mean_ns;
  t.measurement_update = c.timer_read.mean_ns;
  t.pcie = cfg.link.measured_pcie_ns();
  t.wire = cfg.net.wire_latency_ns;
  t.switch_lat = cfg.net.switch_latency_ns * cfg.net.num_switches;
  t.rc_to_mem_8b = cfg.rc.rc_to_mem(8).to_ns();
  t.rc_to_mem_64b = cfg.rc.rc_to_mem(64).to_ns();
  t.mpich_isend = c.mpich_isend.mean_ns;
  t.ucp_isend = c.ucp_isend.mean_ns;
  t.mpich_rx_cb = c.mpich_rx_callback.mean_ns;
  t.ucp_rx_cb = c.ucp_rx_callback.mean_ns;
  t.mpich_after_progress = c.mpich_after_progress.mean_ns;
  t.mpich_wait_total = c.mpich_wait_fixed.mean_ns + c.mpich_rx_callback.mean_ns +
                       c.mpich_after_progress.mean_ns;
  t.ucp_wait_total = c.ucp_progress_iter.mean_ns + c.ucp_rx_callback.mean_ns;
  t.hlp_tx_prog = c.hlp_tx_prog.mean_ns;
  t.misc_overall_inj = 3.17;  // busy-post average; emergent in the sim
  t.completion_period = 64;
  return t;
}

std::string ComponentTable::render(const ComponentTable* other,
                                   const std::string& self_name,
                                   const std::string& other_name) const {
  struct Row {
    const char* name;
    double a;
    double b;
  };
  auto val = [](const ComponentTable* t, double ComponentTable::*m) {
    return t ? t->*m : 0.0;
  };
  const std::vector<Row> rows = {
      {"Message descriptor setup", md_setup, val(other, &ComponentTable::md_setup)},
      {"Barrier for message descriptor", barrier_md, val(other, &ComponentTable::barrier_md)},
      {"Barrier for DoorBell counter", barrier_dbc, val(other, &ComponentTable::barrier_dbc)},
      {"PIO copy (64 bytes)", pio_copy, val(other, &ComponentTable::pio_copy)},
      {"Miscellaneous in LLP_post", llp_post_misc, val(other, &ComponentTable::llp_post_misc)},
      {"LLP_post (total of above)", llp_post(), other ? other->llp_post() : 0},
      {"LLP_prog", llp_prog, val(other, &ComponentTable::llp_prog)},
      {"Busy post", busy_post, val(other, &ComponentTable::busy_post)},
      {"Measurement update", measurement_update, val(other, &ComponentTable::measurement_update)},
      {"Misc in Inj_overhead (total of above)", misc_llp_inj(), other ? other->misc_llp_inj() : 0},
      {"PCIe for a 64-byte payload", pcie, val(other, &ComponentTable::pcie)},
      {"Wire", wire, val(other, &ComponentTable::wire)},
      {"Switch", switch_lat, val(other, &ComponentTable::switch_lat)},
      {"Network (total of above)", network(), other ? other->network() : 0},
      {"RC-to-MEM(8B)", rc_to_mem_8b, val(other, &ComponentTable::rc_to_mem_8b)},
      {"MPI_Isend in MPICH", mpich_isend, val(other, &ComponentTable::mpich_isend)},
      {"MPI_Isend in UCP", ucp_isend, val(other, &ComponentTable::ucp_isend)},
      {"Callback for a completed MPI_Irecv in MPICH", mpich_rx_cb, val(other, &ComponentTable::mpich_rx_cb)},
      {"Successful MPI_Wait for MPI_Irecv in MPICH", mpich_wait_total, val(other, &ComponentTable::mpich_wait_total)},
      {"Callback for a completed MPI_Irecv in UCP", ucp_rx_cb, val(other, &ComponentTable::ucp_rx_cb)},
      {"Successful MPI_Wait for MPI_Irecv in UCP", ucp_wait_total, val(other, &ComponentTable::ucp_wait_total)},
  };

  std::vector<std::string> header = {"Component", self_name + " (ns)"};
  if (other) header.push_back(other_name + " (ns)");
  TextTable table(header);
  for (const auto& r : rows) {
    std::vector<std::string> cells = {r.name, TextTable::num(r.a)};
    if (other) cells.push_back(TextTable::num(r.b));
    table.add_row(std::move(cells));
  }
  return table.render();
}

}  // namespace bb::core
