#include "core/whatif.hpp"

#include <cstdio>

namespace bb::core {

std::string WhatIfPanel::render() const {
  std::string out = title + "  (base " + TextTable::num(base_total_ns) +
                    " ns; cell = % speedup)\n";
  std::vector<std::string> header = {"Component", "ns"};
  if (!curves.empty()) {
    for (double r : curves[0].reductions) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "-%.0f%%", r * 100.0);
      header.push_back(buf);
    }
  }
  TextTable table(header);
  for (const auto& c : curves) {
    std::vector<std::string> row = {c.component, TextTable::num(c.component_ns)};
    for (double s : c.speedups) row.push_back(TextTable::pct(s));
    table.add_row(std::move(row));
  }
  return out + table.render();
}

std::string WhatIfPanel::to_csv() const {
  std::string out = "component,component_ns";
  if (!curves.empty()) {
    for (double r : curves[0].reductions) {
      out += "," + TextTable::num(r, 2);
    }
  }
  out += "\n";
  for (const auto& c : curves) {
    out += c.component + "," + TextTable::num(c.component_ns);
    for (double s : c.speedups) out += "," + TextTable::num(s * 100.0, 3);
    out += "\n";
  }
  return out;
}

WhatIf::WhatIf(ComponentTable t) : t_(t) {
  inj_base_ = InjectionModel(t_).overall_injection_ns();
  lat_base_ = LatencyModel(t_).e2e_latency_ns();
}

const std::vector<double>& WhatIf::standard_grid() {
  static const std::vector<double> grid = {0.1, 0.3, 0.5, 0.7, 0.9};
  return grid;
}

namespace {
WhatIfCurve make_curve(const std::string& name, double ns, double base) {
  WhatIfCurve c;
  c.component = name;
  c.component_ns = ns;
  c.reductions = WhatIf::standard_grid();
  for (double r : c.reductions) {
    c.speedups.push_back(WhatIf::speedup(ns, r, base));
  }
  return c;
}
}  // namespace

WhatIfPanel WhatIf::injection_cpu() const {
  WhatIfPanel p;
  p.title = "Fig 17a: injection speedup vs CPU-component reduction";
  p.base_total_ns = inj_base_;
  const double hlp = t_.hlp_post() + t_.hlp_tx_prog;
  const double llp = t_.llp_post() + t_.llp_tx_prog();
  p.curves = {
      make_curve("HLP", hlp, inj_base_),
      make_curve("LLP", llp, inj_base_),
      make_curve("LLP_post", t_.llp_post(), inj_base_),
      make_curve("PIO", t_.pio_copy, inj_base_),
      make_curve("HLP_tx_prog", t_.hlp_tx_prog, inj_base_),
      make_curve("HLP_post", t_.hlp_post(), inj_base_),
      make_curve("LLP_tx_prog", t_.llp_tx_prog(), inj_base_),
  };
  return p;
}

WhatIfPanel WhatIf::latency_cpu() const {
  WhatIfPanel p;
  p.title = "Fig 17b: latency speedup vs CPU-component reduction";
  p.base_total_ns = lat_base_;
  const double hlp = t_.hlp_post() + t_.hlp_rx_prog();
  const double llp = t_.llp_post() + t_.llp_prog;
  p.curves = {
      make_curve("HLP", hlp, lat_base_),
      make_curve("LLP", llp, lat_base_),
      make_curve("HLP_rx_prog", t_.hlp_rx_prog(), lat_base_),
      make_curve("LLP_post", t_.llp_post(), lat_base_),
      make_curve("PIO", t_.pio_copy, lat_base_),
      make_curve("HLP_post", t_.hlp_post(), lat_base_),
      make_curve("LLP_prog", t_.llp_prog, lat_base_),
  };
  return p;
}

WhatIfPanel WhatIf::latency_io() const {
  WhatIfPanel p;
  p.title = "Fig 17c: latency speedup vs I/O-component reduction";
  p.base_total_ns = lat_base_;
  const double io_total = 2.0 * t_.pcie + t_.rc_to_mem_8b;
  p.curves = {
      make_curve("Integrated NIC", io_total, lat_base_),
      make_curve("PCIe", 2.0 * t_.pcie, lat_base_),
      make_curve("RC-to-MEM", t_.rc_to_mem_8b, lat_base_),
  };
  return p;
}

WhatIfPanel WhatIf::latency_network() const {
  WhatIfPanel p;
  p.title = "Fig 17d: latency speedup vs network-component reduction";
  p.base_total_ns = lat_base_;
  p.curves = {
      make_curve("Wire", t_.wire, lat_base_),
      make_curve("Switch", t_.switch_lat, lat_base_),
  };
  return p;
}

double WhatIf::pio_injection_speedup(double target_ns) const {
  const double reduction = 1.0 - target_ns / t_.pio_copy;
  return speedup(t_.pio_copy, reduction, inj_base_);
}

double WhatIf::pio_latency_speedup(double target_ns) const {
  const double reduction = 1.0 - target_ns / t_.pio_copy;
  return speedup(t_.pio_copy, reduction, lat_base_);
}

double WhatIf::hlp_injection_speedup(double reduction) const {
  return speedup(t_.hlp_post() + t_.hlp_tx_prog, reduction, inj_base_);
}

double WhatIf::llp_injection_speedup(double reduction) const {
  return speedup(t_.llp_post() + t_.llp_tx_prog(), reduction, inj_base_);
}

double WhatIf::integrated_nic_latency_speedup(double reduction) const {
  return speedup(2.0 * t_.pcie + t_.rc_to_mem_8b, reduction, lat_base_);
}

double WhatIf::switch_latency_speedup(double target_ns) const {
  const double reduction = 1.0 - target_ns / t_.switch_lat;
  return speedup(t_.switch_lat, reduction, lat_base_);
}

}  // namespace bb::core
