#include "core/models.hpp"

namespace bb::core {

double InjectionModel::gen_completion_ns() const {
  return 2.0 * (t_.pcie + t_.network()) + t_.rc_to_mem_64b;
}

double InjectionModel::min_poll_period() const {
  return gen_completion_ns() / t_.llp_post();
}

double InjectionModel::llp_injection_ns() const {
  return t_.llp_post() + t_.llp_prog + t_.misc_llp_inj();
}

double InjectionModel::overall_injection_ns() const {
  return post_ns() + post_prog_ns() + t_.misc_overall_inj;
}

std::vector<BarSegment> InjectionModel::fig8_breakdown() const {
  // Note: the paper's Fig. 8 normalizes against LLP_post + LLP_prog +
  // measurement update only (its stated percentages 61.18/21.49/17.33
  // reconstruct a 286.74 ns base, i.e. Misc without the busy post),
  // although Eq. 1's Misc includes the busy post. We reproduce the figure.
  return {{"LLP_post", t_.llp_post()},
          {"LLP_prog", t_.llp_prog},
          {"Misc", t_.measurement_update}};
}

std::vector<BarSegment> InjectionModel::fig12_breakdown() const {
  return {{"Misc", t_.misc_overall_inj},
          {"Post_prog", post_prog_ns()},
          {"Post", post_ns()}};
}

double LatencyModel::llp_latency_ns() const {
  return t_.llp_post() + 2.0 * t_.pcie + t_.network() + t_.rc_to_mem_8b +
         t_.llp_prog;
}

double LatencyModel::e2e_latency_ns() const {
  return t_.hlp_post() + llp_latency_ns() + t_.hlp_rx_prog();
}

std::vector<BarSegment> LatencyModel::fig10_breakdown() const {
  return {{"LLP_post", t_.llp_post()}, {"TX PCIe", t_.pcie},
          {"Wire", t_.wire},           {"Switch", t_.switch_lat},
          {"RX PCIe", t_.pcie},        {"RC-to-MEM(8B)", t_.rc_to_mem_8b}};
}

std::vector<BarSegment> LatencyModel::fig13_breakdown() const {
  return {{"HLP_post", t_.hlp_post()},
          {"LLP_post", t_.llp_post()},
          {"TX PCIe", t_.pcie},
          {"Wire", t_.wire},
          {"Switch", t_.switch_lat},
          {"RX PCIe", t_.pcie},
          {"RC-to-MEM(8B)", t_.rc_to_mem_8b},
          {"LLP_prog", t_.llp_prog},
          {"HLP_rx_prog", t_.hlp_rx_prog()}};
}

LatencyModel::HlpSplit LatencyModel::fig11_split() const {
  HlpSplit s;
  s.isend = {{"UCP", t_.ucp_isend}, {"MPICH", t_.mpich_isend}};
  s.rx_wait = {{"UCP", t_.ucp_wait_total}, {"MPICH", t_.mpich_wait_total}};
  return s;
}

LatencyModel::LayerSplit LatencyModel::fig14_split() const {
  LayerSplit s;
  s.initiation = {{"LLP", t_.llp_post()}, {"HLP", t_.hlp_post()}};
  s.tx_progress = {{"LLP", t_.llp_tx_prog()}, {"HLP", t_.hlp_tx_prog}};
  s.rx_progress = {{"LLP", t_.llp_prog}, {"HLP", t_.hlp_rx_prog()}};
  return s;
}

LatencyModel::Categories LatencyModel::fig15_categories() const {
  Categories c;
  const double cpu_llp = t_.llp_post() + t_.llp_prog;
  const double cpu_hlp = t_.hlp_post() + t_.hlp_rx_prog();
  const double io_pcie = 2.0 * t_.pcie;
  const double io_mem = t_.rc_to_mem_8b;
  c.top = {{"CPU", cpu_llp + cpu_hlp},
           {"I/O", io_pcie + io_mem},
           {"Network", t_.network()}};
  c.cpu = {{"LLP", cpu_llp}, {"HLP", cpu_hlp}};
  c.io = {{"PCIe", io_pcie}, {"RC-to-MEM", io_mem}};
  c.network = {{"Wire", t_.wire}, {"Switch", t_.switch_lat}};
  return c;
}

LatencyModel::OnNode LatencyModel::fig16_on_node() const {
  OnNode o;
  const double init_cpu = t_.hlp_post() + t_.llp_post();
  const double init_io = t_.pcie;  // PIO: a single PCIe transaction (§6)
  const double tgt_cpu = t_.llp_prog + t_.hlp_rx_prog();
  const double tgt_io = t_.pcie + t_.rc_to_mem_8b;
  o.split = {{"Initiator", init_cpu + init_io}, {"Target", tgt_cpu + tgt_io}};
  o.initiator = {{"CPU", init_cpu}, {"I/O", init_io}};
  o.target = {{"CPU", tgt_cpu}, {"I/O", tgt_io}};
  o.target_io = {{"RC-to-MEM", t_.rc_to_mem_8b}, {"PCIe", t_.pcie}};
  return o;
}

}  // namespace bb::core
