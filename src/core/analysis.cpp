#include "core/analysis.hpp"

namespace bb::core {

using pcie::Direction;
using pcie::DllpType;
using pcie::TlpType;
using pcie::Trace;
using pcie::TraceRecord;

Samples observed_injection(const Trace& trace, std::size_t skip) {
  auto posts = trace.downstream_writes(64);
  if (posts.size() > skip) {
    posts.erase(posts.begin(), posts.begin() + static_cast<std::ptrdiff_t>(skip));
  }
  return Trace::deltas(posts);
}

Samples measured_pcie(const Trace& trace, std::uint32_t mwr_bytes) {
  const auto mwrs = trace.filter([mwr_bytes](const TraceRecord& r) {
    return !r.is_dllp && r.dir == Direction::kUpstream &&
           r.tlp_type == TlpType::kMemWrite && r.bytes == mwr_bytes;
  });
  const auto acks = trace.filter([](const TraceRecord& r) {
    return r.is_dllp && r.dir == Direction::kDownstream &&
           r.dllp_type == DllpType::kAck;
  });
  Samples round_trips = Trace::spans(mwrs, acks);
  Samples halves;
  for (double v : round_trips.values_ns()) halves.add_ns(v / 2.0);
  return halves;
}

Samples measured_network(const Trace& trace) {
  const auto pings = trace.downstream_writes(64);
  const auto completions = trace.filter([](const TraceRecord& r) {
    return !r.is_dllp && r.dir == Direction::kUpstream &&
           r.tlp_type == TlpType::kMemWrite && r.bytes == 64;
  });
  Samples spans = Trace::spans(pings, completions);
  Samples halves;
  for (double v : spans.values_ns()) halves.add_ns(v / 2.0);
  return halves;
}

Samples measured_rc_to_mem(const Trace& trace, double pcie_ns,
                           double llp_post_ns, double llp_prog_ns,
                           std::uint32_t payload_bytes) {
  const auto pongs = trace.filter([payload_bytes](const TraceRecord& r) {
    return !r.is_dllp && r.dir == Direction::kUpstream &&
           r.tlp_type == TlpType::kMemWrite && r.bytes == payload_bytes;
  });
  const auto pings = trace.downstream_writes(64);
  const Samples deltas = Trace::spans(pongs, pings);
  Samples rc_to_mem;
  for (double d : deltas.values_ns()) {
    rc_to_mem.add_ns(d - 2.0 * pcie_ns - llp_prog_ns - llp_post_ns);
  }
  return rc_to_mem;
}

double measured_switch(double latency_with_switch_ns,
                       double latency_without_switch_ns) {
  return latency_with_switch_ns - latency_without_switch_ns;
}

}  // namespace bb::core
