#pragma once
// OSU-micro-benchmark-style MPI tests used in §6:
//  * message rate (osu_mbw_mr-like): windows of MPI_Isend followed by
//    MPI_Waitall, with the per-window send-receive synchronization
//    removed (the paper's ‡ footnote) so the initiator-side overhead is
//    measured cleanly;
//  * point-to-point latency (osu_latency-like): a blocking MPI ping-pong.

#include <cstdint>

#include "benchlib/bench_types.hpp"
#include "scenario/mpi_stack.hpp"
#include "scenario/testbed.hpp"

namespace bb::bench {

struct OsuMessageRateConfig {
  std::uint64_t windows = 300;
  std::uint32_t window_size = 64;
  std::uint64_t warmup_windows = 30;
  std::uint32_t bytes = 8;
  /// UCX's unsignalled-completion period (§6: c = 64).
  std::uint32_t signal_period = 64;
  double speed_factor = 1.007;
  bool capture_trace = false;
};

class OsuMessageRate {
 public:
  OsuMessageRate(scenario::Testbed& tb, OsuMessageRateConfig cfg);

  InjectionResult run();

 private:
  sim::Task<void> driver();

  scenario::Testbed& tb_;
  OsuMessageRateConfig cfg_;
  scenario::MpiStack stack_;
  double cpu_start_ns_ = 0.0;
  double cpu_end_ns_ = 0.0;
};

struct OsuLatencyConfig {
  std::uint64_t iterations = 4000;
  std::uint64_t warmup = 400;
  std::uint32_t bytes = 8;
  std::uint32_t signal_period = 64;
  /// MPI loops have a larger instruction footprint than the UCT loop;
  /// the hot-loop gap vs. profiled means is stronger (§6: observed 1336
  /// sits 3.7% below the modelled 1387).
  double speed_factor = 0.93;
  bool capture_trace = false;
};

class OsuLatency {
 public:
  OsuLatency(scenario::Testbed& tb, OsuLatencyConfig cfg);

  LatencyResult run();

 private:
  sim::Task<void> initiator();
  sim::Task<void> responder();

  scenario::Testbed& tb_;
  OsuLatencyConfig cfg_;
  scenario::MpiStack a_;
  scenario::MpiStack b_;
  Samples half_rtt_raw_;
};

}  // namespace bb::bench
