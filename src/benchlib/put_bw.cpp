#include "benchlib/put_bw.hpp"

#include "common/assert.hpp"

namespace bb::bench {

PutBwBenchmark::PutBwBenchmark(scenario::Testbed& tb, PutBwConfig cfg)
    : tb_(tb), cfg_(cfg), ep_(tb.add_endpoint(0)) {}

sim::Task<void> PutBwBenchmark::driver() {
  auto& node = tb_.node(0);
  cpu::Core& core = node.core;
  const cpu::CpuCostModel& costs = core.costs();
  core.set_speed_factor(cfg_.speed_factor);
  node.profiler.set_enabled(false);  // observed run: no instrumentation

  std::uint64_t sent = 0;
  const std::uint64_t total = cfg_.warmup + cfg_.messages;
  while (sent < total) {
    const llp::Status st = co_await ep_.put_short(cfg_.bytes);
    if (st == llp::Status::kNoResource) {
      // Busy post: progress one completion, then retry (§4.2).
      co_await node.worker.progress(1);
      continue;
    }
    ++sent;
    if (sent == cfg_.warmup) measured_cpu_start_ns_ = core.virtual_now().to_ns();
    // Timestamp + injection-rate bookkeeping after every post.
    core.consume(costs.timer_read);
    // Per-iteration microarchitectural noise (right-skewed) plus rare OS
    // hiccups: together they produce Fig. 7's shape and heavy tail.
    core.consume(costs.loop_exp_noise);
    core.consume(costs.loop_hiccup);
    if (sent % cfg_.poll_every == 0) {
      co_await node.worker.progress(1);
    }
  }
  measured_cpu_end_ns_ = core.virtual_now().to_ns();

  // Drain remaining completions so the run ends quiescent.
  while (ep_.outstanding() > 0) {
    co_await node.worker.progress();
  }
  core.set_speed_factor(1.0);
}

InjectionResult PutBwBenchmark::run() {
  tb_.analyzer().set_enabled(cfg_.capture_trace);
  tb_.sim().spawn(driver(), "put_bw-driver");
  tb_.sim().run();

  InjectionResult res;
  res.messages = cfg_.messages;
  res.busy_posts = ep_.busy_posts();
  res.cpu_per_msg_ns = (measured_cpu_end_ns_ - measured_cpu_start_ns_) /
                       static_cast<double>(cfg_.messages);

  if (cfg_.capture_trace) {
    // Every post is one downstream 64 B MWr; drop the warmup prefix and
    // compute consecutive deltas (§4.2's methodology).
    auto posts = tb_.analyzer().trace().downstream_writes(64);
    BB_ASSERT(posts.size() >= cfg_.warmup + 2);
    posts.erase(posts.begin(),
                posts.begin() + static_cast<std::ptrdiff_t>(cfg_.warmup));
    res.nic_deltas = pcie::Trace::deltas(posts);
  }
  return res;
}

}  // namespace bb::bench
