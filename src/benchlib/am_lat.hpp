#pragma once
// UCX perftest's am_lat: the send-receive ping-pong latency
// microbenchmark of §4.3.
//
// Node 0 posts a ping (uct_ep_am_short), progresses until the pong's
// receive completion is polled, performs the benchmark's measurement
// update, and repeats. Node 1 mirrors. The benchmark reports half the
// round trip; §4.3 deducts half a measurement update from the raw value
// because the update sits on the critical path once per round trip.

#include <cstdint>

#include "benchlib/bench_types.hpp"
#include "scenario/testbed.hpp"

namespace bb::bench {

struct AmLatConfig {
  std::uint64_t iterations = 5000;
  std::uint64_t warmup = 500;
  std::uint32_t bytes = 8;
  double speed_factor = 1.0;
  bool capture_trace = true;
};

class AmLatBenchmark {
 public:
  AmLatBenchmark(scenario::Testbed& tb, AmLatConfig cfg);

  LatencyResult run();

  /// The analyzer trace is the input to the §4.3 component-measurement
  /// methodology (Wire, RC-to-MEM); exposed for the analysis module.
  const pcie::Trace& trace() const { return tb_.analyzer().trace(); }

 private:
  sim::Task<void> initiator();
  sim::Task<void> responder();

  scenario::Testbed& tb_;
  AmLatConfig cfg_;
  llp::Endpoint& ep0_;
  llp::Endpoint& ep1_;
  Samples half_rtt_raw_;
};

}  // namespace bb::bench
