#pragma once
// Result types shared by the benchmark loops.

#include <cstdint>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace bb::bench {

/// Result of an injection-rate run (put_bw or OSU message rate).
struct InjectionResult {
  /// Observed injection overhead: deltas between consecutive message
  /// arrivals at the NIC, from the analyzer trace (§4.2). Empty when
  /// trace capture was off.
  Samples nic_deltas;
  /// Mean CPU time per message over the measured window (wall-clock at
  /// the driving core divided by messages).
  double cpu_per_msg_ns = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t busy_posts = 0;
  /// Messages per second implied by cpu_per_msg_ns.
  double message_rate() const {
    return cpu_per_msg_ns > 0 ? 1e9 / cpu_per_msg_ns : 0.0;
  }
};

/// Result of a ping-pong latency run (am_lat or OSU pt2pt latency).
struct LatencyResult {
  /// Half round-trip per iteration, raw (includes the benchmark's own
  /// measurement update, as the raw UCX number does in §4.3).
  Samples half_rtt_raw;
  /// The §4.3 adjustment: raw mean minus half a measurement update.
  double adjusted_mean_ns = 0.0;
  std::uint64_t iterations = 0;
};

}  // namespace bb::bench
