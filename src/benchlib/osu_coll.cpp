#include "benchlib/osu_coll.hpp"

#include "common/assert.hpp"

namespace bb::bench {

OsuColl::OsuColl(coll::World& world, Kind kind, OsuCollConfig cfg)
    : world_(world), kind_(kind), cfg_(cfg) {
  starts_.assign(static_cast<std::size_t>(world_.size()), {});
  ends_.assign(static_cast<std::size_t>(world_.size()), {});
}

sim::Task<void> OsuColl::rank_loop(int r) {
  coll::Communicator& c = world_.comm(r);
  cpu::Core& core = c.core();
  const std::uint32_t elems = cfg_.bytes / 8;
  const std::uint64_t total = cfg_.warmup + cfg_.iterations;

  for (std::uint64_t it = 0; it < total; ++it) {
    co_await coll::barrier(c);
    // Align every rank to the iteration's absolute epoch tick. The
    // barrier alone leaves ranks skewed by its own exit spread, which
    // would either inflate (per-rank timing) or deflate (window timing)
    // receive-only collectives like bcast.
    const double target = static_cast<double>(it + 1) * cfg_.epoch_ns;
    const double now = core.virtual_now().to_ns();
    BB_ASSERT_MSG(now < target,
                  "OsuCollConfig::epoch_ns too small for this collective");
    co_await world_.cluster().sim().delay(TimePs::from_ns(target - now));
    const double t0 = core.virtual_now().to_ns();
    switch (kind_) {
      case Kind::kBarrier: {
        co_await coll::barrier(c, cfg_.algo);
        break;
      }
      case Kind::kBcast: {
        std::vector<double> v;
        if (r == cfg_.root) {
          v.assign(elems, static_cast<double>(it + 1));
        }
        co_await coll::bcast(c, cfg_.root, cfg_.bytes, v, cfg_.algo);
        break;
      }
      case Kind::kAllgather: {
        std::vector<double> mine(elems, static_cast<double>(r + 1));
        std::vector<std::vector<double>> out;
        co_await coll::allgather(c, cfg_.bytes, mine, out, cfg_.algo);
        break;
      }
      case Kind::kAllreduce: {
        std::vector<double> v(elems, static_cast<double>(r + 1));
        co_await coll::allreduce(c, cfg_.bytes, v, coll::ReduceOp::kSum,
                                 cfg_.algo);
        break;
      }
    }
    starts_[static_cast<std::size_t>(r)].push_back(t0);
    ends_[static_cast<std::size_t>(r)].push_back(core.virtual_now().to_ns());
  }
}

CollResult OsuColl::run() {
  if (kind_ != Kind::kBarrier) {
    BB_ASSERT(cfg_.bytes >= 8 && cfg_.bytes % 8 == 0);
  }
  sim::Simulator& sim = world_.cluster().sim();
  for (int r = 0; r < world_.size(); ++r) {
    sim.spawn(rank_loop(r), "osu_coll-rank");
  }
  sim.run();

  CollResult res;
  res.iterations = cfg_.iterations;
  const std::uint64_t total = cfg_.warmup + cfg_.iterations;
  for (std::uint64_t it = cfg_.warmup; it < total; ++it) {
    // Global iteration window: last rank out minus last rank in. The
    // per-rank (end - own_start) alternative folds the synchronizing
    // barrier's exit skew into receive-only collectives (a leaf that
    // leaves the barrier early but waits on a relayed message charges
    // the skew to the collective); the global window measures only the
    // span the collective adds once every rank has entered it.
    double last_in = 0.0;
    double last_out = 0.0;
    for (std::size_t r = 0; r < starts_.size(); ++r) {
      BB_ASSERT(starts_[r].size() == total && ends_[r].size() == total);
      last_in = std::max(last_in, starts_[r][it]);
      last_out = std::max(last_out, ends_[r][it]);
    }
    res.iter_ns.add_ns(last_out - last_in);
  }
  return res;
}

}  // namespace bb::bench
