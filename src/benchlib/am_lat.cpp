#include "benchlib/am_lat.hpp"

namespace bb::bench {

AmLatBenchmark::AmLatBenchmark(scenario::Testbed& tb, AmLatConfig cfg)
    : tb_(tb), cfg_(cfg), ep0_(tb.add_endpoint(0)), ep1_(tb.add_endpoint(1)) {
  const std::uint32_t msgs =
      static_cast<std::uint32_t>(cfg_.warmup + cfg_.iterations + 2);
  tb_.node(0).nic.post_receives(msgs);
  tb_.node(1).nic.post_receives(msgs);
}

sim::Task<void> AmLatBenchmark::initiator() {
  auto& node = tb_.node(0);
  cpu::Core& core = node.core;
  core.set_speed_factor(cfg_.speed_factor);
  node.profiler.set_enabled(false);

  for (std::uint64_t i = 0; i < cfg_.warmup + cfg_.iterations; ++i) {
    const double t0 = core.virtual_now().to_ns();
    // Ping.
    while (co_await ep0_.am_short(cfg_.bytes) != llp::Status::kOk) {
      co_await node.worker.progress();
    }
    // Poll until the pong's receive completion shows up.
    const std::uint64_t seen = node.worker.rx_completions();
    while (node.worker.rx_completions() == seen) {
      co_await node.worker.progress();
    }
    // The benchmark's measurement update (on the critical path once per
    // round trip; §4.3 deducts half of it).
    core.consume(core.costs().timer_read);
    core.consume(core.costs().loop_hiccup);
    if (i >= cfg_.warmup) {
      half_rtt_raw_.add_ns((core.virtual_now().to_ns() - t0) / 2.0);
    }
  }
  core.set_speed_factor(1.0);
}

sim::Task<void> AmLatBenchmark::responder() {
  auto& node = tb_.node(1);
  node.core.set_speed_factor(cfg_.speed_factor);
  node.profiler.set_enabled(false);

  for (std::uint64_t i = 0; i < cfg_.warmup + cfg_.iterations; ++i) {
    const std::uint64_t seen = node.worker.rx_completions();
    while (node.worker.rx_completions() == seen) {
      co_await node.worker.progress();
    }
    while (co_await ep1_.am_short(cfg_.bytes) != llp::Status::kOk) {
      co_await node.worker.progress();
    }
  }
  node.core.set_speed_factor(1.0);
}

LatencyResult AmLatBenchmark::run() {
  tb_.analyzer().set_enabled(cfg_.capture_trace);
  tb_.sim().spawn(initiator(), "am_lat-initiator");
  tb_.sim().spawn(responder(), "am_lat-responder");
  tb_.sim().run();

  LatencyResult res;
  res.iterations = cfg_.iterations;
  res.half_rtt_raw = half_rtt_raw_;
  const double raw_mean = half_rtt_raw_.summarize().mean;
  res.adjusted_mean_ns =
      raw_mean - tb_.config().cpu.timer_read.mean_ns / 2.0;
  return res;
}

}  // namespace bb::bench
