#pragma once
// OSU-micro-benchmark-style collective loops (osu_allreduce /
// osu_bcast / osu_barrier / osu_allgather-like) over bb::coll.
//
// Each iteration synchronizes all ranks with a barrier, then times the
// collective on every rank. The per-iteration sample is the global
// window (last rank in -> last rank out): with a simulator's global
// clock this measures exactly the span the collective adds, where OSU's
// per-rank max would also fold in the sync barrier's exit skew. Results
// feed the model-vs-simulated comparison in bench_coll_osu.

#include <cstdint>
#include <vector>

#include "benchlib/bench_types.hpp"
#include "coll/coll.hpp"

namespace bb::bench {

struct OsuCollConfig {
  std::uint64_t iterations = 60;
  std::uint64_t warmup = 10;
  /// Payload bytes (total vector for allreduce/bcast, per-rank block for
  /// allgather; ignored by barrier).
  std::uint32_t bytes = 8;
  coll::Algo algo = coll::Algo::kAuto;
  int root = 0;  ///< bcast root
  /// Per-iteration epoch: after the sync barrier every rank idles until
  /// the common absolute tick (iteration+1)*epoch_ns, so all ranks enter
  /// the timed collective at the same instant (a simulator privilege a
  /// real OSU run does not have). Must exceed barrier + collective time
  /// for one iteration; asserted at runtime.
  double epoch_ns = 1.0e6;
};

/// Result of a collective latency run.
struct CollResult {
  /// Per-iteration collective time (global last-in -> last-out window).
  Samples iter_ns;
  std::uint64_t iterations = 0;
  double mean_ns() const { return iter_ns.summarize().mean; }
};

class OsuColl {
 public:
  enum class Kind { kBarrier, kBcast, kAllgather, kAllreduce };

  OsuColl(coll::World& world, Kind kind, OsuCollConfig cfg);

  CollResult run();

 private:
  sim::Task<void> rank_loop(int r);

  coll::World& world_;
  Kind kind_;
  OsuCollConfig cfg_;
  /// [rank][iteration] absolute entry/exit times in ns; run() reduces
  /// them to a per-iteration global window (last in -> last out).
  std::vector<std::vector<double>> starts_;
  std::vector<std::vector<double>> ends_;
};

/// The two loops the OSU suite names: convenience wrappers.
class OsuAllreduce : public OsuColl {
 public:
  OsuAllreduce(coll::World& world, OsuCollConfig cfg)
      : OsuColl(world, Kind::kAllreduce, cfg) {}
};

class OsuBcast : public OsuColl {
 public:
  OsuBcast(coll::World& world, OsuCollConfig cfg)
      : OsuColl(world, Kind::kBcast, cfg) {}
};

}  // namespace bb::bench
