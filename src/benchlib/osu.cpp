#include "benchlib/osu.hpp"

#include "common/assert.hpp"

namespace bb::bench {

OsuMessageRate::OsuMessageRate(scenario::Testbed& tb, OsuMessageRateConfig cfg)
    : tb_(tb), cfg_(cfg), stack_(tb, 0, cfg.signal_period) {
  // The target keeps receives pre-posted; with the sync removed it is a
  // passive sink (§6's footnote ‡).
  tb_.node(1).nic.post_receives(static_cast<std::uint32_t>(
      (cfg_.windows + cfg_.warmup_windows) * cfg_.window_size + 64));
}

sim::Task<void> OsuMessageRate::driver() {
  cpu::Core& core = stack_.node().core;
  core.set_speed_factor(cfg_.speed_factor);
  stack_.node().profiler.set_enabled(false);

  std::vector<hlp::Request*> reqs;
  const std::uint64_t total = cfg_.warmup_windows + cfg_.windows;
  for (std::uint64_t w = 0; w < total; ++w) {
    if (w == cfg_.warmup_windows) cpu_start_ns_ = core.virtual_now().to_ns();
    reqs.clear();
    reqs.reserve(cfg_.window_size);
    for (std::uint32_t i = 0; i < cfg_.window_size; ++i) {
      reqs.push_back((co_await stack_.mpi().isend(cfg_.bytes)).value());
    }
    core.consume(core.costs().loop_hiccup);
    co_await stack_.mpi().waitall(reqs);
  }
  cpu_end_ns_ = core.virtual_now().to_ns();
  core.set_speed_factor(1.0);
}

InjectionResult OsuMessageRate::run() {
  tb_.analyzer().set_enabled(cfg_.capture_trace);
  tb_.sim().spawn(driver(), "osu_mr-driver");
  tb_.sim().run();

  InjectionResult res;
  res.messages = cfg_.windows * cfg_.window_size;
  res.busy_posts = stack_.endpoint().busy_posts();
  res.cpu_per_msg_ns =
      (cpu_end_ns_ - cpu_start_ns_) / static_cast<double>(res.messages);
  if (cfg_.capture_trace) {
    auto posts = tb_.analyzer().trace().downstream_writes(64);
    const std::uint64_t warm = cfg_.warmup_windows * cfg_.window_size;
    if (posts.size() > warm + 2) {
      posts.erase(posts.begin(), posts.begin() + static_cast<std::ptrdiff_t>(warm));
      res.nic_deltas = pcie::Trace::deltas(posts);
    }
  }
  return res;
}

OsuLatency::OsuLatency(scenario::Testbed& tb, OsuLatencyConfig cfg)
    : tb_(tb),
      cfg_(cfg),
      a_(tb, 0, cfg.signal_period),
      b_(tb, 1, cfg.signal_period) {
  const auto msgs =
      static_cast<std::uint32_t>(cfg_.warmup + cfg_.iterations + 2);
  tb_.node(0).nic.post_receives(msgs);
  tb_.node(1).nic.post_receives(msgs);
}

sim::Task<void> OsuLatency::initiator() {
  cpu::Core& core = a_.node().core;
  core.set_speed_factor(cfg_.speed_factor);
  a_.node().profiler.set_enabled(false);

  for (std::uint64_t i = 0; i < cfg_.warmup + cfg_.iterations; ++i) {
    const double t0 = core.virtual_now().to_ns();
    hlp::Request* rr = a_.mpi().irecv(cfg_.bytes).value();
    (void)co_await a_.mpi().isend(cfg_.bytes);
    co_await a_.mpi().wait(rr);
    core.consume(core.costs().timer_read);  // per-iteration timing
    core.consume(core.costs().loop_hiccup);
    if (i >= cfg_.warmup) {
      half_rtt_raw_.add_ns((core.virtual_now().to_ns() - t0) / 2.0);
    }
  }
  core.set_speed_factor(1.0);
}

sim::Task<void> OsuLatency::responder() {
  cpu::Core& core = b_.node().core;
  core.set_speed_factor(cfg_.speed_factor);
  b_.node().profiler.set_enabled(false);

  for (std::uint64_t i = 0; i < cfg_.warmup + cfg_.iterations; ++i) {
    hlp::Request* rr = b_.mpi().irecv(cfg_.bytes).value();
    co_await b_.mpi().wait(rr);
    (void)co_await b_.mpi().isend(cfg_.bytes);
    co_await core.flush();
  }
  core.set_speed_factor(1.0);
}

LatencyResult OsuLatency::run() {
  tb_.analyzer().set_enabled(cfg_.capture_trace);
  tb_.sim().spawn(initiator(), "osu_lat-initiator");
  tb_.sim().spawn(responder(), "osu_lat-responder");
  tb_.sim().run();

  LatencyResult res;
  res.iterations = cfg_.iterations;
  res.half_rtt_raw = half_rtt_raw_;
  res.adjusted_mean_ns =
      half_rtt_raw_.summarize().mean - tb_.config().cpu.timer_read.mean_ns / 2.0;
  return res;
}

}  // namespace bb::bench
