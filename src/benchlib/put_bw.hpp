#pragma once
// UCX perftest's put_bw: the single-threaded RDMA-write injection-rate
// microbenchmark of §4.2.
//
// Loop structure (as §4.2 describes it):
//  * every message is signalled (a completion per message);
//  * the benchmark explicitly polls one completion every 16 posts;
//  * a failed (busy) post triggers a progress call and a retry;
//  * a measurement update (timestamp read + rate bookkeeping) follows
//    every successful post.
// Once the TxQ depth is exhausted, the steady state is: busy post,
// progress (dequeue one CQE), successful post, measurement update --
// which is exactly Eq. 1's  LLP_post + LLP_prog + Misc.

#include <cstdint>

#include "benchlib/bench_types.hpp"
#include "scenario/testbed.hpp"

namespace bb::bench {

struct PutBwConfig {
  std::uint64_t messages = 20000;
  std::uint64_t warmup = 2000;
  std::uint32_t bytes = 8;
  /// Poll one completion every N posts (UCX perftest behaviour).
  std::uint32_t poll_every = 16;
  /// Hot-loop factor: profiling wraps each component in timer reads and
  /// isb barriers, serializing the pipeline; the uninstrumented tight
  /// loop overlaps adjacent components (ILP, warm icache/branch
  /// predictors) and runs faster than the sum of individually-profiled
  /// means. Combined with the exponential per-iteration noise
  /// (CpuCostModel::loop_exp_noise) this reproduces both the observed
  /// mean (282.33 ns vs the modelled 295.73, §4.2) and Fig. 7's
  /// right-skewed shape (median 266 < mean 282).
  double speed_factor = 0.8025;
  bool capture_trace = true;
};

class PutBwBenchmark {
 public:
  PutBwBenchmark(scenario::Testbed& tb, PutBwConfig cfg);

  /// Runs to completion and extracts the analyzer-observed overhead.
  InjectionResult run();

 private:
  sim::Task<void> driver();

  scenario::Testbed& tb_;
  PutBwConfig cfg_;
  llp::Endpoint& ep_;
  double measured_cpu_start_ns_ = 0.0;
  double measured_cpu_end_ns_ = 0.0;
};

}  // namespace bb::bench
