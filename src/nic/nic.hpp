#pragma once
// The behavioural NIC model (ConnectX-4-like, §2).
//
// TX paths:
//  * PIO ("BlueFlame"): the CPU's 64-byte PIO copy arrives as a downstream
//    MWr carrying the full descriptor (and, with inlining, the payload);
//    the NIC injects the message after its processing latency. No DMA
//    reads -- this is why UCX combines PIO with inlining for small
//    messages.
//  * DoorBell + DMA: an 8-byte DoorBell MWr makes the NIC fetch the
//    descriptor with a DMA read (MRd + CplD round trip), then -- unless
//    the payload is inline in the descriptor -- fetch the payload with a
//    second DMA read, and only then inject. Two PCIe round trips on the
//    critical path (§2 steps 1-3).
//
// Completion generation (§2 step 5): the target NIC acknowledges each
// data packet; on ACK reception the initiator NIC DMA-writes a 64-byte
// CQE -- for signalled descriptors immediately, for unsignalled ones
// deferred until the next signalled descriptor retires the whole batch.
//
// RX path: an inbound RDMA write is DMA-written to host memory; an
// inbound send consumes a posted receive and its payload write carries
// the receive completion.
//
// RC transport (docs/TRANSPORT.md): every data packet carries a per-QP
// PSN. The responder acknowledges cumulatively, NAKs sequence gaps
// (go-back-N retransmission), and answers an inbound send with no posted
// receive with an RNR NAK (the requester backs off `rnr_timer_ns` and
// retries). On a lossy fabric a transport retry timer with exponential
// backoff backstops lost packets and lost ACKs; exhausting `retry_cnt`
// (or `rnr_retry_cnt`) moves the QP to the error state, flushing every
// outstanding WQE as an error CQE. Recovery is the verbs modify-QP ladder:
// qp_reset() then qp_connect(), which re-handshakes the flow with the
// responder and returns the QP to RTS. With wire faults disabled the
// transport bookkeeping is pure state -- no timers are armed and no extra
// events are scheduled, so error-free runs stay bit-identical.

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>

#include "common/units.hpp"
#include "fault/fault.hpp"
#include "net/fabric.hpp"
#include "nic/queues.hpp"
#include "pcie/credit.hpp"
#include "pcie/link.hpp"
#include "sim/channel.hpp"
#include "sim/signal.hpp"
#include "sim/simulator.hpp"

namespace bb::nic {

struct NicParams {
  /// NIC processing between descriptor availability and wire injection.
  /// Deliberately *not* part of the paper's analytical model -- it is one
  /// of the real-machine effects that make observed latency exceed the
  /// model slightly (§4.3: model within 5% of observed).
  double tx_proc_ns = 15.0;
  /// Processing of an inbound data packet before the payload DMA write.
  double rx_proc_ns = 15.0;
  /// Generating the link-level ACK for an inbound data packet.
  double ack_gen_ns = 10.0;
  /// Handling an inbound ACK before completion generation.
  double ack_handle_ns = 10.0;
  /// DoorBell decode before the descriptor DMA read (DMA path only).
  double doorbell_proc_ns = 10.0;
  /// CQE size (64 bytes on Mellanox InfiniBand).
  std::uint32_t cqe_bytes = 64;
  /// DMA payload reads reissued after a poisoned completion before the
  /// operation is retired with an error CQE.
  int max_read_retries = 2;

  // --- RC transport (docs/TRANSPORT.md) ----------------------------------
  /// Transport retry timer: time without ACK progress before a go-back-N
  /// retransmission. Doubles per consecutive expiry up to
  /// retry_timeout_max_ns. Armed only when the fabric is lossy.
  double retry_timeout_ns = 8000.0;
  double retry_backoff = 2.0;
  double retry_timeout_max_ns = 64000.0;
  /// Consecutive retry-timer expiries tolerated before the QP errors.
  int retry_cnt = 7;
  /// RNR NAK backoff base; doubles per consecutive RNR NAK on the flow.
  double rnr_timer_ns = 1000.0;
  double rnr_backoff = 2.0;
  /// Consecutive RNR NAKs tolerated before the QP errors.
  int rnr_retry_cnt = 7;
  /// >0: the responder coalesces ACKs, delaying them by this much so one
  /// cumulative ACK covers a burst. 0 (default) acknowledges every data
  /// packet immediately -- the pre-transport timeline, kept so error-free
  /// goldens stay bit-identical.
  double ack_coalesce_ns = 0.0;
  /// Modify-QP ladder processing (reset -> init -> RTR -> RTS) before the
  /// reconnect handshake's packet is emitted.
  double qp_recovery_ns = 500.0;
};

/// RC queue-pair state (the relevant subset of the verbs ladder).
enum class QpState : std::uint8_t {
  kRts = 0,     // ready to send (the operational state)
  kError,       // retry budget exhausted; WQEs flushed as error CQEs
  kReset,       // after qp_reset(); posts are flushed immediately
  kConnecting,  // qp_connect() issued, handshake in flight
};

std::string to_string(QpState s);

class Nic {
 public:
  Nic(sim::Simulator& sim, pcie::Link& link, net::Fabric& fabric,
      int node_id, NicParams params, HostMemory& host,
      pcie::CreditState up_credits = pcie::CreditState::default_endpoint());
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  int node_id() const { return node_id_; }
  const NicParams& params() const { return params_; }
  NicParams& params() { return params_; }

  /// Posts `n` receive WQEs (send-receive semantics need pre-posted
  /// receives at the target).
  void post_receives(std::uint32_t n) { rq_available_ += n; }
  std::uint32_t rq_available() const { return rq_available_; }

  // RC transport control (docs/TRANSPORT.md).
  /// Current state of `qp`'s requester-side flow (kRts if never used).
  QpState qp_state(std::uint32_t qp) const;
  /// Modify-QP to RESET: flushes every outstanding WQE on `qp` with an
  /// error CQE (status kFlushed) and clears the flow.
  void qp_reset(std::uint32_t qp);
  /// Re-handshake (reset -> init -> RTR -> RTS): after `qp_recovery_ns`
  /// a connect packet re-synchronises the responder's expected PSN; on
  /// the connect-ack the QP returns to RTS. `peer_node` < 0 keeps the
  /// flow's previous peer (or the two-node default).
  void qp_connect(std::uint32_t qp, int peer_node = -1);
  /// Data packets posted but not yet cumulatively ACKed, all QPs.
  std::size_t tx_unacked() const;

  // Statistics.
  std::uint64_t messages_injected() const { return messages_injected_; }
  std::uint64_t acks_received() const { return acks_received_; }
  std::uint64_t cqes_written() const { return cqes_written_; }
  std::uint64_t dma_reads_issued() const { return dma_reads_issued_; }
  std::uint64_t credit_stalls() const { return credit_stalls_; }
  std::uint64_t error_cqes() const { return error_cqes_; }
  std::uint64_t read_retries() const { return read_retries_; }
  /// RC-transport counters (protocol side; the fabric holds the wire side).
  const net::TransportStats& transport_stats() const { return tstats_; }

  /// Shared fault-stat accumulator (the link's injector owns it); error
  /// completions and read retries are counted there too when set.
  void set_fault_stats(fault::FaultStats* s) { fault_stats_ = s; }

 private:
  // Link-side (downstream from RC).
  void on_downstream_tlp(const pcie::Tlp& tlp);
  void on_downstream_dllp(const pcie::Dllp& d);
  // Fabric-side.
  void on_fabric_packet(const net::NetPacket& pkt);

  /// Injects a ready descriptor onto the fabric after tx processing.
  void inject(const pcie::WireMd& md);
  /// Queues an upstream TLP through the credit-gated pump.
  void send_upstream(pcie::Tlp tlp);
  sim::Task<void> upstream_pump();

  void issue_dma_read(pcie::ReadRequest req, int attempts = 0);
  void on_read_completion(const pcie::ReadRequest& req,
                          const pcie::ReadCompletion& rc);
  /// Fault recovery: handles a poisoned downstream TLP (error-forwarded
  /// after exhausted link replays).
  void on_poisoned_tlp(const pcie::Tlp& tlp);
  /// Retires `msg_id` (and every unsignalled predecessor on `qp`) with a
  /// completion-with-error.
  void complete_with_error(std::uint32_t qp, std::uint64_t msg_id,
                           common::Status status = common::Status::kIoError);

  // RC transport internals.
  struct TxFlow;
  struct RxFlow;
  void on_data_packet(const net::NetPacket& pkt);
  /// Completion generation for one cumulatively-ACKed message (§2 step 5).
  void complete_message(const pcie::WireMd& md);
  void on_rc_ack(std::uint32_t qp, std::uint64_t psn);
  void on_rc_nak(std::uint32_t qp, std::uint64_t psn);
  void on_rnr_nak(std::uint32_t qp, std::uint64_t psn);
  void on_connect(const net::NetPacket& pkt);
  void on_connect_ack(std::uint32_t qp);
  /// Resends every unacked data packet on `qp` in PSN order (go-back-N).
  void retransmit_flow(std::uint32_t qp);
  /// Arms the transport retry timer (lossy fabric only; no-op otherwise).
  void arm_retry_timer(std::uint32_t qp, TxFlow& f);
  void cancel_retry_timer(TxFlow& f);
  void on_retry_timeout(std::uint32_t qp, std::uint64_t epoch);
  /// Moves `qp` to the error state, flushing outstanding WQEs: the head
  /// (the WQE whose retries exhausted) retires kIoError, the rest
  /// kFlushed.
  void qp_error(std::uint32_t qp);
  /// Responder-side control send (ACK/NAK/RNR-NAK/connect-ack) after
  /// `delay_ns` of NIC processing.
  void send_ctrl(net::NetPacket::Kind kind, std::uint32_t qp,
                 std::uint64_t psn, int dst, double delay_ns);

  sim::Simulator& sim_;
  pcie::Link& link_;
  net::Fabric& fabric_;
  int node_id_;
  NicParams params_;
  HostMemory& host_;

  pcie::CreditState up_credits_;
  sim::Channel<pcie::Tlp> up_ingress_;
  sim::Signal up_credit_avail_;

  /// Requester-side RC flow state, one per QP.
  struct TxEntry {
    std::uint64_t psn = 0;
    pcie::WireMd md;
  };
  struct TxFlow {
    QpState state = QpState::kRts;
    int peer = -1;
    /// Next PSN to assign. Monotonic across reconnects: a fresh
    /// connection continues the PSN space rather than reusing it.
    std::uint64_t next_psn = 1;
    /// Sent-but-not-cumulatively-ACKed packets, PSN order (go-back-N
    /// window).
    std::deque<TxEntry> unacked;
    int retry_count = 0;
    int rnr_count = 0;
    /// True while an RNR backoff delay is pending (suppresses
    /// NAK-triggered retransmits that would just re-trip the RNR).
    bool rnr_wait = false;
    double cur_timeout_ns = 0.0;
    /// Timer-cancellation epoch: bumping it invalidates in-flight timer
    /// events (same idiom as pcie::Link's replay timer).
    std::uint64_t timer_epoch = 0;
    bool timer_armed = false;
  };
  /// Responder-side flow state, keyed by (source node, QP).
  struct RxFlow {
    std::uint64_t expected_psn = 1;
    /// One NAK per gap window: cleared when the expected PSN arrives.
    bool nak_outstanding = false;
    /// ACK coalescing (ack_coalesce_ns > 0): highest accepted PSN and
    /// whether a delayed cumulative ACK is already scheduled.
    std::uint64_t ack_due_psn = 0;
    bool ack_timer_armed = false;
  };
  std::map<std::uint32_t, TxFlow> tx_flows_;
  std::map<std::pair<int, std::uint32_t>, RxFlow> rx_flows_;
  net::TransportStats tstats_;

  /// Per-QP count of retired-but-unsignalled ops awaiting the next CQE.
  std::map<std::uint32_t, std::uint32_t> pending_completes_;
  /// Outstanding DMA reads by tag (attempts counts reissues so far).
  struct PendingRead {
    pcie::ReadRequest req;
    int attempts = 0;
  };
  std::map<std::uint64_t, PendingRead> pending_reads_;
  /// Descriptors whose payload DMA read is in flight, by payload address.
  std::map<std::uint64_t, pcie::WireMd> staged_payload_wait_;
  std::uint64_t next_tag_ = 1;

  /// Cumulative credit totals released back to the RC.
  pcie::CreditLedger down_ledger_;
  fault::FaultStats* fault_stats_ = nullptr;

  std::uint32_t rq_available_ = 0;
  std::uint64_t messages_injected_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t cqes_written_ = 0;
  std::uint64_t dma_reads_issued_ = 0;
  std::uint64_t credit_stalls_ = 0;
  std::uint64_t error_cqes_ = 0;
  std::uint64_t read_retries_ = 0;
};

}  // namespace bb::nic
