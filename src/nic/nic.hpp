#pragma once
// The behavioural NIC model (ConnectX-4-like, §2).
//
// TX paths:
//  * PIO ("BlueFlame"): the CPU's 64-byte PIO copy arrives as a downstream
//    MWr carrying the full descriptor (and, with inlining, the payload);
//    the NIC injects the message after its processing latency. No DMA
//    reads -- this is why UCX combines PIO with inlining for small
//    messages.
//  * DoorBell + DMA: an 8-byte DoorBell MWr makes the NIC fetch the
//    descriptor with a DMA read (MRd + CplD round trip), then -- unless
//    the payload is inline in the descriptor -- fetch the payload with a
//    second DMA read, and only then inject. Two PCIe round trips on the
//    critical path (§2 steps 1-3).
//
// Completion generation (§2 step 5): the target NIC acknowledges each
// data packet; on ACK reception the initiator NIC DMA-writes a 64-byte
// CQE -- for signalled descriptors immediately, for unsignalled ones
// deferred until the next signalled descriptor retires the whole batch.
//
// RX path: an inbound RDMA write is DMA-written to host memory; an
// inbound send consumes a posted receive and its payload write carries
// the receive completion.

#include <cstdint>
#include <map>

#include "common/units.hpp"
#include "fault/fault.hpp"
#include "net/fabric.hpp"
#include "nic/queues.hpp"
#include "pcie/credit.hpp"
#include "pcie/link.hpp"
#include "sim/channel.hpp"
#include "sim/signal.hpp"
#include "sim/simulator.hpp"

namespace bb::nic {

struct NicParams {
  /// NIC processing between descriptor availability and wire injection.
  /// Deliberately *not* part of the paper's analytical model -- it is one
  /// of the real-machine effects that make observed latency exceed the
  /// model slightly (§4.3: model within 5% of observed).
  double tx_proc_ns = 15.0;
  /// Processing of an inbound data packet before the payload DMA write.
  double rx_proc_ns = 15.0;
  /// Generating the link-level ACK for an inbound data packet.
  double ack_gen_ns = 10.0;
  /// Handling an inbound ACK before completion generation.
  double ack_handle_ns = 10.0;
  /// DoorBell decode before the descriptor DMA read (DMA path only).
  double doorbell_proc_ns = 10.0;
  /// CQE size (64 bytes on Mellanox InfiniBand).
  std::uint32_t cqe_bytes = 64;
  /// DMA payload reads reissued after a poisoned completion before the
  /// operation is retired with an error CQE.
  int max_read_retries = 2;
};

class Nic {
 public:
  Nic(sim::Simulator& sim, pcie::Link& link, net::Fabric& fabric,
      int node_id, NicParams params, HostMemory& host,
      pcie::CreditState up_credits = pcie::CreditState::default_endpoint());
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  int node_id() const { return node_id_; }
  const NicParams& params() const { return params_; }
  NicParams& params() { return params_; }

  /// Posts `n` receive WQEs (send-receive semantics need pre-posted
  /// receives at the target).
  void post_receives(std::uint32_t n) { rq_available_ += n; }
  std::uint32_t rq_available() const { return rq_available_; }

  // Statistics.
  std::uint64_t messages_injected() const { return messages_injected_; }
  std::uint64_t acks_received() const { return acks_received_; }
  std::uint64_t cqes_written() const { return cqes_written_; }
  std::uint64_t dma_reads_issued() const { return dma_reads_issued_; }
  std::uint64_t credit_stalls() const { return credit_stalls_; }
  std::uint64_t error_cqes() const { return error_cqes_; }
  std::uint64_t read_retries() const { return read_retries_; }

  /// Shared fault-stat accumulator (the link's injector owns it); error
  /// completions and read retries are counted there too when set.
  void set_fault_stats(fault::FaultStats* s) { fault_stats_ = s; }

 private:
  // Link-side (downstream from RC).
  void on_downstream_tlp(const pcie::Tlp& tlp);
  void on_downstream_dllp(const pcie::Dllp& d);
  // Fabric-side.
  void on_fabric_packet(const net::NetPacket& pkt);

  /// Injects a ready descriptor onto the fabric after tx processing.
  void inject(const pcie::WireMd& md);
  /// Queues an upstream TLP through the credit-gated pump.
  void send_upstream(pcie::Tlp tlp);
  sim::Task<void> upstream_pump();

  void issue_dma_read(pcie::ReadRequest req, int attempts = 0);
  void on_read_completion(const pcie::ReadRequest& req,
                          const pcie::ReadCompletion& rc);
  void on_ack(std::uint64_t msg_id);
  /// Fault recovery: handles a poisoned downstream TLP (error-forwarded
  /// after exhausted link replays).
  void on_poisoned_tlp(const pcie::Tlp& tlp);
  /// Retires `msg_id` (and every unsignalled predecessor on `qp`) with a
  /// completion-with-error.
  void complete_with_error(std::uint32_t qp, std::uint64_t msg_id);

  sim::Simulator& sim_;
  pcie::Link& link_;
  net::Fabric& fabric_;
  int node_id_;
  NicParams params_;
  HostMemory& host_;

  pcie::CreditState up_credits_;
  sim::Channel<pcie::Tlp> up_ingress_;
  sim::Signal up_credit_avail_;

  /// In-flight messages awaiting the target-NIC ACK, by msg_id.
  std::map<std::uint64_t, pcie::WireMd> in_flight_;
  /// Per-QP count of retired-but-unsignalled ops awaiting the next CQE.
  std::map<std::uint32_t, std::uint32_t> pending_completes_;
  /// Outstanding DMA reads by tag (attempts counts reissues so far).
  struct PendingRead {
    pcie::ReadRequest req;
    int attempts = 0;
  };
  std::map<std::uint64_t, PendingRead> pending_reads_;
  /// Descriptors whose payload DMA read is in flight, by payload address.
  std::map<std::uint64_t, pcie::WireMd> staged_payload_wait_;
  std::uint64_t next_tag_ = 1;

  /// Cumulative credit totals released back to the RC.
  pcie::CreditLedger down_ledger_;
  fault::FaultStats* fault_stats_ = nullptr;

  std::uint32_t rq_available_ = 0;
  std::uint64_t messages_injected_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t cqes_written_ = 0;
  std::uint64_t dma_reads_issued_ = 0;
  std::uint64_t credit_stalls_ = 0;
  std::uint64_t error_cqes_ = 0;
  std::uint64_t read_retries_ = 0;
};

}  // namespace bb::nic
