#include "nic/queues.hpp"

#include "common/assert.hpp"

namespace bb::nic {

std::optional<Cqe> CqRing::poll(TimePs now) {
  if (entries_.empty() || entries_.front().visible_at > now) {
    return std::nullopt;
  }
  Cqe e = entries_.front();
  entries_.pop_front();
  return e;
}

std::size_t CqRing::visible_count(TimePs now) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.visible_at > now) break;  // entries are pushed in time order
    ++n;
  }
  return n;
}

std::size_t HostMemory::staged_count(std::uint32_t qp) const {
  auto it = staged_.find(qp);
  return it == staged_.end() ? 0 : it->second.size();
}

std::optional<pcie::WireMd> HostMemory::take_staged(std::uint32_t qp) {
  auto it = staged_.find(qp);
  if (it == staged_.end() || it->second.empty()) return std::nullopt;
  pcie::WireMd md = it->second.front();
  it->second.pop_front();
  return md;
}

void HostMemory::commit_write(const pcie::Tlp& tlp, TimePs visible_at) {
  // Error forwarding: a poisoned DMA write still lands (the RC commits
  // it), but any completion it carries is flagged as an error.
  const common::Status st =
      tlp.poisoned ? common::Status::kIoError : common::Status::kOk;
  if (const auto* cqe = std::get_if<pcie::CqeWrite>(&tlp.content)) {
    const common::Status cqe_st =
        cqe->status != common::Status::kOk ? cqe->status : st;
    tx_cqs_[cqe->qp].push(
        Cqe{cqe->msg_id, cqe->completes, 0, 0, visible_at, cqe_st});
  } else if (const auto* pl = std::get_if<pcie::PayloadWrite>(&tlp.content)) {
    payload_bytes_delivered_ += pl->bytes;
    ++payload_writes_;
    if (pl->op == pcie::WireOp::kSend) {
      // Send-receive: the payload write carries the receive completion
      // (mini-CQE); the posted receive completes when the write is visible.
      rx_cq_.push(Cqe{pl->msg_id, 1, pl->user_data, pl->bytes, visible_at, st});
    }
  } else {
    BB_UNREACHABLE("unexpected memory write content");
  }
  if (commit_hook_) commit_hook_();
}

pcie::ReadCompletion HostMemory::serve_read(const pcie::ReadRequest& req) {
  pcie::ReadCompletion rc;
  rc.what = req.what;
  rc.bytes = req.bytes;
  if (req.what == pcie::ReadRequest::What::kDescriptor) {
    auto& q = staged_[req.qp];
    BB_ASSERT_MSG(!q.empty(), "NIC fetched a descriptor that was not staged");
    rc.md = q.front();
    q.pop_front();
    rc.bytes = 64;  // a device descriptor slot
  }
  return rc;
}

}  // namespace bb::nic
