#include "nic/nic.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace bb::nic {

std::string to_string(QpState s) {
  switch (s) {
    case QpState::kRts:
      return "RTS";
    case QpState::kError:
      return "ERROR";
    case QpState::kReset:
      return "RESET";
    case QpState::kConnecting:
      return "CONNECTING";
  }
  BB_UNREACHABLE("bad QpState");
}

Nic::Nic(sim::Simulator& sim, pcie::Link& link, net::Fabric& fabric,
         int node_id, NicParams params, HostMemory& host,
         pcie::CreditState up_credits)
    : sim_(sim),
      link_(link),
      fabric_(fabric),
      node_id_(node_id),
      params_(params),
      host_(host),
      up_credits_(up_credits),
      up_ingress_(sim),
      up_credit_avail_(sim) {
  link_.set_b_tlp_handler([this](const pcie::Tlp& t) { on_downstream_tlp(t); });
  link_.set_b_dllp_handler(
      [this](const pcie::Dllp& d) { on_downstream_dllp(d); });
  fabric_.attach(node_id_, [this](const net::NetPacket& p) {
    on_fabric_packet(p);
  });
  sim_.spawn(upstream_pump(), "nic-upstream-pump");
}

void Nic::on_downstream_tlp(const pcie::Tlp& tlp) {
  // Return flow-control credits to the Root Complex for every processed
  // downstream TLP (the counterpart of the RC's UpdateFC for upstream
  // traffic). Without this the RC's posted-credit pool drains permanently
  // after ~64 posts and injection stalls. Cumulative totals keep the
  // release idempotent under fault-recovery re-emission.
  if (tlp.type != pcie::TlpType::kCompletionData) {
    link_.send_dllp_upstream(down_ledger_.release_for(tlp));
  }
  if (tlp.poisoned) {
    // Error forwarding: the sender exhausted its replay budget. The TLP's
    // content cannot be acted upon; retire the operation it carried with
    // a completion-with-error instead of hanging it (docs/FAULTS.md).
    on_poisoned_tlp(tlp);
    return;
  }
  switch (tlp.type) {
    case pcie::TlpType::kMemWrite: {
      if (const auto* desc =
              std::get_if<pcie::DescriptorWrite>(&tlp.content)) {
        const pcie::WireMd md = desc->md;
        if (md.inline_payload) {
          // PIO + inlining: descriptor and payload arrived whole.
          sim_.call_in(TimePs::from_ns(params_.tx_proc_ns),
                       [this, md] { inject(md); });
        } else {
          // PIO descriptor, but the payload still lives in registered
          // memory: fetch it with a DMA read (§2 step 3).
          pcie::ReadRequest preq;
          preq.what = pcie::ReadRequest::What::kPayload;
          preq.qp = md.qp;
          preq.host_addr = md.host_payload_addr;
          preq.bytes = md.payload_bytes;
          staged_payload_wait_[md.host_payload_addr] = md;
          issue_dma_read(preq);
        }
        return;
      }
      if (const auto* db = std::get_if<pcie::DoorbellWrite>(&tlp.content)) {
        // DMA path: fetch the descriptor from the host ring (§2 step 2).
        pcie::ReadRequest req;
        req.what = pcie::ReadRequest::What::kDescriptor;
        req.qp = db->qp;
        req.bytes = 64;
        sim_.call_in(TimePs::from_ns(params_.doorbell_proc_ns),
                     [this, req] { issue_dma_read(req); });
        return;
      }
      BB_UNREACHABLE("unexpected downstream MWr content at NIC");
    }
    case pcie::TlpType::kCompletionData: {
      const auto* rc = std::get_if<pcie::ReadCompletion>(&tlp.content);
      BB_ASSERT_MSG(rc != nullptr, "CplD without ReadCompletion content");
      // Match against the outstanding read.
      auto it = pending_reads_.find(tlp.tag);
      BB_ASSERT_MSG(it != pending_reads_.end(), "CplD for unknown tag");
      const pcie::ReadRequest req = it->second.req;
      pending_reads_.erase(it);
      on_read_completion(req, *rc);
      return;
    }
    case pcie::TlpType::kMemRead:
      BB_UNREACHABLE("NIC does not expect downstream MRd");
  }
}

void Nic::on_poisoned_tlp(const pcie::Tlp& tlp) {
  switch (tlp.type) {
    case pcie::TlpType::kMemWrite: {
      if (const auto* desc =
              std::get_if<pcie::DescriptorWrite>(&tlp.content)) {
        // A poisoned PIO descriptor: the post is dead on arrival.
        complete_with_error(desc->md.qp, desc->md.msg_id);
        return;
      }
      if (const auto* db = std::get_if<pcie::DoorbellWrite>(&tlp.content)) {
        // A poisoned DoorBell: consume the staged descriptor it pointed at
        // (keeping ring and doorbell counter in sync) and fail that op.
        auto md = host_.take_staged(db->qp);
        complete_with_error(db->qp, md ? md->msg_id : 0);
        return;
      }
      BB_UNREACHABLE("unexpected poisoned downstream MWr content at NIC");
    }
    case pcie::TlpType::kCompletionData: {
      const auto* rc = std::get_if<pcie::ReadCompletion>(&tlp.content);
      BB_ASSERT_MSG(rc != nullptr, "CplD without ReadCompletion content");
      auto it = pending_reads_.find(tlp.tag);
      BB_ASSERT_MSG(it != pending_reads_.end(), "poisoned CplD for unknown tag");
      const PendingRead pr = it->second;
      pending_reads_.erase(it);
      if (pr.req.what == pcie::ReadRequest::What::kPayload &&
          pr.attempts < params_.max_read_retries) {
        // Host-memory payload reads are idempotent: just read again.
        ++read_retries_;
        if (fault_stats_) ++fault_stats_->read_retries;
        pcie::ReadRequest retry = pr.req;
        retry.retry = true;
        issue_dma_read(retry, pr.attempts + 1);
        return;
      }
      if (pr.req.what == pcie::ReadRequest::What::kPayload) {
        // Retries exhausted: fail the descriptor waiting on this payload.
        auto wit = staged_payload_wait_.find(pr.req.host_addr);
        BB_ASSERT_MSG(wit != staged_payload_wait_.end(),
                      "poisoned payload CplD with no waiting descriptor");
        const pcie::WireMd md = wit->second;
        staged_payload_wait_.erase(wit);
        complete_with_error(md.qp, md.msg_id);
        return;
      }
      // Descriptor fetch failed. If the host served it, the descriptor
      // left the ring and rides (nominally corrupt) in the completion --
      // usable for error bookkeeping only. If the MRd itself was poisoned
      // the host never served; drop the staged descriptor to stay in sync.
      if (rc->served) {
        complete_with_error(pr.req.qp, rc->md.msg_id);
      } else {
        auto md = host_.take_staged(pr.req.qp);
        complete_with_error(pr.req.qp, md ? md->msg_id : 0);
      }
      return;
    }
    case pcie::TlpType::kMemRead:
      BB_UNREACHABLE("NIC does not expect downstream MRd");
  }
}

void Nic::complete_with_error(std::uint32_t qp, std::uint64_t msg_id,
                              common::Status status) {
  std::uint32_t& pending = pending_completes_[qp];
  pcie::Tlp tlp;
  tlp.type = pcie::TlpType::kMemWrite;
  tlp.bytes = params_.cqe_bytes;
  pcie::CqeWrite cqe;
  cqe.qp = qp;
  cqe.msg_id = msg_id;
  // Retires the failed op plus every unsignalled predecessor on the QP
  // (those did complete; the error status flags the tail op).
  cqe.completes = pending + 1;
  cqe.status = status;
  pending = 0;
  tlp.content = cqe;
  ++cqes_written_;
  ++error_cqes_;
  if (fault_stats_) ++fault_stats_->error_cqes;
  send_upstream(std::move(tlp));
}

void Nic::on_downstream_dllp(const pcie::Dllp& d) {
  if (d.type == pcie::DllpType::kUpdateFC) {
    up_credits_.replenish(d);
    up_credit_avail_.fire();
  }
}

void Nic::issue_dma_read(pcie::ReadRequest req, int attempts) {
  pcie::Tlp tlp;
  tlp.type = pcie::TlpType::kMemRead;
  tlp.bytes = 0;  // MRd carries no data
  tlp.tag = next_tag_++;
  tlp.content = req;
  pending_reads_[tlp.tag] = PendingRead{req, attempts};
  ++dma_reads_issued_;
  send_upstream(std::move(tlp));
}

void Nic::on_read_completion(const pcie::ReadRequest& req,
                             const pcie::ReadCompletion& rc) {
  if (rc.what == pcie::ReadRequest::What::kDescriptor) {
    const pcie::WireMd md = rc.md;
    if (md.inline_payload) {
      // Payload arrived inside the descriptor; ready to inject.
      sim_.call_in(TimePs::from_ns(params_.tx_proc_ns),
                   [this, md] { inject(md); });
    } else {
      // §2 step 3: fetch the payload from registered memory.
      pcie::ReadRequest preq;
      preq.what = pcie::ReadRequest::What::kPayload;
      preq.qp = md.qp;
      preq.host_addr = md.host_payload_addr;
      preq.bytes = md.payload_bytes;
      staged_payload_wait_[md.host_payload_addr] = md;
      issue_dma_read(preq);
    }
    return;
  }
  // Payload arrived; find the descriptor waiting on this address.
  auto it = staged_payload_wait_.find(req.host_addr);
  BB_ASSERT_MSG(it != staged_payload_wait_.end(),
                "payload CplD with no waiting descriptor");
  const pcie::WireMd md = it->second;
  staged_payload_wait_.erase(it);
  sim_.call_in(TimePs::from_ns(params_.tx_proc_ns),
               [this, md] { inject(md); });
}

void Nic::inject(const pcie::WireMd& md) {
  TxFlow& f = tx_flows_[md.qp];
  if (f.state != QpState::kRts) {
    // Posts against a non-RTS QP are flushed immediately with an error
    // CQE (verbs semantics); the op never reaches the wire.
    ++tstats_.flushed_wqes;
    complete_with_error(md.qp, md.msg_id, common::Status::kFlushed);
    return;
  }
  const int dst = md.dst_node >= 0 ? md.dst_node : 1 - node_id_;
  f.peer = dst;
  const std::uint64_t psn = f.next_psn++;
  f.unacked.push_back(TxEntry{psn, md});
  ++messages_injected_;
  fabric_.send(net::NetPacket::data(md, node_id_, dst, psn));
  arm_retry_timer(md.qp, f);
}

void Nic::send_upstream(pcie::Tlp tlp) {
  tlp.dir = pcie::Direction::kUpstream;
  up_ingress_.send(std::move(tlp));
}

sim::Task<void> Nic::upstream_pump() {
  for (;;) {
    pcie::Tlp tlp = co_await up_ingress_.receive();
    while (!up_credits_.can_send(tlp)) {
      ++credit_stalls_;
      co_await up_credit_avail_.wait();
    }
    up_credits_.consume(tlp);
    link_.send_upstream(std::move(tlp));
  }
}

void Nic::send_ctrl(net::NetPacket::Kind kind, std::uint32_t qp,
                    std::uint64_t psn, int dst, double delay_ns) {
  sim_.call_in(TimePs::from_ns(delay_ns), [this, kind, qp, psn, dst] {
    fabric_.send(net::NetPacket::ctrl(kind, qp, psn, node_id_, dst));
  });
}

void Nic::on_fabric_packet(const net::NetPacket& pkt) {
  using Kind = net::NetPacket::Kind;
  switch (pkt.kind) {
    case Kind::kData:
      on_data_packet(pkt);
      return;
    case Kind::kAck:
      sim_.call_in(TimePs::from_ns(params_.ack_handle_ns),
                   [this, qp = pkt.qp, psn = pkt.psn] { on_rc_ack(qp, psn); });
      return;
    case Kind::kNak:
      sim_.call_in(TimePs::from_ns(params_.ack_handle_ns),
                   [this, qp = pkt.qp, psn = pkt.psn] { on_rc_nak(qp, psn); });
      return;
    case Kind::kRnrNak:
      sim_.call_in(TimePs::from_ns(params_.ack_handle_ns),
                   [this, qp = pkt.qp, psn = pkt.psn] { on_rnr_nak(qp, psn); });
      return;
    case Kind::kConnect:
      on_connect(pkt);
      return;
    case Kind::kConnectAck:
      sim_.call_in(TimePs::from_ns(params_.ack_handle_ns),
                   [this, qp = pkt.qp] { on_connect_ack(qp); });
      return;
  }
  BB_UNREACHABLE("bad NetPacket kind");
}

void Nic::on_data_packet(const net::NetPacket& pkt) {
  RxFlow& rf = rx_flows_[{pkt.src_node, pkt.qp}];
  const pcie::WireMd& md = pkt.md;

  if (pkt.psn < rf.expected_psn) {
    // Stale PSN: a duplicate (wire fault or go-back-N overshoot). Discard
    // and re-ACK so the requester can purge its window even if the
    // original ACK was lost.
    ++tstats_.duplicates_discarded;
    ++tstats_.acks_sent;
    send_ctrl(net::NetPacket::Kind::kAck, pkt.qp, rf.expected_psn - 1,
              pkt.src_node, params_.rx_proc_ns + params_.ack_gen_ns);
    return;
  }
  if (pkt.psn > rf.expected_psn) {
    // Sequence gap: a predecessor was lost or overtaken. One NAK per gap
    // window (further out-of-order arrivals are dropped silently until
    // the expected PSN shows up), mirroring the data-link Nak window.
    if (!rf.nak_outstanding) {
      rf.nak_outstanding = true;
      ++tstats_.naks_sent;
      send_ctrl(net::NetPacket::Kind::kNak, pkt.qp, rf.expected_psn,
                pkt.src_node, params_.rx_proc_ns + params_.ack_gen_ns);
    }
    return;
  }

  if (md.op == pcie::WireOp::kSend && rq_available_ == 0) {
    // Receiver not ready: no posted receive for an inbound send. Refuse
    // the PSN (it stays expected) and tell the requester to back off and
    // retry -- the late-posted-receive path, previously a hard error.
    ++tstats_.rnr_naks_sent;
    send_ctrl(net::NetPacket::Kind::kRnrNak, pkt.qp, pkt.psn, pkt.src_node,
              params_.rx_proc_ns + params_.ack_gen_ns);
    return;
  }

  // In-sequence accept.
  rf.expected_psn = pkt.psn + 1;
  rf.nak_outstanding = false;
  if (md.op == pcie::WireOp::kSend) --rq_available_;
  sim_.call_in(TimePs::from_ns(params_.rx_proc_ns),
               [this, md] {
                 pcie::Tlp tlp;
                 tlp.type = pcie::TlpType::kMemWrite;
                 tlp.bytes = md.payload_bytes;
                 pcie::PayloadWrite pw;
                 pw.msg_id = md.msg_id;
                 pw.qp = md.qp;
                 pw.bytes = md.payload_bytes;
                 pw.user_data = md.user_data;
                 pw.op = md.op;
                 tlp.content = pw;
                 send_upstream(std::move(tlp));
               });
  // §2 step 4: acknowledge to the initiator NIC. The ACK does not wait
  // for the payload's RC-to-MEM commit.
  if (params_.ack_coalesce_ns <= 0.0) {
    ++tstats_.acks_sent;
    send_ctrl(net::NetPacket::Kind::kAck, pkt.qp, pkt.psn, pkt.src_node,
              params_.rx_proc_ns + params_.ack_gen_ns);
    return;
  }
  // Coalesced: one cumulative ACK covers every packet accepted while the
  // coalescing window was open.
  rf.ack_due_psn = pkt.psn;
  if (!rf.ack_timer_armed) {
    rf.ack_timer_armed = true;
    const auto key = std::make_pair(pkt.src_node, pkt.qp);
    sim_.call_in(TimePs::from_ns(params_.rx_proc_ns + params_.ack_gen_ns +
                                 params_.ack_coalesce_ns),
                 [this, key] {
                   RxFlow& flow = rx_flows_[key];
                   flow.ack_timer_armed = false;
                   ++tstats_.acks_sent;
                   fabric_.send(net::NetPacket::ctrl(
                       net::NetPacket::Kind::kAck, key.second,
                       flow.ack_due_psn, node_id_, key.first));
                 });
  }
}

void Nic::complete_message(const pcie::WireMd& md) {
  ++acks_received_;

  // Unsignalled-completion moderation: a signalled descriptor's CQE
  // retires every unsignalled op before it on the same QP.
  std::uint32_t& pending = pending_completes_[md.qp];
  ++pending;
  if (md.signaled) {
    pcie::Tlp tlp;
    tlp.type = pcie::TlpType::kMemWrite;
    tlp.bytes = params_.cqe_bytes;
    pcie::CqeWrite cqe;
    cqe.qp = md.qp;
    cqe.msg_id = md.msg_id;
    cqe.completes = pending;
    tlp.content = cqe;
    pending = 0;
    ++cqes_written_;
    send_upstream(std::move(tlp));
  }
}

void Nic::on_rc_ack(std::uint32_t qp, std::uint64_t psn) {
  TxFlow& f = tx_flows_[qp];
  ++tstats_.acks_received;
  if (f.state != QpState::kRts) return;  // stale ACK after error/reset
  bool progress = false;
  while (!f.unacked.empty() && f.unacked.front().psn <= psn) {
    const pcie::WireMd md = f.unacked.front().md;
    f.unacked.pop_front();
    progress = true;
    complete_message(md);
  }
  if (!progress) return;  // duplicate cumulative ACK
  // Forward progress resets the retry budget and backoff (IB semantics:
  // the budgets bound *consecutive* failures).
  f.retry_count = 0;
  f.rnr_count = 0;
  f.rnr_wait = false;
  f.cur_timeout_ns = params_.retry_timeout_ns;
  cancel_retry_timer(f);
  arm_retry_timer(qp, f);
}

void Nic::on_rc_nak(std::uint32_t qp, std::uint64_t psn) {
  TxFlow& f = tx_flows_[qp];
  ++tstats_.naks_received;
  if (f.state != QpState::kRts) return;
  // A NAK for `psn` implicitly ACKs everything before it.
  while (!f.unacked.empty() && f.unacked.front().psn < psn) {
    const pcie::WireMd md = f.unacked.front().md;
    f.unacked.pop_front();
    complete_message(md);
  }
  if (f.rnr_wait) return;  // backoff pending; it will retransmit anyway
  retransmit_flow(qp);
  cancel_retry_timer(f);
  arm_retry_timer(qp, f);
}

void Nic::on_rnr_nak(std::uint32_t qp, std::uint64_t psn) {
  TxFlow& f = tx_flows_[qp];
  ++tstats_.rnr_naks_received;
  if (f.state != QpState::kRts) return;
  // Everything before the refused PSN was accepted.
  while (!f.unacked.empty() && f.unacked.front().psn < psn) {
    const pcie::WireMd md = f.unacked.front().md;
    f.unacked.pop_front();
    complete_message(md);
  }
  if (f.rnr_wait) return;  // one backoff at a time
  ++f.rnr_count;
  if (f.rnr_count > params_.rnr_retry_cnt) {
    qp_error(qp);
    return;
  }
  // Back off rnr_timer * backoff^(n-1), then go-back-N. The transport
  // retry timer is quiesced during the wait so it cannot double-fire.
  const double delay_ns =
      params_.rnr_timer_ns *
      std::pow(params_.rnr_backoff, static_cast<double>(f.rnr_count - 1));
  f.rnr_wait = true;
  cancel_retry_timer(f);
  const std::uint64_t epoch = f.timer_epoch;
  sim_.call_in(TimePs::from_ns(delay_ns), [this, qp, epoch] {
    TxFlow& flow = tx_flows_[qp];
    if (flow.state != QpState::kRts || flow.timer_epoch != epoch) return;
    flow.rnr_wait = false;
    retransmit_flow(qp);
    arm_retry_timer(qp, flow);
  });
}

void Nic::retransmit_flow(std::uint32_t qp) {
  TxFlow& f = tx_flows_[qp];
  if (f.state != QpState::kRts) return;
  for (const TxEntry& e : f.unacked) {
    ++tstats_.retransmits;
    fabric_.send(net::NetPacket::data(e.md, node_id_, f.peer, e.psn));
  }
}

void Nic::arm_retry_timer(std::uint32_t qp, TxFlow& f) {
  // On a reliable wire the NAK/RNR paths recover everything; arming the
  // timer would schedule events the error-free goldens don't have.
  if (!fabric_.lossy()) return;
  if (f.timer_armed || f.rnr_wait) return;
  if (f.unacked.empty() && f.state != QpState::kConnecting) return;
  if (f.cur_timeout_ns <= 0.0) f.cur_timeout_ns = params_.retry_timeout_ns;
  f.timer_armed = true;
  const std::uint64_t epoch = ++f.timer_epoch;
  sim_.call_in(TimePs::from_ns(f.cur_timeout_ns),
               [this, qp, epoch] { on_retry_timeout(qp, epoch); });
}

void Nic::cancel_retry_timer(TxFlow& f) {
  f.timer_armed = false;
  ++f.timer_epoch;
}

void Nic::on_retry_timeout(std::uint32_t qp, std::uint64_t epoch) {
  TxFlow& f = tx_flows_[qp];
  if (!f.timer_armed || f.timer_epoch != epoch) return;  // stale timer
  f.timer_armed = false;
  if (f.state == QpState::kConnecting) {
    // The connect (or its ack) was lost; resend the handshake.
    ++tstats_.retry_timer_firings;
    ++f.retry_count;
    if (f.retry_count > params_.retry_cnt) {
      qp_error(qp);
      return;
    }
    fabric_.send(net::NetPacket::ctrl(net::NetPacket::Kind::kConnect, qp,
                                      f.next_psn, node_id_, f.peer));
    f.cur_timeout_ns =
        std::min(f.cur_timeout_ns * params_.retry_backoff,
                 params_.retry_timeout_max_ns);
    arm_retry_timer(qp, f);
    return;
  }
  if (f.state != QpState::kRts || f.unacked.empty()) return;
  ++tstats_.retry_timer_firings;
  ++f.retry_count;
  if (f.retry_count > params_.retry_cnt) {
    qp_error(qp);
    return;
  }
  retransmit_flow(qp);
  f.cur_timeout_ns = std::min(f.cur_timeout_ns * params_.retry_backoff,
                              params_.retry_timeout_max_ns);
  arm_retry_timer(qp, f);
}

void Nic::qp_error(std::uint32_t qp) {
  TxFlow& f = tx_flows_[qp];
  if (f.state == QpState::kError) return;
  f.state = QpState::kError;
  ++tstats_.qp_errors;
  cancel_retry_timer(f);
  f.rnr_wait = false;
  // Flush the send queue: the head WQE is the one whose retries
  // exhausted (kIoError); everything behind it never got a verdict and
  // is flushed (kFlushed), verbs-style.
  bool first = true;
  while (!f.unacked.empty()) {
    const TxEntry e = f.unacked.front();
    f.unacked.pop_front();
    ++tstats_.flushed_wqes;
    complete_with_error(qp, e.md.msg_id,
                        first ? common::Status::kIoError
                              : common::Status::kFlushed);
    first = false;
  }
}

QpState Nic::qp_state(std::uint32_t qp) const {
  const auto it = tx_flows_.find(qp);
  return it == tx_flows_.end() ? QpState::kRts : it->second.state;
}

std::size_t Nic::tx_unacked() const {
  std::size_t n = 0;
  for (const auto& [qp, f] : tx_flows_) n += f.unacked.size();
  return n;
}

void Nic::qp_reset(std::uint32_t qp) {
  TxFlow& f = tx_flows_[qp];
  cancel_retry_timer(f);
  while (!f.unacked.empty()) {
    const TxEntry e = f.unacked.front();
    f.unacked.pop_front();
    ++tstats_.flushed_wqes;
    complete_with_error(qp, e.md.msg_id, common::Status::kFlushed);
  }
  f.state = QpState::kReset;
  f.retry_count = 0;
  f.rnr_count = 0;
  f.rnr_wait = false;
  f.cur_timeout_ns = 0.0;
  // next_psn is NOT reset: the reconnect handshake hands the responder a
  // fresh starting PSN, so a scheduled kKillData on an old PSN cannot
  // re-kill the recovered flow.
}

void Nic::qp_connect(std::uint32_t qp, int peer_node) {
  TxFlow& f = tx_flows_[qp];
  BB_ASSERT_MSG(f.state == QpState::kReset,
                "qp_connect requires a RESET QP (call qp_reset first)");
  if (peer_node >= 0) f.peer = peer_node;
  if (f.peer < 0) f.peer = 1 - node_id_;
  f.state = QpState::kConnecting;
  f.cur_timeout_ns = params_.retry_timeout_ns;
  // The modify-QP ladder (reset -> init -> RTR -> RTS on both ends)
  // costs qp_recovery_ns of driver/firmware work before the connect
  // packet re-synchronises the responder's expected PSN.
  const std::uint64_t epoch = f.timer_epoch;
  sim_.call_in(TimePs::from_ns(params_.qp_recovery_ns), [this, qp, epoch] {
    TxFlow& flow = tx_flows_[qp];
    if (flow.state != QpState::kConnecting || flow.timer_epoch != epoch) {
      return;
    }
    fabric_.send(net::NetPacket::ctrl(net::NetPacket::Kind::kConnect, qp,
                                      flow.next_psn, node_id_, flow.peer));
    arm_retry_timer(qp, flow);
  });
}

void Nic::on_connect(const net::NetPacket& pkt) {
  // Responder side of the re-handshake: restart the flow at the PSN the
  // requester announces. Idempotent -- a duplicated/retried connect just
  // re-applies the same state and earns another connect-ack.
  RxFlow& rf = rx_flows_[{pkt.src_node, pkt.qp}];
  rf = RxFlow{};
  rf.expected_psn = pkt.psn;
  send_ctrl(net::NetPacket::Kind::kConnectAck, pkt.qp, pkt.psn, pkt.src_node,
            params_.rx_proc_ns);
}

void Nic::on_connect_ack(std::uint32_t qp) {
  TxFlow& f = tx_flows_[qp];
  if (f.state != QpState::kConnecting) return;  // duplicate connect-ack
  f.state = QpState::kRts;
  f.retry_count = 0;
  f.rnr_count = 0;
  f.rnr_wait = false;
  f.cur_timeout_ns = params_.retry_timeout_ns;
  cancel_retry_timer(f);
  ++tstats_.qp_recoveries;
}

}  // namespace bb::nic
