#include "nic/nic.hpp"

#include "common/assert.hpp"

namespace bb::nic {

Nic::Nic(sim::Simulator& sim, pcie::Link& link, net::Fabric& fabric,
         int node_id, NicParams params, HostMemory& host,
         pcie::CreditState up_credits)
    : sim_(sim),
      link_(link),
      fabric_(fabric),
      node_id_(node_id),
      params_(params),
      host_(host),
      up_credits_(up_credits),
      up_ingress_(sim),
      up_credit_avail_(sim) {
  link_.set_b_tlp_handler([this](const pcie::Tlp& t) { on_downstream_tlp(t); });
  link_.set_b_dllp_handler(
      [this](const pcie::Dllp& d) { on_downstream_dllp(d); });
  fabric_.attach(node_id_, [this](const net::NetPacket& p) {
    on_fabric_packet(p);
  });
  sim_.spawn(upstream_pump(), "nic-upstream-pump");
}

void Nic::on_downstream_tlp(const pcie::Tlp& tlp) {
  // Return flow-control credits to the Root Complex for every processed
  // downstream TLP (the counterpart of the RC's UpdateFC for upstream
  // traffic). Without this the RC's posted-credit pool drains permanently
  // after ~64 posts and injection stalls. Cumulative totals keep the
  // release idempotent under fault-recovery re-emission.
  if (tlp.type != pcie::TlpType::kCompletionData) {
    link_.send_dllp_upstream(down_ledger_.release_for(tlp));
  }
  if (tlp.poisoned) {
    // Error forwarding: the sender exhausted its replay budget. The TLP's
    // content cannot be acted upon; retire the operation it carried with
    // a completion-with-error instead of hanging it (docs/FAULTS.md).
    on_poisoned_tlp(tlp);
    return;
  }
  switch (tlp.type) {
    case pcie::TlpType::kMemWrite: {
      if (const auto* desc =
              std::get_if<pcie::DescriptorWrite>(&tlp.content)) {
        const pcie::WireMd md = desc->md;
        if (md.inline_payload) {
          // PIO + inlining: descriptor and payload arrived whole.
          sim_.call_in(TimePs::from_ns(params_.tx_proc_ns),
                       [this, md] { inject(md); });
        } else {
          // PIO descriptor, but the payload still lives in registered
          // memory: fetch it with a DMA read (§2 step 3).
          pcie::ReadRequest preq;
          preq.what = pcie::ReadRequest::What::kPayload;
          preq.qp = md.qp;
          preq.host_addr = md.host_payload_addr;
          preq.bytes = md.payload_bytes;
          staged_payload_wait_[md.host_payload_addr] = md;
          issue_dma_read(preq);
        }
        return;
      }
      if (const auto* db = std::get_if<pcie::DoorbellWrite>(&tlp.content)) {
        // DMA path: fetch the descriptor from the host ring (§2 step 2).
        pcie::ReadRequest req;
        req.what = pcie::ReadRequest::What::kDescriptor;
        req.qp = db->qp;
        req.bytes = 64;
        sim_.call_in(TimePs::from_ns(params_.doorbell_proc_ns),
                     [this, req] { issue_dma_read(req); });
        return;
      }
      BB_UNREACHABLE("unexpected downstream MWr content at NIC");
    }
    case pcie::TlpType::kCompletionData: {
      const auto* rc = std::get_if<pcie::ReadCompletion>(&tlp.content);
      BB_ASSERT_MSG(rc != nullptr, "CplD without ReadCompletion content");
      // Match against the outstanding read.
      auto it = pending_reads_.find(tlp.tag);
      BB_ASSERT_MSG(it != pending_reads_.end(), "CplD for unknown tag");
      const pcie::ReadRequest req = it->second.req;
      pending_reads_.erase(it);
      on_read_completion(req, *rc);
      return;
    }
    case pcie::TlpType::kMemRead:
      BB_UNREACHABLE("NIC does not expect downstream MRd");
  }
}

void Nic::on_poisoned_tlp(const pcie::Tlp& tlp) {
  switch (tlp.type) {
    case pcie::TlpType::kMemWrite: {
      if (const auto* desc =
              std::get_if<pcie::DescriptorWrite>(&tlp.content)) {
        // A poisoned PIO descriptor: the post is dead on arrival.
        complete_with_error(desc->md.qp, desc->md.msg_id);
        return;
      }
      if (const auto* db = std::get_if<pcie::DoorbellWrite>(&tlp.content)) {
        // A poisoned DoorBell: consume the staged descriptor it pointed at
        // (keeping ring and doorbell counter in sync) and fail that op.
        auto md = host_.take_staged(db->qp);
        complete_with_error(db->qp, md ? md->msg_id : 0);
        return;
      }
      BB_UNREACHABLE("unexpected poisoned downstream MWr content at NIC");
    }
    case pcie::TlpType::kCompletionData: {
      const auto* rc = std::get_if<pcie::ReadCompletion>(&tlp.content);
      BB_ASSERT_MSG(rc != nullptr, "CplD without ReadCompletion content");
      auto it = pending_reads_.find(tlp.tag);
      BB_ASSERT_MSG(it != pending_reads_.end(), "poisoned CplD for unknown tag");
      const PendingRead pr = it->second;
      pending_reads_.erase(it);
      if (pr.req.what == pcie::ReadRequest::What::kPayload &&
          pr.attempts < params_.max_read_retries) {
        // Host-memory payload reads are idempotent: just read again.
        ++read_retries_;
        if (fault_stats_) ++fault_stats_->read_retries;
        pcie::ReadRequest retry = pr.req;
        retry.retry = true;
        issue_dma_read(retry, pr.attempts + 1);
        return;
      }
      if (pr.req.what == pcie::ReadRequest::What::kPayload) {
        // Retries exhausted: fail the descriptor waiting on this payload.
        auto wit = staged_payload_wait_.find(pr.req.host_addr);
        BB_ASSERT_MSG(wit != staged_payload_wait_.end(),
                      "poisoned payload CplD with no waiting descriptor");
        const pcie::WireMd md = wit->second;
        staged_payload_wait_.erase(wit);
        complete_with_error(md.qp, md.msg_id);
        return;
      }
      // Descriptor fetch failed. If the host served it, the descriptor
      // left the ring and rides (nominally corrupt) in the completion --
      // usable for error bookkeeping only. If the MRd itself was poisoned
      // the host never served; drop the staged descriptor to stay in sync.
      if (rc->served) {
        complete_with_error(pr.req.qp, rc->md.msg_id);
      } else {
        auto md = host_.take_staged(pr.req.qp);
        complete_with_error(pr.req.qp, md ? md->msg_id : 0);
      }
      return;
    }
    case pcie::TlpType::kMemRead:
      BB_UNREACHABLE("NIC does not expect downstream MRd");
  }
}

void Nic::complete_with_error(std::uint32_t qp, std::uint64_t msg_id) {
  std::uint32_t& pending = pending_completes_[qp];
  pcie::Tlp tlp;
  tlp.type = pcie::TlpType::kMemWrite;
  tlp.bytes = params_.cqe_bytes;
  pcie::CqeWrite cqe;
  cqe.qp = qp;
  cqe.msg_id = msg_id;
  // Retires the failed op plus every unsignalled predecessor on the QP
  // (those did complete; the error status flags the tail op).
  cqe.completes = pending + 1;
  cqe.status = common::Status::kIoError;
  pending = 0;
  tlp.content = cqe;
  ++cqes_written_;
  ++error_cqes_;
  if (fault_stats_) ++fault_stats_->error_cqes;
  send_upstream(std::move(tlp));
}

void Nic::on_downstream_dllp(const pcie::Dllp& d) {
  if (d.type == pcie::DllpType::kUpdateFC) {
    up_credits_.replenish(d);
    up_credit_avail_.fire();
  }
}

void Nic::issue_dma_read(pcie::ReadRequest req, int attempts) {
  pcie::Tlp tlp;
  tlp.type = pcie::TlpType::kMemRead;
  tlp.bytes = 0;  // MRd carries no data
  tlp.tag = next_tag_++;
  tlp.content = req;
  pending_reads_[tlp.tag] = PendingRead{req, attempts};
  ++dma_reads_issued_;
  send_upstream(std::move(tlp));
}

void Nic::on_read_completion(const pcie::ReadRequest& req,
                             const pcie::ReadCompletion& rc) {
  if (rc.what == pcie::ReadRequest::What::kDescriptor) {
    const pcie::WireMd md = rc.md;
    if (md.inline_payload) {
      // Payload arrived inside the descriptor; ready to inject.
      sim_.call_in(TimePs::from_ns(params_.tx_proc_ns),
                   [this, md] { inject(md); });
    } else {
      // §2 step 3: fetch the payload from registered memory.
      pcie::ReadRequest preq;
      preq.what = pcie::ReadRequest::What::kPayload;
      preq.qp = md.qp;
      preq.host_addr = md.host_payload_addr;
      preq.bytes = md.payload_bytes;
      staged_payload_wait_[md.host_payload_addr] = md;
      issue_dma_read(preq);
    }
    return;
  }
  // Payload arrived; find the descriptor waiting on this address.
  auto it = staged_payload_wait_.find(req.host_addr);
  BB_ASSERT_MSG(it != staged_payload_wait_.end(),
                "payload CplD with no waiting descriptor");
  const pcie::WireMd md = it->second;
  staged_payload_wait_.erase(it);
  sim_.call_in(TimePs::from_ns(params_.tx_proc_ns),
               [this, md] { inject(md); });
}

void Nic::inject(const pcie::WireMd& md) {
  BB_ASSERT_MSG(in_flight_.find(md.msg_id) == in_flight_.end(),
                "duplicate msg_id injection");
  in_flight_[md.msg_id] = md;
  ++messages_injected_;
  const int dst = md.dst_node >= 0 ? md.dst_node : 1 - node_id_;
  fabric_.send(net::NetPacket::data(md, node_id_, dst));
}

void Nic::send_upstream(pcie::Tlp tlp) {
  tlp.dir = pcie::Direction::kUpstream;
  up_ingress_.send(std::move(tlp));
}

sim::Task<void> Nic::upstream_pump() {
  for (;;) {
    pcie::Tlp tlp = co_await up_ingress_.receive();
    while (!up_credits_.can_send(tlp)) {
      ++credit_stalls_;
      co_await up_credit_avail_.wait();
    }
    up_credits_.consume(tlp);
    link_.send_upstream(std::move(tlp));
  }
}

void Nic::on_fabric_packet(const net::NetPacket& pkt) {
  if (pkt.is_ack) {
    sim_.call_in(TimePs::from_ns(params_.ack_handle_ns),
                 [this, msg_id = pkt.msg_id] { on_ack(msg_id); });
    return;
  }

  // Inbound data packet.
  const pcie::WireMd& md = pkt.md;
  if (md.op == pcie::WireOp::kSend) {
    BB_ASSERT_MSG(rq_available_ > 0,
                  "inbound send with no posted receive (RNR)");
    --rq_available_;
  }
  sim_.call_in(TimePs::from_ns(params_.rx_proc_ns),
               [this, md] {
                 pcie::Tlp tlp;
                 tlp.type = pcie::TlpType::kMemWrite;
                 tlp.bytes = md.payload_bytes;
                 pcie::PayloadWrite pw;
                 pw.msg_id = md.msg_id;
                 pw.qp = md.qp;
                 pw.bytes = md.payload_bytes;
                 pw.user_data = md.user_data;
                 pw.op = md.op;
                 tlp.content = pw;
                 send_upstream(std::move(tlp));
               });
  // §2 step 4: acknowledge to the initiator NIC. The ACK does not wait
  // for the payload's RC-to-MEM commit.
  sim_.call_in(TimePs::from_ns(params_.rx_proc_ns + params_.ack_gen_ns),
               [this, msg_id = pkt.msg_id, src = pkt.src_node] {
                 fabric_.send(net::NetPacket::ack(msg_id, node_id_, src));
               });
}

void Nic::on_ack(std::uint64_t msg_id) {
  auto it = in_flight_.find(msg_id);
  BB_ASSERT_MSG(it != in_flight_.end(), "ACK for unknown message");
  const pcie::WireMd md = it->second;
  in_flight_.erase(it);
  ++acks_received_;

  // Unsignalled-completion moderation: a signalled descriptor's CQE
  // retires every unsignalled op before it on the same QP.
  std::uint32_t& pending = pending_completes_[md.qp];
  ++pending;
  if (md.signaled) {
    pcie::Tlp tlp;
    tlp.type = pcie::TlpType::kMemWrite;
    tlp.bytes = params_.cqe_bytes;
    pcie::CqeWrite cqe;
    cqe.qp = md.qp;
    cqe.msg_id = md.msg_id;
    cqe.completes = pending;
    tlp.content = cqe;
    pending = 0;
    ++cqes_written_;
    send_upstream(std::move(tlp));
  }
}

}  // namespace bb::nic
