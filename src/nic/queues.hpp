#pragma once
// Host-memory structures of the HW/SW interface (§2): completion-queue
// rings written by the NIC through the Root Complex and polled by CPU
// loads, plus the host-side descriptor ring the NIC DMA-reads on the
// non-PIO path.
//
// Visibility semantics: the RC commits each DMA write at an absolute
// simulated time; a CPU poll at core-local time `now` observes an entry
// only if `visible_at <= now`. This is what makes LLP_prog's read of the
// designated memory location behave like the real machine.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "common/status.hpp"
#include "common/units.hpp"
#include "pcie/root_complex.hpp"
#include "pcie/tlp.hpp"

namespace bb::nic {

/// One completion-queue entry as visible to the CPU.
struct Cqe {
  std::uint64_t msg_id = 0;
  /// Number of operations this entry retires (unsignalled moderation).
  std::uint32_t completes = 1;
  /// Immediate data carried by the message (RX completions only).
  std::uint64_t user_data = 0;
  /// Payload size delivered (RX completions only).
  std::uint32_t bytes = 0;
  TimePs visible_at;
  /// kIoError marks a completion-with-error (§fault model): the retired
  /// operation(s) failed after the link exhausted its recovery budget.
  /// (Last so pre-fault aggregate initializers stay valid.)
  common::Status status = common::Status::kOk;
};

/// A CQ ring in host memory.
class CqRing {
 public:
  void push(Cqe e) { entries_.push_back(e); ++total_pushed_; }

  /// Dequeues the oldest entry visible at `now`, if any.
  std::optional<Cqe> poll(TimePs now);
  /// Entries currently visible at `now` (without dequeuing).
  std::size_t visible_count(TimePs now) const;
  /// Entries present regardless of visibility.
  std::size_t depth() const { return entries_.size(); }
  std::uint64_t total_pushed() const { return total_pushed_; }

 private:
  std::deque<Cqe> entries_;
  std::uint64_t total_pushed_ = 0;
};

/// The host-memory image of one node: CQ rings, the staged-descriptor ring
/// for the DMA descriptor path, and payload-delivery accounting. Serves as
/// the RC's memory sink and DMA-read provider.
class HostMemory {
 public:
  CqRing& tx_cq(std::uint32_t qp) { return tx_cqs_[qp]; }
  CqRing& rx_cq() { return rx_cq_; }

  /// Node-wide unique message ids (several workers/cores on one node
  /// share the NIC, whose in-flight tracking is keyed by msg_id).
  std::uint64_t alloc_msg_id() { return next_msg_id_++; }

  /// Invoked after every committed DMA write (at its visibility time) --
  /// the hook interrupt-driven completion (§2) hangs off.
  void set_commit_hook(std::function<void()> hook) {
    commit_hook_ = std::move(hook);
  }

  /// Driver stages a descriptor in the host ring before ringing the
  /// DoorBell (non-PIO path, §2 step 0).
  void stage_descriptor(const pcie::WireMd& md) {
    staged_[md.qp].push_back(md);
  }
  std::size_t staged_count(std::uint32_t qp) const;
  /// Removes and returns the oldest staged descriptor on `qp` (fault
  /// recovery: a dead DoorBell/descriptor-fetch must not leave the ring
  /// out of sync with the NIC).
  std::optional<pcie::WireMd> take_staged(std::uint32_t qp);

  /// RC memory-sink entry point: a DMA write became visible.
  void commit_write(const pcie::Tlp& tlp, TimePs visible_at);
  /// RC read-provider entry point: a NIC DMA read is being served.
  pcie::ReadCompletion serve_read(const pcie::ReadRequest& req);

  std::uint64_t payload_bytes_delivered() const {
    return payload_bytes_delivered_;
  }
  std::uint64_t payload_writes() const { return payload_writes_; }

 private:
  std::map<std::uint32_t, CqRing> tx_cqs_;
  CqRing rx_cq_;
  std::map<std::uint32_t, std::deque<pcie::WireMd>> staged_;
  std::uint64_t next_msg_id_ = 1;
  std::function<void()> commit_hook_;
  std::uint64_t payload_bytes_delivered_ = 0;
  std::uint64_t payload_writes_ = 0;
};

}  // namespace bb::nic
