#pragma once
// bb::exec -- parallel multi-simulation execution engine.
//
// One `Simulator` is fast (PR 1), but the paper's methodology is built
// from *hundreds of independent simulations*: every figure sweep, every
// ablation axis, every fault BER point, every rank count is its own
// seeded run. `bb::exec` shards that experiment space across cores with
// a work-stealing thread pool while keeping results **bit-identical** to
// a serial run:
//
//  * a job is an index into a declaratively expanded grid; its seed is a
//    pure function of (sweep seed, grid index) -- never of execution
//    order, worker identity, or wall-clock time (`bb::derive_seed`);
//  * each job builds, runs, and destroys its own `Simulator` entirely on
//    one worker thread (the isolation invariant the whole `sim/` stack
//    upholds: no process-global mutable state, thread-local pools only --
//    see docs/PARALLEL_EXEC.md);
//  * results are collected into grid order regardless of completion
//    order, so tables print identically at any `--jobs` value;
//  * the first job failure (lowest grid index among captured errors)
//    cancels outstanding jobs and is rethrown to the caller.
//
// Thread count resolves as: explicit Options::jobs, else the BB_JOBS
// environment variable, else std::thread::hardware_concurrency().

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace bb::exec {

/// Worker threads available on this machine (>= 1).
int hardware_jobs();

/// Default thread count: the BB_JOBS environment variable if set and
/// positive, otherwise hardware_jobs().
int default_jobs();

struct Options {
  /// Worker threads; <= 0 resolves through default_jobs(). Results are
  /// bit-identical at every value, including oversubscription.
  int jobs = 0;
  /// Cancel outstanding (not yet started) jobs after the first failure.
  /// Running jobs complete; the lowest-index captured error is rethrown.
  bool fail_fast = true;
};

/// Per-job accounting, reported in grid order.
struct JobStats {
  double wall_ms = 0.0;        ///< host wall-clock time inside the job
  std::uint64_t events = 0;    ///< simulator events (job-reported)
  std::int64_t sim_time_ps = 0;///< final simulated time (job-reported)
  int worker = -1;             ///< worker thread that ran the job
  bool ran = false;            ///< false => cancelled before starting
};

/// Handle passed to each running job: identity, deterministic seed, and
/// a sink for per-job stats.
class Job {
 public:
  Job(std::size_t index, std::uint64_t seed, JobStats* stats)
      : index_(index), seed_(seed), stats_(stats) {}

  std::size_t index() const { return index_; }

  /// Deterministic per-job seed: derive_seed(sweep seed, grid index).
  /// Identical whatever thread runs the job or in whatever order.
  std::uint64_t seed() const { return seed_; }

  /// Fork a labelled child seed (e.g. one per simulated node).
  std::uint64_t fork_seed(std::uint64_t label) const {
    return derive_seed(seed_, label);
  }

  /// Report simulator totals for the per-job stats table.
  void note_events(std::uint64_t events) { stats_->events = events; }
  void note_sim_time_ps(std::int64_t ps) { stats_->sim_time_ps = ps; }

 private:
  std::size_t index_;
  std::uint64_t seed_;
  JobStats* stats_;
};

namespace detail {

/// Type-erased batch executor (the work-stealing pool lives in exec.cpp).
/// `run_job(i)` must be safe to call concurrently for distinct `i`.
struct Batch {
  std::size_t count = 0;
  std::function<void(std::size_t job_index, int worker, JobStats&)> run_job;
  std::vector<JobStats>* stats = nullptr;
  double* wall_ms = nullptr;
  int* jobs_used = nullptr;
};

void run_batch(const Batch& batch, const Options& opts);

}  // namespace detail

/// Ordered results of a batch: `values[i]` is job i's return value, in
/// grid order -- independent of thread count and completion order.
template <typename R>
struct Results {
  std::vector<R> values;
  std::vector<JobStats> stats;
  double wall_ms = 0.0;  ///< whole-batch wall time
  int jobs = 0;          ///< worker threads used

  std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const JobStats& s : stats) n += s.events;
    return n;
  }
  /// Sum of per-job wall times: the serial-equivalent cost.
  double serial_ms() const {
    double t = 0.0;
    for (const JobStats& s : stats) t += s.wall_ms;
    return t;
  }
  /// One line: "12 jobs on 4 threads: 81.3 ms wall, 301.2 ms serial (3.7x)".
  std::string summary() const;
};

std::string format_summary(std::size_t count, int jobs, double wall_ms,
                           double serial_ms, std::uint64_t events);

template <typename R>
std::string Results<R>::summary() const {
  return format_summary(values.size(), jobs, wall_ms, serial_ms(),
                        total_events());
}

/// Runs `count` independent jobs, `fn(Job&) -> R`, sharded across the
/// pool. Seeds fork deterministically from `seed` by grid index. Throws
/// the lowest-index job error after cancelling outstanding jobs.
template <typename F>
auto run(std::size_t count, std::uint64_t seed, F&& fn, Options opts = {})
    -> Results<std::invoke_result_t<F&, Job&>> {
  using R = std::invoke_result_t<F&, Job&>;
  static_assert(!std::is_void_v<R>, "jobs must return a value");

  Results<R> out;
  std::vector<std::optional<R>> slots(count);

  detail::Batch batch;
  batch.count = count;
  batch.stats = &out.stats;
  batch.wall_ms = &out.wall_ms;
  batch.jobs_used = &out.jobs;
  batch.run_job = [&slots, &fn, seed](std::size_t i, int worker,
                                      JobStats& stats) {
    stats.worker = worker;
    Job job(i, derive_seed(seed, i), &stats);
    slots[i].emplace(fn(job));
  };
  detail::run_batch(batch, opts);

  out.values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    BB_ASSERT_MSG(slots[i].has_value(), "job produced no result");
    out.values.push_back(std::move(*slots[i]));
  }
  return out;
}

}  // namespace bb::exec
