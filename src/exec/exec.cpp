#include "exec/exec.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

namespace bb::exec {

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int default_jobs() {
  if (const char* env = std::getenv("BB_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return hardware_jobs();
}

std::string format_summary(std::size_t count, int jobs, double wall_ms,
                           double serial_ms, std::uint64_t events) {
  char buf[160];
  const double speedup = wall_ms > 0.0 ? serial_ms / wall_ms : 1.0;
  if (events > 0) {
    std::snprintf(buf, sizeof(buf),
                  "%zu jobs on %d thread%s: %.1f ms wall, %.1f ms serial "
                  "(%.2fx), %llu events",
                  count, jobs, jobs == 1 ? "" : "s", wall_ms, serial_ms,
                  speedup, static_cast<unsigned long long>(events));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%zu jobs on %d thread%s: %.1f ms wall, %.1f ms serial "
                  "(%.2fx)",
                  count, jobs, jobs == 1 ? "" : "s", wall_ms, serial_ms,
                  speedup);
  }
  return buf;
}

namespace detail {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Per-worker job queue. The owner pops from the front (its share was
/// enqueued in grid order, so it advances through "its" indices in
/// order); thieves steal from the back, taking the work the owner would
/// reach last. A plain mutex per deque is plenty: jobs are whole
/// simulations (milliseconds to seconds), so queue traffic is cold.
struct WorkerQueue {
  std::mutex mu;
  std::deque<std::size_t> jobs;

  bool pop_front(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return false;
    out = jobs.front();
    jobs.pop_front();
    return true;
  }
  bool steal_back(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return false;
    out = jobs.back();
    jobs.pop_back();
    return true;
  }
};

struct BatchState {
  const Batch* batch = nullptr;
  std::vector<WorkerQueue> queues;
  std::atomic<bool> cancel{false};
  bool fail_fast = true;

  // Captured job failures; the lowest grid index wins at rethrow so the
  // reported error does not depend on completion order.
  std::mutex error_mu;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors;

  explicit BatchState(int workers) : queues(workers) {}

  void run_one(std::size_t i, int worker) {
    JobStats& stats = (*batch->stats)[i];
    if (fail_fast && cancel.load(std::memory_order_acquire)) {
      return;  // cancelled before starting; stats.ran stays false
    }
    stats.ran = true;
    const auto t0 = Clock::now();
    try {
      batch->run_job(i, worker, stats);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        errors.emplace_back(i, std::current_exception());
      }
      cancel.store(true, std::memory_order_release);
    }
    stats.wall_ms = ms_since(t0);
  }

  void worker_loop(int self) {
    const int n = static_cast<int>(queues.size());
    std::size_t i;
    // Drain own queue first, then sweep the others for leftovers.
    while (queues[self].pop_front(i)) run_one(i, self);
    for (int hop = 1; hop < n; ++hop) {
      WorkerQueue& victim = queues[(self + hop) % n];
      while (victim.steal_back(i)) run_one(i, self);
    }
  }
};

}  // namespace

void run_batch(const Batch& batch, const Options& opts) {
  int jobs = opts.jobs > 0 ? opts.jobs : default_jobs();
  if (static_cast<std::size_t>(jobs) > batch.count) {
    jobs = batch.count == 0 ? 1 : static_cast<int>(batch.count);
  }
  batch.stats->assign(batch.count, JobStats{});
  if (batch.jobs_used != nullptr) *batch.jobs_used = jobs;

  const auto t0 = Clock::now();
  BatchState state(jobs);
  state.batch = &batch;
  state.fail_fast = opts.fail_fast;

  // Round-robin initial distribution: worker w owns indices w, w+J,
  // w+2J, ... Grid order is preserved within each queue, and stealing
  // only rebalances who *executes* a job -- never what it computes.
  for (std::size_t i = 0; i < batch.count; ++i) {
    state.queues[i % jobs].jobs.push_back(i);
  }

  if (jobs == 1) {
    state.worker_loop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (int w = 0; w < jobs; ++w) {
      threads.emplace_back([&state, w] { state.worker_loop(w); });
    }
    for (std::thread& t : threads) t.join();
  }
  if (batch.wall_ms != nullptr) *batch.wall_ms = ms_since(t0);

  if (!state.errors.empty()) {
    std::size_t lowest = 0;
    for (std::size_t k = 1; k < state.errors.size(); ++k) {
      if (state.errors[k].first < state.errors[lowest].first) lowest = k;
    }
    std::rethrow_exception(state.errors[lowest].second);
  }
}

}  // namespace detail
}  // namespace bb::exec
