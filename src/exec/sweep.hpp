#pragma once
// Declarative sweeps over bb::exec.
//
// A `Sweep<P>` is an ordered list of grid points plus a master seed;
// `run_sweep` shards it across the pool, handing each job the point it
// owns and a seed forked by grid index (pure function of (sweep seed,
// index) -- bb::derive_seed). The expansion order IS the result order
// and the seed assignment, so a sweep's outputs are bit-identical at
// every thread count.
//
// `grid(axisA, axisB, ...)` expands a cartesian product row-major: the
// LAST axis varies fastest, matching the nesting order of the serial
// loops these sweeps replace:
//
//   for (auto ranks : {4, 8})          // axis 0, slowest
//     for (auto bytes : {8, 64, 256})  // axis 1, fastest
//
//   == grid(std::vector{4, 8}, std::vector{8, 64, 256})

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "exec/exec.hpp"

namespace bb::exec {

/// Cartesian product of axes, row-major (last axis fastest).
template <typename A>
std::vector<std::tuple<A>> grid(const std::vector<A>& a) {
  std::vector<std::tuple<A>> out;
  out.reserve(a.size());
  for (const A& x : a) out.emplace_back(x);
  return out;
}

template <typename A, typename... Rest>
auto grid(const std::vector<A>& a, const std::vector<Rest>&... rest)
    -> std::vector<std::tuple<A, Rest...>> {
  std::vector<std::tuple<A, Rest...>> out;
  const auto tail = grid(rest...);
  out.reserve(a.size() * tail.size());
  for (const A& x : a) {
    for (const auto& t : tail) {
      out.push_back(std::tuple_cat(std::tuple<A>(x), t));
    }
  }
  return out;
}

/// A declarative sweep: points in grid order plus the master seed every
/// per-job seed forks from.
template <typename P>
struct Sweep {
  std::vector<P> points;
  std::uint64_t seed = 42;
};

template <typename P>
Sweep<P> sweep(std::vector<P> points, std::uint64_t seed = 42) {
  return Sweep<P>{std::move(points), seed};
}

/// Runs `fn(point, job) -> R` over every grid point. `results.values[i]`
/// corresponds to `s.points[i]`.
template <typename P, typename F>
auto run_sweep(const Sweep<P>& s, F&& fn, Options opts = {})
    -> Results<std::invoke_result_t<F&, const P&, Job&>> {
  return run(
      s.points.size(), s.seed,
      [&s, &fn](Job& job) { return fn(s.points[job.index()], job); }, opts);
}

}  // namespace bb::exec
