#pragma once
// Communication requests of the high-level protocol layers.

#include <cstdint>

#include "common/status.hpp"

namespace bb::hlp {

struct Request {
  enum class Kind : std::uint8_t { kSend, kRecv };

  Kind kind = Kind::kSend;
  std::uint32_t bytes = 0;
  bool complete = false;
  /// Final disposition: kOk, or kIoError when the operation was retired
  /// by a completion-with-error after exhausted link-level recovery.
  common::Status status = common::Status::kOk;
  /// Send only: posted to the transport but waiting in the UCP pending
  /// queue after a busy post (§6: "UCP schedules the successful execution
  /// of LLP_post for busy posts during the progress of operations").
  bool pending = false;
  /// Identity for debugging/tests.
  std::uint64_t seq = 0;
};

}  // namespace bb::hlp
