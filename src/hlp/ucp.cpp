#include "hlp/ucp.hpp"

#include "common/assert.hpp"

namespace bb::hlp {

UcpWorker::UcpWorker(llp::Worker& uct_worker, llp::Endpoint& endpoint,
                     UcpConfig cfg)
    : uct_worker_(uct_worker), endpoint_(endpoint), cfg_(cfg) {
  if (cfg_.attach_rx) {
    uct_worker_.set_rx_handler(
        [this](const nic::Cqe& cqe) { on_rx_completion(cqe); });
  }
}

Request* UcpWorker::new_request(Request::Kind kind, std::uint32_t bytes) {
  auto req = std::make_unique<Request>();
  req->kind = kind;
  req->bytes = bytes;
  req->seq = next_seq_++;
  Request* p = req.get();
  requests_.push_back(std::move(req));
  return p;
}

sim::Task<common::Status> UcpWorker::try_post(Request* req) {
  // Tagged (multi-peer) mode stamps the source rank so the receiver's
  // RxMux can route; untagged eager messages keep the legacy user_data 0.
  const std::uint64_t ud =
      cfg_.src_rank < 0 ? 0 : header(Ctrl::kEager, 0, req->bytes);
  const llp::Status st = co_await endpoint_.am_short(req->bytes, ud);
  if (st == llp::Status::kOk) {
    // Inlined short send: locally complete once the payload left the CPU.
    req->pending = false;
    req->complete = true;
    ++sends_completed_;
  }
  co_return st;
}

sim::Task<common::Expected<Request*>> UcpWorker::tag_send_nb(
    std::uint32_t bytes) {
  cpu::Core& c = core();
  c.consume(c.costs().ucp_isend);
  Request* req = new_request(Request::Kind::kSend, bytes);

  if (bytes >= cfg_.rndv_threshold) {
    // Rendezvous: advertise with an RTS; the payload moves after the CTS.
    ++rndv_sends_;
    const std::uint64_t seq = next_rndv_seq_++;
    rndv_tx_waiting_[seq] = req;
    pending_ctrl_.push_back(header(Ctrl::kRts, seq, bytes));
    co_await progress_rndv();
    co_return req;
  }

  if (!pending_sends_.empty() ||
      co_await try_post(req) != common::Status::kOk) {
    // Preserve ordering: once anything pends, later sends pend too.
    req->pending = true;
    pending_sends_.push_back(req);
  }
  co_return req;
}

void UcpWorker::complete_recv(Request* req, common::Status st) {
  cpu::Core& c = core();
  prof::Profiler* prof = uct_worker_.profiler();

  // UCP's registered callback: match, update request state.
  prof::Profiler::Region r1;
  if (prof && wrap_ == "UCP callback") r1 = prof->begin("UCP callback");
  c.consume(c.costs().ucp_rx_callback);
  req->complete = true;
  req->status = st;
  ++recvs_completed_;
  if (prof && wrap_ == "UCP callback") prof->end(r1);

  // The upper (MPICH) registered callback runs inside UCP's (§5).
  if (upper_rx_cb_) upper_rx_cb_(req);
}

common::Expected<Request*> UcpWorker::tag_recv_nb(std::uint32_t bytes) {
  Request* req = new_request(Request::Kind::kRecv, bytes);
  if (!unexpected_.empty()) {
    // Unexpected eager message: the payload already landed.
    const common::Status st = unexpected_.front().status;
    unexpected_.pop_front();
    complete_recv(req, st);
    return req;
  }
  if (!unexpected_rts_.empty()) {
    // Unexpected rendezvous advertisement: answer it now.
    const std::uint64_t h = unexpected_rts_.front();
    unexpected_rts_.pop_front();
    rndv_rx_waiting_[seq_of(h)] = req;
    pending_ctrl_.push_back(header(Ctrl::kCts, seq_of(h), 0));
    return req;
  }
  posted_recvs_.push_back(req);
  return req;
}

void UcpWorker::on_rx_completion(const nic::Cqe& cqe) {
  switch (ctrl_of(cqe.user_data)) {
    case Ctrl::kEager: {
      if (posted_recvs_.empty()) {
        unexpected_.push_back(cqe);
        return;
      }
      Request* req = posted_recvs_.front();
      posted_recvs_.pop_front();
      complete_recv(req, cqe.status);
      return;
    }
    case Ctrl::kRts: {
      // Sender advertised a large message.
      core().consume(core().costs().ucp_progress_iter);  // header decode
      if (posted_recvs_.empty()) {
        unexpected_rts_.push_back(cqe.user_data);
        return;
      }
      Request* req = posted_recvs_.front();
      posted_recvs_.pop_front();
      rndv_rx_waiting_[seq_of(cqe.user_data)] = req;
      pending_ctrl_.push_back(header(Ctrl::kCts, seq_of(cqe.user_data), 0));
      return;
    }
    case Ctrl::kCts: {
      // Receiver is ready: schedule the data put + FIN.
      core().consume(core().costs().ucp_progress_iter);
      auto it = rndv_tx_waiting_.find(seq_of(cqe.user_data));
      BB_ASSERT_MSG(it != rndv_tx_waiting_.end(), "CTS for unknown rndv op");
      rndv_tx_ready_.push_back(
          RndvData{it->first, it->second->bytes, it->second, false});
      rndv_tx_waiting_.erase(it);
      return;
    }
    case Ctrl::kFin: {
      // Data landed in our buffer; complete the receive.
      auto it = rndv_rx_waiting_.find(seq_of(cqe.user_data));
      BB_ASSERT_MSG(it != rndv_rx_waiting_.end(), "FIN for unknown rndv op");
      Request* req = it->second;
      rndv_rx_waiting_.erase(it);
      complete_recv(req, cqe.status);
      return;
    }
  }
  BB_UNREACHABLE("bad control header");
}

sim::Task<void> UcpWorker::progress_rndv() {
  // Control messages first (RTS/CTS/FIN are small sends).
  while (!pending_ctrl_.empty()) {
    const std::uint64_t h = pending_ctrl_.front();
    if (co_await endpoint_.am_short(8, h) != llp::Status::kOk) {
      co_return;  // TxQ full: retried on the next pass
    }
    pending_ctrl_.pop_front();
  }
  // Rendezvous payload transfers: a one-sided put, then the FIN. The
  // fabric delivers in order per sender, so the FIN arrives after the
  // payload is on its way to the receiver's memory.
  while (!rndv_tx_ready_.empty()) {
    RndvData& op = rndv_tx_ready_.front();
    if (!op.data_sent) {
      if (co_await endpoint_.put_short(op.bytes) != llp::Status::kOk) {
        co_return;
      }
      op.data_sent = true;
    }
    if (co_await endpoint_.am_short(8, header(Ctrl::kFin, op.seq, 0)) !=
        llp::Status::kOk) {
      co_return;
    }
    op.req->complete = true;
    ++sends_completed_;
    rndv_tx_ready_.pop_front();
  }
}

sim::Task<void> UcpWorker::progress_pending() {
  while (!pending_sends_.empty()) {
    Request* req = pending_sends_.front();
    if (co_await try_post(req) != common::Status::kOk) break;
    pending_sends_.pop_front();
  }
  if (!pending_ctrl_.empty() || !rndv_tx_ready_.empty()) {
    co_await progress_rndv();
  }
}

sim::Task<std::uint32_t> UcpWorker::progress() {
  cpu::Core& c = core();
  prof::Profiler* prof = uct_worker_.profiler();
  prof::Profiler::Region r;
  if (prof && wrap_ == "ucp_worker_progress") {
    r = prof->begin("ucp_worker_progress");
  }

  c.consume(c.costs().ucp_progress_iter);

  // Retry pending sends (busy posts rescheduled by UCP, §6).
  while (!pending_sends_.empty()) {
    Request* req = pending_sends_.front();
    if (co_await try_post(req) != common::Status::kOk) break;
    pending_sends_.pop_front();
  }

  const std::uint32_t n = co_await uct_worker_.progress();

  // Drive rendezvous state machines unblocked by the completions above.
  if (!pending_ctrl_.empty() || !rndv_tx_ready_.empty()) {
    co_await progress_rndv();
  }

  if (prof && wrap_ == "ucp_worker_progress") prof->end(r);
  co_return n;
}

}  // namespace bb::hlp
