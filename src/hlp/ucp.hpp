#pragma once
// The UCP-like protocol layer (§5): tag send/receive over UCT, pending-
// operation rescheduling, and the registered-callback chain.
//
// Semantics follow UCX for the small-message regime the paper studies:
//  * An inlined short tag-send completes locally as soon as the LLP post
//    succeeds (the payload left the CPU). Its TxQ slot is recycled later
//    when a (possibly unsignalled-moderated) CQE is polled.
//  * A tag-send that hits a busy post is queued as a pending operation and
//    retried during worker progress.
//  * A receive completes when the inbound payload write is visible and the
//    RX completion is polled; the UCP callback runs first, then the
//    registered upper-layer (MPICH) callback -- both before
//    uct_worker_progress returns (§5).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "cpu/core.hpp"
#include "hlp/request.hpp"
#include "llp/endpoint.hpp"
#include "llp/worker.hpp"
#include "sim/task.hpp"

namespace bb::hlp {

struct UcpConfig {
  /// Messages of at least this size use the rendezvous protocol
  /// (RTS -> CTS -> one-sided data put -> FIN) instead of the eager
  /// inline path; the payload crosses the wire exactly once, at the cost
  /// of an extra control round trip. UCX-like default.
  std::uint32_t rndv_threshold = 1024;
  /// Source rank stamped into every outgoing message header so a
  /// receiving node with several peers can demultiplex (RxMux). -1 keeps
  /// the legacy two-node wire format: eager messages carry user_data 0.
  int src_rank = -1;
  /// When false the worker does not claim the LLP worker's RX handler;
  /// an RxMux owns it instead and routes by source rank.
  bool attach_rx = true;
};

class UcpWorker {
 public:
  UcpWorker(llp::Worker& uct_worker, llp::Endpoint& endpoint,
            UcpConfig cfg = {});

  cpu::Core& core() { return uct_worker_.core(); }
  llp::Endpoint& endpoint() { return endpoint_; }
  llp::Worker& uct_worker() { return uct_worker_; }
  prof::Profiler* profiler() { return uct_worker_.profiler(); }

  /// Registered upper-layer callback for completed receives (MPICH's).
  /// Runs after the UCP callback, inside progress.
  void set_upper_rx_callback(std::function<void(Request*)> cb) {
    upper_rx_cb_ = std::move(cb);
  }

  /// ucp_tag_send_nb: consumes the UCP initiation cost, then executes the
  /// LLP post (or pends the request on a busy post). Returns the tracking
  /// request; initiation itself cannot fail (busy posts pend), so the
  /// Expected is the unified convention, not a present error path.
  sim::Task<common::Expected<Request*>> tag_send_nb(std::uint32_t bytes);

  /// ucp_tag_recv_nb: posts a receive into the matching engine. Costless
  /// relative to the paper's model (receive initiation is assumed to
  /// overlap, §6); matching costs are charged at completion time.
  common::Expected<Request*> tag_recv_nb(std::uint32_t bytes);

  /// ucp_worker_progress: one pass. Retries pending sends, then drives
  /// uct_worker_progress; completion callbacks run inside. Returns the
  /// number of UCT completions processed.
  sim::Task<std::uint32_t> progress();

  /// Drives this worker's queued work (busy-post retries, rendezvous
  /// control and data) WITHOUT a UCT pass and without charging the
  /// per-pass UCP cost -- the building block a multi-endpoint progress
  /// engine (coll::Communicator) composes around one shared
  /// uct_worker_progress per pass.
  sim::Task<void> progress_pending();
  /// Work progress_pending() would drive.
  bool has_pending_work() const {
    return !pending_sends_.empty() || !pending_ctrl_.empty() ||
           !rndv_tx_ready_.empty();
  }

  /// RxMux entry point: an RX completion routed to this worker.
  void deliver(const nic::Cqe& cqe) { on_rx_completion(cqe); }
  /// Source rank carried in a message header (-1 for untagged legacy
  /// traffic).
  static int src_rank_of(std::uint64_t user_data) {
    return static_cast<int>((user_data >> 56) & 0x3Full) - 1;
  }

  std::size_t pending_sends() const { return pending_sends_.size(); }
  std::uint64_t sends_completed() const { return sends_completed_; }
  std::uint64_t recvs_completed() const { return recvs_completed_; }
  std::uint64_t rndv_sends() const { return rndv_sends_; }

  /// Profiler wrap points (one at a time, per §3): region names among
  /// {"ucp_worker_progress", "UCP callback", "MPICH callback"}.
  void set_wrap(std::string region) { wrap_ = std::move(region); }
  const std::string& wrap() const { return wrap_; }

 private:
  // Control headers ride in the messages' immediate data. Layout:
  // ctrl(2)@62 | src+1(6)@56 | seq(24)@32 | bytes(32)@0. The source
  // field is 0 for untagged (two-node) traffic; tagged workers stamp
  // rank+1, bounding a demultiplexed job at 63 ranks.
  enum class Ctrl : std::uint64_t { kEager = 0, kRts = 1, kCts = 2, kFin = 3 };
  std::uint64_t header(Ctrl c, std::uint64_t seq, std::uint32_t bytes) const {
    const std::uint64_t src =
        cfg_.src_rank < 0 ? 0 : static_cast<std::uint64_t>(cfg_.src_rank) + 1;
    return (static_cast<std::uint64_t>(c) << 62) | (src << 56) |
           ((seq & 0xFFFFFFull) << 32) | bytes;
  }
  static Ctrl ctrl_of(std::uint64_t h) { return static_cast<Ctrl>(h >> 62); }
  static std::uint64_t seq_of(std::uint64_t h) {
    return (h >> 32) & 0xFFFFFFull;
  }
  static std::uint32_t bytes_of(std::uint64_t h) {
    return static_cast<std::uint32_t>(h & 0xFFFFFFFFull);
  }

  void on_rx_completion(const nic::Cqe& cqe);
  sim::Task<common::Status> try_post(Request* req);
  /// Completes a receive through the registered callback chain,
  /// propagating the transport status into the request.
  void complete_recv(Request* req,
                     common::Status st = common::Status::kOk);
  /// Drives queued control messages and rendezvous data transfers.
  sim::Task<void> progress_rndv();

  llp::Worker& uct_worker_;
  llp::Endpoint& endpoint_;
  UcpConfig cfg_;
  std::function<void(Request*)> upper_rx_cb_;
  std::string wrap_;

  std::deque<std::unique_ptr<Request>> requests_;  // stable ownership
  std::deque<Request*> pending_sends_;
  std::deque<Request*> posted_recvs_;
  std::deque<nic::Cqe> unexpected_;

  // Rendezvous state.
  std::deque<std::uint64_t> pending_ctrl_;            // headers to send
  std::map<std::uint64_t, Request*> rndv_tx_waiting_; // RTS out, await CTS
  struct RndvData {
    std::uint64_t seq;
    std::uint32_t bytes;
    Request* req;
    bool data_sent = false;
  };
  std::deque<RndvData> rndv_tx_ready_;                // CTS in: put + FIN
  std::map<std::uint64_t, Request*> rndv_rx_waiting_; // CTS out, await FIN
  std::deque<std::uint64_t> unexpected_rts_;          // RTS with no recv

  std::uint64_t next_seq_ = 1;
  std::uint64_t next_rndv_seq_ = 1;
  std::uint64_t sends_completed_ = 0;
  std::uint64_t recvs_completed_ = 0;
  std::uint64_t rndv_sends_ = 0;

  Request* new_request(Request::Kind kind, std::uint32_t bytes);
};

}  // namespace bb::hlp
