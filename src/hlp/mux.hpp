#pragma once
// RX demultiplexer for a node that talks to several peers.
//
// One llp::Worker per node owns the RX CQ, but a UcpWorker models the
// protocol state toward exactly one peer. The mux claims the worker's RX
// handler and routes each completion to the UcpWorker registered for the
// source rank stamped in the message header (UcpConfig::src_rank on the
// sending side). This is how a real UCP worker fans one CQ out over many
// connected endpoints' matching state.

#include <vector>

#include "common/assert.hpp"
#include "hlp/ucp.hpp"

namespace bb::hlp {

class RxMux {
 public:
  explicit RxMux(llp::Worker& worker) {
    worker.set_rx_handler([this](const nic::Cqe& cqe) { route(cqe); });
  }
  RxMux(const RxMux&) = delete;
  RxMux& operator=(const RxMux&) = delete;

  /// Routes messages whose header carries `src_rank` to `ucp`. Every
  /// sender into this node must be tagged (UcpConfig::src_rank >= 0).
  void attach(int src_rank, UcpWorker* ucp) {
    BB_ASSERT(src_rank >= 0 && ucp != nullptr);
    if (routes_.size() <= static_cast<std::size_t>(src_rank)) {
      routes_.resize(static_cast<std::size_t>(src_rank) + 1, nullptr);
    }
    routes_[static_cast<std::size_t>(src_rank)] = ucp;
  }

 private:
  void route(const nic::Cqe& cqe) {
    const int src = UcpWorker::src_rank_of(cqe.user_data);
    BB_ASSERT_MSG(src >= 0 &&
                      static_cast<std::size_t>(src) < routes_.size() &&
                      routes_[static_cast<std::size_t>(src)] != nullptr,
                  "RX completion from an unregistered source rank");
    routes_[static_cast<std::size_t>(src)]->deliver(cqe);
  }

  std::vector<UcpWorker*> routes_;
};

}  // namespace bb::hlp
