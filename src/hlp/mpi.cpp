#include "hlp/mpi.hpp"

namespace bb::hlp {

MpiComm::MpiComm(UcpWorker& ucp) : ucp_(ucp) {
  // Register the MPICH completion callback for receives; it runs inside
  // the UCP callback, before uct_worker_progress returns (§5).
  ucp_.set_upper_rx_callback([this](Request*) {
    cpu::Core& c = core();
    prof::Profiler* prof = ucp_.profiler();
    prof::Profiler::Region r;
    if (prof && wrap_ == "MPICH callback") r = prof->begin("MPICH callback");
    c.consume(c.costs().mpich_rx_callback);
    if (prof && wrap_ == "MPICH callback") prof->end(r);
  });
}

sim::Task<common::Expected<Request*>> MpiComm::isend(std::uint32_t bytes) {
  cpu::Core& c = core();
  prof::Profiler* prof = ucp_.profiler();
  prof::Profiler::Region r_mpi, r_ucp;
  if (prof && wrap_ == "MPI_Isend") r_mpi = prof->begin("MPI_Isend");

  // MPICH: datatype checks, interface selection, request setup.
  c.consume(c.costs().mpich_isend);

  if (prof && wrap_ == "ucp_tag_send_nb") {
    r_ucp = prof->begin("ucp_tag_send_nb");
  }
  common::Expected<Request*> req = co_await ucp_.tag_send_nb(bytes);
  if (prof && wrap_ == "ucp_tag_send_nb") prof->end(r_ucp);

  if (prof && wrap_ == "MPI_Isend") prof->end(r_mpi);
  ++isends_;
  co_return req;
}

common::Expected<Request*> MpiComm::irecv(std::uint32_t bytes) {
  // Receive initiation; its time is assumed to overlap the transfer (§6),
  // which holds in the simulation because the receive is posted before
  // the message is in flight. Charged as the same initiation path.
  cpu::Core& c = core();
  c.consume(c.costs().mpich_isend);
  return ucp_.tag_recv_nb(bytes);
}

sim::Task<common::Status> MpiComm::wait(Request* req) {
  cpu::Core& c = core();
  prof::Profiler* prof = ucp_.profiler();
  prof::Profiler::Region r_wait;
  if (prof && wrap_ == "MPI_Wait") r_wait = prof->begin("MPI_Wait");

  // Fixed blocking-wait work: entry, request inspection, loop control.
  c.consume(c.costs().mpich_wait_fixed);

  // The progress engine: loop on ucp_worker_progress until complete.
  while (!req->complete) {
    co_await ucp_.progress();
  }

  // MPICH work after the successful ucp_worker_progress returns.
  prof::Profiler::Region r_after;
  if (prof && wrap_ == "MPICH after progress") {
    r_after = prof->begin("MPICH after progress");
  }
  c.consume(c.costs().mpich_after_progress);
  if (prof && wrap_ == "MPICH after progress") prof->end(r_after);

  if (prof && wrap_ == "MPI_Wait") prof->end(r_wait);
  ++waits_;
  co_await c.flush();
  co_return req->status;
}

sim::Task<common::Status> MpiComm::waitall(const std::vector<Request*>& reqs) {
  cpu::Core& c = core();
  // Per-operation send-progress bookkeeping (HLP_tx_prog): request
  // inspection and cleanup across the window (§6, Post_prog).
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    c.consume(c.costs().hlp_tx_prog);
  }
  for (;;) {
    bool all = true;
    for (Request* r : reqs) {
      if (!r->complete) {
        all = false;
        break;
      }
    }
    if (all) break;
    co_await ucp_.progress();
  }
  co_await c.flush();
  for (Request* r : reqs) {
    if (r->status != common::Status::kOk) co_return r->status;
  }
  co_return common::Status::kOk;
}

}  // namespace bb::hlp
