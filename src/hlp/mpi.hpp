#pragma once
// The MPI-like layer (MPICH/CH4-style) on top of UCP (§5).
//
// Implements the subset of MPI semantics the paper's evaluation exercises:
// nonblocking initiation (Isend/Irecv), blocking completion (Wait on one
// request, Waitall on a window), and the blocking progress engine that
// loops on ucp_worker_progress. Per-layer costs are charged where the
// paper measures them: MPICH initiation work inside MPI_Isend above
// ucp_tag_send_nb; the registered MPICH receive callback inside UCP's;
// the fixed blocking-wait work and the post-progress epilogue inside
// MPI_Wait; and the per-operation send-progress bookkeeping inside
// MPI_Waitall (Post_prog, §6).

#include <string>
#include <vector>

#include "hlp/request.hpp"
#include "hlp/ucp.hpp"

namespace bb::hlp {

class MpiComm {
 public:
  explicit MpiComm(UcpWorker& ucp);

  UcpWorker& ucp() { return ucp_; }
  cpu::Core& core() { return ucp_.core(); }

  /// MPI_Isend of `bytes` to the peer.
  sim::Task<common::Expected<Request*>> isend(std::uint32_t bytes);
  /// MPI_Irecv of `bytes` from the peer.
  common::Expected<Request*> irecv(std::uint32_t bytes);
  /// Blocking MPI_Wait for one request; returns the request's final
  /// disposition (kIoError when it was retired by an error completion).
  sim::Task<common::Status> wait(Request* req);
  /// MPI_Waitall over a window of requests; returns kOk or the first
  /// non-OK request status in window order.
  sim::Task<common::Status> waitall(const std::vector<Request*>& reqs);

  /// Profiler wrap point (one region at a time, §3): one of
  /// {"MPI_Isend", "ucp_tag_send_nb", "MPI_Wait", "MPICH after progress"}.
  void set_wrap(std::string region) { wrap_ = std::move(region); }

  std::uint64_t isends() const { return isends_; }
  std::uint64_t waits() const { return waits_; }

 private:
  UcpWorker& ucp_;
  std::string wrap_;
  std::uint64_t isends_ = 0;
  std::uint64_t waits_ = 0;
};

}  // namespace bb::hlp
