#include "scenario/config.hpp"

namespace bb::scenario::presets {

SystemConfig thunderx2_cx4() { return SystemConfig{}; }

SystemConfig integrated_nic(double io_reduction) {
  SystemConfig c;
  c.name = "integrated-nic";
  const double keep = 1.0 - io_reduction;
  c.link.base_latency_ns *= keep;
  c.link.per_byte_ns *= keep;
  c.rc.rc_to_mem_base_ns *= keep;
  c.rc.rc_to_mem_per_byte_ns *= keep;
  return c;
}

SystemConfig fast_device_memory(double pio_copy_ns) {
  SystemConfig c;
  c.name = "fast-device-memory";
  c.cpu.pio_copy_64b.mean_ns = pio_copy_ns;
  return c;
}

SystemConfig genz_switch(double switch_ns) {
  SystemConfig c;
  c.name = "genz-switch";
  c.net.switch_latency_ns = switch_ns;
  return c;
}

SystemConfig pam4_fec_wire(double extra_wire_ns) {
  SystemConfig c;
  c.name = "pam4-fec-wire";
  c.net.wire_latency_ns += extra_wire_ns;
  // Higher signalling rate: double the serialization bandwidth.
  c.net.serialize_ns_per_byte /= 2.0;
  return c;
}

SystemConfig tofu_d_like() {
  // §7.1: Tofu-D's integrated NIC improved RDMA-write latency by ~400 ns.
  // Model it as an 80% I/O reduction, which removes ~413 ns of the
  // (2xPCIe + RC-to-MEM) = 516 ns I/O budget.
  SystemConfig c = integrated_nic(0.8);
  c.name = "tofu-d-like";
  return c;
}

SystemConfig doorbell_dma_path() {
  SystemConfig c;
  c.name = "doorbell-dma";
  c.endpoint.use_pio = false;
  c.endpoint.inline_payload = false;
  return c;
}

SystemConfig unsignaled_completions(std::uint32_t period) {
  SystemConfig c;
  c.name = "unsignaled-completions";
  c.endpoint.signal.period = period;
  return c;
}

SystemConfig tso_cpu() {
  SystemConfig c;
  c.name = "tso-cpu";
  // The MD barrier disappears entirely; the DoorBell-counter step keeps
  // its update work but loses the dmb (we attribute ~75% of the measured
  // 21.07 ns to the barrier itself).
  c.cpu.barrier_store_md.mean_ns = 0.0;
  c.cpu.barrier_store_dbc.mean_ns = 21.07 * 0.25;
  return c;
}

SystemConfig deterministic() {
  SystemConfig c;
  c.name = "deterministic";
  c.cpu.strip_jitter();
  return c;
}

}  // namespace bb::scenario::presets
