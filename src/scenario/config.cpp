#include "scenario/config.hpp"

namespace bb::scenario {

void apply_overlay(SystemConfig& c, const overlays::Overlay& o) {
  if (!o.label.empty()) {
    // Relabel rule: overlaying the pristine testbed *names* the scenario
    // (preset wrappers stay "genz-switch", not "thunderx2-cx4+genz-switch");
    // overlaying anything else records the composition.
    if (c.name == "thunderx2-cx4") {
      c.name = o.label;
    } else {
      c.name += "+" + o.label;
    }
  }
  if (o.fn) o.fn(c);
}

void apply_overlay(SystemConfig& c, const fault::FaultConfig& f) {
  apply_overlay(c, overlays::faults(f));
}

namespace overlays {

Overlay integrated_nic(double io_reduction) {
  const double keep = 1.0 - io_reduction;
  return {"integrated-nic", [keep](SystemConfig& c) {
            c.link.base_latency_ns *= keep;
            c.link.per_byte_ns *= keep;
            c.rc.rc_to_mem_base_ns *= keep;
            c.rc.rc_to_mem_per_byte_ns *= keep;
          }};
}

Overlay fast_device_memory(double pio_copy_ns) {
  return {"fast-device-memory", [pio_copy_ns](SystemConfig& c) {
            c.cpu.pio_copy_64b.mean_ns = pio_copy_ns;
          }};
}

Overlay genz_switch(double switch_ns) {
  return {"genz-switch", [switch_ns](SystemConfig& c) {
            c.net.switch_latency_ns = switch_ns;
          }};
}

Overlay pam4_fec_wire(double extra_wire_ns) {
  return {"pam4-fec-wire", [extra_wire_ns](SystemConfig& c) {
            c.net.wire_latency_ns += extra_wire_ns;
            // Higher signalling rate: double the serialization bandwidth.
            c.net.serialize_ns_per_byte /= 2.0;
          }};
}

Overlay tofu_d_like() {
  // §7.1: Tofu-D's integrated NIC improved RDMA-write latency by ~400 ns.
  // Model it as an 80% I/O reduction, which removes ~413 ns of the
  // (2xPCIe + RC-to-MEM) = 516 ns I/O budget.
  Overlay o = integrated_nic(0.8);
  o.label = "tofu-d-like";
  return o;
}

Overlay doorbell_dma() {
  return {"doorbell-dma", [](SystemConfig& c) {
            c.endpoint.use_pio = false;
            c.endpoint.inline_payload = false;
          }};
}

Overlay unsignaled_completions(std::uint32_t period) {
  return {"unsignaled-completions", [period](SystemConfig& c) {
            c.endpoint.signal.period = period;
          }};
}

Overlay tso_cpu() {
  return {"tso-cpu", [](SystemConfig& c) {
            // The MD barrier disappears entirely; the DoorBell-counter
            // step keeps its update work but loses the dmb (we attribute
            // ~75% of the measured 21.07 ns to the barrier itself).
            c.cpu.barrier_store_md.mean_ns = 0.0;
            c.cpu.barrier_store_dbc.mean_ns = 21.07 * 0.25;
          }};
}

Overlay deterministic() {
  return {"deterministic", [](SystemConfig& c) { c.cpu.strip_jitter(); }};
}

Overlay coll_tuning(coll::CollTuning t) {
  return {"coll-tuning", [t](SystemConfig& c) { c.coll = t; }};
}

Overlay incast_modeling(bool on) {
  return {"incast", [on](SystemConfig& c) { c.net.model_incast = on; }};
}

Overlay faults(fault::FaultConfig f) {
  return {"faults", [f = std::move(f)](SystemConfig& c) { c.fault = f; }};
}

Overlay faults(double tlp_corrupt_prob) {
  fault::FaultConfig f;
  f.tlp_corrupt_prob = tlp_corrupt_prob;
  return faults(std::move(f));
}

Overlay wire_faults(fault::WireFaultConfig w) {
  return {"wire-faults",
          [w = std::move(w)](SystemConfig& c) { c.fault.wire = w; }};
}

Overlay wire_loss(double drop_prob) {
  fault::WireFaultConfig w;
  w.drop_prob = drop_prob;
  return wire_faults(std::move(w));
}

}  // namespace overlays

namespace presets {

SystemConfig thunderx2_cx4() { return SystemConfig{}; }

SystemConfig faulty_testbed(fault::FaultConfig f) {
  return thunderx2_cx4().with(overlays::faults(std::move(f)));
}

SystemConfig integrated_nic(double io_reduction) {
  return thunderx2_cx4().with(overlays::integrated_nic(io_reduction));
}

SystemConfig fast_device_memory(double pio_copy_ns) {
  return thunderx2_cx4().with(overlays::fast_device_memory(pio_copy_ns));
}

SystemConfig genz_switch(double switch_ns) {
  return thunderx2_cx4().with(overlays::genz_switch(switch_ns));
}

SystemConfig pam4_fec_wire(double extra_wire_ns) {
  return thunderx2_cx4().with(overlays::pam4_fec_wire(extra_wire_ns));
}

SystemConfig tofu_d_like() {
  return thunderx2_cx4().with(overlays::tofu_d_like());
}

SystemConfig doorbell_dma_path() {
  return thunderx2_cx4().with(overlays::doorbell_dma());
}

SystemConfig unsignaled_completions(std::uint32_t period) {
  return thunderx2_cx4().with(overlays::unsignaled_completions(period));
}

SystemConfig tso_cpu() { return thunderx2_cx4().with(overlays::tso_cpu()); }

SystemConfig deterministic() {
  return thunderx2_cx4().with(overlays::deterministic());
}

}  // namespace presets

}  // namespace bb::scenario
