#pragma once
// An N-node cluster: the two-node testbed of §3 generalized for
// multi-rank workloads (ring exchanges, neighbour stencils). Every node
// gets the full per-node hardware (core, host memory, PCIe link + RC,
// NIC); the fabric routes by destination. The analyzer taps one node's
// link (node 0 unless the constructor places it elsewhere).

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "scenario/testbed.hpp"

namespace bb::scenario {

class Cluster {
 public:
  using Node = Testbed::Node;

  /// `analyzer_node` places the passive PCIe tap: any node's link may be
  /// observed, not just the initiator's (the paper moves the analyzer to
  /// whichever side the experiment studies).
  Cluster(SystemConfig cfg, int node_count, int analyzer_node = 0);

  sim::Simulator& sim() { return sim_; }
  const SystemConfig& config() const { return cfg_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  Node& node(int i);
  pcie::Analyzer& analyzer() { return analyzer_; }
  int analyzer_node() const { return analyzer_node_; }

  /// An endpoint on `node_id` targeting `peer_node`, on a fresh QP.
  llp::Endpoint& add_endpoint(int node_id, int peer_node,
                              std::optional<llp::EndpointConfig> cfg = {});

  /// Merged reliable-transport accounting: fabric wire fates + every
  /// node's RC protocol activity (docs/TRANSPORT.md).
  net::TransportStats net_stats() const;
  std::string net_report() const;

 private:
  SystemConfig cfg_;
  sim::Simulator sim_;
  /// Must precede `fabric_`, which captures it at construction.
  fault::WireInjector wire_injector_;
  net::Fabric fabric_;
  pcie::Analyzer analyzer_;
  int analyzer_node_ = 0;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::deque<llp::Endpoint> endpoints_;
  std::uint32_t next_qp_ = 1;
};

}  // namespace bb::scenario
