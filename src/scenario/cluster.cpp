#include "scenario/cluster.hpp"

#include "common/assert.hpp"

namespace bb::scenario {

Cluster::Cluster(SystemConfig cfg, int node_count, int analyzer_node)
    : cfg_(std::move(cfg)),
      sim_(cfg_.seed),
      wire_injector_(cfg_.fault.wire, derive_seed(cfg_.seed, 0x57B1FAB5ull)),
      fabric_(sim_, cfg_.net, node_count,
              cfg_.fault.wire.enabled() ? &wire_injector_ : nullptr),
      analyzer_node_(analyzer_node) {
  BB_ASSERT(node_count >= 2);
  BB_ASSERT(analyzer_node >= 0 && analyzer_node < node_count);
  nodes_.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    nodes_.push_back(std::make_unique<Node>(
        sim_, fabric_, cfg_, i, i == analyzer_node ? &analyzer_ : nullptr));
  }
}

Cluster::Node& Cluster::node(int i) {
  BB_ASSERT(i >= 0 && i < node_count());
  return *nodes_[static_cast<std::size_t>(i)];
}

llp::Endpoint& Cluster::add_endpoint(int node_id, int peer_node,
                                     std::optional<llp::EndpointConfig> cfg) {
  BB_ASSERT(peer_node >= 0 && peer_node < node_count() &&
            peer_node != node_id);
  llp::EndpointConfig c = cfg.value_or(cfg_.endpoint);
  c.qp = next_qp_++;
  c.peer_node = peer_node;
  Node& n = node(node_id);
  endpoints_.emplace_back(n.worker, n.rc, c, &n.nic);
  return endpoints_.back();
}

net::TransportStats Cluster::net_stats() const {
  net::TransportStats merged = fabric_.stats();
  for (const auto& n : nodes_) merged.merge(n->nic.transport_stats());
  return merged;
}

std::string Cluster::net_report() const {
  return net_stats().render("Transport report: " + cfg_.name);
}

}  // namespace bb::scenario
