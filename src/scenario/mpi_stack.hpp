#pragma once
// Convenience bundle: the full software stack of one node -- a UCT
// endpoint, the UCP worker above it, and the MPI layer on top -- wired to
// a Testbed node. This is the §5 stack (MPICH/CH4 over UCP over UCT).

#include <memory>
#include <optional>

#include "hlp/mpi.hpp"
#include "hlp/ucp.hpp"
#include "scenario/testbed.hpp"

namespace bb::scenario {

class MpiStack {
 public:
  /// `signal_period` defaults to UCX's unsignalled-completion setting
  /// (one CQE per 64 ops, §6).
  MpiStack(Testbed& tb, int node_id, std::uint32_t signal_period = 64)
      : node_(tb.node(node_id)),
        endpoint_(make_endpoint(tb, node_id, signal_period)),
        ucp_(std::make_unique<hlp::UcpWorker>(node_.worker, endpoint_)),
        mpi_(std::make_unique<hlp::MpiComm>(*ucp_)) {}

  /// Builds the stack over an existing node + endpoint (e.g. a Cluster
  /// rank whose endpoint targets a specific peer).
  MpiStack(Testbed::Node& node, llp::Endpoint& endpoint)
      : node_(node),
        endpoint_(endpoint),
        ucp_(std::make_unique<hlp::UcpWorker>(node_.worker, endpoint_)),
        mpi_(std::make_unique<hlp::MpiComm>(*ucp_)) {}

  Testbed::Node& node() { return node_; }
  llp::Endpoint& endpoint() { return endpoint_; }
  hlp::UcpWorker& ucp() { return *ucp_; }
  hlp::MpiComm& mpi() { return *mpi_; }

 private:
  static llp::Endpoint& make_endpoint(Testbed& tb, int node_id,
                                      std::uint32_t signal_period) {
    llp::EndpointConfig cfg = tb.config().endpoint;
    cfg.signal.period = signal_period;
    return tb.add_endpoint(node_id, cfg);
  }

  Testbed::Node& node_;
  llp::Endpoint& endpoint_;
  std::unique_ptr<hlp::UcpWorker> ucp_;
  std::unique_ptr<hlp::MpiComm> mpi_;
};

}  // namespace bb::scenario
