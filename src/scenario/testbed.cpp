#include "scenario/testbed.hpp"

#include "common/assert.hpp"

namespace bb::scenario {

Testbed::Node::Node(sim::Simulator& sim, net::Fabric& fabric,
                    const SystemConfig& cfg, int id, pcie::Analyzer* tap)
    : core(sim, cfg.cpu, id == 0 ? "core0" : "core1"),
      profiler(core),
      host(),
      link(sim, cfg.link, tap),
      rc(sim, link, cfg.rc),
      nic(sim, link, fabric, id, cfg.nic, host),
      worker(core, host, cfg.llp_worker),
      cq_interrupt(sim) {
  worker.set_profiler(&profiler);
  host.set_commit_hook([this] { cq_interrupt.fire(); });
  rc.set_memory_sink([this](const pcie::Tlp& tlp, TimePs visible_at) {
    host.commit_write(tlp, visible_at);
  });
  rc.set_read_provider([this](const pcie::ReadRequest& req) {
    return host.serve_read(req);
  });
}

Testbed::Testbed(SystemConfig cfg)
    : cfg_(std::move(cfg)), sim_(cfg_.seed), fabric_(sim_, cfg_.net) {
  nodes_[0] = std::make_unique<Node>(sim_, fabric_, cfg_, 0, &analyzer_);
  nodes_[1] = std::make_unique<Node>(sim_, fabric_, cfg_, 1, nullptr);
}

Testbed::Node& Testbed::node(int i) {
  BB_ASSERT(i == 0 || i == 1);
  return *nodes_[i];
}

llp::Endpoint& Testbed::add_endpoint(int node_id,
                                     std::optional<llp::EndpointConfig> cfg) {
  Node& n = node(node_id);
  endpoints_.emplace_back(n.worker, n.rc, cfg.value_or(cfg_.endpoint));
  return endpoints_.back();
}

llp::Endpoint& Testbed::add_endpoint(WorkerCore& wc, int node_id,
                                     std::optional<llp::EndpointConfig> cfg) {
  llp::EndpointConfig c = cfg.value_or(cfg_.endpoint);
  c.qp = next_qp_++;
  endpoints_.emplace_back(wc.worker, node(node_id).rc, c);
  return endpoints_.back();
}

Testbed::WorkerCore& Testbed::add_core(int node_id) {
  Node& n = node(node_id);
  const auto idx = extra_cores_.size();
  extra_cores_.emplace_back(
      sim_, cfg_.cpu, n.host, cfg_.llp_worker,
      "core" + std::to_string(node_id) + "-" + std::to_string(idx + 1));
  return extra_cores_.back();
}

}  // namespace bb::scenario
