#include "scenario/testbed.hpp"

#include "common/assert.hpp"

namespace bb::scenario {

Testbed::Node::Node(sim::Simulator& sim, net::Fabric& fabric,
                    const SystemConfig& cfg, int id, pcie::Analyzer* tap)
    : core(sim, cfg.cpu, id == 0 ? "core0" : "core1"),
      profiler(core),
      host(),
      // Each node gets a private fault stream derived from the system
      // seed and the node id, so two-node runs stay deterministic and the
      // nodes' fault sequences are decorrelated.
      injector(cfg.fault, cfg.seed + 0x9E3779B9u * (id + 1u)),
      link(sim, cfg.link, tap, cfg.fault.link_enabled() ? &injector : nullptr),
      rc(sim, link, cfg.rc),
      nic(sim, link, fabric, id, cfg.nic, host),
      worker(core, host, cfg.llp_worker),
      cq_interrupt(sim) {
  worker.set_profiler(&profiler);
  if (cfg.fault.enabled()) {
    nic.set_fault_stats(&injector.stats());
    worker.set_fault_stats(&injector.stats());
  }
  host.set_commit_hook([this] { cq_interrupt.fire(); });
  rc.set_memory_sink([this](const pcie::Tlp& tlp, TimePs visible_at) {
    if (tlp.poisoned) ++injector.stats().poisoned_delivered;
    host.commit_write(tlp, visible_at);
  });
  rc.set_read_provider([this](const pcie::ReadRequest& req) {
    return host.serve_read(req);
  });
}

Testbed::Testbed(SystemConfig cfg)
    : cfg_(std::move(cfg)),
      sim_(cfg_.seed),
      // The wire fault stream is a pure labelled fork of the system seed,
      // so loss patterns are bit-identical serial vs `exec --jobs N`.
      wire_injector_(cfg_.fault.wire, derive_seed(cfg_.seed, 0x57B1FAB5ull)),
      fabric_(sim_, cfg_.net, /*node_count=*/2,
              cfg_.fault.wire.enabled() ? &wire_injector_ : nullptr) {
  nodes_[0] = std::make_unique<Node>(sim_, fabric_, cfg_, 0, &analyzer_);
  nodes_[1] = std::make_unique<Node>(sim_, fabric_, cfg_, 1, nullptr);
}

Testbed::Node& Testbed::node(int i) {
  BB_ASSERT(i == 0 || i == 1);
  return *nodes_[i];
}

fault::FaultStats Testbed::fault_stats() const {
  fault::FaultStats merged = nodes_[0]->injector.stats();
  merged.merge(nodes_[1]->injector.stats());
  return merged;
}

std::string Testbed::fault_report() const {
  return fault_stats().render("Fault report: " + cfg_.name);
}

void Testbed::publish_fault_counters() {
  const fault::FaultStats s = fault_stats();
  prof::Profiler& p = nodes_[0]->profiler;
  p.note_count("fault.tlps_corrupted", s.tlps_corrupted);
  p.note_count("fault.tlps_dropped", s.tlps_dropped);
  p.note_count("fault.acks_dropped", s.acks_dropped);
  p.note_count("fault.updatefc_dropped", s.updatefc_dropped);
  p.note_count("fault.naks_sent", s.naks_sent);
  p.note_count("fault.replays", s.replays);
  p.note_count("fault.replay_timeouts", s.replay_timeouts);
  p.note_count("fault.duplicates_dropped", s.duplicates_dropped);
  p.note_count("fault.fc_reemissions", s.fc_reemissions);
  p.note_count("fault.poisoned_tlps", s.poisoned_tlps);
  p.note_count("fault.poisoned_delivered", s.poisoned_delivered);
  p.note_count("fault.error_cqes", s.error_cqes);
  p.note_count("fault.read_retries", s.read_retries);
  p.note_count("fault.busy_post_retries", s.busy_post_retries);
}

net::TransportStats Testbed::net_stats() const {
  net::TransportStats merged = fabric_.stats();
  merged.merge(nodes_[0]->nic.transport_stats());
  merged.merge(nodes_[1]->nic.transport_stats());
  return merged;
}

std::string Testbed::net_report() const {
  return net_stats().render("Transport report: " + cfg_.name);
}

void Testbed::publish_net_counters() {
  const net::TransportStats s = net_stats();
  prof::Profiler& p = nodes_[0]->profiler;
  p.note_count("net.packets_sent", s.packets_sent);
  p.note_count("net.packets_delivered", s.packets_delivered);
  p.note_count("net.packets_dropped", s.packets_dropped);
  p.note_count("net.packets_corrupted", s.packets_corrupted);
  p.note_count("net.packets_duplicated", s.packets_duplicated);
  p.note_count("net.packets_reordered", s.packets_reordered);
  p.note_count("net.retransmits", s.retransmits);
  p.note_count("net.acks_sent", s.acks_sent);
  p.note_count("net.acks_received", s.acks_received);
  p.note_count("net.naks_sent", s.naks_sent);
  p.note_count("net.naks_received", s.naks_received);
  p.note_count("net.rnr_naks_sent", s.rnr_naks_sent);
  p.note_count("net.rnr_naks_received", s.rnr_naks_received);
  p.note_count("net.duplicates_discarded", s.duplicates_discarded);
  p.note_count("net.retry_timer_firings", s.retry_timer_firings);
  p.note_count("net.qp_errors", s.qp_errors);
  p.note_count("net.qp_recoveries", s.qp_recoveries);
  p.note_count("net.flushed_wqes", s.flushed_wqes);
}

llp::Endpoint& Testbed::add_endpoint(int node_id,
                                     std::optional<llp::EndpointConfig> cfg) {
  Node& n = node(node_id);
  endpoints_.emplace_back(n.worker, n.rc, cfg.value_or(cfg_.endpoint),
                          &n.nic);
  return endpoints_.back();
}

llp::Endpoint& Testbed::add_endpoint(WorkerCore& wc, int node_id,
                                     std::optional<llp::EndpointConfig> cfg) {
  llp::EndpointConfig c = cfg.value_or(cfg_.endpoint);
  c.qp = next_qp_++;
  endpoints_.emplace_back(wc.worker, node(node_id).rc, c, &node(node_id).nic);
  return endpoints_.back();
}

Testbed::WorkerCore& Testbed::add_core(int node_id) {
  Node& n = node(node_id);
  const auto idx = extra_cores_.size();
  extra_cores_.emplace_back(
      sim_, cfg_.cpu, n.host, cfg_.llp_worker,
      "core" + std::to_string(node_id) + "-" + std::to_string(idx + 1));
  return extra_cores_.back();
}

}  // namespace bb::scenario
