#pragma once
// The two-node testbed of §3 (Fig. 3): node 0 (the initiator) and node 1,
// each with a CPU core, host memory, a PCIe link + Root Complex, and a
// NIC; the NICs are connected by the interconnect fabric; a passive PCIe
// analyzer taps node 0's link just before its NIC.

#include <deque>
#include <memory>
#include <optional>

#include "cpu/core.hpp"
#include "fault/fault.hpp"
#include "llp/endpoint.hpp"
#include "llp/worker.hpp"
#include "net/fabric.hpp"
#include "nic/nic.hpp"
#include "nic/queues.hpp"
#include "pcie/link.hpp"
#include "pcie/root_complex.hpp"
#include "pcie/trace.hpp"
#include "prof/profiler.hpp"
#include "scenario/config.hpp"
#include "sim/signal.hpp"
#include "sim/simulator.hpp"

namespace bb::scenario {

class Testbed {
 public:
  struct Node {
    Node(sim::Simulator& sim, net::Fabric& fabric, const SystemConfig& cfg,
         int id, pcie::Analyzer* tap);

    cpu::Core core;
    prof::Profiler profiler;
    nic::HostMemory host;
    /// Per-node fault injector (inert when cfg.fault is disabled); must
    /// precede `link`, which captures it at construction.
    fault::FaultInjector injector;
    pcie::Link link;
    pcie::RootComplex rc;
    nic::Nic nic;
    llp::Worker worker;
    /// Fires whenever a DMA write (CQE or payload) becomes visible in this
    /// node's memory -- the basis of interrupt-driven completion (§2).
    sim::Signal cq_interrupt;
  };

  explicit Testbed(SystemConfig cfg);

  sim::Simulator& sim() { return sim_; }
  const SystemConfig& config() const { return cfg_; }
  net::Fabric& fabric() { return fabric_; }
  /// The analyzer tapping node 0's link (§3: "just before the NIC").
  pcie::Analyzer& analyzer() { return analyzer_; }
  Node& node(int i);

  /// Merged fault/recovery accounting across both nodes' injectors.
  fault::FaultStats fault_stats() const;
  /// Rendered fault report (empty table when injection is disabled).
  std::string fault_report() const;
  /// Exports the merged fault stats as `fault.*` counters on node 0's
  /// profiler, so `profiler.report()` shows them next to timing regions.
  void publish_fault_counters();

  /// Merged reliable-transport accounting: the fabric's wire-side packet
  /// fates plus both NICs' RC protocol activity (docs/TRANSPORT.md).
  net::TransportStats net_stats() const;
  std::string net_report() const;
  /// Exports the merged transport stats as `net.*` counters on node 0's
  /// profiler, mirroring publish_fault_counters().
  void publish_net_counters();

  /// Creates an endpoint on `node_id` targeting the peer, using the config
  /// template (optionally overridden). Returned reference is stable.
  llp::Endpoint& add_endpoint(int node_id,
                              std::optional<llp::EndpointConfig> cfg = {});

  /// An additional CPU core with its own LLP worker on `node_id` -- the
  /// fine-grained multi-core scenario the paper's introduction motivates
  /// (every core communicating independently through the shared NIC).
  struct WorkerCore {
    cpu::Core core;
    llp::Worker worker;
    WorkerCore(sim::Simulator& sim, const cpu::CpuCostModel& m,
               nic::HostMemory& host, const llp::WorkerConfig& wc,
               std::string name)
        : core(sim, m, std::move(name)), worker(core, host, wc) {}
  };
  WorkerCore& add_core(int node_id);

  /// An endpoint driven by an extra core's worker, on a fresh QP.
  llp::Endpoint& add_endpoint(WorkerCore& wc, int node_id,
                              std::optional<llp::EndpointConfig> cfg = {});

 private:
  SystemConfig cfg_;
  sim::Simulator sim_;
  /// Wire-level fault source shared by the fabric (inert when
  /// cfg.fault.wire is disabled); must precede `fabric_`, which captures
  /// it at construction.
  fault::WireInjector wire_injector_;
  net::Fabric fabric_;
  pcie::Analyzer analyzer_;
  std::unique_ptr<Node> nodes_[2];
  std::deque<llp::Endpoint> endpoints_;
  std::deque<WorkerCore> extra_cores_;
  std::uint32_t next_qp_ = 100;  // qp ids for add_core-created endpoints
};

}  // namespace bb::scenario
