#pragma once
// Whole-system configuration and named presets.
//
// A SystemConfig aggregates every knob of the simulated machine. The
// default constructor *is* the paper's testbed: ThunderX2 @ 2 GHz,
// ConnectX-4 behind PCIe Gen3, Mellanox InfiniBand with one switch,
// MPICH/CH4 over UCX -- all calibrated to Table 1. The presets apply the
// §7 what-if configurations as actual machine changes, so the simulated
// optimizations can be *run*, not just computed.

#include <cstdint>
#include <string>

#include "cpu/cost_model.hpp"
#include "llp/endpoint.hpp"
#include "llp/worker.hpp"
#include "net/fabric.hpp"
#include "nic/nic.hpp"
#include "pcie/link.hpp"
#include "pcie/root_complex.hpp"

namespace bb::scenario {

struct SystemConfig {
  std::string name = "thunderx2-cx4";
  std::uint64_t seed = 42;

  cpu::CpuCostModel cpu;
  pcie::LinkParams link;
  pcie::RcParams rc;
  nic::NicParams nic;
  net::NetParams net;
  llp::WorkerConfig llp_worker;
  /// Template for endpoints created by the testbed.
  llp::EndpointConfig endpoint;
};

namespace presets {

/// The paper's testbed (§3). Identical to a default-constructed config.
SystemConfig thunderx2_cx4();

/// §7.1 "NIC integrated into a System-on-Chip": scales the whole I/O
/// subsystem (PCIe latency and RC-to-MEM) down by `io_reduction`.
SystemConfig integrated_nic(double io_reduction = 0.5);

/// §7.1 "Improving the initiation of a message in LLP": device-memory
/// writes approach Normal-memory speed; the default projects the paper's
/// 15 ns PIO copy (84% reduction).
SystemConfig fast_device_memory(double pio_copy_ns = 15.0);

/// §7.2 Gen-Z-class switch (30-50 ns forecast; default 30).
SystemConfig genz_switch(double switch_ns = 30.0);

/// §7.2 higher-throughput wire paying PAM4+FEC latency (+300 ns).
SystemConfig pam4_fec_wire(double extra_wire_ns = 300.0);

/// Tofu-D-like integration: integrated NIC shaving ~400 ns off the
/// one-sided latency (§7.1's post-K example).
SystemConfig tofu_d_like();

/// Classic offloaded path: DoorBell + DMA descriptor/payload fetches
/// instead of PIO+inline (the §2 baseline PIO replaces).
SystemConfig doorbell_dma_path();

/// UCX default signalling: one CQE per 64 ops (§6).
SystemConfig unsignaled_completions(std::uint32_t period = 64);

/// A TSO (x86-like) machine: §4.1 notes the store barriers in LLP_post
/// exist "only for a weak memory model (dmb st on aarch64)" -- under
/// total store order they vanish, at the cost of nothing else changing.
/// Illustrates how much of the Arm LLP_post is memory-model tax.
SystemConfig tso_cpu();

/// The paper's testbed with every stochastic element removed: exact
/// component means, no hiccups. Timing becomes exactly predictable.
SystemConfig deterministic();

}  // namespace presets

}  // namespace bb::scenario
