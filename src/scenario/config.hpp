#pragma once
// Whole-system configuration and named presets.
//
// A SystemConfig aggregates every knob of the simulated machine. The
// default constructor *is* the paper's testbed: ThunderX2 @ 2 GHz,
// ConnectX-4 behind PCIe Gen3, Mellanox InfiniBand with one switch,
// MPICH/CH4 over UCX -- all calibrated to Table 1. The presets apply the
// §7 what-if configurations as actual machine changes, so the simulated
// optimizations can be *run*, not just computed.

#include <concepts>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "coll/tuning.hpp"
#include "cpu/cost_model.hpp"
#include "fault/fault.hpp"
#include "llp/endpoint.hpp"
#include "llp/worker.hpp"
#include "net/fabric.hpp"
#include "nic/nic.hpp"
#include "pcie/link.hpp"
#include "pcie/root_complex.hpp"

namespace bb::scenario {

struct SystemConfig {
  std::string name = "thunderx2-cx4";
  std::uint64_t seed = 42;

  cpu::CpuCostModel cpu;
  pcie::LinkParams link;
  pcie::RcParams rc;
  nic::NicParams nic;
  net::NetParams net;
  llp::WorkerConfig llp_worker;
  /// Template for endpoints created by the testbed.
  llp::EndpointConfig endpoint;
  /// Fault-injection plan (disabled by default: all rates zero, no
  /// scheduled one-shots). When disabled the testbed wires no injector
  /// and the simulation is bit-identical to the error-free machine.
  fault::FaultConfig fault;
  /// Collective algorithm-selection thresholds (bb::coll).
  coll::CollTuning coll;

  /// Compose overlays onto a copy of this config, left to right:
  ///   presets::thunderx2_cx4().with(overlays::genz_switch(30),
  ///                                 overlays::faults(1e-3));
  /// Each overlay is resolved through ADL `apply_overlay(config, o)`, so
  /// callers can compose the named overlays below, a raw
  /// fault::FaultConfig, or any callable taking `SystemConfig&`.
  template <typename... Overlays>
  [[nodiscard]] SystemConfig with(Overlays&&... overlays) const {
    SystemConfig c = *this;
    (apply_overlay(c, std::forward<Overlays>(overlays)), ...);
    return c;
  }
};

namespace overlays {

/// A named, reusable config transform. Overlays relabel the config they
/// touch: applied to the baseline testbed they *replace* the name (so
/// preset wrappers keep their historical names); applied to anything else
/// they append "+label", making composed scenarios self-describing.
struct Overlay {
  std::string label;
  std::function<void(SystemConfig&)> fn;
};

/// §7.1 integrated NIC: scale the I/O subsystem down by `io_reduction`.
Overlay integrated_nic(double io_reduction = 0.5);
/// §7.1 fast device memory: PIO copy at `pio_copy_ns`.
Overlay fast_device_memory(double pio_copy_ns = 15.0);
/// §7.2 Gen-Z-class switch.
Overlay genz_switch(double switch_ns = 30.0);
/// §7.2 PAM4+FEC wire: +`extra_wire_ns` latency, 2x serialization rate.
Overlay pam4_fec_wire(double extra_wire_ns = 300.0);
/// Tofu-D-like integration (80% I/O reduction).
Overlay tofu_d_like();
/// DoorBell + DMA descriptor/payload path instead of PIO+inline.
Overlay doorbell_dma();
/// One CQE per `period` ops.
Overlay unsignaled_completions(std::uint32_t period = 64);
/// Total-store-order CPU: the LLP_post store barriers vanish.
Overlay tso_cpu();
/// Strip all stochastic jitter from the CPU cost model.
Overlay deterministic();
/// Replace the collective algorithm-selection thresholds.
Overlay coll_tuning(coll::CollTuning t);
/// Model receiver-port occupancy under incast (off by default).
Overlay incast_modeling(bool on = true);
/// Enable fault injection with an explicit plan.
Overlay faults(fault::FaultConfig f);
/// Convenience: uniform TLP corruption BER (the common ablation axis).
Overlay faults(double tlp_corrupt_prob);
/// Wire-level (fabric) faults with an explicit plan; the NIC's RC
/// transport recovers (docs/TRANSPORT.md).
Overlay wire_faults(fault::WireFaultConfig w);
/// Convenience: uniform fabric packet-loss probability (the wire-loss
/// ablation axis).
Overlay wire_loss(double drop_prob);

}  // namespace overlays

/// Apply a named overlay: relabel per the Overlay rule, then transform.
void apply_overlay(SystemConfig& c, const overlays::Overlay& o);
/// A raw FaultConfig composes directly: `cfg.with(fault_cfg)`.
void apply_overlay(SystemConfig& c, const fault::FaultConfig& f);
/// Any callable taking SystemConfig& composes as an anonymous overlay.
template <typename F>
  requires std::invocable<F&, SystemConfig&>
void apply_overlay(SystemConfig& c, F&& f) {
  f(c);
}

namespace presets {
// Named single-change machines, kept as thin wrappers over
// thunderx2_cx4().with(overlays::...) so existing binaries compile (and
// report the same scenario names) unchanged.

/// The paper's testbed (§3). Identical to a default-constructed config.
SystemConfig thunderx2_cx4();

/// Fault-injection ablation machine: the testbed with `f` enabled.
SystemConfig faulty_testbed(fault::FaultConfig f);

/// §7.1 "NIC integrated into a System-on-Chip": scales the whole I/O
/// subsystem (PCIe latency and RC-to-MEM) down by `io_reduction`.
SystemConfig integrated_nic(double io_reduction = 0.5);

/// §7.1 "Improving the initiation of a message in LLP": device-memory
/// writes approach Normal-memory speed; the default projects the paper's
/// 15 ns PIO copy (84% reduction).
SystemConfig fast_device_memory(double pio_copy_ns = 15.0);

/// §7.2 Gen-Z-class switch (30-50 ns forecast; default 30).
SystemConfig genz_switch(double switch_ns = 30.0);

/// §7.2 higher-throughput wire paying PAM4+FEC latency (+300 ns).
SystemConfig pam4_fec_wire(double extra_wire_ns = 300.0);

/// Tofu-D-like integration: integrated NIC shaving ~400 ns off the
/// one-sided latency (§7.1's post-K example).
SystemConfig tofu_d_like();

/// Classic offloaded path: DoorBell + DMA descriptor/payload fetches
/// instead of PIO+inline (the §2 baseline PIO replaces).
SystemConfig doorbell_dma_path();

/// UCX default signalling: one CQE per 64 ops (§6).
SystemConfig unsignaled_completions(std::uint32_t period = 64);

/// A TSO (x86-like) machine: §4.1 notes the store barriers in LLP_post
/// exist "only for a weak memory model (dmb st on aarch64)" -- under
/// total store order they vanish, at the cost of nothing else changing.
/// Illustrates how much of the Arm LLP_post is memory-model tax.
SystemConfig tso_cpu();

/// The paper's testbed with every stochastic element removed: exact
/// component means, no hiccups. Timing becomes exactly predictable.
SystemConfig deterministic();

}  // namespace presets

}  // namespace bb::scenario
