#pragma once
// bb::model -- analytical alpha-beta/LogGP-style cost models for the
// pt2pt stack and the bb::coll collective schedules.
//
// The pt2pt model decomposes one message the way §4-§6 of the paper do:
// sender CPU (o_s: MPICH + UCP + LLP_post with its PIO chunking),
// transit (L: PCIe TLP, NIC processing, fabric, receive-side DMA commit),
// and receiver CPU (o_r: LLP_prog + the UCP/MPICH callback chain), each
// term read symbolically from a SystemConfig -- so every what-if overlay
// (integrated NIC, Gen-Z switch, TSO CPU, ...) moves the model and the
// simulator together. The UCP protocol regimes give the model its
// piecewise shape: eager-inline, eager with DMA payload fetch, and
// rendezvous (RTS/CTS/put/FIN).
//
// CollModel composes those per-message terms along each collective
// algorithm's critical path, replicating the exact per-step wire byte
// counts of the bb::coll schedules (ceil chunking, 8-byte minimum slots,
// Bruck's min(k, n-k) blocks). Benches print model vs simulated side by
// side; the acceptance band is +-10% over the OSU size sweep.

#include <cstdint>

#include "coll/coll.hpp"
#include "scenario/config.hpp"

namespace bb::model {

/// Piecewise one-way pt2pt timing decomposition.
class PtPtModel {
 public:
  /// `rndv_threshold` must match the World the model is compared against.
  explicit PtPtModel(const scenario::SystemConfig& cfg,
                     std::uint32_t rndv_threshold = 1024);

  /// Sender CPU until MPI_Isend returns (alpha_s of the alpha-beta view).
  double osend_ns(std::uint32_t m) const;
  /// Last CPU store to payload visible in receiver memory (L + m*beta).
  double transit_ns(std::uint32_t m) const;
  /// Receiver CPU from visibility until MPI_Wait returns.
  double orecv_ns() const;
  /// Mean polling-loop quantization: a completion becomes visible mid
  /// progress pass and is noticed on the next one.
  double poll_gap_ns() const;
  /// Per-blocking-wait fixed CPU (charged once per wait/waitall episode).
  double wait_fixed_ns() const;
  /// Full one-way message time as an e2e latency bench would see it.
  double msg_ns(std::uint32_t m) const;

  std::uint32_t rndv_threshold() const { return rndv_; }
  const scenario::SystemConfig& config() const { return cfg_; }

  /// LLP_post CPU time for an m-byte payload on this config (PIO chunk
  /// arithmetic included).
  double llp_post_ns(std::uint32_t m) const;

 private:
  /// 64-byte PIO chunks for an m-byte inline payload (descriptor control
  /// segment included).
  std::uint32_t pio_chunks(std::uint32_t m) const;
  bool inlined(std::uint32_t m) const;
  /// Transit of an eager message (inline or DMA-fetch, by size).
  double eager_transit_ns(std::uint32_t m) const;

  scenario::SystemConfig cfg_;
  std::uint32_t rndv_;
};

/// Analytical time for each bb::coll schedule on n ranks.
class CollModel {
 public:
  explicit CollModel(const scenario::SystemConfig& cfg,
                     std::uint32_t rndv_threshold = 1024)
      : p_(cfg, rndv_threshold), t_(cfg.coll) {}

  const PtPtModel& ptpt() const { return p_; }

  double barrier_ns(int nranks, coll::Algo a = coll::Algo::kAuto) const;
  double bcast_ns(int nranks, std::uint32_t bytes,
                  coll::Algo a = coll::Algo::kAuto) const;
  double allgather_ns(int nranks, std::uint32_t bytes_per_rank,
                      coll::Algo a = coll::Algo::kAuto) const;
  double allreduce_ns(int nranks, std::uint32_t bytes,
                      coll::Algo a = coll::Algo::kAuto) const;

 private:
  /// One synchronized schedule step whose critical path is a single
  /// m-byte message plus the step's blocking-wait bookkeeping.
  double step_ns(std::uint32_t m) const;

  PtPtModel p_;
  coll::CollTuning t_;
};

}  // namespace bb::model
