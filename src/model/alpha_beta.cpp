#include "model/alpha_beta.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace bb::model {

PtPtModel::PtPtModel(const scenario::SystemConfig& cfg,
                     std::uint32_t rndv_threshold)
    : cfg_(cfg), rndv_(rndv_threshold) {}

bool PtPtModel::inlined(std::uint32_t m) const {
  return cfg_.endpoint.inline_payload && m <= cfg_.endpoint.max_inline_bytes;
}

std::uint32_t PtPtModel::pio_chunks(std::uint32_t m) const {
  const std::uint32_t md = cfg_.endpoint.md_overhead_bytes;
  const std::uint32_t body = inlined(m) ? md + m : md;
  return (body + 63) / 64;
}

double PtPtModel::llp_post_ns(std::uint32_t m) const {
  const cpu::CpuCostModel& c = cfg_.cpu;
  double t = c.md_setup.mean_ns + c.barrier_store_md.mean_ns +
             c.barrier_store_dbc.mean_ns + c.llp_post_misc.mean_ns;
  if (cfg_.endpoint.use_pio) {
    t += static_cast<double>(pio_chunks(m)) * c.pio_copy_64b.mean_ns;
  } else {
    t += c.doorbell_write_8b.mean_ns;
  }
  return t;
}

double PtPtModel::osend_ns(std::uint32_t m) const {
  const cpu::CpuCostModel& c = cfg_.cpu;
  // Rendezvous initiation posts only the 8-byte RTS; the payload moves
  // later, off the initiation path.
  const std::uint32_t posted = m >= rndv_ ? 8 : m;
  return c.mpich_isend.mean_ns + c.ucp_isend.mean_ns + llp_post_ns(posted);
}

double PtPtModel::eager_transit_ns(std::uint32_t m) const {
  const pcie::LinkParams& l = cfg_.link;
  const pcie::RcParams& rc = cfg_.rc;
  const nic::NicParams& n = cfg_.nic;
  double t = 0.0;
  if (cfg_.endpoint.use_pio) {
    // The PIO copy arrives as one MWr of `chunks` 64-byte lines.
    t += l.tlp_latency(pio_chunks(m) * 64).to_ns();
    if (!inlined(m)) {
      // Payload DMA fetch: MRd up, DRAM read, CplD(m) down.
      t += l.tlp_latency(0).to_ns() + rc.mem_read_ns +
           l.tlp_latency(m).to_ns();
    }
  } else {
    // DoorBell ring, descriptor fetch, then (unless inline) payload fetch.
    t += l.tlp_latency(8).to_ns() + n.doorbell_proc_ns;
    t += l.tlp_latency(0).to_ns() + rc.mem_read_ns + l.tlp_latency(64).to_ns();
    if (!cfg_.endpoint.inline_payload) {
      t += l.tlp_latency(0).to_ns() + rc.mem_read_ns +
           l.tlp_latency(m).to_ns();
    }
  }
  // Injection, fabric, and the receive-side DMA commit.
  t += n.tx_proc_ns + cfg_.net.network_latency().to_ns() + n.rx_proc_ns +
       l.tlp_latency(m).to_ns() + rc.rc_to_mem(m).to_ns();
  return t;
}

double PtPtModel::transit_ns(std::uint32_t m) const {
  if (m < rndv_) return eager_transit_ns(m);
  const pcie::LinkParams& l = cfg_.link;
  const pcie::RcParams& rc = cfg_.rc;
  const nic::NicParams& n = cfg_.nic;
  const cpu::CpuCostModel& c = cfg_.cpu;
  // RTS over, CTS back (8-byte control messages, each decoded by a UCP
  // progress pass on arrival and answered from the progress engine).
  double t = eager_transit_ns(8) + c.llp_prog.mean_ns +
             c.ucp_progress_iter.mean_ns + poll_gap_ns() + llp_post_ns(8) +
             eager_transit_ns(8) + c.llp_prog.mean_ns +
             c.ucp_progress_iter.mean_ns + poll_gap_ns();
  // The data put: descriptor-only post, payload DMA fetch, inject, commit.
  t += llp_post_ns(m >= rndv_ ? rndv_ : m);  // descriptor-only (never inline)
  t += l.tlp_latency(pio_chunks(rndv_) * 64).to_ns() + l.tlp_latency(0).to_ns() +
       rc.mem_read_ns + l.tlp_latency(m).to_ns();
  t += n.tx_proc_ns + cfg_.net.network_latency().to_ns() + n.rx_proc_ns +
       l.tlp_latency(m).to_ns();
  // The FIN rides right behind the payload (its CPU post and NIC pass
  // overlap the put's DMA fetch, and the fabric keeps per-sender order),
  // and the RC commits each MemWrite independently -- so the receiver's
  // completion waits only for the FIN's own 8-byte commit, not for the
  // payload's rc_to_mem(m).
  t += rc.rc_to_mem(8).to_ns();
  return t;
}

double PtPtModel::orecv_ns() const {
  const cpu::CpuCostModel& c = cfg_.cpu;
  return c.llp_prog.mean_ns + c.ucp_rx_callback.mean_ns +
         c.mpich_rx_callback.mean_ns + c.mpich_after_progress.mean_ns;
}

double PtPtModel::poll_gap_ns() const {
  const cpu::CpuCostModel& c = cfg_.cpu;
  // A completion lands mid progress pass and is observed on the next one:
  // on average half an empty pass.
  return 0.5 * (c.ucp_progress_iter.mean_ns + c.llp_empty_progress.mean_ns);
}

double PtPtModel::wait_fixed_ns() const {
  return cfg_.cpu.mpich_wait_fixed.mean_ns;
}

double PtPtModel::msg_ns(std::uint32_t m) const {
  return osend_ns(m) + transit_ns(m) + poll_gap_ns() + orecv_ns();
}

// --------------------------------------------------------------- CollModel

namespace {

int ceil_log2(int n) {
  int r = 0;
  for (int k = 1; k < n; k <<= 1) ++r;
  return r;
}

// Critical-path depth of the MPICH binomial tree on n ranks: relative
// rank vr sits popcount(vr) hops below the root, and the descending-mask
// send order gives the deepest subtree each parent's *first* send, so no
// serialized-osend penalty accrues along the deepest chain. Equal to
// ceil(log2 n) only when n is a power of two (e.g. 3 for n=12, not 4).
int binomial_depth(int n) {
  int d = 0;
  for (int vr = 1; vr < n; ++vr) {
    int bits = 0;
    for (int x = vr; x != 0; x &= x - 1) ++bits;
    d = std::max(d, bits);
  }
  return d;
}

}  // namespace

double CollModel::step_ns(std::uint32_t m) const {
  // One synchronized schedule step: every rank initiates, the step ends
  // when the peer's message lands and completes. The blocking-wait fixed
  // work and the send-progress bookkeeping overlap the transit (they are
  // charged while the wire is busy), so they stay off the critical path.
  return p_.msg_ns(m);
}

double CollModel::barrier_ns(int nranks, coll::Algo a) const {
  if (nranks < 2) return 0.0;
  switch (coll::resolve_barrier(t_, nranks, a)) {
    case coll::Algo::kRingToken:
      // Two laps of a token, each hop a full 8-byte message.
      return 2.0 * nranks * step_ns(8);
    default:
      // Dissemination: ceil(log2 n) synchronized exchange rounds.
      return static_cast<double>(ceil_log2(nranks)) * step_ns(8);
  }
}

double CollModel::bcast_ns(int nranks, std::uint32_t bytes,
                           coll::Algo a) const {
  if (nranks < 2) return 0.0;
  const std::uint32_t wb = coll::wire_bytes(bytes);
  switch (coll::resolve_bcast(t_, nranks, bytes, a)) {
    case coll::Algo::kChain: {
      const std::uint32_t seg =
          std::max<std::uint32_t>(8, t_.bcast_chain_segment_bytes);
      const int nseg = static_cast<int>((bytes + seg - 1) / seg);
      const std::uint32_t seg_wb = coll::wire_bytes(std::min(bytes, seg));
      // Pipeline: segment 0 fills the n-1 link chain, the remaining
      // segments drain through the last link at the per-segment CPU
      // interval (receive + forward).
      const double interval =
          p_.orecv_ns() + p_.poll_gap_ns() + p_.osend_ns(seg_wb);
      return static_cast<double>(nranks - 1) * step_ns(seg_wb) +
             static_cast<double>(nseg - 1) * interval;
    }
    default:
      // Binomial: the deepest leaf is binomial_depth(n) sequential hops
      // away, each hop forwarding the full payload on arrival.
      return static_cast<double>(binomial_depth(nranks)) * step_ns(wb);
  }
}

double CollModel::allgather_ns(int nranks, std::uint32_t bytes_per_rank,
                               coll::Algo a) const {
  if (nranks < 2) return 0.0;
  switch (coll::resolve_allgather(t_, nranks, bytes_per_rank, a)) {
    case coll::Algo::kRingAllgather:
      return static_cast<double>(nranks - 1) *
             step_ns(coll::wire_bytes(bytes_per_rank));
    default: {
      // Bruck: round k ships min(k, n-k) blocks.
      double total = 0.0;
      for (int k = 1; k < nranks; k <<= 1) {
        const int cnt = std::min(k, nranks - k);
        total += step_ns(coll::wire_bytes(static_cast<std::uint64_t>(cnt) *
                                          bytes_per_rank));
      }
      return total;
    }
  }
}

double CollModel::allreduce_ns(int nranks, std::uint32_t bytes,
                               coll::Algo a) const {
  if (nranks < 2) return 0.0;
  const std::uint32_t wb = coll::wire_bytes(bytes);
  switch (coll::resolve_allreduce(t_, nranks, bytes, a)) {
    case coll::Algo::kRingAllreduce: {
      // 2(n-1) chunk steps; the step clock is the largest chunk
      // (ceil-partitioned, so chunks differ by at most one element).
      const std::uint64_t elems = bytes / 8;
      const std::uint64_t chunk =
          (elems + static_cast<std::uint64_t>(nranks) - 1) /
          static_cast<std::uint64_t>(nranks);
      return 2.0 * (nranks - 1) * step_ns(coll::wire_bytes(8 * chunk));
    }
    default: {
      // Recursive doubling: log2(pof2) exchange rounds, plus the fold and
      // unfold hops when n is not a power of two.
      int pof2 = 1;
      while (pof2 * 2 <= nranks) pof2 *= 2;
      const int extra = nranks - pof2 > 0 ? 2 : 0;
      return static_cast<double>(ceil_log2(pof2) + extra) * step_ns(wb);
    }
  }
}

}  // namespace bb::model
