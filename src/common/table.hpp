#pragma once
// Plain-text report rendering: aligned tables (the Table 1 substitute),
// stacked percentage bars (the Fig. 4/8/10-16 substitutes), and CSV export
// for plotting with external tools.

#include <cstddef>
#include <string>
#include <vector>

namespace bb {

/// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Adds a horizontal separator before the next row.
  void add_rule();

  std::string render() const;
  std::string to_csv() const;

  static std::string num(double v, int decimals = 2);
  static std::string pct(double fraction, int decimals = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

/// One segment of a stacked percentage bar.
struct BarSegment {
  std::string label;
  double value = 0.0;  // absolute; percentages computed from the total
};

/// Renders a horizontal stacked bar like the paper's percentage-breakdown
/// figures, e.g.
///   |=== MD setup 15.8% ===|== ... ==|
/// plus a legend with exact percentages and absolute values.
std::string render_stacked_bar(const std::string& title,
                               const std::vector<BarSegment>& segments,
                               std::size_t width = 72,
                               const std::string& unit = "ns");

}  // namespace bb
