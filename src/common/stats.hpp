#pragma once
// Sample statistics used throughout the measurement methodology.
//
// The paper reports means of >=100 samples per component, and for the
// injection-overhead distribution (Fig. 7) reports mean / median / min /
// max / standard deviation plus a probability-density plot. `Samples`
// collects raw values; `Summary` freezes the descriptive statistics;
// `Histogram` bins a sample set for rendering.

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace bb {

/// Descriptive statistics of a sample set (all values in nanoseconds).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  std::string str() const;
};

/// Collects raw duration samples.
class Samples {
 public:
  void add(TimePs v) { values_ns_.push_back(v.to_ns()); }
  void add_ns(double ns) { values_ns_.push_back(ns); }
  /// Appends another sample set (profile aggregation across bb::exec
  /// jobs). Order: this set's samples, then `o`'s, so merging in grid
  /// order is deterministic.
  void merge(const Samples& o) {
    values_ns_.insert(values_ns_.end(), o.values_ns_.begin(),
                      o.values_ns_.end());
  }
  void clear() { values_ns_.clear(); }
  std::size_t size() const { return values_ns_.size(); }
  bool empty() const { return values_ns_.empty(); }
  const std::vector<double>& values_ns() const { return values_ns_; }

  Summary summarize() const;
  /// Interpolated quantile, q in [0, 1].
  double quantile(double q) const;

 private:
  std::vector<double> values_ns_;
};

/// Streaming mean/variance (Welford) for cases where raw samples are not
/// retained, e.g. very long injection runs.
class RunningStats {
 public:
  void add(double x);
  void add(TimePs v) { add(v.to_ns()); }
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin so heavy tails remain visible as mass in the last bin.
class Histogram {
 public:
  Histogram(double lo_ns, double hi_ns, std::size_t bins);

  void add_ns(double v);
  void add(TimePs v) { add_ns(v.to_ns()); }
  void add_all(const Samples& s);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  /// Probability density within the bin (fraction / bin width).
  double density(std::size_t bin) const;

  /// Multi-line ASCII rendering (the Fig. 7 substitute in bench output).
  std::string render(std::size_t width = 60) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace bb
