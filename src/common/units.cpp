#include "common/units.hpp"

#include <cstdio>

namespace bb {

std::string TimePs::str() const {
  char buf[48];
  const double ns = to_ns();
  if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ns / 1e6);
  } else if (ns >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f ns", ns);
  }
  return buf;
}

}  // namespace bb
