#pragma once
// Deterministic random number generation.
//
// The simulator must be bit-reproducible across runs and platforms, so we do
// not use the standard <random> distributions (their sequences are
// implementation-defined). The engine is xoshiro256**; distributions are
// implemented here with fixed algorithms.

#include <array>
#include <cstdint>

namespace bb {

/// Mixes a 64-bit seed into a well-distributed stream (used for seeding).
struct SplitMix64 {
  std::uint64_t state;
  constexpr explicit SplitMix64(std::uint64_t seed) : state(seed) {}
  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
};

/// Deterministic PRNG with fixed-algorithm distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Derives an independent child stream (for per-component jitter sources).
  Rng fork();

  std::uint64_t next_u64();
  /// Uniform in [0, 1) with 53 bits of precision.
  double uniform01();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_u64(std::uint64_t n);
  /// Standard normal via Box-Muller (caches the second variate).
  double normal();
  double normal(double mean, double stddev);
  /// Lognormal such that the *resulting* distribution has the given
  /// mean and standard deviation (moment-matched).
  double lognormal_by_moments(double mean, double stddev);
  double exponential(double mean);
  /// True with probability p.
  bool bernoulli(double p);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace bb
