#pragma once
// Deterministic random number generation.
//
// The simulator must be bit-reproducible across runs and platforms, so we do
// not use the standard <random> distributions (their sequences are
// implementation-defined). The engine is xoshiro256**; distributions are
// implemented here with fixed algorithms.

#include <array>
#include <cstdint>

namespace bb {

/// Mixes a 64-bit seed into a well-distributed stream (used for seeding).
struct SplitMix64 {
  std::uint64_t state;
  constexpr explicit SplitMix64(std::uint64_t seed) : state(seed) {}
  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
};

/// Pure seed derivation: the child seed is a function of (parent seed,
/// label) and NOTHING else -- no shared counter, no stream position, no
/// thread identity. This is the seed-forking contract `bb::exec` relies
/// on for parallel == serial bit-identity: a sweep forks one seed per
/// grid *index*, so the assignment cannot depend on execution order.
/// Distinct labels under one parent yield distinct, decorrelated seeds
/// (each (parent, label) pair passes through two full SplitMix64 mixes).
constexpr std::uint64_t derive_seed(std::uint64_t parent_seed,
                                    std::uint64_t label) {
  SplitMix64 outer(parent_seed);
  const std::uint64_t parent_mixed = outer.next();
  SplitMix64 inner(parent_mixed ^
                   (label * 0xD1B54A32D192ED03ull + 0x2545F4914F6CDD1Dull));
  return inner.next();
}

/// Deterministic PRNG with fixed-algorithm distributions.
///
/// Two forking styles, with different contracts:
///  * `fork()` -- stateful: consumes one value from *this* stream, so the
///    child depends on how far the parent has advanced. Used by
///    components constructed in a fixed order on one simulator (e.g.
///    cpu::Core); order IS the contract there.
///  * `fork(label)` -- pure: the child is `derive_seed(seed(), label)`,
///    a function of the construction seed and the label only. The parent
///    stream is not touched and repeated calls return the same stream.
///    This is the only style permitted for cross-job forking in
///    `bb::exec` sweeps.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// The seed this stream was constructed from (pure forks key off it).
  std::uint64_t seed() const { return seed_; }

  /// Derives an independent child stream (for per-component jitter
  /// sources). Stateful: advances this stream by one value.
  Rng fork();

  /// Pure labelled fork: child = Rng(derive_seed(seed(), label)). Does
  /// not advance or read this stream's position; a pure function of
  /// (construction seed, label).
  Rng fork(std::uint64_t label) const {
    return Rng(derive_seed(seed_, label));
  }

  std::uint64_t next_u64();
  /// Uniform in [0, 1) with 53 bits of precision.
  double uniform01();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_u64(std::uint64_t n);
  /// Standard normal via Box-Muller (caches the second variate).
  double normal();
  double normal(double mean, double stddev);
  /// Lognormal such that the *resulting* distribution has the given
  /// mean and standard deviation (moment-matched).
  double lognormal_by_moments(double mean, double stddev);
  double exponential(double mean);
  /// True with probability p.
  bool bernoulli(double p);

 private:
  std::uint64_t seed_ = 0;
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace bb
