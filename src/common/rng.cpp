#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace bb {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::next_u64() {
  // xoshiro256** 1.0 (Blackman & Vigna), public domain reference algorithm.
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  BB_ASSERT(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 1e-300);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_by_moments(double mean, double stddev) {
  BB_ASSERT(mean > 0.0);
  const double cv2 = (stddev / mean) * (stddev / mean);
  const double sigma2 = std::log1p(cv2);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(mu + std::sqrt(sigma2) * normal());
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform01();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

}  // namespace bb
