#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace bb {

std::string Summary::str() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.2f median=%.2f sd=%.2f min=%.2f max=%.2f", count,
                mean, median, stddev, min, max);
  return buf;
}

Summary Samples::summarize() const {
  Summary s;
  s.count = values_ns_.size();
  if (values_ns_.empty()) return s;

  std::vector<double> sorted = values_ns_;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);

  double ss = 0.0;
  for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1 ? std::sqrt(ss / static_cast<double>(s.count - 1)) : 0.0;

  auto quant = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    if (i + 1 >= sorted.size()) return sorted.back();
    return sorted[i] * (1.0 - frac) + sorted[i + 1] * frac;
  };
  s.median = quant(0.5);
  s.p95 = quant(0.95);
  s.p99 = quant(0.99);
  return s;
}

double Samples::quantile(double q) const {
  BB_ASSERT(!values_ns_.empty());
  std::vector<double> sorted = values_ns_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= sorted.size()) return sorted.back();
  return sorted[i] * (1.0 - frac) + sorted[i + 1] * frac;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo_ns, double hi_ns, std::size_t bins)
    : lo_(lo_ns), hi_(hi_ns), counts_(bins, 0) {
  BB_ASSERT(hi_ns > lo_ns && bins > 0);
  width_ = (hi_ - lo_) / static_cast<double>(bins);
}

void Histogram::add_ns(double v) {
  std::size_t bin;
  if (v < lo_) {
    bin = 0;
  } else if (v >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((v - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(const Samples& s) {
  for (double v : s.values_ns()) add_ns(v);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) /
         (static_cast<double>(total_) * width_);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";

  std::string out;
  char line[256];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof(line), "%8.1f-%8.1f ns |%-*s| %zu\n",
                  bin_lo(b), bin_hi(b), static_cast<int>(width),
                  std::string(bar, '#').c_str(), counts_[b]);
    out += line;
  }
  return out;
}

}  // namespace bb
