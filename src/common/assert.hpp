#pragma once
// Internal assertions. These guard simulator invariants (queue conservation,
// credit accounting, event ordering) and are enabled in all build types:
// a simulator that silently corrupts its timeline produces plausible-looking
// wrong numbers, which is worse than aborting.

#include <cstdio>
#include <cstdlib>

namespace bb::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "bb: assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}
}  // namespace bb::detail

#define BB_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::bb::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                \
  } while (false)

#define BB_ASSERT_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) {                                                \
      ::bb::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                             \
  } while (false)

#define BB_UNREACHABLE(msg) \
  ::bb::detail::assert_fail("unreachable", __FILE__, __LINE__, msg)
