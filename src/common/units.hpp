#pragma once
// Strong time types for the simulator.
//
// All simulation time is kept as an integral number of picoseconds so that
// event ordering is exact and runs are bit-reproducible. Nanosecond doubles
// (the unit the paper reports) appear only at the edges: configuration and
// reporting.

#include <compare>
#include <cstdint>
#include <string>

namespace bb {

/// A point in simulated time or a duration, in integral picoseconds.
///
/// One type serves both instants and durations; the arithmetic below is the
/// common subset that is meaningful for either. Negative values are allowed
/// for intermediate arithmetic but never appear as event timestamps.
class TimePs {
 public:
  constexpr TimePs() = default;
  constexpr explicit TimePs(std::int64_t ps) : ps_(ps) {}

  /// Converts from nanoseconds, rounding to the nearest picosecond.
  static constexpr TimePs from_ns(double ns) {
    const double ps = ns * 1000.0;
    return TimePs(static_cast<std::int64_t>(ps >= 0 ? ps + 0.5 : ps - 0.5));
  }
  static constexpr TimePs from_us(double us) { return from_ns(us * 1e3); }
  static constexpr TimePs zero() { return TimePs(0); }
  /// A sentinel later than any reachable simulation time.
  static constexpr TimePs max() { return TimePs(INT64_MAX); }

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double to_ns() const { return static_cast<double>(ps_) / 1000.0; }
  constexpr double to_us() const { return to_ns() / 1e3; }

  constexpr auto operator<=>(const TimePs&) const = default;

  constexpr TimePs operator+(TimePs o) const { return TimePs(ps_ + o.ps_); }
  constexpr TimePs operator-(TimePs o) const { return TimePs(ps_ - o.ps_); }
  constexpr TimePs& operator+=(TimePs o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr TimePs& operator-=(TimePs o) {
    ps_ -= o.ps_;
    return *this;
  }
  constexpr TimePs operator*(std::int64_t k) const { return TimePs(ps_ * k); }
  constexpr TimePs operator/(std::int64_t k) const { return TimePs(ps_ / k); }
  /// Scales by a real factor (used by the what-if engine); rounds to ps.
  constexpr TimePs scaled(double f) const {
    const double v = static_cast<double>(ps_) * f;
    return TimePs(static_cast<std::int64_t>(v >= 0 ? v + 0.5 : v - 0.5));
  }

  /// Renders as e.g. "282.33 ns" (two decimals), for reports.
  std::string str() const;

 private:
  std::int64_t ps_ = 0;
};

namespace literals {
constexpr TimePs operator""_ps(unsigned long long v) {
  return TimePs(static_cast<std::int64_t>(v));
}
constexpr TimePs operator""_ns(unsigned long long v) {
  return TimePs(static_cast<std::int64_t>(v) * 1000);
}
constexpr TimePs operator""_ns(long double v) {
  return TimePs::from_ns(static_cast<double>(v));
}
constexpr TimePs operator""_us(unsigned long long v) {
  return TimePs(static_cast<std::int64_t>(v) * 1'000'000);
}
constexpr TimePs operator""_us(long double v) {
  return TimePs::from_us(static_cast<double>(v));
}
constexpr TimePs operator""_ms(unsigned long long v) {
  return TimePs(static_cast<std::int64_t>(v) * 1'000'000'000);
}
}  // namespace literals

}  // namespace bb
