#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace bb {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  BB_ASSERT_MSG(cells.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TextTable::pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = render_rule() + render_row(header_) + render_rule();
  for (const auto& row : rows_) {
    out += row.empty() ? render_rule() : render_row(row);
  }
  out += render_rule();
  return out;
}

std::string TextTable::to_csv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string s;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) s += ",";
      s += row[c];
    }
    return s + "\n";
  };
  std::string out = join(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) out += join(row);
  }
  return out;
}

std::string render_stacked_bar(const std::string& title,
                               const std::vector<BarSegment>& segments,
                               std::size_t width, const std::string& unit) {
  double total = 0.0;
  for (const auto& s : segments) total += s.value;

  std::string out = title + "\n";
  if (total <= 0.0) return out + "  (no data)\n";

  // The bar itself: one '=' run per segment, proportionally sized.
  std::string bar = "|";
  for (const auto& s : segments) {
    auto cells = static_cast<std::size_t>(s.value / total *
                                          static_cast<double>(width) + 0.5);
    cells = std::max<std::size_t>(cells, 1);
    std::string fill(cells, '=');
    // Embed a short label if it fits.
    if (s.label.size() + 2 <= cells) {
      const std::size_t start = (cells - s.label.size()) / 2;
      for (std::size_t i = 0; i < s.label.size(); ++i) {
        fill[start + i] = s.label[i];
      }
    }
    bar += fill + "|";
  }
  out += "  " + bar + "\n";

  char line[192];
  for (const auto& s : segments) {
    std::snprintf(line, sizeof(line), "  %-28s %8.2f %-3s  %6.2f%%\n",
                  s.label.c_str(), s.value, unit.c_str(),
                  s.value / total * 100.0);
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-28s %8.2f %-3s  100.00%%\n", "TOTAL",
                total, unit.c_str());
  out += line;
  return out;
}

}  // namespace bb
