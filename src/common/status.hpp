#pragma once
// Unified status/result conventions for the public llp/hlp surfaces.
//
// The transport layers used to mix bools and layer-local enums for their
// return values; every public operation now reports one of the codes
// below. `kNoResource` is the transient busy-post EAGAIN of §4.2 --
// progress the worker and retry. `kIoError` is terminal: the operation
// was retired by a completion-with-error after the link exhausted its
// replay budget (see docs/FAULTS.md).

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace bb::common {

enum class Status : std::uint8_t {
  kOk = 0,
  /// Transient resource exhaustion ("busy post"): the transmit queue is
  /// full; progress the worker before retrying.
  kNoResource,
  /// A software-side queue hit its capacity bound.
  kQueueFull,
  /// The operation completed with an unrecoverable error (error CQE after
  /// exhausted link-level recovery, or the WQE that exhausted the RC
  /// transport's retry budget).
  kIoError,
  /// The WQE was flushed: its QP entered the error state (or was reset)
  /// before the operation could complete. The op itself never failed --
  /// repost after recovering the QP (docs/TRANSPORT.md).
  kFlushed,
  /// A bounded wait elapsed before the operation completed (e.g. the
  /// coll progress-engine timeout): diagnosable instead of a hang.
  kTimedOut,
};

inline bool is_ok(Status s) { return s == Status::kOk; }

inline std::string to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "OK";
    case Status::kNoResource:
      return "NO_RESOURCE";
    case Status::kQueueFull:
      return "QUEUE_FULL";
    case Status::kIoError:
      return "IO_ERROR";
    case Status::kFlushed:
      return "FLUSHED";
    case Status::kTimedOut:
      return "TIMED_OUT";
  }
  BB_UNREACHABLE("bad Status");
}

/// A value-or-status result (the subset of std::expected the transport
/// surfaces need). T must be default-constructible.
template <typename T>
class Expected {
 public:
  /// Default: an error placeholder (kIoError). Exists so Expected can sit
  /// in coroutine promises and containers before a real result lands; a
  /// placeholder observed as success would be a bug, so it is never OK.
  Expected() : status_(Status::kIoError) {}
  /* implicit */ Expected(T value)
      : status_(Status::kOk), value_(std::move(value)) {}
  /* implicit */ Expected(Status s) : status_(s) {
    BB_ASSERT_MSG(s != Status::kOk, "Expected error requires non-OK status");
  }

  bool ok() const { return status_ == Status::kOk; }
  explicit operator bool() const { return ok(); }
  Status status() const { return status_; }

  T& value() {
    BB_ASSERT_MSG(ok(), "Expected::value() on error result");
    return value_;
  }
  const T& value() const {
    BB_ASSERT_MSG(ok(), "Expected::value() on error result");
    return value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T operator->() const
    requires std::is_pointer_v<T>
  {
    BB_ASSERT_MSG(ok(), "Expected::operator-> on error result");
    return value_;
  }

  /// The value, or `fallback` on error.
  T value_or(T fallback) const { return ok() ? value_ : std::move(fallback); }

 private:
  Status status_;
  T value_{};
};

}  // namespace bb::common
