#include "prof/profiler.hpp"

#include "common/assert.hpp"

namespace bb::prof {

void ProfileData::merge(const ProfileData& o) {
  for (const auto& [name, samples] : o.regions) {
    regions[name].merge(samples);
  }
  for (const auto& [name, v] : o.counters) {
    counters[name] += v;
  }
}

std::string ProfileData::report() const {
  TextTable t({"Region", "Count", "Mean (ns)", "SD", "Min", "Max"});
  for (const auto& [name, samples] : regions) {
    const Summary s = samples.summarize();
    t.add_row({name, std::to_string(s.count), TextTable::num(s.mean),
               TextTable::num(s.stddev), TextTable::num(s.min),
               TextTable::num(s.max)});
  }
  std::string out = t.render();
  if (!counters.empty()) {
    TextTable c({"Counter", "Value"});
    for (const auto& [name, v] : counters) {
      c.add_row({name, std::to_string(v)});
    }
    out += "\n" + c.render();
  }
  return out;
}

Profiler::Region Profiler::begin(std::string name) {
  Region r;
  if (!enabled_) return r;
  r.active = true;
  r.name = std::move(name);
  r.t0 = core_.virtual_now();
  // One overhead sample per region, half charged at each edge; the raw
  // span t1 - t0 then contains exactly one sampled overhead.
  const TimePs overhead = core_.costs().timer_read.sample(core_.rng());
  const TimePs half = overhead / 2;
  r.deferred_overhead = overhead - half;
  core_.consume(half);
  return r;
}

void Profiler::end(Region& r) {
  if (!r.active) return;
  r.active = false;
  core_.consume(r.deferred_overhead);
  const TimePs raw = core_.virtual_now() - r.t0;
  // §3: "we report software measurements after removing this overhead."
  const double corrected = raw.to_ns() - overhead_mean_ns();
  data_.regions[r.name].add_ns(corrected);
}

void Profiler::record_ns(const std::string& name, double ns) {
  data_.regions[name].add_ns(ns);
}

bool Profiler::has(const std::string& name) const {
  return data_.regions.count(name) != 0;
}

const Samples& Profiler::samples(const std::string& name) const {
  auto it = data_.regions.find(name);
  BB_ASSERT_MSG(it != data_.regions.end(), "no samples for region");
  return it->second;
}

double Profiler::mean_ns(const std::string& name) const {
  return samples(name).summarize().mean;
}

std::string Profiler::report() const { return data_.report(); }

}  // namespace bb::prof
