#pragma once
// UCS-style software profiling (§3).
//
// The paper instruments code with UCX's UCS profiling infrastructure,
// which reads cntvct_el0 (preceded by an isb) around each region. The
// infrastructure itself costs time -- 49.69 ns mean, 1.48 ns sd on the
// paper's machine -- and reported numbers have that mean subtracted.
//
// This profiler reproduces the methodology *inside* the simulation: each
// measured region perturbs the core's timeline by a sampled overhead
// (half charged inside the region at begin, half at end, so the raw span
// contains one full overhead sample) and the recorded duration subtracts
// the configured mean. The residual sampling noise is therefore part of
// our measured component times, exactly as on real hardware.

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "cpu/core.hpp"

namespace bb::prof {

/// A profiler's recorded state, detached from the live Core/Simulator
/// that produced it. Counters are per-Profiler (and therefore
/// per-Simulator) -- there is deliberately no process-global registry,
/// so simulations on different threads never share measurement state.
/// `merge` is the aggregation API `bb::exec` uses to fold per-job
/// profiles into one report: merge snapshots in grid order and the
/// aggregate is deterministic at any thread count.
struct ProfileData {
  std::map<std::string, Samples> regions;
  std::map<std::string, std::uint64_t> counters;

  bool empty() const { return regions.empty() && counters.empty(); }

  /// Folds `o` into this profile: region samples append (this first,
  /// then `o`), counters add.
  void merge(const ProfileData& o);

  /// Table of all regions (and counters, when present) -- the same
  /// rendering as Profiler::report().
  std::string report() const;
};

class Profiler {
 public:
  explicit Profiler(cpu::Core& core) : core_(core) {}

  /// Globally enables/disables measurement. Disabled regions cost nothing
  /// and record nothing -- the paper measures one component at a time "to
  /// minimize any effects of artificial slowdowns" (§3); benches likewise
  /// disable the profiler for analyzer-observed runs.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// An open measurement; obtained from begin(), closed by end().
  struct Region {
    bool active = false;
    std::string name;
    TimePs t0;
    TimePs deferred_overhead;  // second half, charged at end()
  };

  Region begin(std::string name);
  /// Closes the region and records the compensated duration.
  void end(Region& r);

  /// Records an externally measured duration under `name` (used when a
  /// component is derived by subtraction, mirroring §5's methodology).
  void record_ns(const std::string& name, double ns);

  /// Event counters (fault/recovery accounting and similar): free --
  /// counting does not perturb the simulated timeline, unlike regions.
  void note_count(const std::string& name, std::uint64_t delta = 1) {
    data_.counters[name] += delta;
  }
  std::uint64_t counter(const std::string& name) const {
    auto it = data_.counters.find(name);
    return it == data_.counters.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& counters() const {
    return data_.counters;
  }

  bool has(const std::string& name) const;
  const Samples& samples(const std::string& name) const;
  double mean_ns(const std::string& name) const;
  void clear() { data_ = ProfileData{}; }

  /// Copies the recorded state out of the live profiler -- the handoff
  /// point from a job-owned Testbed to the caller-side aggregate.
  ProfileData snapshot() const { return data_; }

  /// The mean that gets subtracted from every region (Table 1:
  /// "Measurement update").
  double overhead_mean_ns() const {
    return core_.costs().timer_read.mean_ns;
  }

  /// Table of all recorded regions.
  std::string report() const;

 private:
  cpu::Core& core_;
  bool enabled_ = true;
  ProfileData data_;
};

}  // namespace bb::prof
