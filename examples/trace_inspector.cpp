// Trace inspector: runs the am_lat ping-pong and walks through the
// paper's measurement methodology (§4.3) step by step on the captured
// PCIe trace -- the educational companion to bench_table1.

#include <cstdio>

#include "benchlib/am_lat.hpp"
#include "core/analysis.hpp"
#include "core/component_table.hpp"
#include "scenario/testbed.hpp"

using namespace bb;

int main() {
  std::printf("Running UCX-style am_lat (ping-pong) with the analyzer on\n"
              "node 0's PCIe link, tap just before the NIC (paper Fig. 3)...\n\n");

  scenario::Testbed tb(scenario::presets::thunderx2_cx4());
  bench::AmLatBenchmark am(tb, {.iterations = 300, .warmup = 30});
  const auto res = am.run();
  const auto& trace = am.trace();

  std::printf("captured %zu packets; first ping-pong cycle:\n%s\n",
              trace.size(), trace.render(0, 14).c_str());

  std::printf("step 1 -- latency: the benchmark reports half the round\n"
              "trip: raw %.2f ns; minus half a measurement update (%.2f):\n"
              "adjusted %.2f ns (paper observes 1190.25).\n\n",
              res.half_rtt_raw.summarize().mean, 49.69 / 2.0,
              res.adjusted_mean_ns);

  const Samples pcie = core::measured_pcie(trace);
  std::printf("step 2 -- PCIe: NIC-initiated MWr -> RC Ack DLLP round\n"
              "trips, halved: %.2f ns over %zu pairs (paper: 137.49).\n\n",
              pcie.summarize().mean, pcie.size());

  const Samples net = core::measured_network(trace);
  std::printf("step 3 -- Network: downstream ping -> upstream completion\n"
              "spans, halved: %.2f ns (paper: 382.81 = wire + switch; the\n"
              "span includes NIC processing the analyzer cannot see).\n\n",
              net.summarize().mean);

  const auto table = core::ComponentTable::from_config(tb.config());
  const Samples rc = core::measured_rc_to_mem(
      trace, pcie.summarize().mean,
      table.llp_post() + table.measurement_update, table.llp_prog);
  std::printf("step 4 -- RC-to-MEM(8B): inbound-pong -> outbound-ping\n"
              "deltas minus 2xPCIe + LLP_prog + LLP_post (+ the\n"
              "benchmark's measurement update): %.2f ns (paper: 240.96).\n\n",
              rc.summarize().mean);

  std::printf("Each of these is the exact procedure §4.3 describes; see\n"
              "bench_table1 for the full validated reproduction.\n");
  return 0;
}
