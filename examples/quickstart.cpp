// Quickstart: simulate the paper's two-node testbed, send one 8-byte MPI
// message, and print where every nanosecond went.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/models.hpp"
#include "scenario/mpi_stack.hpp"
#include "scenario/testbed.hpp"

using namespace bb;
using scenario::MpiStack;
using scenario::Testbed;

int main() {
  // 1. A testbed calibrated to the paper's machine: ThunderX2 @ 2 GHz,
  //    ConnectX-4 behind PCIe Gen3, one InfiniBand switch. `deterministic`
  //    strips timing jitter so this walkthrough is exactly reproducible.
  Testbed tb(scenario::presets::deterministic());

  // 2. The full software stack on each node: MPI over UCP over UCT.
  MpiStack sender(tb, 0);
  MpiStack receiver(tb, 1);
  tb.node(1).nic.post_receives(1);

  // 3. One ping: the receiver posts MPI_Irecv and blocks in MPI_Wait;
  //    the sender fires MPI_Isend.
  double send_done_ns = 0, recv_done_ns = 0;
  tb.sim().spawn([](MpiStack& s, double& done) -> sim::Task<void> {
    (void)co_await s.mpi().isend(8);
    done = s.node().core.virtual_now().to_ns();
  }(sender, send_done_ns));
  tb.sim().spawn([](MpiStack& r, double& done) -> sim::Task<void> {
    hlp::Request* req = r.mpi().irecv(8).value();
    co_await r.mpi().wait(req);
    done = r.node().core.virtual_now().to_ns();
  }(receiver, recv_done_ns));
  tb.sim().run();

  std::printf("MPI_Isend returned at %.2f ns (initiator CPU is free)\n",
              send_done_ns);
  std::printf("MPI_Wait returned at  %.2f ns (payload usable at target)\n\n",
              recv_done_ns);

  // 4. The paper's analytical model explains the journey component by
  //    component (Fig. 13).
  const auto table = core::ComponentTable::from_config(tb.config());
  const core::LatencyModel model(table);
  std::printf("analytical end-to-end latency: %.2f ns, composed of:\n",
              model.e2e_latency_ns());
  for (const auto& seg : model.fig13_breakdown()) {
    std::printf("  %-16s %8.2f ns\n", seg.label.c_str(), seg.value);
  }

  // 5. And the analyzer saw the actual PCIe transactions on node 0:
  std::printf("\nPCIe trace at node 0 (tap just before the NIC):\n%s",
              tb.analyzer().trace().render(0, 8).c_str());
  return 0;
}
