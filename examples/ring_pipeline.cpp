// Ring allreduce on bb::coll: N ranks reduce-scatter their vectors
// around a ring, then allgather the reduced chunks -- the schedule that
// turned the paper's per-message breakdown into the collective every
// deep-learning framework runs. Demonstrates the coll::World MPI
// communicator, forced algorithm selection, and how the analytical
// alpha-beta model predicts the schedule from the same SystemConfig the
// simulator runs.

#include <cstdio>
#include <vector>

#include "benchlib/osu_coll.hpp"
#include "model/alpha_beta.hpp"
#include "scenario/cluster.hpp"

using namespace bb;

namespace {

constexpr int kRanks = 4;
constexpr std::uint32_t kBytes = 4096;  // 512 doubles per rank

sim::Task<void> rank_loop(coll::Communicator& c, int rank, bool* ok) {
  // Each rank contributes rank+1 in every slot; the sum over ranks is
  // 1+2+...+N, checkable in every element at every rank.
  std::vector<double> v(kBytes / 8, static_cast<double>(rank + 1));
  co_await coll::allreduce(c, kBytes, v, coll::ReduceOp::kSum,
                           coll::Algo::kRingAllreduce);
  const double expect = kRanks * (kRanks + 1) / 2.0;
  bool good = true;
  for (double x : v) good = good && x == expect;
  *ok = good;
}

}  // namespace

int main() {
  std::printf("ring allreduce: %d ranks, %u bytes (%u doubles)\n\n", kRanks,
              kBytes, kBytes / 8);

  scenario::Cluster cl(scenario::presets::thunderx2_cx4(), kRanks);
  coll::World world(cl);
  bool ok[kRanks] = {};
  for (int r = 0; r < kRanks; ++r) {
    cl.sim().spawn(rank_loop(world.comm(r), r, &ok[r]), "ring-allreduce");
  }
  cl.sim().run();
  for (int r = 0; r < kRanks; ++r) {
    std::printf("rank %d: %s\n", r, ok[r] ? "reduced vector correct" : "WRONG");
  }

  // Timed run (epoch-aligned OSU loop) vs the alpha-beta forecast.
  scenario::Cluster timed(scenario::presets::deterministic(), kRanks);
  coll::World tworld(timed);
  bench::OsuCollConfig cfg;
  cfg.bytes = kBytes;
  cfg.iterations = 20;
  cfg.warmup = 5;
  cfg.algo = coll::Algo::kRingAllreduce;
  bench::OsuColl bench(tworld, bench::OsuColl::Kind::kAllreduce, cfg);
  const double sim_ns = bench.run().mean_ns();
  const model::CollModel m(timed.config());
  const double model_ns =
      m.allreduce_ns(kRanks, kBytes, coll::Algo::kRingAllreduce);

  std::printf("\nsimulated ring allreduce: %.1f ns\n", sim_ns);
  std::printf("alpha-beta model:         %.1f ns (%.1f%% err)\n", model_ns,
              (model_ns - sim_ns) / sim_ns * 100.0);
  std::printf("=> 2(N-1) chunk steps; every per-message term the paper\n"
              "   breaks down (Fig. 10) multiplies straight into the\n"
              "   collective's critical path.\n");
  return 0;
}
