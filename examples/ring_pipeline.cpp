// Multi-rank ring pipeline: N ranks forward small tokens around a ring
// (the communication core of a ring allreduce). Demonstrates the N-node
// cluster and shows how the paper's per-message breakdown composes into
// a collective's critical path: each hop pays roughly the one-way
// small-message latency, so a full ring rotation costs ~N x latency.

#include <cstdio>
#include <vector>

#include "core/models.hpp"
#include "scenario/cluster.hpp"

using namespace bb;
using scenario::Cluster;

namespace {

constexpr int kNodes = 4;
constexpr int kRotations = 50;

sim::Task<void> rank_loop(Cluster& cl, int rank, llp::Endpoint& to_right,
                          double* rotation_ns) {
  auto& node = cl.node(rank);
  const double t0 = node.core.virtual_now().to_ns();
  for (int rot = 0; rot < kRotations; ++rot) {
    // Rank 0 originates the token each rotation; everyone else forwards.
    if (rank == 0) {
      while (co_await to_right.am_short(8) != llp::Status::kOk) {
        co_await node.worker.progress();
      }
    }
    const std::uint64_t seen = node.worker.rx_completions();
    while (node.worker.rx_completions() == seen) {
      co_await node.worker.progress();
    }
    if (rank != 0) {
      while (co_await to_right.am_short(8) != llp::Status::kOk) {
        co_await node.worker.progress();
      }
    }
  }
  if (rotation_ns != nullptr) {
    *rotation_ns = (node.core.virtual_now().to_ns() - t0) / kRotations;
  }
}

}  // namespace

int main() {
  std::printf("ring pipeline: %d ranks, %d full rotations of an 8-byte token\n\n",
              kNodes, kRotations);

  Cluster cl(scenario::presets::thunderx2_cx4(), kNodes);
  std::vector<llp::Endpoint*> right;
  for (int r = 0; r < kNodes; ++r) {
    cl.node(r).nic.post_receives(kRotations + 2);
    right.push_back(&cl.add_endpoint(r, (r + 1) % kNodes));
  }
  double rotation_ns = 0;
  for (int r = 0; r < kNodes; ++r) {
    cl.sim().spawn(rank_loop(cl, r, *right[static_cast<std::size_t>(r)],
                             r == 0 ? &rotation_ns : nullptr));
  }
  cl.sim().run();

  const auto model = core::LatencyModel(
      core::ComponentTable::from_config(cl.config()));
  const double per_hop = rotation_ns / kNodes;
  std::printf("measured rotation time: %.2f ns (%.2f ns per hop)\n",
              rotation_ns, per_hop);
  std::printf("modelled LLP one-way latency: %.2f ns per hop\n",
              model.llp_latency_ns());
  std::printf("=> a ring collective's critical path is ~N x the paper's\n"
              "   small-message latency; every optimization of Fig. 17\n"
              "   multiplies by the rank count.\n");
  return 0;
}
