// Fine-grained halo exchange: the workload class the paper's introduction
// motivates -- at the limit of strong scaling every core exchanges small
// messages each iteration, so per-message overhead dominates.
//
// Two neighbouring ranks of a 1-D-decomposed 2-D stencil exchange one
// 8-byte halo element per boundary cell per iteration, then "compute".
// The example runs the exchange on the paper's baseline machine and on
// two of §7's optimized machines, showing how the what-if predictions
// translate into application-level iteration time.

#include <cstdio>
#include <vector>

#include "core/whatif.hpp"
#include "scenario/mpi_stack.hpp"
#include "scenario/testbed.hpp"

using namespace bb;
using scenario::MpiStack;
using scenario::Testbed;
using namespace bb::literals;

namespace {

struct StencilResult {
  double per_iteration_us = 0;
  double per_message_ns = 0;
};

constexpr int kIterations = 40;
constexpr int kHaloCells = 64;  // boundary cells exchanged per iteration
constexpr auto kComputeTime = 5_us;

sim::Task<void> rank(Testbed& tb, MpiStack& st, double* per_iter_us) {
  const double t0 = st.node().core.virtual_now().to_ns();
  for (int it = 0; it < kIterations; ++it) {
    // Post receives for the neighbour's halo, send ours, then wait.
    std::vector<hlp::Request*> recvs, sends;
    for (int c = 0; c < kHaloCells; ++c) {
      recvs.push_back(st.mpi().irecv(8).value());
    }
    for (int c = 0; c < kHaloCells; ++c) {
      sends.push_back((co_await st.mpi().isend(8)).value());
    }
    co_await st.mpi().waitall(sends);
    for (hlp::Request* r : recvs) {
      co_await st.mpi().wait(r);
    }
    // Interior computation (overlappable in a more aggressive schedule).
    co_await st.node().core.flush();
    co_await tb.sim().delay(kComputeTime);
  }
  if (per_iter_us != nullptr) {
    *per_iter_us =
        (st.node().core.virtual_now().to_ns() - t0) / 1e3 / kIterations;
  }
}

StencilResult run(const scenario::SystemConfig& cfg) {
  Testbed tb(cfg);
  MpiStack a(tb, 0);
  MpiStack b(tb, 1);
  const std::uint32_t msgs = kIterations * kHaloCells + 8;
  tb.node(0).nic.post_receives(msgs);
  tb.node(1).nic.post_receives(msgs);

  StencilResult res;
  tb.sim().spawn(rank(tb, a, &res.per_iteration_us));
  tb.sim().spawn(rank(tb, b, nullptr));
  tb.sim().run();
  res.per_message_ns = (res.per_iteration_us * 1e3 -
                        kComputeTime.to_ns() / 1e3 * 1e3) /
                       kHaloCells;
  return res;
}

}  // namespace

int main() {
  std::printf("2-rank stencil halo exchange: %d iterations, %d x 8-byte\n"
              "halo messages per iteration, %.0f us compute per iteration\n\n",
              kIterations, kHaloCells, kComputeTime.to_ns() / 1e3);

  const StencilResult base = run(scenario::presets::thunderx2_cx4());
  const StencilResult fast_pio = run(scenario::presets::fast_device_memory());
  const StencilResult soc = run(scenario::presets::integrated_nic(0.5));

  std::printf("%-28s %16s %16s\n", "machine", "iter time (us)",
              "per-msg (ns)");
  std::printf("%-28s %16.2f %16.2f\n", "ThunderX2+CX4 (paper)",
              base.per_iteration_us, base.per_message_ns);
  std::printf("%-28s %16.2f %16.2f\n", "fast device memory (PIO 15ns)",
              fast_pio.per_iteration_us, fast_pio.per_message_ns);
  std::printf("%-28s %16.2f %16.2f\n", "integrated NIC (I/O -50%)",
              soc.per_iteration_us, soc.per_message_ns);

  const auto w = core::WhatIf(core::ComponentTable::from_config(
      scenario::presets::thunderx2_cx4()));
  std::printf("\npaper's what-if predictions for the messaging share:\n");
  std::printf("  PIO->15ns:  injection -%.1f%%\n",
              w.pio_injection_speedup() * 100);
  std::printf("  I/O -50%%:   latency   -%.1f%%\n",
              w.integrated_nic_latency_speedup(0.5) * 100);
  return 0;
}
