// bbsim: run any of the reproduction benchmarks on any machine preset
// from the command line.
//
//   bbsim put_bw   [preset] [count]    # UCX injection-rate test
//   bbsim am_lat   [preset] [count]    # UCX ping-pong latency test
//   bbsim osu_mr   [preset] [windows]  # OSU message rate (MPI)
//   bbsim osu_lat  [preset] [count]    # OSU pt2pt latency (MPI)
//   bbsim list                         # available presets
//
// Example:
//   bbsim am_lat genz-switch 2000

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <string>

#include "benchlib/am_lat.hpp"
#include "benchlib/osu.hpp"
#include "benchlib/put_bw.hpp"
#include "core/models.hpp"
#include "scenario/testbed.hpp"

using namespace bb;

namespace {

std::map<std::string, std::function<scenario::SystemConfig()>> presets() {
  using namespace scenario::presets;
  return {
      {"thunderx2-cx4", [] { return thunderx2_cx4(); }},
      {"deterministic", [] { return deterministic(); }},
      {"integrated-nic", [] { return integrated_nic(0.5); }},
      {"fast-device-memory", [] { return fast_device_memory(); }},
      {"genz-switch", [] { return genz_switch(); }},
      {"pam4-fec-wire", [] { return pam4_fec_wire(); }},
      {"tofu-d-like", [] { return tofu_d_like(); }},
      {"doorbell-dma", [] { return doorbell_dma_path(); }},
      {"unsignaled-completions", [] { return unsignaled_completions(); }},
  };
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <put_bw|am_lat|osu_mr|osu_lat|list> "
               "[preset] [count]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  const auto reg = presets();

  if (cmd == "list") {
    for (const auto& [name, _] : reg) std::printf("%s\n", name.c_str());
    return 0;
  }

  const std::string preset = argc > 2 ? argv[2] : "thunderx2-cx4";
  const auto it = reg.find(preset);
  if (it == reg.end()) {
    std::fprintf(stderr, "unknown preset '%s' (try: %s list)\n",
                 preset.c_str(), argv[0]);
    return 2;
  }
  const auto cfg = it->second();
  const std::uint64_t count =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;

  const auto table = core::ComponentTable::from_config(cfg);
  if (cmd == "put_bw") {
    scenario::Testbed tb(cfg);
    bench::PutBwBenchmark b(tb, {.messages = count ? count : 10000,
                                 .warmup = (count ? count : 10000) / 10});
    const auto res = b.run();
    const auto s = res.nic_deltas.summarize();
    std::printf("put_bw on %s: %llu msgs\n", cfg.name.c_str(),
                static_cast<unsigned long long>(res.messages));
    std::printf("  observed injection overhead: %s\n", s.str().c_str());
    std::printf("  modelled (Eq. 1):            %.2f ns\n",
                core::InjectionModel(table).llp_injection_ns());
    std::printf("  busy posts: %llu\n",
                static_cast<unsigned long long>(res.busy_posts));
    return 0;
  }
  if (cmd == "am_lat") {
    scenario::Testbed tb(cfg);
    bench::AmLatBenchmark b(tb, {.iterations = count ? count : 2000,
                                 .warmup = (count ? count : 2000) / 10});
    const auto res = b.run();
    std::printf("am_lat on %s: %llu iterations\n", cfg.name.c_str(),
                static_cast<unsigned long long>(res.iterations));
    std::printf("  observed latency (adjusted): %.2f ns\n",
                res.adjusted_mean_ns);
    std::printf("  modelled LLP latency:        %.2f ns\n",
                core::LatencyModel(table).llp_latency_ns());
    return 0;
  }
  if (cmd == "osu_mr") {
    scenario::Testbed tb(cfg);
    bench::OsuMessageRate b(tb, {.windows = count ? count : 300,
                                 .warmup_windows = (count ? count : 300) / 10});
    const auto res = b.run();
    std::printf("osu_mr on %s: %llu msgs\n", cfg.name.c_str(),
                static_cast<unsigned long long>(res.messages));
    std::printf("  message rate: %.2f M msg/s (%.2f ns/msg)\n",
                res.message_rate() / 1e6, res.cpu_per_msg_ns);
    std::printf("  modelled (Eq. 2): %.2f ns/msg\n",
                core::InjectionModel(table).overall_injection_ns());
    return 0;
  }
  if (cmd == "osu_lat") {
    scenario::Testbed tb(cfg);
    bench::OsuLatency b(tb, {.iterations = count ? count : 2000,
                             .warmup = (count ? count : 2000) / 10});
    const auto res = b.run();
    std::printf("osu_lat on %s: %llu iterations\n", cfg.name.c_str(),
                static_cast<unsigned long long>(res.iterations));
    std::printf("  observed latency (adjusted): %.2f ns\n",
                res.adjusted_mean_ns);
    std::printf("  modelled e2e latency:        %.2f ns\n",
                core::LatencyModel(table).e2e_latency_ns());
    return 0;
  }
  return usage(argv[0]);
}
