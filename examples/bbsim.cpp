// bbsim: run any of the reproduction benchmarks on any machine preset
// from the command line.
//
//   bbsim put_bw   [preset] [count]    # UCX injection-rate test
//   bbsim am_lat   [preset] [count]    # UCX ping-pong latency test
//   bbsim osu_mr   [preset] [windows]  # OSU message rate (MPI)
//   bbsim osu_lat  [preset] [count]    # OSU pt2pt latency (MPI)
//   bbsim coll     [preset] [ranks] [bytes] [collective]
//                                      # OSU collective latency (bb::coll)
//   bbsim sweep    <put_bw|am_lat|osu_mr|osu_lat> [count]
//                                      # one benchmark across ALL presets,
//                                      # sharded over the bb::exec pool
//   bbsim list                         # available presets
//
// Every subcommand accepts `--jobs N` (default: hardware concurrency;
// BB_JOBS overrides). The thread count never changes any printed number
// -- bb::exec sweeps are bit-identical at every value.
//
// Examples:
//   bbsim am_lat genz-switch 2000
//   bbsim coll genz-switch 8 1024 allreduce
//   bbsim sweep am_lat --jobs 4

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "benchlib/am_lat.hpp"
#include "benchlib/osu.hpp"
#include "benchlib/osu_coll.hpp"
#include "benchlib/put_bw.hpp"
#include "core/models.hpp"
#include "exec/sweep.hpp"
#include "model/alpha_beta.hpp"
#include "scenario/cluster.hpp"
#include "scenario/testbed.hpp"

using namespace bb;

namespace {

std::map<std::string, std::function<scenario::SystemConfig()>> presets() {
  using namespace scenario::presets;
  return {
      {"thunderx2-cx4", [] { return thunderx2_cx4(); }},
      {"deterministic", [] { return deterministic(); }},
      {"integrated-nic", [] { return integrated_nic(0.5); }},
      {"fast-device-memory", [] { return fast_device_memory(); }},
      {"genz-switch", [] { return genz_switch(); }},
      {"pam4-fec-wire", [] { return pam4_fec_wire(); }},
      {"tofu-d-like", [] { return tofu_d_like(); }},
      {"doorbell-dma", [] { return doorbell_dma_path(); }},
      {"unsignaled-completions", [] { return unsignaled_completions(); }},
  };
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <put_bw|am_lat|osu_mr|osu_lat|coll|sweep|list> "
               "[preset] [count] [--jobs N]\n"
               "       %s coll [preset] [ranks] [bytes] "
               "[barrier|bcast|allgather|allreduce]\n"
               "       %s sweep <put_bw|am_lat|osu_mr|osu_lat> [count]\n",
               argv0, argv0, argv0);
  return 2;
}

/// One row of `bbsim sweep`: observed + modelled value on one preset.
struct SweepRow {
  double observed;
  double modelled;
};

SweepRow run_metric(const std::string& metric,
                    const scenario::SystemConfig& cfg, std::uint64_t count) {
  const auto table = core::ComponentTable::from_config(cfg);
  scenario::Testbed tb(cfg);
  if (metric == "put_bw") {
    bench::PutBwBenchmark b(tb, {.messages = count ? count : 10000,
                                 .warmup = (count ? count : 10000) / 10});
    return {b.run().nic_deltas.summarize().mean,
            core::InjectionModel(table).llp_injection_ns()};
  }
  if (metric == "am_lat") {
    bench::AmLatBenchmark b(tb, {.iterations = count ? count : 2000,
                                 .warmup = (count ? count : 2000) / 10});
    return {b.run().adjusted_mean_ns,
            core::LatencyModel(table).llp_latency_ns()};
  }
  if (metric == "osu_mr") {
    bench::OsuMessageRate b(tb, {.windows = count ? count : 300,
                                 .warmup_windows = (count ? count : 300) / 10});
    return {b.run().cpu_per_msg_ns,
            core::InjectionModel(table).overall_injection_ns()};
  }
  bench::OsuLatency b(tb, {.iterations = count ? count : 2000,
                           .warmup = (count ? count : 2000) / 10});
  return {b.run().adjusted_mean_ns, core::LatencyModel(table).e2e_latency_ns()};
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the shared --jobs flag so positional parsing stays simple.
  exec::Options opts;
  opts.jobs = exec::default_jobs();
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opts.jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      opts.jobs = std::atoi(argv[i] + 7);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (opts.jobs <= 0) opts.jobs = exec::default_jobs();
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  const auto reg = presets();

  if (cmd == "sweep") {
    const std::string metric = argc > 2 ? argv[2] : "am_lat";
    if (metric != "put_bw" && metric != "am_lat" && metric != "osu_mr" &&
        metric != "osu_lat") {
      return usage(argv[0]);
    }
    const std::uint64_t n = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;
    std::vector<std::string> names;
    for (const auto& [name, _] : reg) names.push_back(name);
    const auto res = exec::run_sweep(
        exec::sweep(names),
        [&](const std::string& name, exec::Job&) {
          return run_metric(metric, reg.at(name)(), n);
        },
        opts);
    std::fprintf(stderr, "[exec] %s\n", res.summary().c_str());
    std::printf("%s across %zu presets\n", metric.c_str(), names.size());
    const char* unit = metric == "put_bw" || metric == "osu_mr"
                           ? "ns/msg"
                           : "latency ns";
    std::printf("%-24s %14s %14s\n", "preset", unit, "model");
    for (std::size_t i = 0; i < names.size(); ++i) {
      std::printf("%-24s %14.2f %14.2f\n", names[i].c_str(),
                  res.values[i].observed, res.values[i].modelled);
    }
    return 0;
  }

  if (cmd == "list") {
    for (const auto& [name, _] : reg) std::printf("%s\n", name.c_str());
    return 0;
  }

  const std::string preset = argc > 2 ? argv[2] : "thunderx2-cx4";
  const auto it = reg.find(preset);
  if (it == reg.end()) {
    std::fprintf(stderr, "unknown preset '%s' (try: %s list)\n",
                 preset.c_str(), argv[0]);
    return 2;
  }
  const auto cfg = it->second();
  const std::uint64_t count =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;

  const auto table = core::ComponentTable::from_config(cfg);
  if (cmd == "put_bw") {
    scenario::Testbed tb(cfg);
    bench::PutBwBenchmark b(tb, {.messages = count ? count : 10000,
                                 .warmup = (count ? count : 10000) / 10});
    const auto res = b.run();
    const auto s = res.nic_deltas.summarize();
    std::printf("put_bw on %s: %llu msgs\n", cfg.name.c_str(),
                static_cast<unsigned long long>(res.messages));
    std::printf("  observed injection overhead: %s\n", s.str().c_str());
    std::printf("  modelled (Eq. 1):            %.2f ns\n",
                core::InjectionModel(table).llp_injection_ns());
    std::printf("  busy posts: %llu\n",
                static_cast<unsigned long long>(res.busy_posts));
    return 0;
  }
  if (cmd == "am_lat") {
    scenario::Testbed tb(cfg);
    bench::AmLatBenchmark b(tb, {.iterations = count ? count : 2000,
                                 .warmup = (count ? count : 2000) / 10});
    const auto res = b.run();
    std::printf("am_lat on %s: %llu iterations\n", cfg.name.c_str(),
                static_cast<unsigned long long>(res.iterations));
    std::printf("  observed latency (adjusted): %.2f ns\n",
                res.adjusted_mean_ns);
    std::printf("  modelled LLP latency:        %.2f ns\n",
                core::LatencyModel(table).llp_latency_ns());
    return 0;
  }
  if (cmd == "osu_mr") {
    scenario::Testbed tb(cfg);
    bench::OsuMessageRate b(tb, {.windows = count ? count : 300,
                                 .warmup_windows = (count ? count : 300) / 10});
    const auto res = b.run();
    std::printf("osu_mr on %s: %llu msgs\n", cfg.name.c_str(),
                static_cast<unsigned long long>(res.messages));
    std::printf("  message rate: %.2f M msg/s (%.2f ns/msg)\n",
                res.message_rate() / 1e6, res.cpu_per_msg_ns);
    std::printf("  modelled (Eq. 2): %.2f ns/msg\n",
                core::InjectionModel(table).overall_injection_ns());
    return 0;
  }
  if (cmd == "osu_lat") {
    scenario::Testbed tb(cfg);
    bench::OsuLatency b(tb, {.iterations = count ? count : 2000,
                             .warmup = (count ? count : 2000) / 10});
    const auto res = b.run();
    std::printf("osu_lat on %s: %llu iterations\n", cfg.name.c_str(),
                static_cast<unsigned long long>(res.iterations));
    std::printf("  observed latency (adjusted): %.2f ns\n",
                res.adjusted_mean_ns);
    std::printf("  modelled e2e latency:        %.2f ns\n",
                core::LatencyModel(table).e2e_latency_ns());
    return 0;
  }
  if (cmd == "coll") {
    const int ranks = count ? static_cast<int>(count) : 8;
    const std::uint32_t bytes =
        argc > 4 ? static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10))
                 : 1024;
    const std::string which = argc > 5 ? argv[5] : "allreduce";
    bench::OsuColl::Kind kind;
    if (which == "barrier") {
      kind = bench::OsuColl::Kind::kBarrier;
    } else if (which == "bcast") {
      kind = bench::OsuColl::Kind::kBcast;
    } else if (which == "allgather") {
      kind = bench::OsuColl::Kind::kAllgather;
    } else if (which == "allreduce") {
      kind = bench::OsuColl::Kind::kAllreduce;
    } else {
      return usage(argv[0]);
    }
    if (ranks < 2 || bytes < 8 || bytes % 8 != 0) {
      std::fprintf(stderr, "coll needs ranks >= 2 and bytes a multiple of 8\n");
      return 2;
    }
    scenario::Cluster cl(cfg, ranks);
    coll::World world(cl);
    bench::OsuColl b(world, kind, {.iterations = 40, .warmup = 10,
                                   .bytes = bytes});
    const double sim_ns = b.run().mean_ns();
    const model::CollModel m(cfg);
    double model_ns = 0;
    switch (kind) {
      case bench::OsuColl::Kind::kBarrier: model_ns = m.barrier_ns(ranks); break;
      case bench::OsuColl::Kind::kBcast: model_ns = m.bcast_ns(ranks, bytes); break;
      case bench::OsuColl::Kind::kAllgather:
        model_ns = m.allgather_ns(ranks, bytes);
        break;
      case bench::OsuColl::Kind::kAllreduce:
        model_ns = m.allreduce_ns(ranks, bytes);
        break;
    }
    std::printf("%s on %s: %d ranks, %u bytes\n", which.c_str(),
                cfg.name.c_str(), ranks, bytes);
    std::printf("  simulated latency: %.2f ns\n", sim_ns);
    std::printf("  alpha-beta model:  %.2f ns (%+.1f%%)\n", model_ns,
                (model_ns - sim_ns) / sim_ns * 100.0);
    return 0;
  }
  return usage(argv[0]);
}
