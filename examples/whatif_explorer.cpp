// What-if explorer: the §7 analysis as an interactive command-line tool.
//
//   whatif_explorer                      # print all four Fig.-17 panels
//   whatif_explorer <component> <pct>    # one reduction, e.g.:
//   whatif_explorer pio 84
//   whatif_explorer switch 72
//   whatif_explorer io 50
//   whatif_explorer --csv                # panels as CSV (for plotting)
//
// Components: pio, llp_post, llp_prog, hlp_post, hlp_rx_prog,
// hlp_tx_prog, pcie, rc_to_mem, wire, switch, io, hlp, llp.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/whatif.hpp"
#include "scenario/config.hpp"

using namespace bb;

namespace {

struct Component {
  const char* name;
  double ns;
  bool in_injection;
  bool in_latency;
};

}  // namespace

int main(int argc, char** argv) {
  const auto t =
      core::ComponentTable::from_config(scenario::presets::thunderx2_cx4());
  const core::WhatIf w(t);
  const core::InjectionModel inj(t);
  const core::LatencyModel lat(t);

  if (argc == 1 || (argc == 2 && std::strcmp(argv[1], "--csv") == 0)) {
    const bool csv = argc == 2;
    for (const auto& panel : {w.injection_cpu(), w.latency_cpu(),
                              w.latency_io(), w.latency_network()}) {
      std::printf("%s\n", csv ? panel.to_csv().c_str()
                              : panel.render().c_str());
    }
    return 0;
  }
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s [<component> <reduction-%%>] [--csv]\n",
                 argv[0]);
    return 2;
  }

  const std::string name = argv[1];
  const double reduction = std::atof(argv[2]) / 100.0;
  if (reduction <= 0.0 || reduction > 1.0) {
    std::fprintf(stderr, "reduction must be in (0, 100]\n");
    return 2;
  }

  const Component components[] = {
      {"pio", t.pio_copy, true, true},
      {"llp_post", t.llp_post(), true, true},
      {"llp_prog", t.llp_prog, true, true},
      {"hlp_post", t.hlp_post(), true, true},
      {"hlp_rx_prog", t.hlp_rx_prog(), false, true},
      {"hlp_tx_prog", t.hlp_tx_prog, true, false},
      {"pcie", 2.0 * t.pcie, false, true},
      {"rc_to_mem", t.rc_to_mem_8b, false, true},
      {"wire", t.wire, false, true},
      {"switch", t.switch_lat, false, true},
      {"io", 2.0 * t.pcie + t.rc_to_mem_8b, false, true},
      {"hlp", t.hlp_post() + t.hlp_rx_prog(), false, true},
      {"llp", t.llp_post() + t.llp_prog, false, true},
  };

  for (const auto& c : components) {
    if (name != c.name) continue;
    std::printf("component %-12s = %.2f ns, reduced by %.0f%%\n", c.name,
                c.ns, reduction * 100.0);
    if (c.in_injection) {
      const double base = inj.overall_injection_ns();
      const double speedup = core::WhatIf::speedup(c.ns, reduction, base);
      std::printf("  injection: %.2f -> %.2f ns  (%.2f%% faster)\n", base,
                  base - reduction * c.ns, speedup * 100.0);
    }
    if (c.in_latency) {
      const double base = lat.e2e_latency_ns();
      const double speedup = core::WhatIf::speedup(c.ns, reduction, base);
      std::printf("  latency:   %.2f -> %.2f ns  (%.2f%% faster)\n", base,
                  base - reduction * c.ns, speedup * 100.0);
    }
    return 0;
  }
  std::fprintf(stderr, "unknown component '%s'\n", name.c_str());
  return 2;
}
